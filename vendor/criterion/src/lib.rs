//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — groups,
//! `BenchmarkId`, `bench_function` / `bench_with_input`, `Bencher::iter` —
//! with a simple calibrated wall-clock measurement: each benchmark is warmed
//! up, then timed over enough iterations to fill a measurement window, and
//! the mean time per iteration is printed. No statistics, plots, or saved
//! baselines — just honest comparable numbers for the EXPERIMENTS.md tables.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies a benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// How much setup output to batch per timing run. This harness re-runs
/// setup per iteration either way, so the variants only exist for API
/// compatibility with real criterion.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`.
    mean_ns: f64,
    iters: u64,
    measurement: Duration,
}

impl Bencher {
    fn new(measurement: Duration) -> Self {
        Bencher { mean_ns: 0.0, iters: 0, measurement }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up & calibration: run until ~10% of the window is spent.
        let calib_target = self.measurement / 10;
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < calib_target {
            black_box(routine());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
        let budget = (self.measurement - calib_target).as_secs_f64();
        let iters = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Criterion's setup/measure split: `setup` builds a fresh input for
    /// every call of `routine`, and only `routine` is timed. Used by
    /// benches whose workload consumes or mutates its input.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate on the timed section only.
        let calib_target = self.measurement / 10;
        let mut timed = Duration::ZERO;
        let mut calib_iters: u64 = 0;
        while timed < calib_target {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
            calib_iters += 1;
        }
        let per_iter = timed.as_secs_f64() / calib_iters as f64;
        let budget = (self.measurement - calib_target).as_secs_f64();
        let iters = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.3} s ", ns / 1_000_000_000.0)
    }
}

fn run_one(label: &str, measurement: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher::new(measurement);
    f(&mut b);
    println!("{label:<56} {} /iter  ({} iters)", human(b.mean_ns), b.iters);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement: Duration,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Criterion's knob for reducing sample counts; this harness has no
    /// samples, so it only shortens the measurement window a little.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if n <= 10 {
            self.measurement = Duration::from_millis(300);
        }
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.measurement, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.measurement, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n-- {name} --");
        BenchmarkGroup {
            name,
            measurement: Duration::from_millis(500),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(id, Duration::from_millis(500), f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(20));
        b.iter(|| (0..1000u64).sum::<u64>());
        assert!(b.mean_ns > 0.0);
        assert!(b.iters >= 1);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("algo", 1000).id, "algo/1000");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
