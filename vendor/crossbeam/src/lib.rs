//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::thread::scope` with the crossbeam-utils API shape
//! (the closure passed to `spawn` receives the scope, and `scope` returns a
//! `Result`), implemented on top of `std::thread::scope`, which has been
//! stable since Rust 1.63 and provides the same structured-concurrency
//! guarantee.

pub mod thread {
    /// Matches `crossbeam_utils::thread::scope`'s return type.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle; `&Scope` is what spawned closures receive.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Run `f` with a scope in which threads can borrow from the enclosing
    /// environment; all spawned threads are joined before `scope` returns.
    ///
    /// Unlike crossbeam, a panic in an *unjoined* child propagates as a
    /// panic rather than an `Err` (std semantics); every caller in this
    /// workspace joins its handles explicitly, so the difference is moot.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = super::thread::scope(|scope| {
            let h = scope.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
