//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` with this minimal, dependency-free implementation of the
//! API subset the repository uses: `StdRng::seed_from_u64`, `Rng::gen_range`
//! over integer and float ranges, and `Rng::gen_bool`. Streams are fully
//! deterministic per seed (xoshiro256++ seeded through SplitMix64), which is
//! all the synthetic-workload generators and tests rely on.

use std::ops::{Range, RangeInclusive};

/// Seedable RNG constructors (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods (subset of `rand::Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }
}

/// Types that can be drawn uniformly from a range (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized + PartialOrd {
    /// Sample from `[lo, hi)` (exclusive) or `[lo, hi]` (inclusive).
    fn sample_range<R: Rng + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// A range that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`). Implemented as blanket
/// impls over [`SampleUniform`] — exactly like upstream — so that float
/// literals in `gen_range(0.9..1.1)` unify with the result type and the
/// `f64` default applies.
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_range(lo, hi, true, rng)
    }
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(lo: f32, hi: f32, _inclusive: bool, rng: &mut R) -> f32 {
        lo + unit_f64(rng.next_u64()) as f32 * (hi - lo)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s
    /// `StdRng`; the exact stream differs from upstream, which is fine —
    /// callers only rely on determinism per seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [ref mut s0, ref mut s1, ref mut s2, ref mut s3] = self.s;
            let result = s0.wrapping_add(*s3).rotate_left(23).wrapping_add(*s0);
            let t = *s1 << 17;
            *s2 ^= *s0;
            *s3 ^= *s1;
            *s1 ^= *s2;
            *s0 ^= *s3;
            *s2 ^= t;
            *s3 = s3.rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(1i64..=100);
            assert!((1..=100).contains(&w));
            let f = rng.gen_range(0.9f64..1.1);
            assert!((0.9..1.1).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_is_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads));
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
