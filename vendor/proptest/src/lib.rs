//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `proptest` with this dependency-free reimplementation of the API subset
//! its tests use: the [`strategy::Strategy`] trait with `prop_map`,
//! `prop_recursive` and `boxed`; range, tuple, `Just`, union and
//! regex-literal strategies; [`collection::vec`]; `any::<T>()`; and the
//! `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assert_ne!` and `prop_assume!` macros.
//!
//! Differences from upstream, deliberate for size: failing inputs are *not
//! shrunk* (the failing case is printed in full instead), and generation
//! streams differ from upstream's. Each test function's cases are fully
//! deterministic across runs (seeded from the test's module path), so
//! failures reproduce.

pub mod test_runner {
    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// A `prop_assert!` failed — the property is violated.
        Fail(String),
        /// A `prop_assume!` failed — the input is rejected, try another.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (upstream's `ProptestConfig`, fields we honor).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic per-test RNG (xoshiro256++ seeded via FNV-1a of the
    /// test path + case index through SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn deterministic(test_path: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut sm = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, n)`.
        #[inline]
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;
    use std::sync::Arc;

    /// A recipe for generating values of one type. Upstream separates
    /// `Strategy` from `ValueTree` (for shrinking); this stand-in does not
    /// shrink, so a strategy simply generates.
    pub trait Strategy: Clone {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + Clone,
        {
            Map { inner: self, f }
        }

        /// Build recursive structures: `recurse` receives a strategy for
        /// sub-elements and returns the strategy for one nesting level.
        /// `depth` bounds nesting; the size hints are accepted for API
        /// compatibility but unused.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                // Mix leaves back in at every level so generated depths vary
                // instead of always hitting the maximum.
                let branch = recurse(strat).boxed();
                strat = Union::new(vec![leaf.clone(), branch]).boxed();
            }
            strat
        }

        /// Type-erase (upstream's `BoxedStrategy`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: Arc::new(self) }
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        inner: Arc<dyn DynStrategy<T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate_dyn(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + Clone,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniformly picks one of several strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { arms: self.arms.clone() }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    /// String-literal strategies: the pattern is a miniature regex, of the
    /// form `atom+` where an atom is a char class `[...]` or a literal
    /// character, optionally followed by `{m,n}`, `{n}`, `?`, `*` or `+`
    /// (`*`/`+` capped at 8 repetitions). This covers the patterns used by
    /// the workspace's tests (e.g. `"[a-z]{0,5}"`).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pat: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' && i + 1 < chars.len() {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = chars[i + 2];
                        for v in c..=hi {
                            set.push(v);
                        }
                        i += 3;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated char class in pattern {pat:?}");
                i += 1; // past ']'
                set
            } else {
                let c = if chars[i] == '\\' && i + 1 < chars.len() {
                    i += 1;
                    chars[i]
                } else {
                    chars[i]
                };
                i += 1;
                vec![c]
            };

            // Parse an optional quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated quantifier")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().expect("bad quantifier"),
                        b.trim().parse::<usize>().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?')
            {
                let q = chars[i];
                i += 1;
                match q {
                    '*' => (0, 8),
                    '+' => (1, 8),
                    _ => (0, 1),
                }
            } else {
                (1, 1)
            };

            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }

    /// Strategy produced by [`crate::arbitrary::any`].
    #[derive(Clone)]
    pub struct ArbitraryStrategy<T> {
        pub(crate) _marker: PhantomData<fn() -> T>,
    }

    impl Strategy for ArbitraryStrategy<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for ArbitraryStrategy<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for ArbitraryStrategy<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // Finite, wide-ranged doubles.
            (rng.unit_f64() - 0.5) * 2e12
        }
    }
}

pub mod arbitrary {
    use crate::strategy::ArbitraryStrategy;
    use std::marker::PhantomData;

    /// `any::<T>()` — the canonical strategy for a type.
    pub fn any<T>() -> ArbitraryStrategy<T> {
        ArbitraryStrategy { _marker: PhantomData }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Define property tests. Each case draws fresh inputs from the given
/// strategies; a failing case panics with the generated inputs' debug
/// representation (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut accepted: u32 = 0;
                let mut case: u64 = 0;
                let max_attempts = (config.cases as u64).saturating_mul(16).max(16);
                while accepted < config.cases && case < max_attempts {
                    case += 1;
                    let mut __proptest_rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strategy),
                            &mut __proptest_rng,
                        );
                    )*
                    let __proptest_result: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    match __proptest_result {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest property {} failed at case {}: {}",
                                stringify!($name), case, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Uniformly choose among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Assert within a property; failure reports the case instead of panicking
/// through the generated closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Reject inputs that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::deterministic("self-test", 1);
        let strat = (0i64..5, 10usize..20, any::<bool>());
        for _ in 0..200 {
            let (a, b, _c) = strat.generate(&mut rng);
            assert!((0..5).contains(&a));
            assert!((10..20).contains(&b));
        }
    }

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = TestRng::deterministic("self-test", 2);
        for _ in 0..200 {
            let s = "[a-c]{2,4}".generate(&mut rng);
            assert!((2..=4).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
            let t = "[xyz]".generate(&mut rng);
            assert_eq!(t.len(), 1);
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let mut rng = TestRng::deterministic("self-test", 3);
        let strat = collection::vec((0i64..3).prop_map(|i| i * 2), 1..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|x| [0, 2, 4].contains(x)));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..10).prop_map(Tree::Leaf).prop_recursive(3, 16, 3, |inner| {
            collection::vec(inner, 1..4).prop_map(Tree::Node)
        });
        let mut rng = TestRng::deterministic("self-test", 4);
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0i64..100, flip in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(x, x, "x must equal itself (flip={})", flip);
            prop_assert_ne!(x, x + 1);
            if flip {
                return Ok(());
            }
        }
    }
}
