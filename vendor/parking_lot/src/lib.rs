//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning API (a
//! panicked writer releases the lock instead of poisoning it), which is the
//! only behavioral property this workspace depends on.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with `parking_lot`'s panic-free `read`/`write`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with `parking_lot`'s panic-free `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
        assert_eq!(l.into_inner(), 42);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let l = std::sync::Arc::new(RwLock::new(0));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable.
        assert_eq!(*l.read(), 0);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
