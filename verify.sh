#!/usr/bin/env sh
# Repo verification: build, full test suite, and the paper-tables golden.
# Run from the repository root. Exits non-zero on any failure.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== differential oracle fuzz smoke (200 fixed-seed cases) =="
cargo test -q -p oracle --release

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cube_lint (workspace invariants: checkpoint, guard, faults, panic, wildcard, lockorder, foreign, atomic, commit) =="
cargo run -q --release -p cube-lint --bin cube_lint -- --root . --json /tmp/lint.json

if [ "${LINT_NIGHTLY:-0}" = "1" ]; then
    # Opt-in deep memory-model pass: only meaningful where a nightly
    # toolchain with miri is installed; silently skipped otherwise.
    if rustup toolchain list 2>/dev/null | grep -q nightly \
        && rustup component list --toolchain nightly 2>/dev/null | grep -q "miri.*(installed)"; then
        echo "== cargo miri test -p dc-relation (LINT_NIGHTLY=1) =="
        cargo +nightly miri test -p dc-relation
    fi
fi

echo "== fault-injection suite (--features faults) =="
cargo test -q --features faults --test governance

echo "== cube_bench smoke (vectorized + encoded workloads wire up) =="
cargo run -q --release -p dc-bench --bin cube_bench -- --smoke

echo "== dc-serve smoke (TCP round trip, admission shed, malformed query survival) =="
cargo run -q --release -p dc-sql --bin dc_serve -- --smoke

echo "== lattice-cache smoke (cache_serving on-vs-off must not regress) =="
cargo run -q --release -p dc-bench --bin cube_bench -- --cache-smoke

echo "== ingest smoke (batched INSERT must amortize >= 5x over row-at-a-time) =="
cargo run -q --release -p dc-bench --bin cube_bench -- --ingest-smoke

echo "== paper_tables vs golden =="
cargo run -q --release -p dc-bench --bin paper_tables > /tmp/paper_tables_actual.txt
if diff -u paper_tables_output.txt /tmp/paper_tables_actual.txt; then
    echo "paper_tables output matches the checked-in golden."
else
    echo "paper_tables output DIVERGES from paper_tables_output.txt" >&2
    exit 1
fi

echo "All checks passed."
