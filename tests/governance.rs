//! Execution-governance integration tests: resource budgets, cooperative
//! cancellation, panic isolation, graceful degradation, and (behind the
//! `faults` feature) the fault-injection suite.
//!
//! The invariant under test everywhere: the engine returns `Ok` or a
//! *typed* `CubeError` — it never aborts the process, never leaks a
//! wedged thread scope, and attaches the partial [`ExecStats`] to budget
//! and cancellation errors.

use datacube::{
    AggSpec, Algorithm, CancelToken, CubeError, CubeQuery, Dimension, ExecLimits, Resource,
};
use dc_aggregate::{builtin, AggKind, UdaBuilder};
use dc_relation::{DataType, Row, Schema, Table, Value};
use std::sync::Mutex;
use std::time::{Duration, Instant};

// ---------------------------------------------------------- fixtures --

/// `nx × ny` distinct (x, y) pairs — a dense grid core.
fn grid(nx: i64, ny: i64) -> Table {
    let schema = Schema::from_pairs(&[
        ("x", DataType::Int),
        ("y", DataType::Int),
        ("units", DataType::Int),
    ]);
    let mut t = Table::empty(schema);
    for x in 0..nx {
        for y in 0..ny {
            t.push_unchecked(Row::new(vec![
                Value::Int(x),
                Value::Int(y),
                Value::Int((x + y) % 17),
            ]));
        }
    }
    t
}

/// `n` rows along the diagonal — maximally sparse: the dense array wants
/// `(n+1)^2` cells but only `3n + 1` are ever backed by data.
fn diagonal(n: i64) -> Table {
    let schema = Schema::from_pairs(&[
        ("x", DataType::Int),
        ("y", DataType::Int),
        ("units", DataType::Int),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..n {
        t.push_unchecked(Row::new(vec![Value::Int(i), Value::Int(i), Value::Int(1)]));
    }
    t
}

fn xy_dims() -> Vec<Dimension> {
    vec![Dimension::column("x"), Dimension::column("y")]
}

fn sum_units() -> AggSpec {
    AggSpec::new(builtin("SUM").unwrap(), "units").with_name("s")
}

static PANIC_GATE: Mutex<()> = Mutex::new(());

/// Run `f` with panic output silenced. These tests deliberately panic
/// inside UDA callbacks and worker threads; the engine converts every one
/// into a typed error, but the process-global panic hook would still
/// spray backtraces over the test output. Serialized by a mutex because
/// the hook is global.
fn silent_panics<T>(f: impl FnOnce() -> T) -> T {
    type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;
    struct RestoreHook(Option<PanicHook>);
    impl Drop for RestoreHook {
        fn drop(&mut self) {
            // `set_hook` panics on a panicking thread, which would turn a
            // failing assertion into a process abort; leave the silent
            // hook in place on that path.
            if !std::thread::panicking() {
                if let Some(prev) = self.0.take() {
                    std::panic::set_hook(prev);
                }
            }
        }
    }
    let _gate = PANIC_GATE.lock().unwrap_or_else(|p| p.into_inner());
    let _restore = if std::env::var_os("GOVERNANCE_TRACE").is_some() {
        RestoreHook(None)
    } else {
        let prev = RestoreHook(Some(std::panic::take_hook()));
        std::panic::set_hook(Box::new(|_| {}));
        prev
    };
    f()
}

// ------------------------------------------------------------ budgets --

#[test]
fn cell_budget_trips_fast_with_partial_stats() {
    // A query projecting a 2^16-cell core (256 × 256 distinct values in
    // each dimension) under a 2^10-cell budget must fail with
    // ResourceExhausted carrying partial stats — and quickly, not after
    // materializing the whole cube. The data itself is a sparse cover:
    // every value of x and y appears, so the projected core is 2^16
    // cells, but only 2048 distinct pairs exist.
    let schema = Schema::from_pairs(&[
        ("x", DataType::Int),
        ("y", DataType::Int),
        ("units", DataType::Int),
    ]);
    let mut t = Table::empty(schema);
    for x in 0..256i64 {
        for j in 0..8i64 {
            t.push_unchecked(Row::new(vec![
                Value::Int(x),
                Value::Int((x + j * 32) % 256),
                Value::Int(1),
            ]));
        }
    }
    let query = CubeQuery::new()
        .dimensions(xy_dims())
        .aggregate(sum_units())
        .limits(ExecLimits::none().max_cells(1 << 10));
    let start = Instant::now();
    let err = query.cube_with_stats(&t).unwrap_err();
    let elapsed = start.elapsed();
    match err {
        CubeError::ResourceExhausted {
            resource,
            limit,
            observed,
            stats,
        } => {
            assert_eq!(resource, Resource::Cells);
            assert_eq!(limit, 1 << 10);
            assert!(observed > limit);
            assert!(stats.rows_scanned > 0, "partial stats missing: {stats:?}");
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
    assert!(elapsed < Duration::from_millis(100), "took {elapsed:?}");
}

#[test]
fn memory_budget_trips_via_cell_model() {
    let t = grid(64, 64);
    let query = CubeQuery::new()
        .dimensions(xy_dims())
        .aggregate(sum_units())
        .limits(ExecLimits::none().max_memory_bytes(1024));
    match query.cube_with_stats(&t).unwrap_err() {
        CubeError::ResourceExhausted {
            resource: Resource::MemoryBytes,
            observed,
            ..
        } => {
            assert!(observed > 1024);
        }
        other => panic!("expected memory exhaustion, got {other:?}"),
    }
}

#[test]
fn cancel_token_stops_the_query() {
    let token = CancelToken::new();
    token.cancel();
    let t = grid(32, 32);
    let query = CubeQuery::new()
        .dimensions(xy_dims())
        .aggregate(sum_units())
        .limits(ExecLimits::none().cancel_token(token));
    assert!(matches!(
        query.cube_with_stats(&t).unwrap_err(),
        CubeError::Cancelled { .. }
    ));
}

#[test]
fn expired_deadline_stops_the_query() {
    let t = grid(64, 64);
    let query = CubeQuery::new()
        .dimensions(xy_dims())
        .aggregate(sum_units())
        .limits(ExecLimits::none().timeout(Duration::from_nanos(1)));
    match query.cube_with_stats(&t).unwrap_err() {
        CubeError::ResourceExhausted {
            resource: Resource::TimeMs,
            ..
        } => {}
        other => panic!("expected time exhaustion, got {other:?}"),
    }
}

#[test]
fn budgets_apply_across_every_algorithm() {
    let t = grid(64, 64);
    for alg in [
        Algorithm::TwoToTheN,
        Algorithm::UnionGroupBys,
        Algorithm::FromCore,
        Algorithm::PipeSort,
        Algorithm::Parallel { threads: 4 },
    ] {
        let err = CubeQuery::new()
            .dimensions(xy_dims())
            .aggregate(sum_units())
            .algorithm(alg)
            .limits(ExecLimits::none().max_cells(16))
            .cube(&t)
            .unwrap_err();
        assert!(
            matches!(err, CubeError::ResourceExhausted { .. }),
            "{alg:?} returned {err:?}"
        );
    }
    // Sort is rollup-only; same budget, same trip.
    let err = CubeQuery::new()
        .dimensions(xy_dims())
        .aggregate(sum_units())
        .algorithm(Algorithm::Sort)
        .limits(ExecLimits::none().max_cells(16))
        .rollup(&t)
        .unwrap_err();
    assert!(
        matches!(err, CubeError::ResourceExhausted { .. }),
        "sort: {err:?}"
    );
}

// ------------------------------------------------------- degradation --

#[test]
fn dense_array_degrades_to_sparse_then_streaming() {
    // (50+1)^2 = 2601 projected dense cells against a 200-cell budget:
    // the array refuses up front, the dispatcher falls back to the hash
    // cascade, whose own projection also exceeds the budget, landing on
    // per-set streaming — which fits, because only 151 cells have data.
    let t = diagonal(50);
    let unlimited = CubeQuery::new()
        .dimensions(xy_dims())
        .aggregate(sum_units())
        .algorithm(Algorithm::Array)
        .cube(&t)
        .unwrap();
    let (cube, stats) = CubeQuery::new()
        .dimensions(xy_dims())
        .aggregate(sum_units())
        .algorithm(Algorithm::Array)
        .limits(ExecLimits::none().max_cells(200))
        .cube_with_stats(&t)
        .unwrap();
    assert!(
        stats.degraded_dense_to_sparse,
        "array → sparse flag missing: {stats:?}"
    );
    assert!(
        stats.degraded_to_streaming,
        "cascade → streaming flag missing: {stats:?}"
    );
    assert_eq!(
        cube.rows(),
        unlimited.rows(),
        "degraded plan changed the answer"
    );
    assert_eq!(cube.len(), 50 + 50 + 50 + 1);
}

#[test]
fn cascade_degrades_to_streaming_only() {
    let t = diagonal(50);
    let (cube, stats) = CubeQuery::new()
        .dimensions(xy_dims())
        .aggregate(sum_units())
        .algorithm(Algorithm::FromCore)
        .limits(ExecLimits::none().max_cells(200))
        .cube_with_stats(&t)
        .unwrap();
    assert!(stats.degraded_to_streaming);
    assert!(!stats.degraded_dense_to_sparse);
    assert_eq!(cube.len(), 151);
}

#[test]
fn no_degradation_within_budget() {
    let t = diagonal(10);
    let (_, stats) = CubeQuery::new()
        .dimensions(xy_dims())
        .aggregate(sum_units())
        .limits(ExecLimits::none().max_cells(10_000))
        .cube_with_stats(&t)
        .unwrap();
    assert!(!stats.degraded_dense_to_sparse);
    assert!(!stats.degraded_to_streaming);
    assert!(stats.encoded_keys);
}

// ---------------------------------------------------- panic isolation --

fn panicky_sum() -> AggSpec {
    let f = UdaBuilder::new("BADSUM", AggKind::Algebraic, || 0i64)
        .iter(|s, v| {
            if *v == Value::Int(13) {
                panic!("BADSUM cannot digest 13");
            }
            *s += v.as_i64().unwrap_or(0);
        })
        .state(|s| vec![Value::Int(*s)])
        .merge(|s, st| *s += st[0].as_i64().unwrap_or(0))
        .finalize(|s| Value::Int(*s))
        .build()
        .unwrap();
    AggSpec::new(f, "units").with_name("bs")
}

#[test]
fn uda_panics_become_typed_errors_serial_and_parallel() {
    let schema = Schema::from_pairs(&[
        ("x", DataType::Int),
        ("y", DataType::Int),
        ("units", DataType::Int),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..40i64 {
        t.push_unchecked(Row::new(vec![
            Value::Int(i % 4),
            Value::Int(i % 3),
            Value::Int(if i == 25 { 13 } else { 1 }),
        ]));
    }
    silent_panics(|| {
        for alg in [
            Algorithm::TwoToTheN,
            Algorithm::UnionGroupBys,
            Algorithm::FromCore,
            Algorithm::Array,
            Algorithm::PipeSort,
            Algorithm::Parallel { threads: 4 },
        ] {
            let err = CubeQuery::new()
                .dimensions(xy_dims())
                .aggregate(panicky_sum())
                .algorithm(alg)
                .cube(&t)
                .unwrap_err();
            match err {
                CubeError::AggPanicked { agg, message } => {
                    assert_eq!(agg, "BADSUM", "{alg:?}");
                    assert!(message.contains("cannot digest 13"), "{alg:?}: {message}");
                }
                other => panic!("{alg:?}: expected AggPanicked, got {other:?}"),
            }
        }
    });
}

// --------------------------------------------- parallel path coverage --

#[test]
fn holistic_median_survives_adversarial_thread_counts() {
    let schema = Schema::from_pairs(&[
        ("x", DataType::Int),
        ("y", DataType::Int),
        ("units", DataType::Int),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..23i64 {
        t.push_unchecked(Row::new(vec![
            Value::Int(i % 5),
            Value::Int(i % 2),
            Value::Int(i * 3 % 19),
        ]));
    }
    for holistic in ["MEDIAN", "MODE"] {
        let agg = AggSpec::new(builtin(holistic).unwrap(), "units").with_name("m");
        let reference = CubeQuery::new()
            .dimensions(xy_dims())
            .aggregate(agg.clone())
            .algorithm(Algorithm::TwoToTheN)
            .cube(&t)
            .unwrap();
        // 1 (degenerate), rows+1 (more workers than rows), 7 (prime:
        // uneven partitions).
        for threads in [1, 24, 7] {
            let got = CubeQuery::new()
                .dimensions(xy_dims())
                .aggregate(agg.clone())
                .algorithm(Algorithm::Parallel { threads })
                .cube(&t)
                .unwrap();
            assert_eq!(
                got.rows(),
                reference.rows(),
                "{holistic}, {threads} threads"
            );
        }
    }
}

#[test]
fn stats_record_clamped_thread_count() {
    let t = diagonal(3);
    let (_, stats) = CubeQuery::new()
        .dimensions(xy_dims())
        .aggregate(sum_units())
        .algorithm(Algorithm::Parallel { threads: 16 })
        .cube_with_stats(&t)
        .unwrap();
    assert_eq!(stats.threads_used, 3, "3 rows cap the worker count");

    let t = grid(10, 10);
    let (_, stats) = CubeQuery::new()
        .dimensions(xy_dims())
        .aggregate(sum_units())
        .algorithm(Algorithm::Parallel { threads: 4 })
        .cube_with_stats(&t)
        .unwrap();
    assert_eq!(stats.threads_used, 4);
}

#[test]
fn stats_record_encoded_key_fallback() {
    // 11 dimensions × cardinality 40 → 6 bits each = 66 > 64: the packed
    // u64 encoding fails and the engine falls back to Row keys, recorded
    // as `encoded_keys: false`.
    let n = 11usize;
    let names: Vec<String> = (0..n).map(|d| format!("d{d}")).collect();
    let mut cols: Vec<(&str, DataType)> =
        names.iter().map(|s| (s.as_str(), DataType::Int)).collect();
    cols.push(("units", DataType::Int));
    let schema = Schema::from_pairs(&cols);
    let mut t = Table::empty(schema);
    for i in 0..40i64 {
        let mut vals: Vec<Value> = (0..n).map(|_| Value::Int(i)).collect();
        vals.push(Value::Int(1));
        t.push_unchecked(Row::new(vals));
    }
    let dims: Vec<Dimension> = names
        .iter()
        .map(String::as_str)
        .map(Dimension::column)
        .collect();
    let (_, stats) = CubeQuery::new()
        .dimensions(dims)
        .aggregate(sum_units())
        .rollup_with_stats(&t)
        .unwrap();
    assert!(!stats.encoded_keys, "11 wide dims cannot pack into u64");

    // The 2-dimensional case packs fine.
    let (_, stats) = CubeQuery::new()
        .dimensions(xy_dims())
        .aggregate(sum_units())
        .cube_with_stats(&grid(4, 4))
        .unwrap();
    assert!(stats.encoded_keys);
}

// ------------------------------------- governance in the morsel loop --

#[test]
fn cell_budget_trips_inside_the_vectorized_morsel_loop() {
    // 64 × 64 = 4096 rows (two full morsels) over an all-numeric,
    // all-kernel query: the vectorized engine is on the path, and the
    // 256-cell budget must trip mid-scan with the partial stats showing
    // both that kernels ran and how far the scan got. The parallel
    // algorithm is the one plan without the projected-size pre-check
    // (degradation rung 2), so the trip genuinely happens inside a
    // worker's morsel loop.
    let t = grid(64, 64);
    let err = CubeQuery::new()
        .dimensions(xy_dims())
        .aggregate(sum_units())
        .aggregate(AggSpec::star(builtin("COUNT(*)").unwrap()).with_name("n"))
        .algorithm(Algorithm::Parallel { threads: 2 })
        .limits(ExecLimits::none().max_cells(256))
        .cube_with_stats(&t)
        .unwrap_err();
    match err {
        CubeError::ResourceExhausted {
            resource,
            limit,
            observed,
            stats,
        } => {
            assert_eq!(resource, Resource::Cells);
            assert_eq!(limit, 256);
            assert!(observed > limit);
            assert_eq!(stats.vectorized_kernels_used, 2, "kernels were running");
            assert!(stats.rows_scanned > 0, "partial stats missing: {stats:?}");
            assert!(
                stats.rows_scanned < t.len() as u64,
                "budget should trip mid-scan"
            );
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
}

#[test]
fn cancellation_is_observed_between_morsels() {
    let token = CancelToken::new();
    token.cancel();
    let t = grid(64, 64);
    let err = CubeQuery::new()
        .dimensions(xy_dims())
        .aggregate(sum_units())
        .limits(ExecLimits::none().cancel_token(token))
        .cube_with_stats(&t)
        .unwrap_err();
    match err {
        CubeError::Cancelled { stats } => {
            // The per-morsel checkpoint fires before any row of the first
            // morsel, but the kernel plan was already compiled.
            assert_eq!(stats.vectorized_kernels_used, 1);
            assert!(stats.morsels_processed < (t.len() as u64).div_ceil(2048));
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn cell_budget_trips_inside_the_radix_build() {
    // Force the radix path (the 14-bit grid key would not auto-engage)
    // and give it a quarter of the cells the core needs: the per-slot
    // charge inside partition aggregation must unwind with partial stats
    // that prove the radix build was running.
    let t = grid(64, 64);
    let err = CubeQuery::new()
        .dimensions(xy_dims())
        .aggregate(sum_units())
        .algorithm(Algorithm::Parallel { threads: 2 })
        .radix(true)
        .limits(ExecLimits::none().max_cells(256))
        .cube_with_stats(&t)
        .unwrap_err();
    match err {
        CubeError::ResourceExhausted {
            resource, stats, ..
        } => {
            assert_eq!(resource, Resource::Cells);
            assert_eq!(stats.vectorized_kernels_used, 1);
            assert!(stats.radix_partitions > 0, "partial stats: {stats:?}");
            assert!(stats.rows_scanned > 0, "partial stats: {stats:?}");
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
}

#[test]
fn cancellation_is_observed_inside_rle_and_radix_scans() {
    let t = grid(64, 64);
    for force in ["rle", "radix"] {
        let token = CancelToken::new();
        token.cancel();
        let mut q = CubeQuery::new()
            .dimensions(xy_dims())
            .aggregate(sum_units())
            .limits(ExecLimits::none().cancel_token(token));
        q = if force == "rle" {
            q.rle(true)
        } else {
            q.radix(true)
        };
        match q.cube_with_stats(&t).unwrap_err() {
            CubeError::Cancelled { stats } => {
                assert_eq!(stats.vectorized_kernels_used, 1, "{force}");
            }
            other => panic!("{force}: expected Cancelled, got {other:?}"),
        }
    }
}

// ------------------------------------------------- fault injection ----

#[cfg(feature = "faults")]
mod faults_suite {
    use super::*;
    use dc_aggregate::faults::{arm, disarm_all, Fault};

    /// Every named failpoint site across the engine, including the
    /// service layer's (`service::*`, exercised separately below — they
    /// sit on the SQL session/server path, not the core cube path).
    const SITES: [&str; 26] = [
        "uda::init",
        "uda::iter",
        "uda::merge",
        "uda::final",
        "core::scan",
        "naive::scan",
        "unions::scan",
        "cascade::level",
        "parallel::worker",
        "sort::scan",
        "pipesort::pipeline",
        "array::sweep",
        "vectorized::morsel",
        "vectorized::radix_partition",
        "vectorized::rle_run",
        "materialize",
        "service::admit",
        "service::queue_wait",
        "service::respond",
        "cache::lookup",
        "cache::rewrite",
        "cache::evict",
        "cache::absorb",
        "maintain::batch_fold",
        "maintain::shard_lock",
        "maintain::recompute",
    ];

    /// Disarms all faults when dropped, so a failing assertion cannot
    /// leak an armed fault into the next combination.
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            disarm_all();
        }
    }

    fn uda_sum() -> AggSpec {
        // Built through UdaBuilder so the uda::* failpoints are live.
        let f = UdaBuilder::new("GSUM", AggKind::Algebraic, || 0i64)
            .iter(|s, v| *s += v.as_i64().unwrap_or(0))
            .state(|s| vec![Value::Int(*s)])
            .merge(|s, st| *s += st[0].as_i64().unwrap_or(0))
            .finalize(|s| Value::Int(*s))
            .build()
            .unwrap();
        AggSpec::new(f, "units").with_name("g")
    }

    fn cube_under_fault(t: &Table, alg: Algorithm) -> Result<Table, CubeError> {
        CubeQuery::new()
            .dimensions(xy_dims())
            .aggregate(uda_sum())
            .algorithm(alg)
            .cube(t)
    }

    /// The tentpole property: with a fault armed at every site in turn,
    /// under every algorithm and thread count, the engine either returns
    /// the correct table (site not on this plan's path) or a typed error
    /// — never a process abort, never a hung scope.
    #[test]
    fn every_site_every_algorithm_returns_ok_or_typed_error() {
        let t = grid(6, 5);
        let algorithms = [
            Algorithm::TwoToTheN,
            Algorithm::UnionGroupBys,
            Algorithm::FromCore,
            Algorithm::Array,
            Algorithm::PipeSort,
            Algorithm::Parallel { threads: 1 },
            Algorithm::Parallel { threads: 4 },
            Algorithm::Parallel { threads: 16 },
        ];
        // Failures are collected and asserted after the panic hook is
        // restored — asserting inside the silenced region would swallow
        // the test's own failure message.
        let failures = silent_panics(|| {
            let mut failures: Vec<String> = Vec::new();
            let _cleanup = Disarm;
            disarm_all();
            let reference = cube_under_fault(&t, Algorithm::TwoToTheN).unwrap();
            for site in SITES {
                for fault in [
                    Fault::Panic(format!("injected at {site}")),
                    Fault::TripBudget,
                ] {
                    for alg in algorithms {
                        if std::env::var_os("GOVERNANCE_TRACE").is_some() {
                            eprintln!("combo: {site} {fault:?} {alg:?}");
                        }
                        arm(site, fault.clone());
                        let result = cube_under_fault(&t, alg);
                        disarm_all();
                        match result {
                            Ok(table) if table.rows() != reference.rows() => {
                                failures.push(format!(
                                    "site {site}, fault {fault:?}, {alg:?}: \
                                     unexercised fault changed the answer"
                                ));
                            }
                            Ok(_)
                            | Err(
                                CubeError::AggPanicked { .. } | CubeError::ResourceExhausted { .. },
                            ) => {}
                            Err(other) => failures.push(format!(
                                "site {site}, fault {fault:?}, {alg:?}: \
                                 unexpected error {other:?}"
                            )),
                        }
                    }
                    // The rollup-only sort algorithm.
                    arm(site, fault.clone());
                    let result = CubeQuery::new()
                        .dimensions(xy_dims())
                        .aggregate(uda_sum())
                        .algorithm(Algorithm::Sort)
                        .rollup(&t);
                    disarm_all();
                    if !matches!(
                        result,
                        Ok(_)
                            | Err(
                                CubeError::AggPanicked { .. } | CubeError::ResourceExhausted { .. }
                            )
                    ) {
                        failures.push(format!("sort at {site} with {fault:?}: {result:?}"));
                    }
                }
            }
            failures
        });
        assert!(failures.is_empty(), "{}", failures.join("\n"));
    }

    /// Slow workers delay but do not wedge: the scope joins every handle.
    #[test]
    fn slow_workers_complete() {
        let t = grid(8, 8);
        let _cleanup = Disarm;
        for site in ["parallel::worker", "cascade::level"] {
            arm(site, Fault::SleepMs(2));
            let got = cube_under_fault(&t, Algorithm::Parallel { threads: 4 }).unwrap();
            disarm_all();
            let want = cube_under_fault(&t, Algorithm::TwoToTheN).unwrap();
            assert_eq!(got.rows(), want.rows(), "{site}");
        }
    }

    /// A panic in one worker must not leak other workers' panics through
    /// the scope: every handle is joined, then the first error wins.
    #[test]
    fn worker_panics_are_contained_across_thread_counts() {
        let t = grid(16, 4);
        silent_panics(|| {
            let _cleanup = Disarm;
            for threads in [1, 4, 16] {
                arm("parallel::worker", Fault::Panic("worker down".into()));
                let err = cube_under_fault(&t, Algorithm::Parallel { threads }).unwrap_err();
                disarm_all();
                match err {
                    CubeError::AggPanicked { agg, message } => {
                        assert_eq!(agg, "parallel::worker", "{threads} threads");
                        assert!(message.contains("worker down"), "{threads}: {message}");
                    }
                    other => panic!("{threads} threads: {other:?}"),
                }
            }
        });
    }

    /// Budget-trip faults surface as ResourceExhausted from the failpoint
    /// itself — proof the error plumbing reaches every site.
    #[test]
    fn tripped_budgets_surface_from_engine_sites() {
        let t = grid(6, 5);
        let _cleanup = Disarm;
        for (site, alg) in [
            ("core::scan", Algorithm::FromCore),
            ("naive::scan", Algorithm::TwoToTheN),
            ("unions::scan", Algorithm::UnionGroupBys),
            ("materialize", Algorithm::FromCore),
        ] {
            arm(site, Fault::TripBudget);
            let result = cube_under_fault(&t, alg);
            disarm_all();
            assert!(
                matches!(result, Err(CubeError::ResourceExhausted { .. })),
                "{site} under {alg:?}: {result:?}"
            );
        }
    }

    /// `cube_under_fault` aggregates through a UDA, which never
    /// kernelizes — so the vectorized morsel site needs its own probe
    /// with a built-in aggregate. Both fault flavors must surface as
    /// typed errors carrying the partial stats, serial and parallel.
    #[test]
    fn vectorized_morsel_site_fires_with_builtin_aggregates() {
        let t = grid(16, 8);
        let run = |alg: Algorithm| {
            CubeQuery::new()
                .dimensions(xy_dims())
                .aggregate(sum_units())
                .algorithm(alg)
                .cube_with_stats(&t)
        };
        silent_panics(|| {
            let _cleanup = Disarm;
            for alg in [Algorithm::FromCore, Algorithm::Parallel { threads: 4 }] {
                arm("vectorized::morsel", Fault::TripBudget);
                let result = run(alg);
                disarm_all();
                match result {
                    Err(CubeError::ResourceExhausted { stats, .. }) => {
                        assert_eq!(
                            stats.vectorized_kernels_used, 1,
                            "{alg:?}: fault must have fired inside the kernel scan"
                        );
                    }
                    other => panic!("{alg:?} TripBudget: {other:?}"),
                }

                arm("vectorized::morsel", Fault::Panic("morsel down".into()));
                let result = run(alg);
                disarm_all();
                match result {
                    Err(CubeError::AggPanicked { message, .. }) => {
                        assert!(message.contains("morsel down"), "{alg:?}: {message}");
                    }
                    other => panic!("{alg:?} Panic: {other:?}"),
                }
            }
        });
    }

    /// The radix scatter/aggregate loops sit on their own failpoint.
    /// Grid keys are narrow, so radix must be forced — and both fault
    /// flavors must surface as typed errors carrying partial stats that
    /// prove the radix path (not the plain morsel scan) was running.
    #[test]
    fn radix_partition_site_fires_when_radix_is_forced() {
        let t = grid(16, 8);
        let run = |alg: Algorithm| {
            CubeQuery::new()
                .dimensions(xy_dims())
                .aggregate(sum_units())
                .algorithm(alg)
                .radix(true)
                .cube_with_stats(&t)
        };
        silent_panics(|| {
            let _cleanup = Disarm;
            for alg in [Algorithm::FromCore, Algorithm::Parallel { threads: 4 }] {
                // Unfaulted first: the forced radix path must agree with
                // the default plan and report its partition count.
                let (table, stats) = run(alg).unwrap();
                let (want, _) = CubeQuery::new()
                    .dimensions(xy_dims())
                    .aggregate(sum_units())
                    .algorithm(alg)
                    .cube_with_stats(&t)
                    .unwrap();
                assert_eq!(table.rows(), want.rows(), "{alg:?}: radix changed cells");
                assert!(stats.radix_partitions > 0, "{alg:?}: {stats:?}");

                arm("vectorized::radix_partition", Fault::TripBudget);
                let result = run(alg);
                disarm_all();
                match result {
                    Err(CubeError::ResourceExhausted { stats, .. }) => {
                        assert_eq!(stats.vectorized_kernels_used, 1, "{alg:?}");
                        assert!(
                            stats.radix_partitions > 0,
                            "{alg:?}: fault must have fired inside the radix build"
                        );
                    }
                    other => panic!("{alg:?} TripBudget: {other:?}"),
                }

                arm(
                    "vectorized::radix_partition",
                    Fault::Panic("radix down".into()),
                );
                let result = run(alg);
                disarm_all();
                match result {
                    Err(CubeError::AggPanicked { message, .. }) => {
                        assert!(message.contains("radix down"), "{alg:?}: {message}");
                    }
                    other => panic!("{alg:?} Panic: {other:?}"),
                }
            }
        });
    }

    /// The RLE run-fold scan sits on its own failpoint; grid keys have
    /// run length 1, so the scan must be forced. Fault flavors plus a
    /// real cell budget and cancellation all unwind with typed errors.
    #[test]
    fn rle_run_site_fires_when_rle_is_forced() {
        let t = grid(16, 8);
        let run = |alg: Algorithm| {
            CubeQuery::new()
                .dimensions(xy_dims())
                .aggregate(sum_units())
                .algorithm(alg)
                .rle(true)
                .cube_with_stats(&t)
        };
        silent_panics(|| {
            let _cleanup = Disarm;
            for alg in [Algorithm::FromCore, Algorithm::Parallel { threads: 4 }] {
                let (table, stats) = run(alg).unwrap();
                let (want, _) = CubeQuery::new()
                    .dimensions(xy_dims())
                    .aggregate(sum_units())
                    .algorithm(alg)
                    .cube_with_stats(&t)
                    .unwrap();
                assert_eq!(table.rows(), want.rows(), "{alg:?}: rle changed cells");
                assert!(stats.rle_runs > 0, "{alg:?}: {stats:?}");

                arm("vectorized::rle_run", Fault::TripBudget);
                let result = run(alg);
                disarm_all();
                match result {
                    Err(CubeError::ResourceExhausted { stats, .. }) => {
                        assert_eq!(stats.vectorized_kernels_used, 1, "{alg:?}");
                    }
                    other => panic!("{alg:?} TripBudget: {other:?}"),
                }

                arm("vectorized::rle_run", Fault::Panic("run down".into()));
                let result = run(alg);
                disarm_all();
                match result {
                    Err(CubeError::AggPanicked { message, .. }) => {
                        assert!(message.contains("run down"), "{alg:?}: {message}");
                    }
                    other => panic!("{alg:?} Panic: {other:?}"),
                }
            }
        });
    }

    // --------------------------------------------- service-layer sites --

    /// The local site list can never drift from the registry cube-lint
    /// enforces.
    #[test]
    fn local_site_list_matches_registry() {
        let mut local: Vec<&str> = SITES.to_vec();
        let mut registry: Vec<&str> = dc_aggregate::faults::SITES.to_vec();
        local.sort_unstable();
        registry.sort_unstable();
        assert_eq!(local, registry);
    }

    fn service_engine(cfg: dc_sql::ServiceConfig) -> dc_sql::Engine {
        let mut engine = dc_sql::Engine::with_service(cfg);
        engine.register_table("g", grid(6, 5)).unwrap();
        engine
    }

    /// Faults at the admission gate surface as typed errors through the
    /// session guard, and the engine keeps serving afterwards.
    #[test]
    fn service_admit_faults_yield_only_typed_errors() {
        let engine = service_engine(dc_sql::ServiceConfig::default());
        let sql = "SELECT x, y, SUM(units) AS s FROM g GROUP BY CUBE x, y";
        silent_panics(|| {
            let _cleanup = Disarm;
            arm("service::admit", Fault::TripBudget);
            let err = engine.execute(sql).unwrap_err();
            disarm_all();
            assert!(
                matches!(
                    err,
                    dc_sql::SqlError::Cube(CubeError::ResourceExhausted {
                        resource: Resource::AdmissionQueue,
                        ..
                    })
                ),
                "{err:?}"
            );

            arm("service::admit", Fault::Panic("admission down".into()));
            let err = engine.execute(sql).unwrap_err();
            disarm_all();
            assert!(
                matches!(err, dc_sql::SqlError::Cube(CubeError::AggPanicked { .. })),
                "{err:?}"
            );

            // The engine survives both faults.
            assert!(engine.execute(sql).is_ok());
        });
    }

    /// Faults inside the bounded queue wait (reached only when the query
    /// actually queues behind a held slot) also stay typed, and the
    /// queued-count bookkeeping survives the unwind: the engine still
    /// admits normally afterwards.
    #[test]
    fn service_queue_wait_faults_yield_only_typed_errors() {
        let engine = service_engine(dc_sql::ServiceConfig {
            max_concurrent: 1,
            queue_depth: 4,
            ..Default::default()
        });
        let sql = "SELECT x, SUM(units) AS s FROM g GROUP BY x";
        silent_panics(|| {
            let _cleanup = Disarm;
            for fault in [Fault::TripBudget, Fault::Panic("queue down".into())] {
                // Hold the only execution slot so the query must queue.
                let permit = engine
                    .admission()
                    .admit(&dc_sql::QueryCost::new(100, 2), None, None)
                    .unwrap();
                arm("service::queue_wait", fault);
                let err = engine.execute(sql).unwrap_err();
                disarm_all();
                drop(permit);
                assert!(
                    matches!(
                        err,
                        dc_sql::SqlError::Cube(
                            CubeError::ResourceExhausted { .. } | CubeError::AggPanicked { .. }
                        )
                    ),
                    "{err:?}"
                );
            }
            assert!(engine.execute(sql).is_ok());
        });
    }

    /// Faults at the server's respond path become typed ERR frames on one
    /// connection; the process and the connection both keep serving.
    #[test]
    fn service_respond_faults_become_typed_frames_and_server_survives() {
        use dc_sql::wire::{self, Response};
        let engine = service_engine(dc_sql::ServiceConfig::default());
        let handle =
            dc_sql::serve(&engine, "127.0.0.1:0", dc_sql::ServerConfig::default()).unwrap();
        let mut conn = std::net::TcpStream::connect(handle.local_addr()).unwrap();
        let sql = "SELECT x, SUM(units) AS s FROM g GROUP BY x";
        silent_panics(|| {
            let _cleanup = Disarm;
            arm("service::respond", Fault::TripBudget);
            let resp = wire::request(&mut conn, sql).unwrap();
            disarm_all();
            assert!(
                matches!(resp, Response::Error { ref code, .. } if code == "RESOURCE_EXHAUSTED"),
                "{resp:?}"
            );

            arm("service::respond", Fault::Panic("respond down".into()));
            let resp = wire::request(&mut conn, sql).unwrap();
            disarm_all();
            assert!(
                matches!(resp, Response::Error { ref code, .. } if code == "AGG_PANICKED"),
                "{resp:?}"
            );

            // Same connection, same process: still serving.
            let resp = wire::request(&mut conn, sql).unwrap();
            assert!(matches!(resp, Response::Table { .. }), "{resp:?}");
        });
        handle.shutdown();
    }

    // ---------------------------------------------- lattice-cache sites --

    /// A budget trip or panic inside the cache lookup loop surfaces as a
    /// typed error through the session guard, and the engine serves again
    /// once the fault is disarmed.
    #[test]
    fn cache_lookup_faults_yield_only_typed_errors() {
        let engine = service_engine(dc_sql::ServiceConfig::default());
        let sql = "SELECT x, SUM(units) AS s FROM g GROUP BY x";
        silent_panics(|| {
            let _cleanup = Disarm;
            for fault in [Fault::TripBudget, Fault::Panic("lookup down".into())] {
                arm("cache::lookup", fault);
                let err = engine.execute(sql).unwrap_err();
                disarm_all();
                assert!(
                    matches!(
                        err,
                        dc_sql::SqlError::Cube(
                            CubeError::ResourceExhausted { .. } | CubeError::AggPanicked { .. }
                        )
                    ),
                    "{err:?}"
                );
            }
            assert!(engine.execute(sql).is_ok());
        });
    }

    /// The rewrite failpoint fires only on a cache hit, so populate the
    /// view first; both fault flavours stay typed and the cached view
    /// still answers after disarm.
    #[test]
    fn cache_rewrite_faults_yield_only_typed_errors() {
        let engine = service_engine(dc_sql::ServiceConfig::default());
        let sql = "SELECT x, SUM(units) AS s FROM g GROUP BY x";
        silent_panics(|| {
            let _cleanup = Disarm;
            // Miss + populate, so the next run takes the rewrite path.
            assert!(engine.execute(sql).is_ok());
            for fault in [Fault::TripBudget, Fault::Panic("rewrite down".into())] {
                arm("cache::rewrite", fault);
                let err = engine.execute(sql).unwrap_err();
                disarm_all();
                assert!(
                    matches!(
                        err,
                        dc_sql::SqlError::Cube(
                            CubeError::ResourceExhausted { .. } | CubeError::AggPanicked { .. }
                        )
                    ),
                    "{err:?}"
                );
            }
            assert!(engine.execute(sql).is_ok());
            assert!(engine.cube_cache().counters().hits >= 1);
        });
    }

    /// Eviction runs inside best-effort population, so a budget trip
    /// there never fails the query; a panic unwinds into the session
    /// guard's typed error at worst. The engine serves either way.
    #[test]
    fn cache_evict_faults_yield_only_typed_errors() {
        let engine = service_engine(dc_sql::ServiceConfig::default());
        // Budget fits the 6-cell x-view alone: the second view must evict.
        engine.cube_cache().set_budget_cells(8);
        let sql = "SELECT x, SUM(units) AS s FROM g GROUP BY x";
        silent_panics(|| {
            let _cleanup = Disarm;
            assert!(engine.execute(sql).is_ok()); // populate the x-view
            arm("cache::evict", Fault::TripBudget);
            let r = engine.execute("SELECT y, SUM(units) AS s FROM g GROUP BY y");
            disarm_all();
            assert!(r.is_ok(), "{r:?}"); // population error swallowed
            arm("cache::evict", Fault::Panic("evict down".into()));
            let r = engine.execute("SELECT y, COUNT(units) AS c FROM g GROUP BY y");
            disarm_all();
            assert!(
                matches!(
                    r,
                    Ok(_) | Err(dc_sql::SqlError::Cube(CubeError::AggPanicked { .. }))
                ),
                "{r:?}"
            );
            assert!(engine.execute(sql).is_ok());
        });
    }

    // ---------------------------------------------- maintenance sites --

    use datacube::{DeltaBatch, ExecContext, MaterializedCube};

    fn max_units() -> AggSpec {
        AggSpec::new(builtin("MAX").unwrap(), "units").with_name("hi")
    }

    /// An insert plus a delete of `grid(4, 3)`'s unique MAX champion
    /// (3, 2, units = 5): the insert drives the fold path, the delete
    /// forces the deferred-recompute path on every super-aggregate cell
    /// that contained the champion.
    fn champion_batch(t: &Table) -> DeltaBatch {
        let champion = t
            .rows()
            .iter()
            .find(|r| r[0] == Value::Int(3) && r[1] == Value::Int(2))
            .cloned()
            .unwrap();
        let mut batch = DeltaBatch::new();
        batch
            .insert(Row::new(vec![Value::Int(9), Value::Int(9), Value::Int(5)]))
            .unwrap();
        batch.delete(champion);
        batch
    }

    /// Every maintenance failpoint — batch fold, shard lock, deferred
    /// recompute — unwinds as a typed error for both fault flavours, the
    /// cube is bit-identical to its pre-batch state (version included),
    /// and the same batch applies cleanly once the fault is disarmed.
    #[test]
    fn maintain_batch_faults_yield_typed_errors_and_pristine_cube() {
        let t = grid(4, 3);
        silent_panics(|| {
            let _cleanup = Disarm;
            for site in [
                "maintain::batch_fold",
                "maintain::shard_lock",
                "maintain::recompute",
            ] {
                for fault in [Fault::TripBudget, Fault::Panic(format!("{site} down"))] {
                    let cube =
                        MaterializedCube::cube(&t, xy_dims(), vec![sum_units(), max_units()])
                            .unwrap();
                    let before = cube.to_table().unwrap();
                    let batch = champion_batch(&t);
                    arm(site, fault.clone());
                    let err = cube.apply(&batch, &ExecContext::unlimited()).unwrap_err();
                    disarm_all();
                    match fault {
                        Fault::TripBudget => assert!(
                            matches!(err, CubeError::ResourceExhausted { .. }),
                            "{site}: {err:?}"
                        ),
                        _ => assert!(
                            matches!(err, CubeError::AggPanicked { .. }),
                            "{site}: {err:?}"
                        ),
                    }
                    // Nothing was installed: same version, same cells.
                    assert_eq!(cube.version(), 0, "{site}: version must not advance");
                    assert_eq!(
                        cube.to_table().unwrap().rows(),
                        before.rows(),
                        "{site}: cube changed under a failed batch"
                    );
                    // The failed batch is not poisoned — it applies cleanly.
                    cube.apply(&batch, &ExecContext::unlimited()).unwrap();
                    assert_eq!(cube.version(), batch.len() as u64);
                    assert!(cube.stats().cells_recomputed > 0, "{site}");
                }
            }
        });
    }

    /// A stalled batch fold still honours the caller's deadline: the
    /// checkpoint right after the stall trips `TimeMs` and the cube stays
    /// at version 0.
    #[test]
    fn maintain_batch_fold_honors_the_deadline() {
        let t = grid(4, 3);
        let cube = MaterializedCube::cube(&t, xy_dims(), vec![sum_units()]).unwrap();
        let _cleanup = Disarm;
        arm("maintain::batch_fold", Fault::SleepMs(30));
        let limits = ExecLimits::none().timeout(Duration::from_millis(5));
        let ctx = ExecContext::new(&limits, 1);
        let mut batch = DeltaBatch::new();
        for i in 0..8 {
            batch
                .insert(Row::new(vec![Value::Int(i), Value::Int(i), Value::Int(1)]))
                .unwrap();
        }
        let err = cube.apply(&batch, &ctx).unwrap_err();
        disarm_all();
        assert!(
            matches!(
                err,
                CubeError::ResourceExhausted {
                    resource: Resource::TimeMs,
                    ..
                }
            ),
            "{err:?}"
        );
        assert_eq!(cube.version(), 0);
        // The deadline-free retry goes through.
        cube.apply(&batch, &ExecContext::unlimited()).unwrap();
        assert_eq!(cube.version(), batch.len() as u64);
    }

    /// A fault inside cache delta-absorption never fails the committed
    /// write: the INSERT succeeds, the poisoned entry degrades to a cache
    /// miss, and the view re-warms on the next read.
    #[test]
    fn cache_absorb_faults_degrade_to_invalidation() {
        let engine = service_engine(dc_sql::ServiceConfig::default());
        let sql = "SELECT x, SUM(units) AS s FROM g GROUP BY x";
        // grid(6, 5): x + y < 17, so SUM(units) = Σ(x + y) = 135.
        let mut expected_total = 135i64;
        silent_panics(|| {
            let _cleanup = Disarm;
            let session = engine.session();
            for fault in [Fault::TripBudget, Fault::Panic("absorb down".into())] {
                // Warm the x-view and prove it answers from cache.
                session.execute(sql).unwrap();
                session.execute(sql).unwrap();
                assert!(session.last_admission().answered_from_cache);

                arm("cache::absorb", fault);
                let ack = session.execute("INSERT INTO g VALUES (9, 9, 1)");
                disarm_all();
                let ack = ack.unwrap(); // the write itself must commit
                assert_eq!(ack.rows()[0][1].as_i64(), Some(1));
                expected_total += 1;

                // The entry was invalidated, not left stale: the next read
                // misses, yet sees the post-insert data...
                let table = session.execute(sql).unwrap();
                assert!(!session.last_admission().answered_from_cache);
                let total: i64 = table.rows().iter().filter_map(|r| r[1].as_i64()).sum();
                assert_eq!(total, expected_total);
                // ...and that miss re-warmed the view.
                session.execute(sql).unwrap();
                assert!(session.last_admission().answered_from_cache);
            }
        });
    }
}
