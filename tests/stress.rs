//! Concurrency stress: the morsel-claiming atomic cursor, partition
//! coalescing, and cancellation under parallel execution.
//!
//! Loom-free by design — these tests hammer the real engine through its
//! public API and assert *exact* result counts, so a lost or double-claimed
//! morsel shows up as a wrong aggregate, not a flaky hang.

use datacube::maintain::MaterializedCube;
use datacube::{AggSpec, Algorithm, CancelToken, CubeError, CubeQuery, Dimension, ExecLimits};
use dc_aggregate::{builtin, Accumulator, AggKind, AggregateFunction, Retract};
use dc_relation::{row, DataType, Schema, Table, Value};
use std::sync::Arc;

const ROWS: usize = 40_000;
const MODELS: i64 = 7;
const YEARS: i64 = 11;

/// A deterministic table large enough to span many morsels (MORSEL_ROWS =
/// 1024) with a closed-form SUM for every cube cell.
fn big_table() -> Table {
    let schema = Schema::from_pairs(&[
        ("model", DataType::Int),
        ("year", DataType::Int),
        ("units", DataType::Int),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..ROWS as i64 {
        t.push(row![i % MODELS, i % YEARS, 1i64]).unwrap();
    }
    t
}

fn sum_query(threads: usize, vectorized: bool) -> CubeQuery {
    CubeQuery::new()
        .dimensions(vec![Dimension::column("model"), Dimension::column("year")])
        .aggregate(AggSpec::new(builtin("SUM").unwrap(), "units").with_name("s"))
        .algorithm(Algorithm::Parallel { threads })
        .vectorized(vectorized)
}

fn grand_total(cube: &Table) -> i64 {
    let s = cube.schema().index_of("s").unwrap();
    cube.rows()
        .iter()
        .find(|r| r[0].is_all() && r[1].is_all())
        .and_then(|r| r[s].as_i64())
        .unwrap()
}

/// Workers race on one atomic cursor; every repetition must claim each
/// morsel exactly once, or the grand total (one unit per row) drifts.
#[test]
fn parallel_morsel_claims_are_exact_under_contention() {
    let t = big_table();
    let serial = sum_query(1, false).cube(&t).unwrap();
    for round in 0..8 {
        for &threads in &[2usize, 4, 8] {
            let cube = sum_query(threads, round % 2 == 0).cube(&t).unwrap();
            assert_eq!(
                grand_total(&cube),
                ROWS as i64,
                "lost/duplicated morsel at threads={threads} round={round}"
            );
            assert_eq!(
                cube.rows(),
                serial.rows(),
                "parallel result diverged at threads={threads} round={round}"
            );
        }
    }
}

/// Cancellation racing a parallel scan: the query either completes with
/// the exact answer or unwinds with `Cancelled` — never a torn result.
#[test]
fn cancellation_race_is_all_or_nothing() {
    let t = big_table();
    for delay_us in [0u64, 20, 50, 100, 400, 2_000] {
        for vectorized in [false, true] {
            let token = CancelToken::new();
            let canceller = {
                let token = token.clone();
                std::thread::spawn(move || {
                    std::thread::sleep(std::time::Duration::from_micros(delay_us));
                    token.cancel();
                })
            };
            let result = sum_query(4, vectorized)
                .limits(ExecLimits::none().cancel_token(token))
                .cube(&t);
            canceller.join().unwrap();
            match result {
                Ok(cube) => assert_eq!(
                    grand_total(&cube),
                    ROWS as i64,
                    "completed query returned a torn result (delay={delay_us}us)"
                ),
                Err(CubeError::Cancelled { .. }) => {}
                Err(other) => panic!("unexpected error under cancellation: {other}"),
            }
        }
    }
}

/// Many queries cancel concurrently on distinct tokens while others run
/// to completion — no cross-talk between sessions.
#[test]
fn concurrent_cancel_and_complete_sessions_do_not_interfere() {
    let t = Arc::new(big_table());
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                let token = CancelToken::new();
                if i % 2 == 0 {
                    // This session cancels itself almost immediately.
                    let tok = token.clone();
                    std::thread::spawn(move || tok.cancel());
                }
                let result = sum_query(2, i % 3 == 0)
                    .limits(ExecLimits::none().cancel_token(token))
                    .cube(&t);
                match result {
                    Ok(cube) => assert_eq!(grand_total(&cube), ROWS as i64),
                    Err(CubeError::Cancelled { .. }) => {}
                    Err(other) => panic!("unexpected error: {other}"),
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

/// A user-defined aggregate that panics in a chosen lifecycle call.
struct Bomb {
    in_iter: bool,
}

struct BombAcc {
    in_iter: bool,
}

impl Accumulator for BombAcc {
    fn iter(&mut self, _v: &Value) {
        if self.in_iter {
            panic!("bomb in Iter");
        }
    }
    fn state(&self) -> Vec<Value> {
        Vec::new()
    }
    fn merge(&mut self, _state: &[Value]) {}
    fn final_value(&self) -> Value {
        if !self.in_iter {
            panic!("bomb in Final");
        }
        Value::Null
    }
    fn retract(&mut self, _v: &Value) -> Retract {
        Retract::Applied
    }
}

impl AggregateFunction for Bomb {
    fn name(&self) -> &str {
        "BOMB"
    }
    fn kind(&self) -> AggKind {
        AggKind::Distributive
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(BombAcc {
            in_iter: self.in_iter,
        })
    }
    fn output_type(&self, _input: DataType) -> Option<DataType> {
        Some(DataType::Int)
    }
}

fn small_table() -> Table {
    let schema = Schema::from_pairs(&[("k", DataType::Str), ("v", DataType::Int)]);
    Table::new(schema, vec![row!["a", 1], row!["a", 2], row!["b", 3]]).unwrap()
}

/// Maintenance triggers run UDA code under the panic guard: a bomb in
/// Iter fails construction with `AggPanicked` instead of tearing down.
#[test]
fn materialized_cube_contains_uda_panics() {
    let t = small_table();
    let spec = AggSpec::new(Arc::new(Bomb { in_iter: true }), "v").with_name("b");
    let err = match MaterializedCube::cube(&t, vec![Dimension::column("k")], vec![spec]) {
        Err(e) => e,
        Ok(_) => panic!("bomb in Iter must fail construction"),
    };
    assert!(matches!(err, CubeError::AggPanicked { .. }), "got: {err}");

    // A bomb in Final builds fine but fails the snapshot, not the process.
    let spec = AggSpec::new(Arc::new(Bomb { in_iter: false }), "v").with_name("b");
    let mat = MaterializedCube::cube(&t, vec![Dimension::column("k")], vec![spec]).unwrap();
    let err = mat.to_table().unwrap_err();
    assert!(matches!(err, CubeError::AggPanicked { .. }), "got: {err}");
    // The contained read path degrades to None rather than panicking.
    assert_eq!(mat.cell(&[Value::All]), None);
    // The cube object itself is still usable for maintenance.
    mat.insert(row!["c", 4]).unwrap();
}

// ------------------------------------------------------ shared service --

/// 128 concurrent sessions storm one shared engine under a tight
/// admission budget, mixing cheap GROUP BYs, 2^N cubes, mid-flight
/// cancellations, and a panicking UDA. Every request must end in a
/// result or a typed error, the cheap lane must never starve behind the
/// cubes, and the engine must still serve exact answers afterwards.
#[test]
fn service_storm_128_sessions_survive_overload() {
    use dc_sql::{Engine, ServiceConfig, SqlError};
    use std::sync::atomic::{AtomicU64, Ordering};

    const SESSIONS: usize = 128;

    let mut engine = Engine::with_service(ServiceConfig {
        max_concurrent: 8,
        cheap_reserved: 2,
        // One-set GROUP BYs (40_001 estimated cells) ride the cheap lane.
        cheap_cells: 100_000,
        // A two-dimension CUBE estimates 4 * 40_001 cells, so the budget
        // admits one at a time; a three-dimension CUBE (320_008) is
        // oversized outright and must shed immediately.
        global_cells: 200_000,
        min_grant_cells: 1,
        // Deep enough that queueing, not shedding, is the normal fate.
        queue_depth: SESSIONS,
    });
    engine.register_table("t", big_table()).unwrap();
    engine
        .register_aggregate(Arc::new(Bomb { in_iter: true }))
        .unwrap();
    let engine = Arc::new(engine);

    let cheap_ok = Arc::new(AtomicU64::new(0));
    let heavy_ok = Arc::new(AtomicU64::new(0));
    let heavy_shed = Arc::new(AtomicU64::new(0));
    let cancelled = Arc::new(AtomicU64::new(0));
    let panicked = Arc::new(AtomicU64::new(0));
    let oversized_shed = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let engine = Arc::clone(&engine);
            let cheap_ok = Arc::clone(&cheap_ok);
            let heavy_ok = Arc::clone(&heavy_ok);
            let heavy_shed = Arc::clone(&heavy_shed);
            let cancelled = Arc::clone(&cancelled);
            let panicked = Arc::clone(&panicked);
            let oversized_shed = Arc::clone(&oversized_shed);
            std::thread::spawn(move || {
                let session = engine.session();
                match i % 4 {
                    // The cheap lane is reserved and budget-exempt: these
                    // must all succeed no matter how many cubes are queued.
                    0 => {
                        let cube = session
                            .execute("SELECT model, SUM(units) AS s FROM t GROUP BY model")
                            .expect("cheap GROUP BY must never be starved or shed");
                        assert_eq!(cube.rows().len(), MODELS as usize);
                        cheap_ok.fetch_add(1, Ordering::Relaxed);
                    }
                    // Full cubes compete for the cell budget: each either
                    // runs to the exact answer or sheds with a typed error.
                    1 => {
                        let sql =
                            "SELECT model, year, SUM(units) AS s FROM t GROUP BY CUBE model, year";
                        match session.execute(sql) {
                            Ok(cube) => {
                                assert_eq!(grand_total(&cube), ROWS as i64);
                                heavy_ok.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(SqlError::Cube(CubeError::ResourceExhausted { .. })) => {
                                heavy_shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(other) => panic!("heavy cube: unexpected error {other}"),
                        }
                    }
                    // Cancellation racing admission and execution: all
                    // three outcomes are legal, torn results are not.
                    2 => {
                        let token = CancelToken::new();
                        session.set_cancel_token(Some(token.clone()));
                        let delay_us = (i as u64 * 37) % 2_000;
                        let canceller = std::thread::spawn(move || {
                            std::thread::sleep(std::time::Duration::from_micros(delay_us));
                            token.cancel();
                        });
                        let sql =
                            "SELECT model, year, SUM(units) AS s FROM t GROUP BY CUBE model, year";
                        let result = session.execute(sql);
                        canceller.join().unwrap();
                        match result {
                            Ok(cube) => {
                                assert_eq!(grand_total(&cube), ROWS as i64);
                                heavy_ok.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(SqlError::Cube(CubeError::Cancelled { .. })) => {
                                cancelled.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(SqlError::Cube(CubeError::ResourceExhausted { .. })) => {
                                heavy_shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(other) => panic!("cancel race: unexpected error {other}"),
                        }
                    }
                    // Half bombs (the UDA panics in Iter and must be
                    // contained to this session), half oversized cubes
                    // (estimated over the whole budget: shed immediately).
                    _ => {
                        if i % 8 == 3 {
                            let err = session
                                .execute("SELECT model, BOMB(units) AS b FROM t GROUP BY model")
                                .expect_err("bomb UDA must fail, not succeed");
                            assert!(
                                matches!(err, SqlError::Cube(CubeError::AggPanicked { .. })),
                                "bomb: {err:?}"
                            );
                            panicked.fetch_add(1, Ordering::Relaxed);
                        } else {
                            let err = session
                                .execute(
                                    "SELECT model, year, units, SUM(units) AS s FROM t \
                                     GROUP BY CUBE model, year, units",
                                )
                                .expect_err("oversized cube must shed, not run");
                            assert!(
                                matches!(err, SqlError::Cube(CubeError::ResourceExhausted { .. })),
                                "oversized: {err:?}"
                            );
                            oversized_shed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Every request resolved, and each class resolved the way it must.
    assert_eq!(cheap_ok.load(Ordering::Relaxed), 32);
    assert_eq!(panicked.load(Ordering::Relaxed), 16);
    assert_eq!(oversized_shed.load(Ordering::Relaxed), 16);
    assert_eq!(
        heavy_ok.load(Ordering::Relaxed)
            + heavy_shed.load(Ordering::Relaxed)
            + cancelled.load(Ordering::Relaxed),
        64
    );
    let counters = engine.admission().counters();
    assert!(counters.shed >= 16, "oversized cubes must register as shed");

    // The storm leaves no residue: a fresh session still gets the exact
    // cube, and the admission slots have all been returned.
    let cube = engine
        .session()
        .execute("SELECT model, year, SUM(units) AS s FROM t GROUP BY CUBE model, year")
        .expect("engine must serve correctly after the storm");
    assert_eq!(grand_total(&cube), ROWS as i64);
    assert_eq!(
        cube.rows().len(),
        ((MODELS + 1) * (YEARS + 1)) as usize,
        "cube cardinality after the storm"
    );
}

/// Concurrent writers republish new table versions while readers may be
/// served from the lattice cache: every read must reflect exactly one
/// *published* version (`units` are uniform per version, so a stale or
/// torn answer produces an impossible total), and once the writer
/// finishes, reads must converge on the final version — a cached cell
/// from any earlier version would be stale.
#[test]
fn cached_reads_race_republishes_without_staleness() {
    use dc_sql::{Engine, ServiceConfig};

    const N: i64 = 1_000;
    const VERSIONS: i64 = 24;
    const READERS: usize = 7; // + 1 writer = 8 sessions

    // Version v: N rows, every `units` equal to v.
    let versioned = |v: i64| -> Table {
        let schema = Schema::from_pairs(&[("model", DataType::Int), ("units", DataType::Int)]);
        let mut t = Table::empty(schema);
        for i in 0..N {
            t.push(row![i % MODELS, v]).unwrap();
        }
        t
    };

    let mut engine = Engine::with_service(ServiceConfig::default());
    engine.register_table("w", versioned(1)).unwrap();
    let engine = Arc::new(engine);
    let sql = "SELECT model, SUM(units) AS s FROM w GROUP BY model";
    let total_of = |t: &Table| -> i64 { t.rows().iter().filter_map(|r| r[1].as_i64()).sum() };

    let writer = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            for v in 2..=VERSIONS {
                engine.update_table("w", versioned(v)).unwrap();
            }
        })
    };
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let session = engine.session();
                for _ in 0..40 {
                    let t = session.execute(sql).unwrap();
                    let total = total_of(&t);
                    // total = N * v for exactly one published version v.
                    assert_eq!(total % N, 0, "torn or mixed-version read: {total}");
                    let v = total / N;
                    assert!(
                        (1..=VERSIONS).contains(&v),
                        "read reflects no published version: {v}"
                    );
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }

    // Quiesced: the cache must now serve the final version, nothing older.
    let session = engine.session();
    for _ in 0..2 {
        let t = session.execute(sql).unwrap();
        assert_eq!(total_of(&t), N * VERSIONS, "stale cell after maintenance");
    }
    assert!(
        session.last_admission().answered_from_cache,
        "repeat read of the settled table should be a cache hit"
    );
}

/// Four SQL `INSERT INTO` writer sessions stream batches into one table
/// while eight readers answer through the lattice cache. Every batch sums
/// to exactly `BATCH_SUM`, so a read that observed a torn batch — or a
/// cached cell mixing two published versions — produces a total that is
/// not `T0 + k * BATCH_SUM` for any whole k. Afterwards, a cancelled
/// mid-batch INSERT must leave the table at the pre-batch version with
/// the cache still warm.
#[test]
fn sql_ingest_race_exposes_only_whole_batches() {
    use dc_sql::{Engine, ServiceConfig, SqlError};

    const WRITERS: usize = 4;
    const BATCHES: usize = 10; // per writer
    const BATCH_SUM: i64 = 100;
    const READERS: usize = 8;

    let schema = Schema::from_pairs(&[("model", DataType::Int), ("units", DataType::Int)]);
    let mut t = Table::empty(schema);
    let mut t0 = 0i64;
    for i in 0..64i64 {
        t.push(row![i % MODELS, 3i64]).unwrap();
        t0 += 3;
    }
    let mut engine = Engine::with_service(ServiceConfig::default());
    engine.register_table("ingest", t).unwrap();
    let engine = Arc::new(engine);
    let sql = "SELECT model, SUM(units) AS s FROM ingest GROUP BY model";
    let total_of = |t: &Table| -> i64 { t.rows().iter().filter_map(|r| r[1].as_i64()).sum() };

    // Seven rows of 10 plus one of 30: each statement is one whole batch
    // worth exactly BATCH_SUM.
    let batch_sql = {
        let mut vals: Vec<String> = (0..7).map(|i| format!("({}, 10)", i % MODELS)).collect();
        vals.push("(6, 30)".to_string());
        format!("INSERT INTO ingest VALUES {}", vals.join(", "))
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let batch_sql = batch_sql.clone();
            std::thread::spawn(move || {
                let session = engine.session();
                for _ in 0..BATCHES {
                    let ack = session.execute(&batch_sql).unwrap();
                    assert_eq!(ack.rows()[0][1].as_i64(), Some(8), "batch row count ack");
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let session = engine.session();
                for _ in 0..40 {
                    let total = total_of(&session.execute(sql).unwrap());
                    let delta = total - t0;
                    assert!(
                        delta >= 0 && delta % BATCH_SUM == 0,
                        "torn batch visible: total {total} (t0 {t0})"
                    );
                    assert!(
                        delta / BATCH_SUM <= (WRITERS * BATCHES) as i64,
                        "read reflects more batches than were written: {total}"
                    );
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    for r in readers {
        r.join().unwrap();
    }

    // Quiesced: every batch landed exactly once.
    let session = engine.session();
    let before = total_of(&session.execute(sql).unwrap());
    assert_eq!(
        before,
        t0 + (WRITERS * BATCHES) as i64 * BATCH_SUM,
        "lost or duplicated batch"
    );
    let _ = session.execute(sql).unwrap();
    assert!(
        session.last_admission().answered_from_cache,
        "settled table should be served from the cache"
    );

    // A cancelled mid-batch INSERT is all-or-nothing: pre-batch totals,
    // pre-batch version (the cached view stays valid — a version bump
    // would have re-keyed or dropped it).
    let token = CancelToken::new();
    token.cancel();
    session.set_cancel_token(Some(token));
    let err = session
        .execute(&batch_sql)
        .expect_err("cancelled INSERT must not commit");
    assert!(
        matches!(err, SqlError::Cube(CubeError::Cancelled { .. })),
        "cancelled INSERT: {err:?}"
    );
    session.set_cancel_token(None);
    let after = total_of(&session.execute(sql).unwrap());
    assert_eq!(
        after, before,
        "cancelled batch must leave the pre-batch table"
    );
    assert!(
        session.last_admission().answered_from_cache,
        "cancelled batch must not bump the version or cool the cache"
    );
}

/// Loom-free lock-order torture: two writers submit delta batches whose
/// rows are enumerated in *opposite* key orders, so the raw input order
/// nominates overlapping shard sets adversarially on every round, while
/// a reader pulls point cells and whole snapshots through the gate. The
/// engine's fixed-order (ascending-shard-id) locking must make this
/// deadlock-free: everything has to finish inside the watchdog budget,
/// and the final SUM must be exact — a lost batch or a torn fold shows
/// up as a wrong cell, not a flaky hang.
#[test]
fn adversarial_shard_order_writers_never_deadlock() {
    use datacube::DeltaBatch;
    use datacube::ExecContext;
    use std::sync::mpsc;
    use std::time::Duration;

    const KEYS: i64 = 64; // spans the 16-way shard map several times over
    const ROUNDS: usize = 40;

    let schema = Schema::from_pairs(&[("k", DataType::Int), ("units", DataType::Int)]);
    let mut t = Table::empty(schema);
    for k in 0..KEYS {
        t.push(row![k, 0i64]).unwrap();
    }
    let spec = AggSpec::new(builtin("SUM").unwrap(), "units").with_name("s");
    let mat =
        Arc::new(MaterializedCube::cube(&t, vec![Dimension::column("k")], vec![spec]).unwrap());

    let (done_tx, done_rx) = mpsc::channel();
    let mut handles = Vec::new();
    for dir in 0..2u8 {
        let mat = Arc::clone(&mat);
        let done = done_tx.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..ROUNDS {
                let mut batch = DeltaBatch::new();
                for i in 0..KEYS {
                    let k = if dir == 0 { i } else { KEYS - 1 - i };
                    batch.insert(row![k, 1i64]).unwrap();
                }
                mat.apply(&batch, &ExecContext::unlimited()).unwrap();
            }
            done.send(()).unwrap();
        }));
    }
    {
        let mat = Arc::clone(&mat);
        let done = done_tx.clone();
        handles.push(std::thread::spawn(move || {
            for k in (0..KEYS).cycle().take(KEYS as usize * 8) {
                let _ = mat.cell(&[Value::Int(k)]);
                if k % 16 == 0 {
                    let _ = mat.to_table();
                }
            }
            done.send(()).unwrap();
        }));
    }
    drop(done_tx);

    // Watchdog: a lock-order deadlock presents as a hang, so every
    // worker must report inside the deadline budget.
    for _ in 0..3 {
        done_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("deadlock suspected: a worker failed to finish within 30s");
    }
    for h in handles {
        h.join().unwrap();
    }

    let per_key = 2 * ROUNDS as i64; // two writers, one unit per round
    for k in 0..KEYS {
        let cell = mat.cell(&[Value::Int(k)]).expect("cell present");
        assert_eq!(cell[0], Value::Int(per_key), "cell k={k}");
    }
    let all = mat.cell(&[Value::All]).expect("ALL cell present");
    assert_eq!(all[0], Value::Int(per_key * KEYS));
}
