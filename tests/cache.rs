//! Lattice-cache behaviour through the public SQL engine: ancestor
//! rewriting must be invisible except for speed — same rows, same order,
//! never a stale cell after maintenance, and holistic aggregates must
//! fall through to the base scan.

use datacube::maintain::MaterializedCube;
use datacube::{AggSpec, Dimension};
use dc_aggregate::builtin;
use dc_relation::{row, DataType, Row, Schema, Table, Value};
use dc_sql::{Engine, ServiceConfig};

/// The paper's Table 4 shape: model × year × color with unit counts.
fn sales() -> Table {
    let schema = Schema::from_pairs(&[
        ("model", DataType::Str),
        ("year", DataType::Int),
        ("color", DataType::Str),
        ("units", DataType::Int),
    ]);
    let rows = vec![
        row!["Chevy", 1994, "black", 50],
        row!["Chevy", 1994, "white", 40],
        row!["Chevy", 1995, "black", 115],
        row!["Chevy", 1995, "white", 85],
        row!["Ford", 1994, "black", 50],
        row!["Ford", 1994, "white", 10],
        row!["Ford", 1995, "black", 85],
        row!["Ford", 1995, "white", 75],
    ];
    Table::new(schema, rows).unwrap()
}

fn engine_with_sales() -> Engine {
    let mut engine = Engine::with_service(ServiceConfig::default());
    engine.register_table("sales", sales()).unwrap();
    engine
}

#[test]
fn repeated_cube_is_served_from_cache_with_identical_rows() {
    let engine = engine_with_sales();
    let sql = "SELECT model, year, SUM(units) AS s FROM sales GROUP BY CUBE model, year";
    let first = engine.execute(sql).unwrap();
    assert!(!engine.session().last_admission().answered_from_cache);
    let second = engine.execute(sql).unwrap();
    assert_eq!(first.rows(), second.rows(), "cache hit changed the answer");
    let counters = engine.cube_cache().counters();
    assert_eq!(counters.hits, 1, "{counters:?}");
    assert_eq!(counters.entries, 1, "{counters:?}");
}

#[test]
fn exec_stats_report_the_serving_ancestor() {
    let engine = engine_with_sales();
    let session = engine.session();
    let sql = "SELECT model, year, SUM(units) AS s FROM sales GROUP BY CUBE model, year";
    session.execute(sql).unwrap();
    let stats = session.last_admission();
    assert!(!stats.answered_from_cache);
    assert_eq!(stats.cache_ancestor_bits, 0);
    session.execute(sql).unwrap();
    let stats = session.last_admission();
    assert!(stats.answered_from_cache);
    // The serving ancestor is the 2-dimension core cuboid: bits 0b11.
    assert_eq!(stats.cache_ancestor_bits, 0b11);
}

/// A coarser query (GROUP BY model) must be answered from the finer
/// materialized ancestor (model × year core) and agree with a cache-off
/// session bit for bit.
#[test]
fn subset_query_is_answered_from_the_finer_ancestor() {
    let engine = engine_with_sales();
    let warm = "SELECT model, year, SUM(units) AS s FROM sales GROUP BY model, year";
    engine.execute(warm).unwrap();

    let coarse = "SELECT model, SUM(units) AS s FROM sales GROUP BY model";
    let session = engine.session();
    let cached = session.execute(coarse).unwrap();
    assert!(session.last_admission().answered_from_cache);

    let reference = engine.session();
    reference.execute("SET CUBE_CACHE OFF").unwrap();
    let scanned = reference.execute(coarse).unwrap();
    assert!(!reference.last_admission().answered_from_cache);
    assert_eq!(cached.rows(), scanned.rows());
}

/// AVG is algebraic: the cache must re-derive it from SUM/COUNT partial
/// state, not average the ancestor's averages.
#[test]
fn avg_is_rederived_from_partial_state_not_averaged() {
    let engine = engine_with_sales();
    let warm = "SELECT model, year, AVG(units) AS a FROM sales GROUP BY model, year";
    engine.execute(warm).unwrap();
    let session = engine.session();
    let table = session
        .execute("SELECT model, AVG(units) AS a FROM sales GROUP BY model")
        .unwrap();
    assert!(session.last_admission().answered_from_cache);
    // Chevy: (50+40+115+85)/4 = 72.5 — the average of the two per-year
    // averages would be (45 + 100)/2 = 72.5 here, so also pin Ford:
    // (50+10+85+75)/4 = 55, vs averaged-averages (30 + 80)/2 = 55.
    // Use a skewed row count instead: republish with an extra Ford row.
    let chevy = table
        .rows()
        .iter()
        .find(|r| r[0] == Value::str("Chevy"))
        .unwrap();
    assert_eq!(chevy[1], Value::Float(72.5));

    // Skew the group sizes so avg-of-avgs diverges from the true mean.
    let mut skewed = sales();
    skewed.push(row!["Ford", 1996, "red", 1000]).unwrap();
    engine.update_table("sales", skewed).unwrap();
    engine
        .execute("SELECT model, year, AVG(units) AS a FROM sales GROUP BY model, year")
        .unwrap();
    let table = session
        .execute("SELECT model, AVG(units) AS a FROM sales GROUP BY model")
        .unwrap();
    assert!(session.last_admission().answered_from_cache);
    let ford = table
        .rows()
        .iter()
        .find(|r| r[0] == Value::str("Ford"))
        .unwrap();
    // True mean: (50+10+85+75+1000)/5 = 244. Avg-of-avgs would be
    // (30 + 80 + 1000)/3 = 370.
    assert_eq!(ford[1], Value::Float(244.0));
}

/// Rebuild the table a `MaterializedCube` maintains into a fresh
/// relation, for republishing through `Engine::update_table`.
fn republish(mat: &MaterializedCube, schema: &Schema) -> Table {
    let rows: Vec<Row> = mat.base_rows();
    Table::new(schema.clone(), rows).unwrap()
}

#[test]
fn insert_through_materialized_cube_never_serves_stale_cells() {
    let base = sales();
    let schema = base.schema().clone();
    let mat = MaterializedCube::cube(
        &base,
        vec![Dimension::column("model"), Dimension::column("year")],
        vec![AggSpec::new(builtin("SUM").unwrap(), "units").with_name("s")],
    )
    .unwrap();

    let mut engine = Engine::with_service(ServiceConfig::default());
    engine
        .register_table("sales", republish(&mat, &schema))
        .unwrap();
    let session = engine.session();
    let total = |t: &Table| t.rows()[0][0].as_i64().unwrap();

    // Grand total: a global aggregate is the apex of the lattice, served
    // from the finest cuboid's merged state.
    let sql = "SELECT SUM(units) AS total FROM sales";
    let before = session.execute(sql).unwrap();
    assert_eq!(total(&before), 510);
    let hit = session.execute(sql).unwrap();
    assert!(session.last_admission().answered_from_cache);
    assert_eq!(total(&hit), 510);

    // Maintenance: insert through the materialized cube, republish.
    mat.insert(row!["Chevy", 1996, "red", 90]).unwrap();
    engine
        .update_table("sales", republish(&mat, &schema))
        .unwrap();

    // The next read must see the new row — never the cached 510.
    let after = session.execute(sql).unwrap();
    assert!(!session.last_admission().answered_from_cache);
    assert_eq!(total(&after), 600);
    // And the repopulated view serves the *new* version.
    let again = session.execute(sql).unwrap();
    assert!(session.last_admission().answered_from_cache);
    assert_eq!(total(&again), 600);
}

#[test]
fn delete_through_materialized_cube_never_serves_stale_cells() {
    let base = sales();
    let schema = base.schema().clone();
    let mat = MaterializedCube::cube(
        &base,
        vec![Dimension::column("model"), Dimension::column("year")],
        vec![AggSpec::new(builtin("SUM").unwrap(), "units").with_name("s")],
    )
    .unwrap();

    let mut engine = Engine::with_service(ServiceConfig::default());
    engine
        .register_table("sales", republish(&mat, &schema))
        .unwrap();
    let session = engine.session();
    let sql = "SELECT model, SUM(units) AS s FROM sales GROUP BY model";
    let chevy_total = |t: &Table| {
        t.rows()
            .iter()
            .find(|r| r[0] == Value::str("Chevy"))
            .and_then(|r| r[1].as_i64())
            .unwrap()
    };

    session.execute(sql).unwrap();
    let hit = session.execute(sql).unwrap();
    assert!(session.last_admission().answered_from_cache);
    assert_eq!(chevy_total(&hit), 290);

    mat.delete(&row!["Chevy", 1994, "black", 50]).unwrap();
    engine
        .update_table("sales", republish(&mat, &schema))
        .unwrap();

    let after = session.execute(sql).unwrap();
    assert!(!session.last_admission().answered_from_cache);
    assert_eq!(chevy_total(&after), 240);

    // Old-version entries are collected, not resurrected: the cache holds
    // only current-version views after the republished table is queried.
    session.execute(sql).unwrap();
    assert!(session.last_admission().answered_from_cache);
    assert_eq!(chevy_total(&session.execute(sql).unwrap()), 240);
}

/// Holistic and DISTINCT aggregates are not mergeable from subcube state
/// (the paper's taxonomy): they must fall through to the base scan and
/// leave no cache entry behind.
#[test]
fn holistic_aggregates_fall_through_to_base_scan() {
    let engine = engine_with_sales();
    let session = engine.session();
    let sql = "SELECT model, COUNT(DISTINCT color) AS c FROM sales GROUP BY model";
    let first = session.execute(sql).unwrap();
    let second = session.execute(sql).unwrap();
    assert!(!session.last_admission().answered_from_cache);
    assert_eq!(first.rows(), second.rows());
    let counters = engine.cube_cache().counters();
    assert_eq!(counters.entries, 0, "{counters:?}");
    assert_eq!(counters.hits, 0, "{counters:?}");
}

#[test]
fn set_cube_cache_off_is_per_session() {
    let engine = engine_with_sales();
    let off = engine.session();
    off.execute("SET CUBE_CACHE OFF").unwrap();
    let on = engine.session();
    let sql = "SELECT model, SUM(units) AS s FROM sales GROUP BY ROLLUP model, year";

    // The opted-out session never populates or hits.
    off.execute(sql).unwrap();
    off.execute(sql).unwrap();
    assert!(!off.last_admission().answered_from_cache);
    assert_eq!(engine.cube_cache().counters().entries, 0);

    // The default session still benefits.
    on.execute(sql).unwrap();
    on.execute(sql).unwrap();
    assert!(on.last_admission().answered_from_cache);

    // Opting back in reuses the shared view.
    off.execute("SET CUBE_CACHE ON").unwrap();
    off.execute(sql).unwrap();
    assert!(off.last_admission().answered_from_cache);
}

/// WHERE clauses, joins, and computed dimensions disqualify a statement
/// from cache serving — correctness over cleverness.
#[test]
fn filtered_queries_bypass_the_cache() {
    let engine = engine_with_sales();
    let session = engine.session();
    let warm = "SELECT model, year, SUM(units) AS s FROM sales GROUP BY model, year";
    session.execute(warm).unwrap();

    let filtered = "SELECT model, SUM(units) AS s FROM sales WHERE year = 1994 GROUP BY model";
    let t = session.execute(filtered).unwrap();
    assert!(!session.last_admission().answered_from_cache);
    let chevy = t
        .rows()
        .iter()
        .find(|r| r[0] == Value::str("Chevy"))
        .unwrap();
    assert_eq!(chevy[1], Value::Int(90));
}
