//! Cross-path differential pins: cases the oracle fuzzer surfaced or that
//! the paper singles out, fixed here as fast deterministic tests so they
//! can never regress silently.
//!
//! The full fuzzer lives in `crates/oracle` (see README / DESIGN.md);
//! these tests replay its minimal witnesses and the §3.4 NULL-vs-ALL
//! discriminator through *every* execution path — each algorithm crossed
//! with the encoded-key and vectorized toggles and several thread counts.

use std::sync::Arc;

use datacube::{AggSpec, Algorithm, CompoundSpec, CubeQuery, Dimension};
use dc_aggregate::{builtin, AggKind, AggregateFunction, UdaBuilder};
use dc_relation::{DataType, Date, Row, Schema, Table, Value};

/// Every (algorithm, encoded, vectorized) combination that accepts an
/// arbitrary lattice. Sort/Array/PipeSort are shape-restricted and are
/// exercised separately where their shapes apply.
fn hash_combos() -> Vec<(Algorithm, bool, bool)> {
    let algorithms = [
        Algorithm::Auto,
        Algorithm::TwoToTheN,
        Algorithm::UnionGroupBys,
        Algorithm::FromCore,
        Algorithm::Parallel { threads: 1 },
        Algorithm::Parallel { threads: 4 },
        Algorithm::Parallel { threads: 16 },
    ];
    let mut combos = Vec::new();
    for algorithm in algorithms {
        for encoded in [false, true] {
            for vectorized in [false, true] {
                combos.push((algorithm, encoded, vectorized));
            }
        }
    }
    combos
}

fn query(algorithm: Algorithm, encoded: bool, vectorized: bool) -> CubeQuery {
    CubeQuery::new()
        .algorithm(algorithm)
        .encoded_keys(encoded)
        .vectorized(vectorized)
}

/// A holistic UDA built without `state()`/`merge()` — its `Iter_super` is
/// a no-op, so any merge-based plan that trusts it drops data. This is the
/// oracle's minimal reproduction shape (fuzzer seed 0xda7ac0d8).
fn merge_less_min() -> Arc<dyn AggregateFunction> {
    UdaBuilder::new("ANY_MIN", AggKind::Holistic, || None::<Value>)
        .iter(|s, v| {
            if v.is_null() || *v == Value::All {
                return;
            }
            match s {
                Some(cur) if *cur <= *v => {}
                _ => *s = Some(v.clone()),
            }
        })
        .finalize(|s| s.clone().unwrap_or(Value::Null))
        .build()
        .expect("ANY_MIN is well-formed")
}

/// Pinned regression (fuzzer seed 0xda7ac0d8, shrunk to one row): a
/// compound `GROUP BY d0 CUBE d1` with a merge-less holistic UDA. Before
/// the `mergeable()` routing fix, FromCore/Parallel cascaded through the
/// UDA's no-op merge and returned NULL for the `(d0, ALL)` super-aggregate
/// instead of the group's value.
#[test]
fn merge_less_uda_super_aggregates_survive_every_hash_path() {
    let schema = Schema::from_pairs(&[
        ("d0", DataType::Float),
        ("d1", DataType::Date),
        ("m", DataType::Int),
    ]);
    let mut t = Table::empty(schema);
    t.push_unchecked(Row::new(vec![
        Value::Float(1.5),
        Value::Date(Date::new(2020, 1, 1).unwrap()),
        Value::Int(-33),
    ]));

    let spec = CompoundSpec::new()
        .group_by(vec![Dimension::column("d0")])
        .cube(vec![Dimension::column("d1")]);

    for (algorithm, encoded, vectorized) in hash_combos() {
        let q = query(algorithm, encoded, vectorized)
            .dimensions(spec.dimensions())
            .aggregate(AggSpec::new(merge_less_min(), "d0").with_name("a0"));
        let got = q
            .compound(&t, &spec)
            .unwrap_or_else(|e| panic!("{algorithm:?} enc={encoded} vec={vectorized}: {e}"));
        let rows = got.canonical_rows(2);
        assert_eq!(
            rows.len(),
            2,
            "{algorithm:?} enc={encoded} vec={vectorized}"
        );
        for row in &rows {
            assert_eq!(
                row[2],
                Value::Float(1.5),
                "{algorithm:?} enc={encoded} vec={vectorized}: \
                 merge-less UDA lost its state in row {row:?}"
            );
        }
    }
}

/// The same defect through the shape-restricted algorithms: Sort (rollup
/// lattice), Array and PipeSort (full cube) all cascade scratchpads, so a
/// merge-less UDA must be routed to the scan-based path there too.
#[test]
fn merge_less_uda_survives_sort_array_and_pipesort() {
    let schema = Schema::from_pairs(&[
        ("a", DataType::Str),
        ("b", DataType::Int),
        ("m", DataType::Int),
    ]);
    let mut t = Table::empty(schema);
    for (a, b, m) in [("x", 1, 7), ("x", 2, 3), ("y", 1, 9)] {
        t.push_unchecked(Row::new(vec![Value::str(a), Value::Int(b), Value::Int(m)]));
    }
    let dims = vec![Dimension::column("a"), Dimension::column("b")];
    let agg = || AggSpec::new(merge_less_min(), "m").with_name("lo");

    // Reference: the scan-based 2^N algorithm, correct by construction.
    let reference = |run: &dyn Fn(&CubeQuery) -> Table| -> Vec<Row> {
        run(&query(Algorithm::TwoToTheN, false, false)
            .dimensions(dims.clone())
            .aggregate(agg()))
        .canonical_rows(2)
    };

    let cube_ref = reference(&|q| q.cube(&t).unwrap());
    for algorithm in [Algorithm::Array, Algorithm::PipeSort] {
        let got = query(algorithm, true, true)
            .dimensions(dims.clone())
            .aggregate(agg())
            .cube(&t)
            .unwrap_or_else(|e| panic!("{algorithm:?}: {e}"));
        assert_eq!(got.canonical_rows(2), cube_ref, "{algorithm:?} cube");
    }

    let rollup_ref = reference(&|q| q.rollup(&t).unwrap());
    let got = query(Algorithm::Sort, true, true)
        .dimensions(dims.clone())
        .aggregate(agg())
        .rollup(&t)
        .unwrap();
    assert_eq!(got.canonical_rows(2), rollup_ref, "Sort rollup");
}

/// §3.4: "The ALL value appears to be essential, but creates substantial
/// complexity... It is a non-value, like NULL." The engine must keep a
/// *genuine* NULL group value distinguishable from the ALL super-aggregate
/// token on every execution path, and the GROUPING()-style encoding must
/// carry the distinction losslessly.
#[test]
fn null_groups_and_all_rows_stay_distinguishable_on_every_path() {
    let schema = Schema::from_pairs(&[
        ("color", DataType::Str),
        ("size", DataType::Int),
        ("units", DataType::Int),
    ]);
    let mut t = Table::empty(schema);
    for (color, size, units) in [
        (Value::Null, 1, 10),
        (Value::Null, 2, 20),
        (Value::str("red"), 1, 5),
    ] {
        t.push_unchecked(Row::new(vec![color, Value::Int(size), Value::Int(units)]));
    }
    let dims = vec![Dimension::column("color"), Dimension::column("size")];

    let find = |rows: &[Row], color: &Value, size: &Value| -> Value {
        rows.iter()
            .find(|r| &r[0] == color && &r[1] == size)
            .unwrap_or_else(|| panic!("no row for ({color}, {size})"))[2]
            .clone()
    };

    let mut all_combos = hash_combos();
    for algorithm in [Algorithm::Array, Algorithm::PipeSort] {
        all_combos.push((algorithm, true, true));
    }
    for (algorithm, encoded, vectorized) in all_combos {
        let got = query(algorithm, encoded, vectorized)
            .dimensions(dims.clone())
            .aggregate(AggSpec::new(builtin("SUM").unwrap(), "units").with_name("s"))
            .cube(&t)
            .unwrap_or_else(|e| panic!("{algorithm:?} enc={encoded} vec={vectorized}: {e}"));
        let rows = got.canonical_rows(2);
        let tag = format!("{algorithm:?} enc={encoded} vec={vectorized}");

        // 3 core groups + 2 color slabs + 2 size slabs + grand total.
        assert_eq!(rows.len(), 8, "{tag}");
        // The NULL color group and the ALL color slab coexist and differ.
        assert_eq!(
            find(&rows, &Value::Null, &Value::Int(1)),
            Value::Int(10),
            "{tag}"
        );
        assert_eq!(
            find(&rows, &Value::All, &Value::Int(1)),
            Value::Int(15),
            "{tag}"
        );
        assert_eq!(
            find(&rows, &Value::Null, &Value::All),
            Value::Int(30),
            "{tag}"
        );
        assert_eq!(
            find(&rows, &Value::All, &Value::All),
            Value::Int(35),
            "{tag}"
        );

        // The minimalist NULL + GROUPING() encoding separates the two NULL
        // meanings bit-wise, and the round-trip restores ALL exactly.
        let enc = got.to_null_grouping_encoding(&["color", "size"]).unwrap();
        let enc_rows = enc.canonical_rows(2);
        let null_color_rows: Vec<&Row> = enc_rows
            .iter()
            .filter(|r| r[0] == Value::Null && r[1] == Value::Int(1))
            .collect();
        assert_eq!(null_color_rows.len(), 2, "{tag}");
        let mut bits: Vec<(Value, Value)> = null_color_rows
            .iter()
            .map(|r| (r[3].clone(), r[2].clone()))
            .collect();
        bits.sort_by(|a, b| a.0.cmp(&b.0));
        // grouping(color) = FALSE → the genuine NULL group (sum 10);
        // grouping(color) = TRUE  → the ALL slab in disguise (sum 15).
        assert_eq!(bits[0], (Value::Bool(false), Value::Int(10)), "{tag}");
        assert_eq!(bits[1], (Value::Bool(true), Value::Int(15)), "{tag}");

        let back = enc.from_null_grouping_encoding(&["color", "size"]).unwrap();
        assert_eq!(back.canonical_rows(2), rows, "{tag} round-trip");
    }
}

/// Vectorized-kernel edge: a zero-row table produces zero cells — no
/// grand-total row, no phantom groups — and the kernels agree with the
/// row path about it on every combination that can take the columnar path.
#[test]
fn vectorized_zero_row_cube_is_empty_everywhere() {
    let schema = Schema::from_pairs(&[
        ("a", DataType::Str),
        ("b", DataType::Int),
        ("m", DataType::Float),
    ]);
    let t = Table::empty(schema);
    let dims = vec![Dimension::column("a"), Dimension::column("b")];

    for (algorithm, encoded, vectorized) in hash_combos() {
        let got = query(algorithm, encoded, vectorized)
            .dimensions(dims.clone())
            .aggregate(AggSpec::new(builtin("SUM").unwrap(), "m").with_name("s"))
            .aggregate(AggSpec::new(builtin("COUNT").unwrap(), "m").with_name("n"))
            .aggregate(AggSpec::star(builtin("COUNT(*)").unwrap()).with_name("rows"))
            .cube(&t)
            .unwrap_or_else(|e| panic!("{algorithm:?} enc={encoded} vec={vectorized}: {e}"));
        assert_eq!(
            got.len(),
            0,
            "{algorithm:?} enc={encoded} vec={vectorized}: empty input grew rows"
        );
    }
}

/// Vectorized-kernel edge: an all-NULL measure column. §3.3: NULL "does
/// not participate in any aggregate except COUNT()" — so COUNT(m) is 0,
/// COUNT(*) still counts rows, and SUM/MIN over nothing is NULL. The
/// kernels' validity masks must reproduce this exactly.
#[test]
fn vectorized_all_null_measure_count_vs_count_star() {
    let schema = Schema::from_pairs(&[("a", DataType::Str), ("m", DataType::Int)]);
    let mut t = Table::empty(schema);
    for group in ["x", "x", "y"] {
        t.push_unchecked(Row::new(vec![Value::str(group), Value::Null]));
    }
    let dims = vec![Dimension::column("a")];

    for (algorithm, encoded, vectorized) in hash_combos() {
        let got = query(algorithm, encoded, vectorized)
            .dimensions(dims.clone())
            .aggregate(AggSpec::new(builtin("COUNT").unwrap(), "m").with_name("n"))
            .aggregate(AggSpec::star(builtin("COUNT(*)").unwrap()).with_name("rows"))
            .aggregate(AggSpec::new(builtin("SUM").unwrap(), "m").with_name("s"))
            .aggregate(AggSpec::new(builtin("MIN").unwrap(), "m").with_name("lo"))
            .cube(&t)
            .unwrap_or_else(|e| panic!("{algorithm:?} enc={encoded} vec={vectorized}: {e}"));
        let rows = got.canonical_rows(1);
        let tag = format!("{algorithm:?} enc={encoded} vec={vectorized}");
        assert_eq!(rows.len(), 3, "{tag}"); // x, y, grand total

        for row in &rows {
            let expected_star = match &row[0] {
                Value::All => 3,
                v if *v == Value::str("x") => 2,
                _ => 1,
            };
            assert_eq!(
                row[1],
                Value::Int(0),
                "{tag}: COUNT(m) over NULLs in {row:?}"
            );
            assert_eq!(
                row[2],
                Value::Int(expected_star),
                "{tag}: COUNT(*) in {row:?}"
            );
            assert_eq!(row[3], Value::Null, "{tag}: SUM of no values in {row:?}");
            assert_eq!(row[4], Value::Null, "{tag}: MIN of no values in {row:?}");
        }
    }
}
