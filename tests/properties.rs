//! Property-based tests over the cube invariants, with proptest.
//!
//! Strategy: generate small random relations (bounded cardinalities so
//! cubes stay dense enough to be interesting) and check the paper's
//! algebraic claims hold for *every* input, not just the examples.

use datacube::{
    AggSpec, Algorithm, CompoundSpec, CubeQuery, DeltaBatch, Dimension, ExecContext,
    MaterializedCube,
};
use dc_aggregate::builtin;
use dc_relation::{DataType, Date, Row, Schema, Table, Value};
use proptest::prelude::*;

fn schema3() -> Schema {
    Schema::from_pairs(&[
        ("a", DataType::Int),
        ("b", DataType::Int),
        ("c", DataType::Int),
        ("units", DataType::Int),
    ])
}

/// Rows over a 3-dimensional space with small per-dimension domains.
fn arb_table(max_rows: usize) -> impl Strategy<Value = Table> {
    proptest::collection::vec((0i64..4, 0i64..3, 0i64..3, 1i64..100), 0..max_rows).prop_map(
        |rows| {
            let mut t = Table::empty(schema3());
            for (a, b, c, u) in rows {
                t.push_unchecked(Row::new(vec![
                    Value::Int(a),
                    Value::Int(b),
                    Value::Int(c),
                    Value::Int(u),
                ]));
            }
            t
        },
    )
}

fn dims() -> Vec<Dimension> {
    vec![
        Dimension::column("a"),
        Dimension::column("b"),
        Dimension::column("c"),
    ]
}

fn sum_units() -> AggSpec {
    AggSpec::new(builtin("SUM").unwrap(), "units").with_name("s")
}

fn count_units() -> AggSpec {
    AggSpec::new(builtin("COUNT").unwrap(), "units").with_name("n")
}

/// Five dimension columns of mixed types (the encoded engine interns each
/// through its own symbol table) plus the aggregated measure.
fn mixed_schema() -> Schema {
    Schema::from_pairs(&[
        ("d0", DataType::Str),
        ("d1", DataType::Int),
        ("d2", DataType::Date),
        ("d3", DataType::Str),
        ("d4", DataType::Int),
        ("units", DataType::Int),
    ])
}

fn mixed_dims(n_dims: usize) -> Vec<Dimension> {
    ["d0", "d1", "d2", "d3", "d4"][..n_dims]
        .iter()
        .map(Dimension::column)
        .collect()
}

/// Random tables over 1..=`max_dims` mixed-type dimensions. Domain index 0
/// maps to NULL in every dimension, so NULL appears as an ordinary
/// groupable value (distinct from ALL) throughout.
fn arb_mixed_table(max_dims: usize, max_rows: usize) -> impl Strategy<Value = (usize, Table)> {
    let rows = proptest::collection::vec(
        (
            0usize..5,
            0usize..4,
            0usize..4,
            0usize..3,
            0usize..3,
            1i64..100,
        ),
        0..max_rows,
    );
    (1..=max_dims, rows).prop_map(|(n_dims, raw)| {
        let mut t = Table::empty(mixed_schema());
        for (a, b, c, d, e, units) in raw {
            let dim = |idx: usize, v: Value| if idx == 0 { Value::Null } else { v };
            t.push_unchecked(Row::new(vec![
                dim(a, Value::str(format!("s{a}"))),
                dim(b, Value::Int(b as i64 * 10)),
                dim(c, Value::Date(Date::ymd(1990 + c as i32, 1, 1))),
                dim(d, Value::str(format!("t{d}"))),
                dim(e, Value::Int(e as i64 - 1)),
                Value::Int(units),
            ]));
        }
        (n_dims, t)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All §5 algorithms compute the same cube on every input.
    #[test]
    fn algorithms_are_equivalent(t in arb_table(120)) {
        let reference = CubeQuery::new()
            .dimensions(dims())
            .aggregate(sum_units())
            .algorithm(Algorithm::TwoToTheN)
            .cube(&t)
            .unwrap();
        for alg in [
            Algorithm::FromCore,
            Algorithm::UnionGroupBys,
            Algorithm::Array,
            Algorithm::Parallel { threads: 3 },
            Algorithm::PipeSort,
        ] {
            let got = CubeQuery::new()
                .dimensions(dims())
                .aggregate(sum_units())
                .algorithm(alg)
                .cube(&t)
                .unwrap();
            prop_assert_eq!(got.rows(), reference.rows(), "algorithm {:?}", alg);
        }
    }

    /// Sort-based rollup equals the hash rollup on every input.
    #[test]
    fn sort_rollup_equivalent(t in arb_table(120)) {
        let a = CubeQuery::new()
            .dimensions(dims())
            .aggregate(sum_units())
            .algorithm(Algorithm::Sort)
            .rollup(&t)
            .unwrap();
        let b = CubeQuery::new()
            .dimensions(dims())
            .aggregate(sum_units())
            .rollup(&t)
            .unwrap();
        prop_assert_eq!(a.rows(), b.rows());
    }

    /// §3's cardinality claims: the cube has Π(C_i + 1) rows when the core
    /// is dense, and at most that many otherwise; the rollup's sets are a
    /// subset of the cube's rows.
    #[test]
    fn cardinality_bounds(t in arb_table(150)) {
        let cube = CubeQuery::new()
            .dimensions(dims())
            .aggregate(sum_units())
            .cube(&t)
            .unwrap();
        if t.is_empty() {
            prop_assert!(cube.is_empty());
            return Ok(());
        }
        let cards: Vec<usize> = ["a", "b", "c"]
            .iter()
            .map(|d| t.domain(d).unwrap().len())
            .collect();
        let dense: usize = cards.iter().map(|c| c + 1).product();
        prop_assert!(cube.len() <= dense, "cube {} > dense bound {}", cube.len(), dense);
        // Lower bound: at least the core plus the grand total.
        let core = datacube::rows_in_set(&cube, 3, datacube::GroupingSet::full(3));
        prop_assert!(cube.len() > core);

        // ROLLUP ⊆ CUBE as row sets.
        let rollup = CubeQuery::new()
            .dimensions(dims())
            .aggregate(sum_units())
            .rollup(&t)
            .unwrap();
        let cube_rows: std::collections::HashSet<&Row> = cube.rows().iter().collect();
        for r in rollup.rows() {
            prop_assert!(cube_rows.contains(r), "rollup row {} not in cube", r);
        }
    }

    /// Every super-aggregate SUM equals the sum of the core rows it
    /// covers, and COUNT counts them — checked via direct recomputation.
    #[test]
    fn super_aggregates_cover_their_sets(t in arb_table(100)) {
        let cube = CubeQuery::new()
            .dimensions(dims())
            .aggregate(sum_units())
            .aggregate(count_units())
            .cube(&t)
            .unwrap();
        for row in cube.rows() {
            let matches: Vec<&Row> = t
                .rows()
                .iter()
                .filter(|base| {
                    (0..3).all(|d| row[d].is_all() || row[d] == base[d])
                })
                .collect();
            let want_sum: i64 = matches.iter().map(|r| r[3].as_i64().unwrap()).sum();
            let want_n = matches.len() as i64;
            prop_assert_eq!(row[3].as_i64().unwrap(), want_sum, "SUM at {}", row);
            prop_assert_eq!(row[4].as_i64().unwrap(), want_n, "COUNT at {}", row);
        }
    }

    /// The grand total row is unique and aggregates everything (when the
    /// input is non-empty).
    #[test]
    fn grand_total_unique(t in arb_table(100)) {
        prop_assume!(!t.is_empty());
        let cube = CubeQuery::new()
            .dimensions(dims())
            .aggregate(sum_units())
            .cube(&t)
            .unwrap();
        let grand: Vec<&Row> = cube
            .rows()
            .iter()
            .filter(|r| (0..3).all(|d| r[d].is_all()))
            .collect();
        prop_assert_eq!(grand.len(), 1);
        let total: i64 = t.rows().iter().map(|r| r[3].as_i64().unwrap()).sum();
        prop_assert_eq!(grand[0][3].as_i64().unwrap(), total);
    }

    /// Aggregating the cube's core re-derives the super-aggregates: the
    /// "cubes are relations" composition property for distributive
    /// functions.
    #[test]
    fn recubing_the_core_is_idempotent(t in arb_table(100)) {
        let cube = CubeQuery::new()
            .dimensions(dims())
            .aggregate(sum_units())
            .cube(&t)
            .unwrap();
        // Extract the core rows as a new base table and cube them.
        let core = cube.filter(|r| (0..3).all(|d| !r[d].is_all()));
        let core_table = Table::new(schema3(), core.rows().to_vec().into_iter()
            .map(|r| Row::new(r.values().to_vec())).collect()).unwrap();
        let recubed = CubeQuery::new()
            .dimensions(dims())
            .aggregate(AggSpec::new(builtin("SUM").unwrap(), "units").with_name("s"))
            .cube(&core_table)
            .unwrap();
        prop_assert_eq!(recubed.rows(), cube.rows());
    }

    /// The encoded-key engine (packed u64 coordinates, Fx hash, flat
    /// arenas) is an invisible drop-in for the Row-key path: identical
    /// result tables AND identical Iter()/Final() call counts, for every
    /// algorithm that routes through it, on random relations with mixed
    /// Str/Int/Date dimensions including NULLs.
    #[test]
    fn encoded_engine_matches_row_path(
        (n_dims, t) in arb_mixed_table(5, 80),
    ) {
        for alg in [
            Algorithm::TwoToTheN,
            Algorithm::FromCore,
            Algorithm::UnionGroupBys,
            Algorithm::Parallel { threads: 2 },
        ] {
            let query = |encoded: bool| {
                CubeQuery::new()
                    .dimensions(mixed_dims(n_dims))
                    .aggregate(AggSpec::new(builtin("SUM").unwrap(), "units").with_name("s"))
                    .aggregate(AggSpec::new(builtin("COUNT").unwrap(), "units").with_name("n"))
                    .algorithm(alg)
                    .encoded_keys(encoded)
                    .cube_with_stats(&t)
                    .unwrap()
            };
            let (enc_table, enc_stats) = query(true);
            let (row_table, row_stats) = query(false);
            prop_assert_eq!(
                enc_table.rows(), row_table.rows(),
                "tables diverge under {:?} with {} dims", alg, n_dims
            );
            prop_assert_eq!(
                enc_stats.iter_calls, row_stats.iter_calls,
                "iter_calls diverge under {:?}", alg
            );
            prop_assert_eq!(
                enc_stats.final_calls, row_stats.final_calls,
                "final_calls diverge under {:?}", alg
            );
        }
    }

    /// GROUPING() bits and the NULL encoding agree on every row.
    #[test]
    fn grouping_encoding_consistent(t in arb_table(80)) {
        let cube = CubeQuery::new()
            .dimensions(dims())
            .aggregate(sum_units())
            .cube(&t)
            .unwrap();
        let enc = cube.to_null_grouping_encoding(&["a", "b", "c"]).unwrap();
        for (orig, enc_row) in cube.rows().iter().zip(enc.rows()) {
            for d in 0..3 {
                let bit = enc_row[4 + d] == Value::Bool(true);
                prop_assert_eq!(orig[d].is_all(), bit);
            }
        }
        let back = enc.from_null_grouping_encoding(&["a", "b", "c"]).unwrap();
        prop_assert_eq!(back.rows(), cube.rows());
    }
}

/// Random tables where both dimensions and both measures admit NULL. The
/// float measure is restricted to multiples of 0.25 — exactly
/// representable, so a parallel merge order cannot perturb sums and the
/// kernel/row comparison stays bit-for-bit.
fn arb_nullable_table(max_rows: usize) -> impl Strategy<Value = Table> {
    let schema = Schema::from_pairs(&[
        ("d0", DataType::Str),
        ("d1", DataType::Int),
        ("units", DataType::Int),
        ("price", DataType::Float),
    ]);
    // Index 0 maps to NULL in every column.
    proptest::collection::vec((0usize..4, 0usize..4, 0i64..101, 0i64..401), 0..max_rows).prop_map(
        move |raw| {
            let mut t = Table::empty(schema.clone());
            for (a, b, units, price) in raw {
                t.push_unchecked(Row::new(vec![
                    if a == 0 {
                        Value::Null
                    } else {
                        Value::str(format!("s{a}"))
                    },
                    if b == 0 {
                        Value::Null
                    } else {
                        Value::Int(b as i64)
                    },
                    if units == 0 {
                        Value::Null
                    } else {
                        Value::Int(units - 51)
                    },
                    if price == 0 {
                        Value::Null
                    } else {
                        Value::Float((price - 201) as f64 * 0.25)
                    },
                ]));
            }
            t
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The vectorized kernels compute exactly what the row-path
    /// Init/Iter/Final protocol computes — every built-in
    /// distributive/algebraic aggregate, NULLs in dimensions and
    /// measures, serial and parallel — with identical work counters.
    #[test]
    fn vectorized_kernels_match_row_path(t in arb_nullable_table(120)) {
        let kernel_aggs = [
            AggSpec::new(builtin("COUNT").unwrap(), "units").with_name("n"),
            AggSpec::star(builtin("COUNT(*)").unwrap()).with_name("rows"),
            AggSpec::new(builtin("SUM").unwrap(), "units").with_name("su"),
            AggSpec::new(builtin("SUM").unwrap(), "price").with_name("sp"),
            AggSpec::new(builtin("MIN").unwrap(), "price").with_name("lo"),
            AggSpec::new(builtin("MAX").unwrap(), "units").with_name("hi"),
            AggSpec::new(builtin("AVG").unwrap(), "price").with_name("avg"),
        ];
        for alg in [Algorithm::FromCore, Algorithm::Parallel { threads: 2 }] {
            let query = |vectorized: bool| {
                kernel_aggs
                    .iter()
                    .fold(CubeQuery::new(), |q, a| q.aggregate(a.clone()))
                    .dimensions(vec![Dimension::column("d0"), Dimension::column("d1")])
                    .algorithm(alg)
                    .vectorized(vectorized)
                    .cube_with_stats(&t)
                    .unwrap()
            };
            let (vec_table, vec_stats) = query(true);
            let (row_table, row_stats) = query(false);
            prop_assert_eq!(
                vec_table.rows(), row_table.rows(),
                "tables diverge under {:?}", alg
            );
            prop_assert_eq!(vec_stats.vectorized_kernels_used, 7);
            prop_assert_eq!(row_stats.vectorized_kernels_used, 0);
            prop_assert_eq!(
                vec_stats.iter_calls, row_stats.iter_calls,
                "iter_calls diverge under {:?}", alg
            );
            prop_assert_eq!(
                vec_stats.rows_scanned, row_stats.rows_scanned,
                "rows_scanned diverge under {:?}", alg
            );
        }
    }

    /// One non-kernel aggregate in the select list sends the whole query
    /// down the row path — transparently: results match the vectorized
    /// form of the kernel-only part and `vectorized_kernels_used` stays 0.
    #[test]
    fn non_kernel_aggregate_falls_back_to_row_path(t in arb_nullable_table(80)) {
        let query = CubeQuery::new()
            .dimensions(vec![Dimension::column("d0"), Dimension::column("d1")])
            .aggregate(AggSpec::new(builtin("SUM").unwrap(), "units").with_name("s"))
            .aggregate(AggSpec::new(builtin("PRODUCT").unwrap(), "d1").with_name("p"))
            .algorithm(Algorithm::FromCore);
        let (on, on_stats) = query.clone().vectorized(true).cube_with_stats(&t).unwrap();
        let (off, off_stats) = query.vectorized(false).cube_with_stats(&t).unwrap();
        // PRODUCT has no kernel, so `vectorized(true)` is a no-op here.
        prop_assert_eq!(on_stats.vectorized_kernels_used, 0);
        prop_assert_eq!(off_stats.vectorized_kernels_used, 0);
        prop_assert_eq!(on.rows(), off.rows());
        prop_assert_eq!(on_stats.iter_calls, off_stats.iter_calls);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The §3.1 compound algebra is a containment chain: every GROUP BY
    /// row appears in the ROLLUP over the same dimensions, and every
    /// ROLLUP row appears in the CUBE — CUBE(a,b) ⊇ ROLLUP(a,b) ⊇
    /// GROUP BY a,b — with each step strictly adding super-aggregate rows
    /// on non-empty input (the rollup's prefix totals, then the cube's
    /// remaining slabs).
    #[test]
    fn compound_algebra_containment(t in arb_table(100)) {
        let ab = || vec![Dimension::column("a"), Dimension::column("b")];
        let run = |spec: &CompoundSpec| {
            CubeQuery::new()
                .dimensions(ab())
                .aggregate(sum_units())
                .aggregate(count_units())
                .compound(&t, spec)
                .unwrap()
        };
        let group_by = run(&CompoundSpec::new().group_by(ab()));
        let rollup = run(&CompoundSpec::new().rollup(ab()));
        let cube = run(&CompoundSpec::new().cube(ab()));

        let contains = |sup: &Table, sub: &Table| {
            sub.rows().iter().all(|r| sup.rows().contains(r))
        };
        prop_assert!(contains(&rollup, &group_by), "ROLLUP must contain GROUP BY");
        prop_assert!(contains(&cube, &rollup), "CUBE must contain ROLLUP");

        if !t.rows().is_empty() {
            // ROLLUP adds the a-prefix totals and the grand total; CUBE
            // additionally adds the b-slabs.
            prop_assert!(rollup.rows().len() > group_by.rows().len());
            prop_assert!(cube.rows().len() > rollup.rows().len());
        } else {
            prop_assert_eq!(cube.rows().len(), 0);
            prop_assert_eq!(rollup.rows().len(), 0);
            prop_assert_eq!(group_by.rows().len(), 0);
        }
    }
}

// ------------------------------------------------- batched maintenance --

/// One row in the `arb_nullable_table` encoding: domain index 0 maps to
/// NULL in every column, so the (0, 0, 0, 0) op is an all-NULL row.
fn nullable_row(a: usize, b: usize, units: i64, price: i64) -> Row {
    Row::new(vec![
        if a == 0 {
            Value::Null
        } else {
            Value::str(format!("s{a}"))
        },
        if b == 0 {
            Value::Null
        } else {
            Value::Int(b as i64)
        },
        if units == 0 {
            Value::Null
        } else {
            Value::Int(units - 51)
        },
        if price == 0 {
            Value::Null
        } else {
            Value::Float((price - 201) as f64 * 0.25)
        },
    ])
}

/// One maintenance op in abstract form; deletes pick a live row by
/// `idx % live.len()`, so every generated sequence is applicable.
#[derive(Clone, Debug)]
enum DeltaOp {
    Insert(usize, usize, i64, i64),
    Delete(usize),
}

fn arb_delta_ops(max_ops: usize) -> impl Strategy<Value = Vec<DeltaOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..4, 0usize..4, 0i64..101, 0i64..401)
                .prop_map(|(a, b, u, p)| DeltaOp::Insert(a, b, u, p)),
            (0usize..1000).prop_map(DeltaOp::Delete),
        ],
        0..max_ops,
    )
}

fn maintain_dims() -> Vec<Dimension> {
    vec![Dimension::column("d0"), Dimension::column("d1")]
}

/// Retractable aggregates with champions (MIN/MAX) in the select list, so
/// random deletes exercise the §6 "holistic for DELETE" recompute path.
fn maintain_aggs() -> Vec<AggSpec> {
    vec![
        AggSpec::new(builtin("SUM").unwrap(), "price").with_name("sp"),
        AggSpec::new(builtin("COUNT").unwrap(), "units").with_name("n"),
        AggSpec::new(builtin("MIN").unwrap(), "price").with_name("lo"),
        AggSpec::new(builtin("MAX").unwrap(), "units").with_name("hi"),
        AggSpec::new(builtin("AVG").unwrap(), "price").with_name("avg"),
    ]
}

fn sorted_rows(t: &Table) -> Vec<Row> {
    let mut rows = t.rows().to_vec();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The batched write path is equivalent to both alternatives on every
    /// input: folding an arbitrary insert/delete interleaving as ONE
    /// `DeltaBatch` gives the same cube as applying the ops row-at-a-time,
    /// and both equal a from-scratch recompute of the final table — with
    /// NULL keys, all-NULL rows, and champion deletes in the mix. The
    /// version counter advances by logical ops either way.
    #[test]
    fn batched_maintenance_matches_row_at_a_time_and_recompute(
        t in arb_nullable_table(40),
        ops in arb_delta_ops(30),
    ) {
        let batched = MaterializedCube::cube(&t, maintain_dims(), maintain_aggs()).unwrap();
        let stepped = MaterializedCube::cube(&t, maintain_dims(), maintain_aggs()).unwrap();
        let mut shadow: Vec<Row> = t.rows().to_vec();
        let mut batch = DeltaBatch::new();
        for op in &ops {
            match op {
                DeltaOp::Insert(a, b, u, p) => {
                    let row = nullable_row(*a, *b, *u, *p);
                    shadow.push(row.clone());
                    batch.insert(row.clone()).unwrap();
                    stepped.insert(row).unwrap();
                }
                DeltaOp::Delete(i) => {
                    if shadow.is_empty() {
                        continue;
                    }
                    let row = shadow.swap_remove(i % shadow.len());
                    batch.delete(row.clone());
                    stepped.delete(&row).unwrap();
                }
            }
        }
        if !batch.is_empty() {
            batched.apply(&batch, &ExecContext::unlimited()).unwrap();
        }

        let final_table = Table::new(t.schema().clone(), shadow).unwrap();
        let recomputed = maintain_aggs()
            .into_iter()
            .fold(CubeQuery::new(), |q, a| q.aggregate(a))
            .dimensions(maintain_dims())
            .cube(&final_table)
            .unwrap();
        let got_batched = sorted_rows(&batched.to_table().unwrap());
        let got_stepped = sorted_rows(&stepped.to_table().unwrap());
        prop_assert_eq!(&got_batched, &got_stepped, "batched vs row-at-a-time");
        prop_assert_eq!(&got_batched, &sorted_rows(&recomputed), "batched vs recompute");
        prop_assert_eq!(batched.version(), stepped.version());
    }

    /// Splitting one logical batch into k sub-batches and applying them in
    /// an arbitrary order gives the same cube as the one-shot batch, for
    /// distributive/algebraic aggregates — inserts land in whatever chunk
    /// the split put them in, and deletes of distinct base rows ride along
    /// in random chunks.
    #[test]
    fn sub_batch_split_is_order_insensitive(
        t in arb_nullable_table(30),
        raw in proptest::collection::vec((0usize..4, 0usize..4, 0i64..101, 0i64..401), 1..32),
        dels in proptest::collection::vec(0usize..1000, 0..6),
        cuts in proptest::collection::vec(0usize..1000, 0..3),
        order_seed in proptest::collection::vec(0u64..1000, 4),
    ) {
        let rows: Vec<Row> = raw
            .into_iter()
            .map(|(a, b, u, p)| nullable_row(a, b, u, p))
            .collect();
        // Distinct base-row victims (distinct indices delete distinct
        // copies, so the delete multiset is valid in any order).
        let mut victims: Vec<usize> = dels
            .into_iter()
            .filter(|_| !t.is_empty())
            .map(|i| i % t.len())
            .collect();
        victims.sort_unstable();
        victims.dedup();

        let oneshot = MaterializedCube::cube(&t, maintain_dims(), maintain_aggs()).unwrap();
        let mut batch = DeltaBatch::new();
        for r in &rows {
            batch.insert(r.clone()).unwrap();
        }
        for &v in &victims {
            batch.delete(t.rows()[v].clone());
        }
        oneshot.apply(&batch, &ExecContext::unlimited()).unwrap();

        // Split the inserts at the generated cut points, attach each
        // victim to a chunk, then apply the chunks in a shuffled order.
        let mut bounds: Vec<usize> = cuts.into_iter().map(|c| c % (rows.len() + 1)).collect();
        bounds.push(0);
        bounds.push(rows.len());
        bounds.sort_unstable();
        bounds.dedup();
        let chunks: Vec<&[Row]> = bounds.windows(2).map(|w| &rows[w[0]..w[1]]).collect();
        let mut order: Vec<usize> = (0..chunks.len()).collect();
        order.sort_by_key(|i| (order_seed[i % order_seed.len()], *i));

        let split = MaterializedCube::cube(&t, maintain_dims(), maintain_aggs()).unwrap();
        for (rank, &c) in order.iter().enumerate() {
            let mut sub = DeltaBatch::new();
            for r in chunks[c] {
                sub.insert(r.clone()).unwrap();
            }
            for (vi, &v) in victims.iter().enumerate() {
                if vi % order.len() == rank {
                    sub.delete(t.rows()[v].clone());
                }
            }
            if !sub.is_empty() {
                split.apply(&sub, &ExecContext::unlimited()).unwrap();
            }
        }
        prop_assert_eq!(
            sorted_rows(&split.to_table().unwrap()),
            sorted_rows(&oneshot.to_table().unwrap())
        );
    }
}

/// The §6 worst case, deterministically: one batch that deletes the
/// reigning MIN/MAX champion *and* an all-NULL row while inserting a new
/// champion must agree with the row-at-a-time path and a recompute.
#[test]
fn champion_delete_and_all_null_row_in_one_batch() {
    let champion = nullable_row(1, 1, 100, 400); // max units, max price
    let all_null = nullable_row(0, 0, 0, 0);
    let t = Table::new(
        Schema::from_pairs(&[
            ("d0", DataType::Str),
            ("d1", DataType::Int),
            ("units", DataType::Int),
            ("price", DataType::Float),
        ]),
        vec![
            champion.clone(),
            all_null.clone(),
            nullable_row(1, 1, 10, 20),
            nullable_row(2, 2, 30, 1),
        ],
    )
    .unwrap();
    let batched = MaterializedCube::cube(&t, maintain_dims(), maintain_aggs()).unwrap();
    let stepped = MaterializedCube::cube(&t, maintain_dims(), maintain_aggs()).unwrap();

    let new_champ = nullable_row(1, 2, 99, 399);
    let mut batch = DeltaBatch::new();
    batch.delete(champion.clone());
    batch.delete(all_null.clone());
    batch.insert(new_champ.clone()).unwrap();
    batched.apply(&batch, &ExecContext::unlimited()).unwrap();
    stepped.delete(&champion).unwrap();
    stepped.delete(&all_null).unwrap();
    stepped.insert(new_champ.clone()).unwrap();

    let final_table = Table::new(
        t.schema().clone(),
        vec![
            nullable_row(1, 1, 10, 20),
            nullable_row(2, 2, 30, 1),
            new_champ,
        ],
    )
    .unwrap();
    let recomputed = maintain_aggs()
        .into_iter()
        .fold(CubeQuery::new(), |q, a| q.aggregate(a))
        .dimensions(maintain_dims())
        .cube(&final_table)
        .unwrap();
    let got = sorted_rows(&batched.to_table().unwrap());
    assert_eq!(got, sorted_rows(&stepped.to_table().unwrap()));
    assert_eq!(got, sorted_rows(&recomputed));
    // The champion delete forced real recomputes on both paths.
    assert!(batched.stats().cells_recomputed > 0);
}
