//! Cross-crate integration tests: generators → cube operators → SQL →
//! reports, exercised together the way the examples use them.

use datacube::addressing::CubeView;
use datacube::maintain::MaterializedCube;
use datacube::pivot::cross_tab;
use datacube::{AggSpec, Algorithm, CubeQuery, Dimension, GroupingSet};
use dc_aggregate::builtin;
use dc_relation::{DataType, Row, Table, Value};
use dc_sql::scalar::ScalarFn;
use dc_sql::Engine;
use dc_warehouse::retail::{RetailParams, RetailWarehouse};
use dc_warehouse::sales::{synthetic_sales, table4_sales, SalesParams};
use dc_warehouse::weather::{nation_of, weather_table, WeatherParams};

fn sum_units() -> AggSpec {
    AggSpec::new(builtin("SUM").unwrap(), "units").with_name("units")
}

fn dims3() -> Vec<Dimension> {
    vec![
        Dimension::column("model"),
        Dimension::column("year"),
        Dimension::column("color"),
    ]
}

/// The API cube and the SQL cube produce the same relation.
#[test]
fn sql_and_api_agree_on_the_cube() {
    let sales = table4_sales();
    let api = CubeQuery::new()
        .dimensions(dims3())
        .aggregate(sum_units())
        .cube(&sales)
        .unwrap();

    let mut engine = Engine::new();
    engine.register_table("sales", sales).unwrap();
    let sql = engine
        .execute(
            "SELECT model, year, color, SUM(units) AS units
             FROM sales GROUP BY CUBE model, year, color",
        )
        .unwrap();
    assert_eq!(api.len(), sql.len());
    // Compare as sets (SQL output order is the operator's canonical order
    // too, but don't depend on it).
    let api_rows: std::collections::HashSet<&Row> = api.rows().iter().collect();
    for row in sql.rows() {
        assert!(
            api_rows.contains(row),
            "SQL row {row} missing from API cube"
        );
    }
}

/// Every algorithm agrees on a synthetic workload, including computed
/// dimensions coming from the warehouse generators.
#[test]
fn algorithms_agree_on_synthetic_data() {
    let table = synthetic_sales(SalesParams {
        rows: 3_000,
        models: 5,
        years: 3,
        colors: 4,
        seed: 99,
    });
    let reference = CubeQuery::new()
        .dimensions(dims3())
        .aggregate(sum_units())
        .algorithm(Algorithm::TwoToTheN)
        .cube(&table)
        .unwrap();
    for alg in [
        Algorithm::FromCore,
        Algorithm::UnionGroupBys,
        Algorithm::Array,
        Algorithm::Parallel { threads: 4 },
        Algorithm::PipeSort,
    ] {
        let got = CubeQuery::new()
            .dimensions(dims3())
            .aggregate(sum_units())
            .algorithm(alg)
            .cube(&table)
            .unwrap();
        assert_eq!(got.rows(), reference.rows(), "{alg:?} diverged");
    }
}

/// The weather pipeline: generator → SQL histogram → decoration → view.
#[test]
fn weather_histogram_end_to_end() {
    let weather = weather_table(WeatherParams {
        rows: 2_000,
        days: 60,
        ..Default::default()
    });
    let mut engine = Engine::new();
    engine.register_table("weather", weather).unwrap();
    engine
        .register_scalar(ScalarFn::new("NATION", 2, DataType::Str, |args| {
            match (args[0].as_f64(), args[1].as_f64()) {
                (Some(lat), Some(lon)) => nation_of(lat, lon).map_or(Value::Null, Value::str),
                _ => Value::Null,
            }
        }))
        .unwrap();
    let out = engine
        .execute(
            "SELECT nation, MAX(temp) AS max_temp, COUNT(*) AS n
             FROM weather
             GROUP BY CUBE NATION(latitude, longitude) AS nation",
        )
        .unwrap();
    // The ALL row's COUNT equals the sum of the per-nation counts.
    let total: i64 = out
        .rows()
        .iter()
        .filter(|r| !r[0].is_all())
        .map(|r| r[2].as_i64().unwrap())
        .sum();
    let all_row = out.rows().iter().find(|r| r[0].is_all()).unwrap();
    assert_eq!(all_row[2].as_i64().unwrap(), total);
    // And its MAX dominates every group max.
    let global = all_row[1].as_f64().unwrap();
    for r in out.rows() {
        assert!(r[1].as_f64().unwrap() <= global);
    }
}

/// Star-join SQL and the denormalized cube agree across a full hierarchy
/// rollup (Figure 6's granularities).
#[test]
fn retail_star_vs_wide_rollup() {
    let w = RetailWarehouse::generate(RetailParams {
        sales: 3_000,
        ..Default::default()
    });
    let mut engine = Engine::new();
    w.register(&mut engine).unwrap();
    let star = engine
        .execute(
            "SELECT geography, region, district, SUM(units) AS u
             FROM sales_fact JOIN office USING (office_id)
             GROUP BY ROLLUP geography, region, district",
        )
        .unwrap();
    let wide = engine
        .execute(
            "SELECT geography, region, district, SUM(units) AS u
             FROM sales_wide GROUP BY ROLLUP geography, region, district",
        )
        .unwrap();
    assert_eq!(star.rows(), wide.rows());
    // Grand total equals the fact-table sum.
    let grand = star
        .rows()
        .iter()
        .find(|r| (0..3).all(|d| r[d].is_all()))
        .unwrap();
    let fact_units: i64 = w.fact.rows().iter().map(|r| r[5].as_i64().unwrap()).sum();
    assert_eq!(grand[3].as_i64().unwrap(), fact_units);
}

/// A maintained cube tracks a stream of inserts/deletes/updates and stays
/// equal to the from-scratch cube of the final state.
#[test]
fn maintained_cube_matches_batch_after_mutation_stream() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut base = synthetic_sales(SalesParams {
        rows: 300,
        models: 4,
        years: 3,
        colors: 3,
        seed: 5,
    });
    let mat = MaterializedCube::cube(
        &base,
        dims3(),
        vec![
            sum_units(),
            AggSpec::new(builtin("MAX").unwrap(), "units").with_name("max_units"),
            AggSpec::new(builtin("AVG").unwrap(), "units").with_name("avg_units"),
        ],
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(11);
    let mut live: Vec<Row> = base.rows().to_vec();
    for step in 0..200 {
        if rng.gen_bool(0.5) || live.is_empty() {
            let row = Row::new(vec![
                Value::str(format!("model-{:03}", rng.gen_range(0..4))),
                Value::Int(1990 + rng.gen_range(0..3)),
                Value::str(format!("color-{:03}", rng.gen_range(0..3))),
                Value::Int(rng.gen_range(1..=100)),
            ]);
            mat.insert(row.clone()).unwrap();
            live.push(row);
        } else {
            let idx = rng.gen_range(0..live.len());
            let row = live.swap_remove(idx);
            mat.delete(&row)
                .unwrap_or_else(|e| panic!("step {step}: {e}"));
        }
    }
    base = Table::from_validated_rows(base.schema().clone(), live);
    let batch = CubeQuery::new()
        .dimensions(dims3())
        .aggregate(sum_units())
        .aggregate(AggSpec::new(builtin("MAX").unwrap(), "units").with_name("max_units"))
        .aggregate(AggSpec::new(builtin("AVG").unwrap(), "units").with_name("avg_units"))
        .cube(&base)
        .unwrap();
    assert_eq!(mat.to_table().unwrap().rows(), batch.rows());
}

/// Report rendering round trip: cube → cross tab, values verified against
/// point lookups.
#[test]
fn cross_tab_agrees_with_cube_view() {
    let sales = table4_sales();
    let cube = CubeQuery::new()
        .dimensions(dims3())
        .aggregate(sum_units())
        .cube(&sales)
        .unwrap();
    let view = CubeView::new(cube.clone(), 3, "units").unwrap();
    let chevy = cube.filter(|r| r[0] == Value::str("Chevy"));
    let xt = cross_tab(&chevy, "color", "year", "units").unwrap();
    // Each cross-tab cell equals the corresponding cube.v() lookup.
    for r in xt.rows() {
        let color = match r[0].as_str().unwrap() {
            "total (ALL)" => Value::All,
            c => Value::str(c),
        };
        for (i, year) in [(1usize, 1994i64), (2, 1995)] {
            let got = &r[i];
            let want = view.v(&[Value::str("Chevy"), Value::Int(year), color.clone()]);
            assert_eq!(*got, want, "cell ({color}, {year})");
        }
    }
}

/// The §3.4 minimalist encoding round-trips through a real cube and keeps
/// GROUPING() semantics.
#[test]
fn null_grouping_encoding_on_a_real_cube() {
    let sales = table4_sales();
    let cube = CubeQuery::new()
        .dimensions(dims3())
        .aggregate(sum_units())
        .cube(&sales)
        .unwrap();
    let enc = cube
        .to_null_grouping_encoding(&["model", "year", "color"])
        .unwrap();
    // No ALL left anywhere.
    assert!(enc.rows().iter().all(|r| r.iter().all(|v| !v.is_all())));
    // grouping(...) columns mark exactly the former ALLs.
    let back = enc
        .from_null_grouping_encoding(&["model", "year", "color"])
        .unwrap();
    assert_eq!(back.rows(), cube.rows());
}

/// Grouping-set row counting matches the lattice combinatorics on a dense
/// cube.
#[test]
fn rows_per_grouping_set_match_cardinalities() {
    let sales = dc_warehouse::sales::figure4_sales(); // dense 2 × 3 × 3
    let cube = CubeQuery::new()
        .dimensions(dims3())
        .aggregate(sum_units())
        .cube(&sales)
        .unwrap();
    let card = [2usize, 3, 3];
    for set in datacube::cube_sets(3).unwrap() {
        let expected: usize = (0..3)
            .filter(|d| set.contains(*d))
            .map(|d| card[d])
            .product();
        assert_eq!(
            datacube::rows_in_set(&cube, 3, set),
            expected,
            "rows in grouping set {set}"
        );
    }
    let _ = GroupingSet::EMPTY; // linked for doc purposes
}
