//! Property tests over the workload generators: whatever the parameters,
//! the data must honor the invariants the experiments assume.

use datacube::decoration::functionally_determines;
use dc_warehouse::retail::{RetailParams, RetailWarehouse};
use dc_warehouse::sales::{skewed_sales, synthetic_sales, SalesParams};
use dc_warehouse::weather::{weather_table, WeatherParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sales generators respect the requested cardinalities for any
    /// parameters — these are the C_i every cube-size formula relies on.
    #[test]
    fn sales_cardinalities_bounded(
        rows in 0usize..400,
        models in 1usize..8,
        years in 1usize..5,
        colors in 1usize..6,
        seed in 0u64..1000,
        skew in any::<bool>(),
    ) {
        let p = SalesParams { rows, models, years, colors, seed };
        let t = if skew { skewed_sales(p) } else { synthetic_sales(p) };
        prop_assert_eq!(t.len(), rows);
        prop_assert!(t.domain("model").unwrap().len() <= models);
        prop_assert!(t.domain("year").unwrap().len() <= years);
        prop_assert!(t.domain("color").unwrap().len() <= colors);
        // Units are always positive (SUM cubes stay monotone).
        for r in t.rows() {
            prop_assert!(r[3].as_i64().unwrap() >= 1);
        }
    }

    /// The retail snowflake's granularity FDs hold for any generated
    /// warehouse: office → district → region → geography and product →
    /// category/manufacturer. Figure 6's hierarchy depends on this.
    #[test]
    fn retail_hierarchies_always_functional(
        sales in 1usize..300,
        customers in 1usize..40,
        seed in 0u64..1000,
    ) {
        let w = RetailWarehouse::generate(RetailParams {
            sales,
            customers,
            seed,
            ..Default::default()
        });
        prop_assert!(functionally_determines(&w.office, &["office"], "district").unwrap());
        prop_assert!(functionally_determines(&w.office, &["district"], "region").unwrap());
        prop_assert!(functionally_determines(&w.office, &["region"], "geography").unwrap());
        prop_assert!(functionally_determines(&w.product, &["product"], "category").unwrap());
        prop_assert!(
            functionally_determines(&w.product, &["product"], "manufacturer").unwrap()
        );
        // Every fact row joins: foreign keys are dense indices.
        let wide = w.denormalize();
        prop_assert_eq!(wide.len(), w.fact.len());
    }

    /// Weather observations stay inside the generator's physical envelope
    /// and the date range requested.
    #[test]
    fn weather_rows_in_envelope(
        rows in 0usize..300,
        days in 1usize..400,
        seed in 0u64..1000,
    ) {
        let p = WeatherParams {
            rows,
            days,
            seed,
            start: dc_relation::Date::ymd(1995, 1, 1),
        };
        let t = weather_table(p);
        prop_assert_eq!(t.len(), rows);
        let last_day = p.start.plus_days(days as i64);
        for r in t.rows() {
            let d = r[0].as_date().unwrap();
            prop_assert!(d >= p.start && d < last_day.plus_days(1), "{d}");
            let temp = r[4].as_f64().unwrap();
            prop_assert!((-40.0..60.0).contains(&temp));
        }
    }
}
