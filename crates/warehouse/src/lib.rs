//! # dc-warehouse — star/snowflake schemas and synthetic workloads
//!
//! The data side of the reproduction. The paper's examples revolve around
//! three datasets and one schema pattern:
//!
//! * the **car sales** table (Figure 4, Tables 3-6) — [`sales`];
//! * the **weather** relation (Table 1, §1.1's 4D earth-temperature
//!   example, and §2's histogram query) — [`weather`];
//! * the **retail snowflake** of Figure 6 — a sales-item fact table with
//!   office / product / customer dimension tables and their granularity
//!   hierarchies — [`retail`];
//! * the **benchmark query sets** of Table 2 (TPC-A/B/C/D, Wisconsin,
//!   AS3AP, SetQuery). The originals are not redistributable, so
//!   [`workloads`] carries reconstructions with the same aggregate /
//!   GROUP BY profile, parsed and counted mechanically through `dc-sql` —
//!   see DESIGN.md's substitution note.
//!
//! Generators are deterministic given a seed, so benchmarks and
//! experiments are reproducible run to run.

pub mod retail;
pub mod sales;
pub mod weather;
pub mod workloads;
