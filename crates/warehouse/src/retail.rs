//! The Figure 6 retail snowflake.
//!
//! "It is common to record events and activities with a detailed record
//! giving all the dimensions of the event. For example, the sales item
//! record gives the id of the buyer, seller, the product purchased, the
//! units purchased, the price, the date and the sales office that is
//! credited with the sale." Each dimension has a side table with its
//! aggregation granularities — office → district → region → geography,
//! product → category → manufacturer — forming the snowflake. The paper
//! also notes query users prefer the denormalized join
//! ([`RetailWarehouse::denormalize`]), which is what the cube operators
//! then consume.

use dc_relation::{row, DataType, Date, Row, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated snowflake warehouse: one fact table plus dimension tables.
#[derive(Debug, Clone)]
pub struct RetailWarehouse {
    /// Fact: (sale_id, office_id, product_id, customer_id, date, units,
    /// price).
    pub fact: Table,
    /// Office dimension: (office_id, office, district, region, geography).
    pub office: Table,
    /// Product dimension: (product_id, product, category, manufacturer).
    pub product: Table,
    /// Customer dimension: (customer_id, customer, segment).
    pub customer: Table,
}

const OFFICES: &[(&str, &str, &str, &str)] = &[
    ("San Francisco", "N. California", "Western", "US"),
    ("Los Angeles", "S. California", "Western", "US"),
    ("Seattle", "Washington", "Western", "US"),
    ("Chicago", "Illinois", "Central", "US"),
    ("Dallas", "Texas", "Central", "US"),
    ("Boston", "Massachusetts", "Eastern", "US"),
    ("New York", "New York", "Eastern", "US"),
    ("London", "Greater London", "EMEA-North", "International"),
    ("Paris", "Ile-de-France", "EMEA-South", "International"),
    ("Tokyo", "Kanto", "APAC", "International"),
];

const PRODUCTS: &[(&str, &str, &str)] = &[
    ("Sedan L", "sedan", "Chevy"),
    ("Sedan XL", "sedan", "Chevy"),
    ("Pickup K", "truck", "Chevy"),
    ("Coupe S", "coupe", "Ford"),
    ("Pickup F", "truck", "Ford"),
    ("Wagon W", "wagon", "Ford"),
    ("Compact C", "compact", "Dodge"),
    ("Van V", "van", "Dodge"),
];

const SEGMENTS: &[&str] = &["consumer", "corporate", "government"];

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct RetailParams {
    pub sales: usize,
    pub customers: usize,
    pub start: Date,
    pub days: usize,
    pub seed: u64,
}

impl Default for RetailParams {
    fn default() -> Self {
        RetailParams {
            sales: 10_000,
            customers: 200,
            start: Date::ymd(1994, 1, 1),
            days: 730,
            seed: 6,
        }
    }
}

impl RetailWarehouse {
    /// Generate a deterministic warehouse.
    pub fn generate(p: RetailParams) -> Self {
        let mut rng = StdRng::seed_from_u64(p.seed);

        let mut office = Table::empty(Schema::from_pairs(&[
            ("office_id", DataType::Int),
            ("office", DataType::Str),
            ("district", DataType::Str),
            ("region", DataType::Str),
            ("geography", DataType::Str),
        ]));
        for (i, (o, d, r, g)) in OFFICES.iter().enumerate() {
            office
                .push(row![i as i64, *o, *d, *r, *g])
                // cube-lint: allow(panic, static literal rows match the schema written above)
                .expect("literal rows");
        }

        let mut product = Table::empty(Schema::from_pairs(&[
            ("product_id", DataType::Int),
            ("product", DataType::Str),
            ("category", DataType::Str),
            ("manufacturer", DataType::Str),
        ]));
        for (i, (name, cat, man)) in PRODUCTS.iter().enumerate() {
            product
                .push(row![i as i64, *name, *cat, *man])
                // cube-lint: allow(panic, static literal rows match the schema written above)
                .expect("literal rows");
        }

        let mut customer = Table::empty(Schema::from_pairs(&[
            ("customer_id", DataType::Int),
            ("customer", DataType::Str),
            ("segment", DataType::Str),
        ]));
        for i in 0..p.customers.max(1) {
            customer
                .push(row![
                    i as i64,
                    format!("customer-{i:04}"),
                    SEGMENTS[i % SEGMENTS.len()]
                ])
                // cube-lint: allow(panic, generator emits schema-shaped rows by construction)
                .expect("generated rows");
        }

        let mut fact = Table::empty(Schema::from_pairs(&[
            ("sale_id", DataType::Int),
            ("office_id", DataType::Int),
            ("product_id", DataType::Int),
            ("customer_id", DataType::Int),
            ("date", DataType::Date),
            ("units", DataType::Int),
            ("price", DataType::Float),
        ]));
        for sale_id in 0..p.sales {
            let product_id = rng.gen_range(0..PRODUCTS.len()) as i64;
            let base_price = 12_000.0 + 4_000.0 * (product_id as f64);
            let date = p.start.plus_days(rng.gen_range(0..p.days.max(1)) as i64);
            fact.push_unchecked(Row::new(vec![
                Value::Int(sale_id as i64),
                Value::Int(rng.gen_range(0..OFFICES.len()) as i64),
                Value::Int(product_id),
                Value::Int(rng.gen_range(0..p.customers.max(1)) as i64),
                Value::Date(date),
                Value::Int(rng.gen_range(1..=5)),
                Value::Float((base_price * rng.gen_range(0.9..1.1)).round()),
            ]));
        }

        RetailWarehouse {
            fact,
            office,
            product,
            customer,
        }
    }

    /// The star join: fact ⋈ office ⋈ product ⋈ customer, dropping the id
    /// columns — "Query users find it convenient to use the denormalized
    /// table" (§3.6 footnote). The result is what cube queries group on.
    pub fn denormalize(&self) -> Table {
        let schema = Schema::from_pairs(&[
            ("office", DataType::Str),
            ("district", DataType::Str),
            ("region", DataType::Str),
            ("geography", DataType::Str),
            ("product", DataType::Str),
            ("category", DataType::Str),
            ("manufacturer", DataType::Str),
            ("segment", DataType::Str),
            ("date", DataType::Date),
            ("units", DataType::Int),
            ("price", DataType::Float),
        ]);
        let mut out = Table::empty(schema);
        for f in self.fact.rows() {
            // cube-lint: allow(panic, fact foreign keys index the generated dimension tables)
            let o = &self.office.rows()[f[1].as_i64().expect("office fk") as usize];
            // cube-lint: allow(panic, fact foreign keys index the generated dimension tables)
            let p = &self.product.rows()[f[2].as_i64().expect("product fk") as usize];
            // cube-lint: allow(panic, fact foreign keys index the generated dimension tables)
            let c = &self.customer.rows()[f[3].as_i64().expect("customer fk") as usize];
            out.push_unchecked(Row::new(vec![
                o[1].clone(),
                o[2].clone(),
                o[3].clone(),
                o[4].clone(),
                p[1].clone(),
                p[2].clone(),
                p[3].clone(),
                c[2].clone(),
                f[4].clone(),
                f[5].clone(),
                f[6].clone(),
            ]));
        }
        out
    }

    /// Register all tables (and the denormalized view) with a SQL engine.
    pub fn register(&self, engine: &mut dc_sql::Engine) -> dc_sql::SqlResult<()> {
        engine.register_table("sales_fact", self.fact.clone())?;
        engine.register_table("office", self.office.clone())?;
        engine.register_table("product", self.product.clone())?;
        engine.register_table("customer", self.customer.clone())?;
        engine.register_table("sales_wide", self.denormalize())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RetailWarehouse {
        RetailWarehouse::generate(RetailParams {
            sales: 500,
            customers: 20,
            ..Default::default()
        })
    }

    #[test]
    fn dimensions_form_hierarchies() {
        let w = small();
        // office → district → region → geography is functional.
        use datacube::decoration::functionally_determines;
        assert!(functionally_determines(&w.office, &["office"], "district").unwrap());
        assert!(functionally_determines(&w.office, &["district"], "region").unwrap());
        assert!(functionally_determines(&w.office, &["region"], "geography").unwrap());
        assert!(functionally_determines(&w.product, &["product"], "category").unwrap());
        assert!(functionally_determines(&w.product, &["product"], "manufacturer").unwrap());
    }

    #[test]
    fn denormalize_preserves_fact_count_and_measures() {
        let w = small();
        let wide = w.denormalize();
        assert_eq!(wide.len(), w.fact.len());
        let fact_units: i64 = w.fact.rows().iter().map(|r| r[5].as_i64().unwrap()).sum();
        let wide_units: i64 = wide.rows().iter().map(|r| r[9].as_i64().unwrap()).sum();
        assert_eq!(fact_units, wide_units);
    }

    #[test]
    fn star_query_through_sql_matches_denormalized_cube() {
        let w = small();
        let mut e = dc_sql::Engine::new();
        w.register(&mut e).unwrap();
        // Star query: join fact to office, roll up region.
        let star = e
            .execute(
                "SELECT region, SUM(units) AS u
                 FROM sales_fact JOIN office USING (office_id)
                 GROUP BY ROLLUP region",
            )
            .unwrap();
        // Same rollup over the denormalized table.
        let wide = e
            .execute("SELECT region, SUM(units) AS u FROM sales_wide GROUP BY ROLLUP region")
            .unwrap();
        assert_eq!(star.rows(), wide.rows());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.fact.rows(), b.fact.rows());
    }
}
