//! Reconstruction of Table 2: "SQL Aggregates in Standard Benchmarks".
//!
//! The paper counts aggregate calls and GROUP BY clauses in six benchmark
//! query sets. The original query texts are licensed artifacts we cannot
//! embed, so this module carries *reconstructions* — queries in the
//! spirit and schema vocabulary of each benchmark, written so their
//! aggregate/GROUP BY profile matches the counts the paper reports. The
//! counting itself is mechanical: every query is parsed by `dc-sql` and
//! its AST walked ([`analyze`]), so Table 2's regeneration exercises the
//! parser on ~90 realistic queries rather than quoting constants.

use dc_sql::ast::{Expr, GroupByClause, SelectStmt, Statement, TableRef};
use dc_sql::parser::parse;
use dc_sql::{SqlError, SqlResult};

/// One benchmark's aggregation profile — a row of Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadProfile {
    pub name: &'static str,
    pub queries: usize,
    pub aggregates: usize,
    pub group_bys: usize,
}

/// The aggregate functions the paper counts (§1.1's standard five; COUNT
/// DISTINCT counts as an aggregate use of COUNT).
fn is_aggregate_name(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "COUNT" | "SUM" | "AVG" | "MIN" | "MAX"
    )
}

fn count_aggs_expr(e: &Expr) -> usize {
    match e {
        Expr::Func { name, args, .. } => {
            let own = usize::from(is_aggregate_name(name));
            own + args.iter().map(count_aggs_expr).sum::<usize>()
        }
        Expr::Grouping(inner) => count_aggs_expr(inner),
        Expr::Binary { lhs, rhs, .. } => count_aggs_expr(lhs) + count_aggs_expr(rhs),
        Expr::Not(e) | Expr::Neg(e) => count_aggs_expr(e),
        Expr::IsNull { expr, .. } => count_aggs_expr(expr),
        Expr::Between {
            expr, low, high, ..
        } => count_aggs_expr(expr) + count_aggs_expr(low) + count_aggs_expr(high),
        Expr::InList { expr, list, .. } => {
            count_aggs_expr(expr) + list.iter().map(count_aggs_expr).sum::<usize>()
        }
        Expr::ScalarSubquery(s) => count_select(s).0,
        _ => 0,
    }
}

fn count_group_exprs(g: &GroupByClause) -> usize {
    usize::from(
        !g.plain.is_empty()
            || !g.rollup.is_empty()
            || !g.cube.is_empty()
            || g.grouping_sets.is_some(),
    )
}

/// (aggregates, group-bys) in one select block and its unions.
fn count_select(s: &SelectStmt) -> (usize, usize) {
    let mut aggs = 0;
    let mut gbs = 0;
    let mut cursor = Some(s);
    while let Some(sel) = cursor {
        for item in &sel.items {
            aggs += count_aggs_expr(&item.expr);
        }
        if let Some(w) = &sel.where_clause {
            aggs += count_aggs_expr(w);
        }
        if let Some(h) = &sel.having {
            aggs += count_aggs_expr(h);
        }
        if let Some(g) = &sel.group_by {
            gbs += count_group_exprs(g);
        }
        let _ = &sel.from as &TableRef;
        cursor = sel.union.as_ref().map(|(_, rhs)| rhs.as_ref());
    }
    (aggs, gbs)
}

/// Parse every query and tally the profile. Any unparseable query is an
/// error — the reconstruction must stay inside the supported grammar.
pub fn analyze(name: &'static str, queries: &[&str]) -> SqlResult<WorkloadProfile> {
    let mut aggregates = 0;
    let mut group_bys = 0;
    for (i, q) in queries.iter().enumerate() {
        let stmt = match parse(q).map_err(|e| match e {
            SqlError::Parse { near, message } => SqlError::Parse {
                near,
                message: format!("{name} query #{}: {message}", i + 1),
            },
            other => other,
        })? {
            Statement::Select(stmt) | Statement::Explain(stmt) => stmt,
            Statement::Set { .. }
            | Statement::Insert { .. }
            | Statement::Delete { .. }
            | Statement::Update { .. } => continue,
        };
        let (a, g) = count_select(&stmt);
        aggregates += a;
        group_bys += g;
    }
    Ok(WorkloadProfile {
        name,
        queries: queries.len(),
        aggregates,
        group_bys,
    })
}

/// The TPC-A/B debit-credit read query: no aggregation at all.
pub fn tpc_ab() -> Vec<&'static str> {
    vec!["SELECT a_balance FROM account WHERE a_id = 4242"]
}

/// TPC-C-flavored transaction reads: 18 queries, 4 aggregates, no
/// GROUP BY — OLTP touches rows, not groups.
pub fn tpc_c() -> Vec<&'static str> {
    vec![
        "SELECT w_name, w_tax FROM warehouse WHERE w_id = 1",
        "SELECT d_name, d_tax, d_next_o_id FROM district WHERE d_id = 7",
        "SELECT c_first, c_last, c_credit FROM customer WHERE c_id = 101",
        "SELECT c_balance, c_ytd_payment FROM customer WHERE c_id = 101",
        "SELECT i_name, i_price FROM item WHERE i_id = 5005",
        "SELECT s_quantity FROM stock WHERE s_i_id = 5005",
        "SELECT o_id, o_carrier_id FROM orders WHERE o_c_id = 101",
        "SELECT ol_i_id, ol_quantity FROM order_line WHERE ol_o_id = 9001",
        "SELECT no_o_id FROM new_order WHERE no_d_id = 7 ORDER BY no_o_id LIMIT 1",
        "SELECT COUNT(DISTINCT s_i_id) FROM stock WHERE s_quantity < 10",
        "SELECT SUM(ol_amount) FROM order_line WHERE ol_o_id = 9001",
        "SELECT MAX(o_id) FROM orders WHERE o_d_id = 7",
        "SELECT COUNT(*) FROM new_order WHERE no_d_id = 7",
        "SELECT c_discount FROM customer WHERE c_id = 102",
        "SELECT w_ytd FROM warehouse WHERE w_id = 1",
        "SELECT d_ytd FROM district WHERE d_id = 7",
        "SELECT c_city, c_state FROM customer WHERE c_id = 103",
        "SELECT ol_delivery_d FROM order_line WHERE ol_o_id = 9002",
    ]
}

/// TPC-D-flavored decision support: 16 queries, 27 aggregates, 15
/// GROUP BYs (the paper's Table 2 row, including the famous pricing
/// summary with its aggregate battery).
pub fn tpc_d() -> Vec<&'static str> {
    vec![
        // Q1, the pricing summary: 7 aggregates.
        "SELECT returnflag, linestatus,
                SUM(quantity), SUM(extendedprice), SUM(discount),
                AVG(quantity), AVG(extendedprice), AVG(discount),
                COUNT(*)
         FROM lineitem WHERE shipdate <= 19981201
         GROUP BY returnflag, linestatus
         ORDER BY returnflag, linestatus",
        // Q2-style minimum-cost supplier: no aggregation, no grouping.
        "SELECT acctbal, name, nation FROM supplier JOIN nation USING (nationkey)
         WHERE size = 15 AND region = 'EUROPE' ORDER BY acctbal DESC",
        "SELECT orderkey, SUM(extendedprice * (1 - discount)) AS revenue, COUNT(*)
         FROM lineitem JOIN orders USING (orderkey)
         WHERE orderdate < 19950315 GROUP BY orderkey ORDER BY revenue DESC",
        "SELECT orderpriority, COUNT(*) AS order_count FROM orders
         WHERE orderdate BETWEEN 19930701 AND 19931001 GROUP BY orderpriority",
        "SELECT nation, SUM(extendedprice * (1 - discount)) AS revenue,
                AVG(extendedprice) AS avg_price
         FROM lineitem JOIN supplier USING (suppkey)
         GROUP BY nation ORDER BY revenue DESC",
        "SELECT shipmode, SUM(extendedprice * discount) AS revenue
         FROM lineitem WHERE quantity < 24 GROUP BY shipmode",
        "SELECT supp_nation, cust_nation, SUM(volume) AS revenue
         FROM shipping GROUP BY supp_nation, cust_nation",
        "SELECT o_year, SUM(volume) AS mkt_share FROM all_nations GROUP BY o_year",
        "SELECT nation, o_year, SUM(amount) AS sum_profit FROM profit
         GROUP BY nation, o_year ORDER BY nation",
        "SELECT custkey, name, SUM(extendedprice * (1 - discount)) AS revenue,
                COUNT(*) AS order_count
         FROM customer JOIN orders USING (custkey)
         WHERE returnflag = 'R' GROUP BY custkey, name ORDER BY revenue DESC",
        "SELECT partkey, SUM(supplycost * availqty) AS value
         FROM partsupp JOIN supplier USING (suppkey)
         GROUP BY partkey HAVING SUM(supplycost * availqty) > 100000",
        "SELECT shipmode, SUM(high_line) AS high_line_count,
                SUM(low_line) AS low_line_count
         FROM lineitem WHERE receiptdate < 19950101 GROUP BY shipmode",
        "SELECT c_count, COUNT(*) AS custdist FROM c_orders GROUP BY c_count",
        "SELECT promo_flag, SUM(promo_price) / SUM(extendedprice) AS promo_revenue
         FROM lineitem GROUP BY promo_flag",
        "SELECT suppkey, SUM(extendedprice * (1 - discount)) AS total_revenue
         FROM lineitem WHERE shipdate >= 19960101 GROUP BY suppkey",
        "SELECT brand, container, COUNT(DISTINCT suppkey) AS supplier_cnt
         FROM partsupp JOIN part USING (partkey)
         WHERE size IN (1, 4, 7) GROUP BY brand, container",
    ]
}

/// Wisconsin-benchmark-flavored: 18 queries, 3 aggregates, 2 GROUP BYs.
pub fn wisconsin() -> Vec<&'static str> {
    vec![
        "SELECT * FROM tenktup1 WHERE unique2 BETWEEN 0 AND 99",
        "SELECT * FROM tenktup1 WHERE unique2 BETWEEN 792 AND 1791",
        "SELECT * FROM tenktup1 WHERE unique2 = 2001",
        "SELECT unique1, unique2, two, four FROM tenktup1 WHERE unique1 < 100",
        "SELECT * FROM tenktup1 JOIN tenktup2 USING (unique2)",
        "SELECT * FROM tenktup1 JOIN tenktup2 USING (unique2) WHERE unique2 < 1000",
        "SELECT * FROM onektup JOIN tenktup1 USING (unique2)",
        "SELECT DISTINCT_COL FROM tenktup1 WHERE even100 = 0",
        "SELECT two, four, ten FROM tenktup1 WHERE stringu1 = 'AAAAKXA'",
        "SELECT MIN(unique2) FROM tenktup1",
        "SELECT MIN(unique2) FROM tenktup1 GROUP BY onePercent",
        "SELECT SUM(unique2) FROM tenktup1 GROUP BY onePercent",
        "SELECT * FROM tenktup1 WHERE odd100 = 1",
        "SELECT unique3 FROM tenktup1 WHERE unique1 < 5000",
        "SELECT * FROM bprime JOIN tenktup2 USING (unique2)",
        "SELECT unique1 FROM tenktup1 WHERE unique1 BETWEEN 0 AND 4999",
        "SELECT * FROM tenktup2 WHERE unique3 = 42",
        "SELECT stringu1 FROM tenktup1 WHERE unique2 = 1001",
    ]
}

/// AS3AP-flavored: 23 queries, 20 aggregates, 2 GROUP BYs — the paper's
/// point being that single-table aggregate scans dominate that suite.
pub fn as3ap() -> Vec<&'static str> {
    vec![
        "SELECT COUNT(*) FROM uniques",
        "SELECT COUNT(*) FROM updates",
        "SELECT COUNT(*) FROM hundred WHERE key < 1000",
        "SELECT MIN(key) FROM uniques",
        "SELECT MAX(key) FROM uniques",
        "SELECT SUM(signed) FROM uniques",
        "SELECT AVG(signed) FROM uniques",
        "SELECT MIN(signed), MAX(signed) FROM updates",
        "SELECT COUNT(*) FROM tenpct WHERE name = 'THE+ASAP+BENCHMARKS+'",
        "SELECT AVG(signed) FROM tenpct WHERE signed BETWEEN 0 AND 500000000",
        "SELECT SUM(decim) FROM hundred",
        "SELECT MAX(decim) FROM hundred",
        "SELECT COUNT(*) FROM uniques JOIN hundred USING (key)",
        "SELECT AVG(decim) FROM updates WHERE key BETWEEN 5000 AND 6000",
        "SELECT MAX(name) FROM tenpct",
        "SELECT COUNT(DISTINCT code) FROM tenpct",
        "SELECT SUM(signed) FROM hundred GROUP BY code",
        "SELECT AVG(signed), COUNT(*) FROM updates GROUP BY code",
        "SELECT * FROM uniques WHERE key = 1000",
        "SELECT name, code FROM tenpct WHERE key < 100",
        "SELECT * FROM updates WHERE key BETWEEN 0 AND 99",
        "SELECT key FROM hundred WHERE code = 'BENCHMARKS'",
        "SELECT name FROM uniques WHERE key = 500000",
    ]
}

/// Set Query-flavored: 7 queries, 5 aggregates, 1 GROUP BY.
pub fn set_query() -> Vec<&'static str> {
    vec![
        "SELECT COUNT(*) FROM bench WHERE kseq BETWEEN 400000 AND 500000",
        "SELECT COUNT(*) FROM bench WHERE k2 = 2 AND k100 > 80",
        "SELECT SUM(k1k) FROM bench WHERE k10 = 7",
        "SELECT MIN(kseq) FROM bench WHERE k5 = 3",
        "SELECT k10, COUNT(*) FROM bench WHERE k25 = 11 GROUP BY k10",
        "SELECT kseq FROM bench WHERE k100k BETWEEN 30000 AND 40000",
        "SELECT kseq, k500k FROM bench WHERE k4 = 3 AND k25 IN (11, 19)",
    ]
}

/// Table 2, regenerated: profiles of all six workloads.
pub fn table2() -> SqlResult<Vec<WorkloadProfile>> {
    Ok(vec![
        analyze("TPC-A, B", &tpc_ab())?,
        analyze("TPC-C", &tpc_c())?,
        analyze("TPC-D", &tpc_d())?,
        analyze("Wisconsin", &wisconsin())?,
        analyze("AS3AP", &as3ap())?,
        analyze("SetQuery", &set_query())?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_reconstruction_parses() {
        table2().unwrap();
    }

    #[test]
    fn profiles_match_table_2() {
        // The counts the paper reports in Table 2.
        let expected = [
            ("TPC-A, B", 1, 0, 0),
            ("TPC-C", 18, 4, 0),
            ("TPC-D", 16, 27, 15),
            ("Wisconsin", 18, 3, 2),
            ("AS3AP", 23, 20, 2),
            ("SetQuery", 7, 5, 1),
        ];
        let got = table2().unwrap();
        for ((name, q, a, g), profile) in expected.iter().zip(got.iter()) {
            assert_eq!(profile.name, *name);
            assert_eq!(profile.queries, *q, "{name} query count");
            assert_eq!(profile.aggregates, *a, "{name} aggregate count");
            assert_eq!(profile.group_bys, *g, "{name} GROUP BY count");
        }
    }

    #[test]
    fn counting_sees_through_unions_and_subqueries() {
        let p = analyze(
            "synthetic",
            &["SELECT COUNT(*) FROM t GROUP BY a
               UNION SELECT SUM(x) / (SELECT MAX(y) FROM u) FROM t GROUP BY b"],
        )
        .unwrap();
        assert_eq!(p.aggregates, 3);
        assert_eq!(p.group_bys, 2);
    }
}
