//! The car-sales datasets of Figures 4-5 and Tables 3-6, plus scalable
//! synthetic variants for the benchmarks.

use dc_relation::{row, DataType, Schema, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The canonical sales schema: (model, year, color, units).
pub fn sales_schema() -> Schema {
    Schema::from_pairs(&[
        ("model", DataType::Str),
        ("year", DataType::Int),
        ("color", DataType::Str),
        ("units", DataType::Int),
    ])
}

/// Figure 4's SALES table: 2 models × 3 years (1990-1992) × 3 colors
/// (red, white, blue) = 18 rows, units 1..=18 in row order. The cube of
/// this table has exactly 3 × 4 × 4 = 48 rows, the number the paper
/// quotes.
pub fn figure4_sales() -> Table {
    let mut t = Table::empty(sales_schema());
    let mut unit = 1i64;
    for model in ["Chevy", "Ford"] {
        for year in [1990i64, 1991, 1992] {
            for color in ["red", "white", "blue"] {
                t.push(row![model, year, color, unit])
                    // cube-lint: allow(panic, static literal rows match the schema written above)
                    .expect("literal rows are valid");
                unit += 1;
            }
        }
    }
    t
}

/// The Tables 3-6 dataset: Chevy & Ford × 1994/1995 × black/white with
/// the exact unit counts the paper prints (Chevy 50/40/85/115, Ford
/// 50/10/85/75; totals 290 and 220, grand total 510).
pub fn table4_sales() -> Table {
    let mut t = Table::empty(sales_schema());
    for (m, y, c, u) in [
        ("Chevy", 1994, "black", 50),
        ("Chevy", 1994, "white", 40),
        ("Chevy", 1995, "black", 85),
        ("Chevy", 1995, "white", 115),
        ("Ford", 1994, "black", 50),
        ("Ford", 1994, "white", 10),
        ("Ford", 1995, "black", 85),
        ("Ford", 1995, "white", 75),
    ] {
        // cube-lint: allow(panic, static literal rows match the schema written above)
        t.push(row![m, y, c, u]).expect("literal rows are valid");
    }
    t
}

/// Parameters for the scalable synthetic sales generator.
#[derive(Debug, Clone, Copy)]
pub struct SalesParams {
    pub rows: usize,
    /// Cardinality of each dimension: models, years, colors. These are
    /// the paper's `C_i`.
    pub models: usize,
    pub years: usize,
    pub colors: usize,
    pub seed: u64,
}

impl Default for SalesParams {
    fn default() -> Self {
        SalesParams {
            rows: 10_000,
            models: 10,
            years: 5,
            colors: 8,
            seed: 42,
        }
    }
}

/// Uniform random sales rows with the requested dimension cardinalities.
/// Deterministic per seed.
pub fn synthetic_sales(p: SalesParams) -> Table {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut t = Table::empty(sales_schema());
    for _ in 0..p.rows {
        let model = format!("model-{:03}", rng.gen_range(0..p.models.max(1)));
        let year = 1990 + rng.gen_range(0..p.years.max(1)) as i64;
        let color = format!("color-{:03}", rng.gen_range(0..p.colors.max(1)));
        let units = rng.gen_range(1..=100i64);
        t.push(row![model, year, color, units])
            // cube-lint: allow(panic, generator emits schema-shaped rows by construction)
            .expect("generated rows are valid");
    }
    t
}

/// Skewed generator: dimension value frequencies follow a Zipf-ish
/// distribution so cube cells have highly unequal support — exercising
/// the sparse-cube paths (§5's "it is possible that the core of the cube
/// is sparse").
pub fn skewed_sales(p: SalesParams) -> Table {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut t = Table::empty(sales_schema());
    let zipf = |rng: &mut StdRng, n: usize| -> usize {
        // Inverse-CDF sampling of P(k) ∝ 1/(k+1).
        let h: f64 = (1..=n).map(|k| 1.0 / k as f64).sum();
        let mut u = rng.gen_range(0.0..h);
        for k in 0..n {
            u -= 1.0 / (k + 1) as f64;
            if u <= 0.0 {
                return k;
            }
        }
        n - 1
    };
    for _ in 0..p.rows {
        let model = format!("model-{:03}", zipf(&mut rng, p.models.max(1)));
        let year = 1990 + zipf(&mut rng, p.years.max(1)) as i64;
        let color = format!("color-{:03}", zipf(&mut rng, p.colors.max(1)));
        let units = rng.gen_range(1..=100i64);
        t.push(row![model, year, color, units])
            // cube-lint: allow(panic, generator emits schema-shaped rows by construction)
            .expect("generated rows are valid");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relation::Value;

    #[test]
    fn figure4_shape() {
        let t = figure4_sales();
        assert_eq!(t.len(), 18);
        assert_eq!(t.domain("model").unwrap().len(), 2);
        assert_eq!(t.domain("year").unwrap().len(), 3);
        assert_eq!(t.domain("color").unwrap().len(), 3);
    }

    #[test]
    fn table4_totals_match_the_paper() {
        let t = table4_sales();
        let total: i64 = t
            .column_values("units")
            .unwrap()
            .iter()
            .map(|v| v.as_i64().unwrap())
            .sum();
        assert_eq!(total, 510);
        let chevy: i64 = t
            .rows()
            .iter()
            .filter(|r| r[0] == Value::str("Chevy"))
            .map(|r| r[3].as_i64().unwrap())
            .sum();
        assert_eq!(chevy, 290);
    }

    #[test]
    fn synthetic_is_deterministic_and_bounded() {
        let p = SalesParams {
            rows: 500,
            models: 3,
            years: 2,
            colors: 4,
            seed: 7,
        };
        let a = synthetic_sales(p);
        let b = synthetic_sales(p);
        assert_eq!(a.rows(), b.rows());
        assert!(a.domain("model").unwrap().len() <= 3);
        assert!(a.domain("year").unwrap().len() <= 2);
        assert!(a.domain("color").unwrap().len() <= 4);
    }

    #[test]
    fn skew_concentrates_mass() {
        let p = SalesParams {
            rows: 2_000,
            models: 20,
            years: 5,
            colors: 20,
            seed: 9,
        };
        let t = skewed_sales(p);
        // The most frequent model should dominate a uniform share.
        let models = t.column_values("model").unwrap();
        let mut counts = std::collections::HashMap::new();
        for m in &models {
            *counts.entry(m.clone()).or_insert(0usize) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(
            max > 2_000 / 20 * 2,
            "zipf head should be > 2× uniform share"
        );
    }
}
