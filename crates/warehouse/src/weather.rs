//! The Weather relation of Table 1 and §1.1.
//!
//! "4-dimensional (4D) earth temperature data is typically represented by
//! a Weather table. The first four columns represent the four dimensions:
//! latitude, longitude, altitude, and time." The generator emits plausible
//! observations from a fixed set of stations, and [`nation_of`] plays the
//! paper's `Nation(lat, lon)` role for §2's histogram query.

use dc_relation::{DataType, Date, Row, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One reporting station: a location plus a climate baseline.
#[derive(Debug, Clone, Copy)]
pub struct Station {
    pub name: &'static str,
    pub nation: &'static str,
    pub continent: &'static str,
    pub latitude: f64,
    pub longitude: f64,
    pub altitude_m: i64,
    /// Mean annual temperature, °C.
    pub base_temp: f64,
}

/// The fixed station roster (a small dimension table in Figure 6's
/// sense). Nation → continent is a functional dependency, which Table 7's
/// decoration example needs.
pub const STATIONS: &[Station] = &[
    Station {
        name: "San Francisco",
        nation: "USA",
        continent: "North America",
        latitude: 37.77,
        longitude: -122.42,
        altitude_m: 16,
        base_temp: 14.0,
    },
    Station {
        name: "Denver",
        nation: "USA",
        continent: "North America",
        latitude: 39.74,
        longitude: -104.99,
        altitude_m: 1609,
        base_temp: 10.0,
    },
    Station {
        name: "Mexico City",
        nation: "Mexico",
        continent: "North America",
        latitude: 19.43,
        longitude: -99.13,
        altitude_m: 2240,
        base_temp: 17.0,
    },
    Station {
        name: "Toronto",
        nation: "Canada",
        continent: "North America",
        latitude: 43.65,
        longitude: -79.38,
        altitude_m: 76,
        base_temp: 9.0,
    },
    Station {
        name: "Tokyo",
        nation: "Japan",
        continent: "Asia",
        latitude: 35.68,
        longitude: 139.69,
        altitude_m: 40,
        base_temp: 16.0,
    },
    Station {
        name: "Mumbai",
        nation: "India",
        continent: "Asia",
        latitude: 19.08,
        longitude: 72.88,
        altitude_m: 14,
        base_temp: 27.0,
    },
    Station {
        name: "Paris",
        nation: "France",
        continent: "Europe",
        latitude: 48.86,
        longitude: 2.35,
        altitude_m: 35,
        base_temp: 12.0,
    },
    Station {
        name: "Zurich",
        nation: "Switzerland",
        continent: "Europe",
        latitude: 47.37,
        longitude: 8.54,
        altitude_m: 408,
        base_temp: 9.5,
    },
];

/// The Table 1 schema: time, latitude, longitude, altitude, temperature,
/// pressure.
pub fn weather_schema() -> Schema {
    Schema::from_pairs(&[
        ("time", DataType::Date),
        ("latitude", DataType::Float),
        ("longitude", DataType::Float),
        ("altitude", DataType::Int),
        ("temp", DataType::Float),
        ("pressure", DataType::Int),
    ])
}

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct WeatherParams {
    /// Observations to generate.
    pub rows: usize,
    /// First observation day.
    pub start: Date,
    /// Days covered; observation times are spread uniformly.
    pub days: usize,
    pub seed: u64,
}

impl Default for WeatherParams {
    fn default() -> Self {
        WeatherParams {
            rows: 5_000,
            start: Date::ymd(1995, 1, 1),
            days: 365,
            seed: 1996,
        }
    }
}

/// Generate observations: each row picks a station and a timestamp; the
/// temperature follows the station baseline plus a seasonal sinusoid plus
/// noise, and pressure decreases with altitude.
pub fn weather_table(p: WeatherParams) -> Table {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut t = Table::empty(weather_schema());
    for _ in 0..p.rows {
        let s = &STATIONS[rng.gen_range(0..STATIONS.len())];
        let day_offset = rng.gen_range(0..p.days.max(1)) as i64;
        let date = p.start.plus_days(day_offset);
        let time = Date::new_at(
            date.year(),
            date.month(),
            date.day(),
            rng.gen_range(0..24),
            [0u8, 15, 30, 45][rng.gen_range(0..4)],
        )
        // cube-lint: allow(panic, generator ranges stay within calendar bounds)
        .expect("generated timestamp is valid");
        // Northern-hemisphere season: peak near day ~200.
        let doy = f64::from(u32::from(date.month()) * 30 + u32::from(date.day()));
        let season = 10.0 * ((doy - 200.0) / 365.0 * std::f64::consts::TAU).cos();
        let temp = s.base_temp + season + rng.gen_range(-4.0..4.0);
        // Barometric formula, roughly: ~12 dm of mercury per 100 m, from
        // 1013 hPa at sea level; the paper stores pressure in dm.
        let pressure = 1013 - s.altitude_m / 9 + rng.gen_range(-8..8);
        t.push_unchecked(Row::new(vec![
            Value::Date(time),
            Value::Float(s.latitude),
            Value::Float(s.longitude),
            Value::Int(s.altitude_m),
            Value::Float((temp * 10.0).round() / 10.0),
            Value::Int(pressure),
        ]));
    }
    t
}

/// The paper's `Nation(latitude, longitude)` function (§2), resolved by
/// nearest station. Unknown coordinates map to `None`.
pub fn nation_of(latitude: f64, longitude: f64) -> Option<&'static str> {
    station_at(latitude, longitude).map(|s| s.nation)
}

/// Continent lookup for Table 7's decoration (nation → continent FD).
pub fn continent_of(nation: &str) -> Option<&'static str> {
    STATIONS
        .iter()
        .find(|s| s.nation == nation)
        .map(|s| s.continent)
}

fn station_at(latitude: f64, longitude: f64) -> Option<&'static Station> {
    STATIONS
        .iter()
        .map(|s| {
            let d = (s.latitude - latitude).powi(2) + (s.longitude - longitude).powi(2);
            (s, d)
        })
        .filter(|(_, d)| *d < 1.0) // within ~1 degree
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(s, _)| s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let p = WeatherParams {
            rows: 100,
            ..Default::default()
        };
        assert_eq!(weather_table(p).rows(), weather_table(p).rows());
    }

    #[test]
    fn rows_are_physically_plausible() {
        let t = weather_table(WeatherParams {
            rows: 1_000,
            ..Default::default()
        });
        for r in t.rows() {
            let temp = r[4].as_f64().unwrap();
            assert!((-30.0..50.0).contains(&temp), "temp {temp}");
            let pressure = r[5].as_i64().unwrap();
            assert!((700..1100).contains(&pressure), "pressure {pressure}");
        }
        // Denver (high altitude) reports lower pressure than sea level.
        let denver: Vec<i64> = t
            .rows()
            .iter()
            .filter(|r| r[3] == Value::Int(1609))
            .map(|r| r[5].as_i64().unwrap())
            .collect();
        let sf: Vec<i64> = t
            .rows()
            .iter()
            .filter(|r| r[3] == Value::Int(16))
            .map(|r| r[5].as_i64().unwrap())
            .collect();
        if !denver.is_empty() && !sf.is_empty() {
            let d_avg = denver.iter().sum::<i64>() / denver.len() as i64;
            let s_avg = sf.iter().sum::<i64>() / sf.len() as i64;
            assert!(d_avg < s_avg);
        }
    }

    #[test]
    fn nation_lookup() {
        assert_eq!(nation_of(37.77, -122.42), Some("USA"));
        assert_eq!(nation_of(35.68, 139.69), Some("Japan"));
        assert_eq!(nation_of(0.0, 0.0), None); // mid-Atlantic
        assert_eq!(continent_of("Japan"), Some("Asia"));
        assert_eq!(continent_of("Atlantis"), None);
    }

    #[test]
    fn nation_to_continent_is_functional() {
        // The FD Table 7 relies on.
        use std::collections::HashMap;
        let mut seen: HashMap<&str, &str> = HashMap::new();
        for s in STATIONS {
            let prev = seen.insert(s.nation, s.continent);
            if let Some(p) = prev {
                assert_eq!(p, s.continent, "nation {} maps to two continents", s.nation);
            }
        }
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn zero_rows_and_single_day_params() {
        let empty = weather_table(WeatherParams {
            rows: 0,
            ..Default::default()
        });
        assert!(empty.is_empty());
        let one_day = weather_table(WeatherParams {
            rows: 50,
            days: 1,
            start: Date::ymd(1996, 2, 29),
            seed: 3,
        });
        // All observations on the single (leap) day.
        for r in one_day.rows() {
            let d = r[0].as_date().unwrap();
            assert_eq!((d.year(), d.month(), d.day()), (1996, 2, 29));
        }
    }

    #[test]
    fn seasonality_is_visible() {
        // Northern summer should be warmer than winter at the same station.
        let t = weather_table(WeatherParams {
            rows: 8_000,
            ..Default::default()
        });
        let sf_avg = |lo: u8, hi: u8| -> f64 {
            let temps: Vec<f64> = t
                .rows()
                .iter()
                .filter(|r| r[3] == Value::Int(16)) // San Francisco altitude
                .filter(|r| {
                    let m = r[0].as_date().unwrap().month();
                    m >= lo && m <= hi
                })
                .map(|r| r[4].as_f64().unwrap())
                .collect();
            temps.iter().sum::<f64>() / temps.len().max(1) as f64
        };
        assert!(
            sf_avg(6, 8) > sf_avg(12, 12) + 5.0,
            "summer must beat winter"
        );
    }
}
