//! Aggregate-function framework for the data cube.
//!
//! This crate reproduces two pieces of the paper:
//!
//! 1. **The user-defined aggregate protocol** (§1.2, Figure 7): aggregates
//!    are objects with an *Init* (allocate a scratchpad), *Iter* (fold in the
//!    next value), and *Final* (produce the result) lifecycle, plus the
//!    paper's proposed **`Iter_super`** call (§5, Figure 8) that folds one
//!    scratchpad into another so super-aggregates can be computed from
//!    sub-aggregates without re-reading base data. Here *Init* is
//!    [`AggregateFunction::init`], *Iter* is [`Accumulator::iter`], *Final*
//!    is [`Accumulator::final_value`], and *Iter_super* is
//!    [`Accumulator::merge`] over [`Accumulator::state`] — the "M-tuple"
//!    the paper's algebraic functions carry.
//!
//! 2. **The distributive / algebraic / holistic taxonomy** (§5), which the
//!    cube algorithms in the `datacube` crate consult to decide whether
//!    super-aggregates may be cascaded from the core GROUP BY
//!    (distributive, algebraic) or must fall back to the 2^N algorithm
//!    (holistic). §6's orthogonal *maintenance* taxonomy — SUM is algebraic
//!    for DELETE but MAX is delete-holistic — is captured by
//!    [`Accumulator::retract`] and [`Retract`].
//!
//! Built-in functions cover the SQL five (COUNT, SUM, MIN, MAX, AVG), the
//! statistical extensions the paper lists (variance, stddev, MaxN/MinN),
//! the holistic examples (MEDIAN, MODE, COUNT DISTINCT, percentile), and
//! Red Brick's ordered aggregates (§1.2: RANK, N_TILE, RATIO_TO_TOTAL,
//! CUMULATIVE, RUNNING_SUM, RUNNING_AVERAGE) in [`ordered`].

pub mod accumulator;
pub mod algebraic;
pub mod compare;
pub mod distributive;
pub mod error;
#[cfg(feature = "faults")]
pub mod faults;
pub mod holistic;
pub mod ordered;
pub mod registry;
pub mod udf;
pub mod vectorized;

pub use accumulator::{Accumulator, AggKind, AggregateFunction, Retract};
pub use error::{AggError, AggResult};
pub use registry::{builtin, builtins, Registry};
pub use udf::UdaBuilder;
pub use vectorized::{
    update_i64_fused, update_i64_gather_fused, FusedOp, Kernel, KernelCell, Validity,
};

use std::sync::Arc;

/// Shared handle to an aggregate function definition.
pub type AggRef = Arc<dyn AggregateFunction>;
