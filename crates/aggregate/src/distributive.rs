//! The distributive aggregates: COUNT, COUNT(*), SUM, MIN, MAX.
//!
//! §5: "COUNT(), MIN(), MAX(), SUM() are all distributive. In fact, F = G
//! for all but COUNT(). G = SUM() for the COUNT() function." Each
//! accumulator's `state()` is therefore its own (partial) result, and
//! `merge` is the function itself — except COUNT, whose merge is addition.

use crate::accumulator::{Accumulator, AggKind, AggregateFunction, Retract};
use crate::vectorized::Kernel;
use dc_relation::{DataType, Value};

fn participates(v: &Value) -> bool {
    // §3.3: ALL, like NULL, does not participate in any aggregate except
    // COUNT(*).
    !v.is_null() && !v.is_all()
}

// ---------------------------------------------------------------- COUNT --

/// `COUNT(column)`: counts non-NULL, non-ALL values.
pub struct Count;

#[derive(Default)]
pub struct CountAcc {
    n: i64,
}

impl Accumulator for CountAcc {
    fn iter(&mut self, v: &Value) {
        if participates(v) {
            self.n += 1;
        }
    }

    fn state(&self) -> Vec<Value> {
        vec![Value::Int(self.n)]
    }

    fn merge(&mut self, state: &[Value]) {
        // G = SUM for COUNT.
        self.n += state[0].as_i64().unwrap_or(0);
    }

    fn final_value(&self) -> Value {
        Value::Int(self.n)
    }

    fn retract(&mut self, v: &Value) -> Retract {
        if participates(v) {
            self.n -= 1;
        }
        Retract::Applied
    }
}

impl AggregateFunction for Count {
    fn name(&self) -> &str {
        "COUNT"
    }
    fn kind(&self) -> AggKind {
        AggKind::Distributive
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(CountAcc::default())
    }
    fn output_type(&self, _input: DataType) -> Option<DataType> {
        Some(DataType::Int)
    }
    fn retractable(&self) -> bool {
        true
    }
    fn kernel(&self) -> Option<Kernel> {
        Some(Kernel::Count)
    }
}

// -------------------------------------------------------------- COUNT(*) --

/// `COUNT(*)`: counts every row, including NULL and ALL inputs — the one
/// aggregate those tokens participate in (§3.3).
pub struct CountStar;

#[derive(Default)]
pub struct CountStarAcc {
    n: i64,
}

impl Accumulator for CountStarAcc {
    fn iter(&mut self, _v: &Value) {
        self.n += 1;
    }

    fn state(&self) -> Vec<Value> {
        vec![Value::Int(self.n)]
    }

    fn merge(&mut self, state: &[Value]) {
        self.n += state[0].as_i64().unwrap_or(0);
    }

    fn final_value(&self) -> Value {
        Value::Int(self.n)
    }

    fn retract(&mut self, _v: &Value) -> Retract {
        self.n -= 1;
        Retract::Applied
    }
}

impl AggregateFunction for CountStar {
    fn name(&self) -> &str {
        "COUNT(*)"
    }
    fn kind(&self) -> AggKind {
        AggKind::Distributive
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(CountStarAcc::default())
    }
    fn output_type(&self, _input: DataType) -> Option<DataType> {
        Some(DataType::Int)
    }
    fn retractable(&self) -> bool {
        true
    }
    fn kernel(&self) -> Option<Kernel> {
        Some(Kernel::CountStar)
    }
}

// ------------------------------------------------------------------ SUM --

/// `SUM(column)`: exact over integers, IEEE over floats; an all-integer
/// column sums to an `Int`, anything else to a `Float`.
pub struct Sum;

#[derive(Default)]
pub struct SumAcc {
    int_sum: i64,
    float_sum: f64,
    saw_float: bool,
    n: i64,
}

impl SumAcc {
    fn add(&mut self, v: &Value, sign: i64) {
        match v {
            Value::Int(i) => self.int_sum += sign * i,
            Value::Float(f) => {
                self.saw_float = true;
                self.float_sum += (sign as f64) * f;
            }
            // §3.3: everything non-numeric (NULL and ALL included) is
            // skipped by SUM, without counting toward n.
            Value::Null | Value::All | Value::Bool(_) | Value::Str(_) | Value::Date(_) => return,
        }
        self.n += sign;
    }
}

impl Accumulator for SumAcc {
    fn iter(&mut self, v: &Value) {
        if participates(v) {
            self.add(v, 1);
        }
    }

    fn state(&self) -> Vec<Value> {
        vec![
            Value::Int(self.int_sum),
            Value::Float(self.float_sum),
            Value::Bool(self.saw_float),
            Value::Int(self.n),
        ]
    }

    fn merge(&mut self, state: &[Value]) {
        self.int_sum += state[0].as_i64().unwrap_or(0);
        self.float_sum += state[1].as_f64().unwrap_or(0.0);
        self.saw_float |= state[2].as_bool().unwrap_or(false);
        self.n += state[3].as_i64().unwrap_or(0);
    }

    fn final_value(&self) -> Value {
        if self.n == 0 {
            Value::Null // SQL: SUM of an empty set is NULL
        } else if self.saw_float {
            Value::Float(self.int_sum as f64 + self.float_sum)
        } else {
            Value::Int(self.int_sum)
        }
    }

    fn retract(&mut self, v: &Value) -> Retract {
        if participates(v) {
            if let Value::Float(f) = v {
                // A non-finite contribution cannot be undone by
                // subtraction (NaN - NaN is NaN), and a saturated sum
                // cannot be walked back either: recompute from the base.
                if !f.is_finite() || !self.float_sum.is_finite() {
                    return Retract::Recompute;
                }
            }
            self.add(v, -1);
        }
        Retract::Applied
    }
}

impl AggregateFunction for Sum {
    fn name(&self) -> &str {
        "SUM"
    }
    fn kind(&self) -> AggKind {
        AggKind::Distributive
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(SumAcc::default())
    }
    fn retractable(&self) -> bool {
        true
    }
    fn kernel(&self) -> Option<Kernel> {
        Some(Kernel::Sum)
    }
}

// -------------------------------------------------------------- MIN/MAX --

/// Shared extremum accumulator; `IS_MAX` picks the direction.
pub struct ExtremumAcc<const IS_MAX: bool> {
    best: Option<Value>,
}

impl<const IS_MAX: bool> Default for ExtremumAcc<IS_MAX> {
    fn default() -> Self {
        ExtremumAcc { best: None }
    }
}

impl<const IS_MAX: bool> ExtremumAcc<IS_MAX> {
    fn better(candidate: &Value, incumbent: &Value) -> bool {
        if IS_MAX {
            candidate > incumbent
        } else {
            candidate < incumbent
        }
    }
}

impl<const IS_MAX: bool> Accumulator for ExtremumAcc<IS_MAX> {
    fn iter(&mut self, v: &Value) {
        if !participates(v) {
            return;
        }
        match &self.best {
            None => self.best = Some(v.clone()),
            Some(b) if Self::better(v, b) => self.best = Some(v.clone()),
            _ => {}
        }
    }

    fn state(&self) -> Vec<Value> {
        vec![self.best.clone().unwrap_or(Value::Null)]
    }

    fn merge(&mut self, state: &[Value]) {
        // F = G for MIN/MAX: merging a sub-result is just another iter.
        self.iter(&state[0]);
    }

    fn final_value(&self) -> Value {
        self.best.clone().unwrap_or(Value::Null)
    }

    /// §6: "max is distributive for SELECT and INSERT, but it is holistic
    /// for DELETE." Deleting a value that loses to the incumbent is free;
    /// deleting the incumbent itself forces a recompute because the
    /// scratchpad cannot know the runner-up.
    fn retract(&mut self, v: &Value) -> Retract {
        if !participates(v) {
            return Retract::Applied;
        }
        match &self.best {
            None => Retract::Recompute, // deleting from an empty extremum: inconsistent
            Some(b) if Self::better(v, b) => Retract::Recompute, // inconsistent state
            Some(b) if v == b => Retract::Recompute,
            _ => Retract::Applied,
        }
    }
}

/// `MIN(column)`.
pub struct Min;

impl AggregateFunction for Min {
    fn name(&self) -> &str {
        "MIN"
    }
    fn kind(&self) -> AggKind {
        AggKind::Distributive
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(ExtremumAcc::<false>::default())
    }
    fn kernel(&self) -> Option<Kernel> {
        Some(Kernel::Min)
    }
}

/// `MAX(column)`.
pub struct Max;

impl AggregateFunction for Max {
    fn name(&self) -> &str {
        "MAX"
    }
    fn kind(&self) -> AggKind {
        AggKind::Distributive
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(ExtremumAcc::<true>::default())
    }
    fn kernel(&self) -> Option<Kernel> {
        Some(Kernel::Max)
    }
}

// -------------------------------------------------------------- PRODUCT --

/// `PRODUCT(column)`: the multiplicative fold. Distributive (`F = G`),
/// and — unlike SUM — retraction needs care around zero: once a zero has
/// been folded in, dividing it back out is impossible, so the scratchpad
/// counts zeros separately, keeping PRODUCT honestly algebraic for
/// DELETE.
pub struct Product;

pub struct ProductAcc {
    nonzero_product: f64,
    zeros: i64,
    n: i64,
}

impl Default for ProductAcc {
    fn default() -> Self {
        ProductAcc {
            nonzero_product: 1.0,
            zeros: 0,
            n: 0,
        }
    }
}

impl Accumulator for ProductAcc {
    fn iter(&mut self, v: &Value) {
        if !participates(v) {
            return;
        }
        if let Some(x) = v.as_f64() {
            if x == 0.0 {
                self.zeros += 1;
            } else {
                self.nonzero_product *= x;
            }
            self.n += 1;
        }
    }

    fn state(&self) -> Vec<Value> {
        vec![
            Value::Float(self.nonzero_product),
            Value::Int(self.zeros),
            Value::Int(self.n),
        ]
    }

    fn merge(&mut self, state: &[Value]) {
        self.nonzero_product *= state[0].as_f64().unwrap_or(1.0);
        self.zeros += state[1].as_i64().unwrap_or(0);
        self.n += state[2].as_i64().unwrap_or(0);
    }

    fn final_value(&self) -> Value {
        if self.n == 0 {
            Value::Null
        } else if self.zeros > 0 {
            Value::Float(0.0)
        } else {
            Value::Float(self.nonzero_product)
        }
    }

    fn retract(&mut self, v: &Value) -> Retract {
        if !participates(v) {
            return Retract::Applied;
        }
        if let Some(x) = v.as_f64() {
            if x == 0.0 {
                self.zeros -= 1;
            } else {
                // NaN/±Inf factors (and a product already saturated to a
                // non-finite value) do not divide back out.
                if !x.is_finite() || !self.nonzero_product.is_finite() {
                    return Retract::Recompute;
                }
                self.nonzero_product /= x;
            }
            self.n -= 1;
        }
        Retract::Applied
    }
}

impl AggregateFunction for Product {
    fn name(&self) -> &str {
        "PRODUCT"
    }
    fn kind(&self) -> AggKind {
        AggKind::Distributive
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(ProductAcc::default())
    }
    fn output_type(&self, _input: DataType) -> Option<DataType> {
        Some(DataType::Float)
    }
    fn retractable(&self) -> bool {
        true
    }
}

// --------------------------------------------------------- EVERY / SOME --

/// Boolean conjunction/disjunction aggregates (SQL:1999 `EVERY` /
/// `SOME`). Distributive; retraction tracks true/false counts so deletes
/// stay cheap.
pub struct BoolAgg<const IS_EVERY: bool>;

/// `EVERY(column)`: true iff every non-NULL value is true.
pub type Every = BoolAgg<true>;
/// `SOME(column)`: true iff any non-NULL value is true.
pub type Some_ = BoolAgg<false>;

#[derive(Default)]
pub struct BoolAcc<const IS_EVERY: bool> {
    trues: i64,
    falses: i64,
}

impl<const IS_EVERY: bool> Accumulator for BoolAcc<IS_EVERY> {
    fn iter(&mut self, v: &Value) {
        match v {
            Value::Bool(true) => self.trues += 1,
            Value::Bool(false) => self.falses += 1,
            Value::Null
            | Value::All
            | Value::Int(_)
            | Value::Float(_)
            | Value::Str(_)
            | Value::Date(_) => {}
        }
    }

    fn state(&self) -> Vec<Value> {
        vec![Value::Int(self.trues), Value::Int(self.falses)]
    }

    fn merge(&mut self, state: &[Value]) {
        self.trues += state[0].as_i64().unwrap_or(0);
        self.falses += state[1].as_i64().unwrap_or(0);
    }

    fn final_value(&self) -> Value {
        if self.trues + self.falses == 0 {
            Value::Null
        } else if IS_EVERY {
            Value::Bool(self.falses == 0)
        } else {
            Value::Bool(self.trues > 0)
        }
    }

    fn retract(&mut self, v: &Value) -> Retract {
        match v {
            Value::Bool(true) => self.trues -= 1,
            Value::Bool(false) => self.falses -= 1,
            Value::Null
            | Value::All
            | Value::Int(_)
            | Value::Float(_)
            | Value::Str(_)
            | Value::Date(_) => {}
        }
        Retract::Applied
    }
}

impl<const IS_EVERY: bool> AggregateFunction for BoolAgg<IS_EVERY> {
    fn name(&self) -> &str {
        if IS_EVERY {
            "EVERY"
        } else {
            "SOME"
        }
    }
    fn kind(&self) -> AggKind {
        AggKind::Distributive
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(BoolAcc::<IS_EVERY>::default())
    }
    fn output_type(&self, _input: DataType) -> Option<DataType> {
        Some(DataType::Bool)
    }
    fn retractable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(f: &dyn AggregateFunction, vals: &[Value]) -> Value {
        let mut acc = f.init();
        for v in vals {
            acc.iter(v);
        }
        acc.final_value()
    }

    #[test]
    fn count_skips_tokens_count_star_does_not() {
        let vals = vec![
            Value::Int(1),
            Value::Null,
            Value::All,
            Value::Int(2),
            Value::str("x"),
        ];
        assert_eq!(run(&Count, &vals), Value::Int(3));
        assert_eq!(run(&CountStar, &vals), Value::Int(5));
    }

    #[test]
    fn sum_keeps_integer_exactness() {
        assert_eq!(run(&Sum, &[Value::Int(2), Value::Int(3)]), Value::Int(5));
        assert_eq!(
            run(&Sum, &[Value::Int(2), Value::Float(0.5)]),
            Value::Float(2.5)
        );
        assert_eq!(run(&Sum, &[Value::Null]), Value::Null);
        assert_eq!(run(&Sum, &[]), Value::Null);
    }

    #[test]
    fn min_max_work_on_any_ordered_type() {
        let words = vec![Value::str("white"), Value::str("black")];
        assert_eq!(run(&Min, &words), Value::str("black"));
        assert_eq!(run(&Max, &words), Value::str("white"));
        let nums = vec![Value::Int(3), Value::Float(3.5), Value::Int(-1)];
        assert_eq!(run(&Min, &nums), Value::Int(-1));
        assert_eq!(run(&Max, &nums), Value::Float(3.5));
        assert_eq!(run(&Max, &[Value::Null]), Value::Null);
    }

    #[test]
    fn distributive_law_f_of_partitions() {
        // F({X}) = G({F(partition)}): fold two partitions via merge and
        // compare against one pass over the union.
        let part_a = vec![Value::Int(50), Value::Int(40)];
        let part_b = vec![Value::Int(85), Value::Int(115)];
        for f in [&Sum as &dyn AggregateFunction, &Count, &Min, &Max] {
            let mut left = f.init();
            for v in &part_a {
                left.iter(v);
            }
            let mut right = f.init();
            for v in &part_b {
                right.iter(v);
            }
            left.merge(&right.state());
            let mut whole = f.init();
            for v in part_a.iter().chain(part_b.iter()) {
                whole.iter(v);
            }
            assert_eq!(
                left.final_value(),
                whole.final_value(),
                "law failed for {}",
                f.name()
            );
        }
    }

    #[test]
    fn sum_and_count_retract_cleanly() {
        let mut acc = Sum.init();
        for v in [Value::Int(10), Value::Int(20), Value::Int(30)] {
            acc.iter(&v);
        }
        assert_eq!(acc.retract(&Value::Int(20)), Retract::Applied);
        assert_eq!(acc.final_value(), Value::Int(40));
        // Retracting everything returns SUM to NULL, like the empty set.
        assert_eq!(acc.retract(&Value::Int(10)), Retract::Applied);
        assert_eq!(acc.retract(&Value::Int(30)), Retract::Applied);
        assert_eq!(acc.final_value(), Value::Null);
    }

    #[test]
    fn max_is_delete_holistic() {
        let mut acc = Max.init();
        for v in [Value::Int(10), Value::Int(99), Value::Int(5)] {
            acc.iter(&v);
        }
        // Deleting a loser is free...
        assert_eq!(acc.retract(&Value::Int(5)), Retract::Applied);
        assert_eq!(acc.final_value(), Value::Int(99));
        // ...deleting the champion demands a recompute (§6).
        assert_eq!(acc.retract(&Value::Int(99)), Retract::Recompute);
    }

    #[test]
    fn retractable_flags_match_section_6() {
        assert!(Sum.retractable());
        assert!(Count.retractable());
        assert!(CountStar.retractable());
        assert!(!Max.retractable());
        assert!(!Min.retractable());
    }

    #[test]
    fn product_folds_and_handles_zero() {
        assert_eq!(
            run(&Product, &[Value::Int(2), Value::Int(3), Value::Int(4)]),
            Value::Float(24.0)
        );
        assert_eq!(
            run(&Product, &[Value::Int(2), Value::Int(0)]),
            Value::Float(0.0)
        );
        assert_eq!(run(&Product, &[]), Value::Null);
    }

    #[test]
    fn product_retracts_through_zero() {
        let mut acc = Product.init();
        for v in [Value::Int(2), Value::Int(0), Value::Int(5)] {
            acc.iter(&v);
        }
        assert_eq!(acc.final_value(), Value::Float(0.0));
        // Deleting the zero must resurrect the nonzero product.
        assert_eq!(acc.retract(&Value::Int(0)), Retract::Applied);
        assert_eq!(acc.final_value(), Value::Float(10.0));
    }

    #[test]
    fn product_merge_matches_single_pass() {
        let mut a = Product.init();
        a.iter(&Value::Int(2));
        let mut b = Product.init();
        b.iter(&Value::Int(0));
        b.iter(&Value::Int(7));
        a.merge(&b.state());
        assert_eq!(a.final_value(), Value::Float(0.0));
    }

    #[test]
    fn every_and_some() {
        let tf = vec![Value::Bool(true), Value::Bool(false), Value::Null];
        assert_eq!(run(&BoolAgg::<true>, &tf), Value::Bool(false));
        assert_eq!(run(&BoolAgg::<false>, &tf), Value::Bool(true));
        let tt = vec![Value::Bool(true), Value::Bool(true)];
        assert_eq!(run(&BoolAgg::<true>, &tt), Value::Bool(true));
        assert_eq!(run(&BoolAgg::<false>, &[]), Value::Null);
    }

    #[test]
    fn every_retracts() {
        let mut acc = BoolAgg::<true>.init();
        acc.iter(&Value::Bool(true));
        acc.iter(&Value::Bool(false));
        assert_eq!(acc.final_value(), Value::Bool(false));
        assert_eq!(acc.retract(&Value::Bool(false)), Retract::Applied);
        assert_eq!(acc.final_value(), Value::Bool(true));
    }
}
