//! Errors for the aggregate framework.

use std::fmt;

/// Errors raised while defining or evaluating aggregate functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggError {
    /// An aggregate name was not found in the registry.
    UnknownFunction(String),
    /// A scratchpad state tuple had the wrong shape for `merge`.
    BadState { function: String, detail: String },
    /// A function was registered twice.
    DuplicateFunction(String),
    /// Invalid construction parameter (e.g. `N_TILE(expr, 0)`).
    Invalid(String),
}

impl fmt::Display for AggError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggError::UnknownFunction(n) => write!(f, "unknown aggregate function: {n}"),
            AggError::BadState { function, detail } => {
                write!(f, "bad scratchpad state for {function}: {detail}")
            }
            AggError::DuplicateFunction(n) => write!(f, "aggregate already registered: {n}"),
            AggError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for AggError {}

/// Convenience alias.
pub type AggResult<T> = Result<T, AggError>;
