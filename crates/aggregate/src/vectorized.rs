//! Vectorized aggregation kernels for the distributive/algebraic built-ins.
//!
//! The paper's Init / Iter / Final protocol (§4) is the *generic* contract:
//! any user-defined aggregate can plug in, at the price of one virtual call
//! and one `Value` match per (row, aggregate). The built-ins that dominate
//! real cube workloads — COUNT, SUM, MIN, MAX, AVG — are all distributive
//! or algebraic with tiny POD state, so they can instead run as
//! *monomorphized kernels* over the primitive column slices of a
//! [`ColumnarBatch`](dc relation columnar batch): one tight loop per
//! (kernel, column-type) pair, null-aware via the validity [`Bitmap`].
//!
//! A kernel's accumulator is a fixed 24-byte [`KernelCell`]; the engine
//! stores one flat `Vec<KernelCell>` per grouping set (stride = number of
//! kernel lanes). At materialization time each cell is rehydrated into the
//! aggregate's ordinary accumulator via [`Kernel::state`] +
//! `Accumulator::merge`, so Final() and output typing are exactly the row
//! path's — the kernels are an execution detail, not a semantic fork.
//!
//! An aggregate opts in by returning `Some(Kernel)` from
//! [`AggregateFunction::kernel`](crate::AggregateFunction::kernel); holistic
//! and user-defined aggregates keep the default `None` and the engine falls
//! back to Init/Iter/Final for the whole query.

use crate::accumulator::Accumulator;
use dc_relation::{Bitmap, Value};

/// The vectorized kernels. Each corresponds to one built-in aggregate whose
/// [`state`](Kernel::state) tuple matches that aggregate's row-path
/// accumulator, so rehydration via `merge` is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// COUNT(x): rows with a present value.
    Count,
    /// COUNT(*): every row.
    CountStar,
    /// SUM(x) over `i64` or `f64`.
    Sum,
    /// MIN(x), strict comparison, first-seen wins ties.
    Min,
    /// MAX(x), strict comparison, first-seen wins ties.
    Max,
    /// AVG(x): running `f64` sum plus count.
    Avg,
}

/// POD accumulator cell shared by all kernels: an integer lane, a float
/// lane, and a count. Which lanes are meaningful depends on the kernel and
/// the input column type.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelCell {
    /// Integer accumulator (SUM/MIN/MAX over `i64`).
    pub acc_i: i64,
    /// Float accumulator (SUM/MIN/MAX over `f64`, AVG always).
    pub acc_f: f64,
    /// Rows folded in (COUNT result; presence marker for MIN/MAX).
    pub n: i64,
}

impl Kernel {
    /// COUNT(*) update: no input column, every row counts. `slots[j]` is the
    /// group slot of morsel row `j`; a cell's lanes live at
    /// `cells[slot * stride + lane]`.
    #[inline]
    pub fn update_star(cells: &mut [KernelCell], stride: usize, lane: usize, slots: &[u32]) {
        for &s in slots {
            cells[s as usize * stride + lane].n += 1;
        }
    }

    /// Fold one morsel of an `i64` column: `vals` is the morsel slice,
    /// `valid` the *whole-column* bitmap probed at `base + j`.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn update_i64(
        self,
        cells: &mut [KernelCell],
        stride: usize,
        lane: usize,
        slots: &[u32],
        vals: &[i64],
        valid: &Bitmap,
        base: usize,
    ) {
        match self {
            Kernel::Count => {
                for (j, &s) in slots.iter().enumerate() {
                    if valid.get(base + j) {
                        cells[s as usize * stride + lane].n += 1;
                    }
                }
            }
            Kernel::CountStar => Kernel::update_star(cells, stride, lane, slots),
            Kernel::Sum => {
                for (j, (&s, &v)) in slots.iter().zip(vals).enumerate() {
                    if valid.get(base + j) {
                        let c = &mut cells[s as usize * stride + lane];
                        c.acc_i += v;
                        c.n += 1;
                    }
                }
            }
            Kernel::Min => {
                for (j, (&s, &v)) in slots.iter().zip(vals).enumerate() {
                    if valid.get(base + j) {
                        let c = &mut cells[s as usize * stride + lane];
                        if c.n == 0 || v < c.acc_i {
                            c.acc_i = v;
                        }
                        c.n += 1;
                    }
                }
            }
            Kernel::Max => {
                for (j, (&s, &v)) in slots.iter().zip(vals).enumerate() {
                    if valid.get(base + j) {
                        let c = &mut cells[s as usize * stride + lane];
                        if c.n == 0 || v > c.acc_i {
                            c.acc_i = v;
                        }
                        c.n += 1;
                    }
                }
            }
            Kernel::Avg => {
                for (j, (&s, &v)) in slots.iter().zip(vals).enumerate() {
                    if valid.get(base + j) {
                        let c = &mut cells[s as usize * stride + lane];
                        c.acc_f += v as f64;
                        c.n += 1;
                    }
                }
            }
        }
    }

    /// Fold one morsel of an `f64` column; extrema use `total_cmp` to match
    /// the row path's `Value` ordering exactly.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn update_f64(
        self,
        cells: &mut [KernelCell],
        stride: usize,
        lane: usize,
        slots: &[u32],
        vals: &[f64],
        valid: &Bitmap,
        base: usize,
    ) {
        use std::cmp::Ordering;
        match self {
            Kernel::Count => {
                for (j, &s) in slots.iter().enumerate() {
                    if valid.get(base + j) {
                        cells[s as usize * stride + lane].n += 1;
                    }
                }
            }
            Kernel::CountStar => Kernel::update_star(cells, stride, lane, slots),
            Kernel::Sum | Kernel::Avg => {
                for (j, (&s, &v)) in slots.iter().zip(vals).enumerate() {
                    if valid.get(base + j) {
                        let c = &mut cells[s as usize * stride + lane];
                        c.acc_f += v;
                        c.n += 1;
                    }
                }
            }
            Kernel::Min => {
                for (j, (&s, &v)) in slots.iter().zip(vals).enumerate() {
                    if valid.get(base + j) {
                        let c = &mut cells[s as usize * stride + lane];
                        if c.n == 0 || v.total_cmp(&c.acc_f) == Ordering::Less {
                            c.acc_f = v;
                        }
                        c.n += 1;
                    }
                }
            }
            Kernel::Max => {
                for (j, (&s, &v)) in slots.iter().zip(vals).enumerate() {
                    if valid.get(base + j) {
                        let c = &mut cells[s as usize * stride + lane];
                        if c.n == 0 || v.total_cmp(&c.acc_f) == Ordering::Greater {
                            c.acc_f = v;
                        }
                        c.n += 1;
                    }
                }
            }
        }
    }

    /// The paper's Iter_super: fold `src` into `dst`. `float_input` says
    /// which accumulator lane the extremum kernels live in.
    #[inline]
    pub fn merge(self, dst: &mut KernelCell, src: &KernelCell, float_input: bool) {
        use std::cmp::Ordering;
        match self {
            Kernel::Count | Kernel::CountStar => dst.n += src.n,
            Kernel::Sum => {
                dst.acc_i += src.acc_i;
                dst.acc_f += src.acc_f;
                dst.n += src.n;
            }
            Kernel::Avg => {
                dst.acc_f += src.acc_f;
                dst.n += src.n;
            }
            Kernel::Min | Kernel::Max => {
                if src.n == 0 {
                    return;
                }
                if dst.n == 0 {
                    *dst = *src;
                    return;
                }
                let want = if self == Kernel::Min {
                    Ordering::Less
                } else {
                    Ordering::Greater
                };
                let replace = if float_input {
                    src.acc_f.total_cmp(&dst.acc_f) == want
                } else {
                    src.acc_i.cmp(&dst.acc_i) == want
                };
                if replace {
                    let n = dst.n + src.n;
                    *dst = *src;
                    dst.n = n;
                } else {
                    dst.n += src.n;
                }
            }
        }
    }

    /// Render a cell as the state tuple of the corresponding row-path
    /// accumulator, so `init(); acc.merge(&state)` rehydrates it exactly.
    pub fn state(self, cell: &KernelCell, float_input: bool) -> Vec<Value> {
        match self {
            Kernel::Count | Kernel::CountStar => vec![Value::Int(cell.n)],
            Kernel::Sum => vec![
                Value::Int(if float_input { 0 } else { cell.acc_i }),
                Value::Float(if float_input { cell.acc_f } else { 0.0 }),
                Value::Bool(float_input && cell.n > 0),
                Value::Int(cell.n),
            ],
            Kernel::Min | Kernel::Max => {
                if cell.n == 0 {
                    vec![Value::Null]
                } else if float_input {
                    vec![Value::Float(cell.acc_f)]
                } else {
                    vec![Value::Int(cell.acc_i)]
                }
            }
            Kernel::Avg => vec![Value::Float(cell.acc_f), Value::Int(cell.n)],
        }
    }

    /// Rehydrate a cell into a freshly Init()ed row-path accumulator.
    pub fn rehydrate(self, acc: &mut dyn Accumulator, cell: &KernelCell, float_input: bool) {
        acc.merge(&self.state(cell, float_input));
    }

    /// Final() straight from the cell — byte-for-byte what the row-path
    /// accumulator's `final_value` would return after the same inputs, so
    /// materialization can skip rehydration entirely. (SUM over a pure
    /// `Float` column matches `SumAcc`: its `int_sum` stays 0, so the
    /// float total alone is the answer.)
    pub fn final_value(self, cell: &KernelCell, float_input: bool) -> Value {
        match self {
            Kernel::Count | Kernel::CountStar => Value::Int(cell.n),
            Kernel::Sum | Kernel::Min | Kernel::Max => {
                if cell.n == 0 {
                    Value::Null // SQL: the empty set folds to NULL
                } else if float_input {
                    Value::Float(cell.acc_f)
                } else {
                    Value::Int(cell.acc_i)
                }
            }
            Kernel::Avg => {
                if cell.n == 0 {
                    Value::Null
                } else {
                    Value::Float(cell.acc_f / cell.n as f64)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;

    fn bitmap(bits: &[bool]) -> Bitmap {
        let mut b = Bitmap::new();
        for &x in bits {
            b.push(x);
        }
        b
    }

    /// Drive a kernel over one group and compare Final() against the row
    /// path fed the same values.
    fn check_i64(name: &str, kernel: Kernel, vals: &[i64], valid: &[bool]) {
        let mut cells = vec![KernelCell::default()];
        let slots = vec![0u32; vals.len()];
        kernel.update_i64(&mut cells, 1, 0, &slots, vals, &bitmap(valid), 0);
        let f = builtin(name).unwrap();
        let mut want = f.init();
        for (v, ok) in vals.iter().zip(valid) {
            want.iter(&if *ok { Value::Int(*v) } else { Value::Null });
        }
        let mut got = f.init();
        kernel.rehydrate(got.as_mut(), &cells[0], false);
        assert_eq!(
            got.final_value(),
            want.final_value(),
            "{name} over {vals:?}"
        );
        // The direct final matches the rehydrated accumulator's.
        assert_eq!(
            kernel.final_value(&cells[0], false),
            want.final_value(),
            "{name} direct final over {vals:?}"
        );
    }

    /// Same, over an `f64` column.
    fn check_f64(name: &str, kernel: Kernel, vals: &[f64], valid: &[bool]) {
        let mut cells = vec![KernelCell::default()];
        let slots = vec![0u32; vals.len()];
        kernel.update_f64(&mut cells, 1, 0, &slots, vals, &bitmap(valid), 0);
        let f = builtin(name).unwrap();
        let mut want = f.init();
        for (v, ok) in vals.iter().zip(valid) {
            want.iter(&if *ok { Value::Float(*v) } else { Value::Null });
        }
        assert_eq!(
            kernel.final_value(&cells[0], true),
            want.final_value(),
            "{name} direct final over {vals:?}"
        );
    }

    #[test]
    fn kernels_match_row_accumulators_over_f64() {
        let vals = [1.25, -3.5, 100.0, 0.75, -3.5];
        let valid = [true, false, true, true, true];
        for (name, k) in [
            ("COUNT", Kernel::Count),
            ("SUM", Kernel::Sum),
            ("MIN", Kernel::Min),
            ("MAX", Kernel::Max),
            ("AVG", Kernel::Avg),
        ] {
            check_f64(name, k, &vals, &valid);
            check_f64(name, k, &[], &[]);
            check_f64(name, k, &[0.0, 0.0], &[false, false]);
        }
    }

    #[test]
    fn kernels_match_row_accumulators_over_i64() {
        let vals = [5, -3, 12, 7, -3];
        let valid = [true, true, false, true, true];
        for (name, k) in [
            ("COUNT", Kernel::Count),
            ("SUM", Kernel::Sum),
            ("MIN", Kernel::Min),
            ("MAX", Kernel::Max),
            ("AVG", Kernel::Avg),
        ] {
            check_i64(name, k, &vals, &valid);
            check_i64(name, k, &[], &[]);
            check_i64(name, k, &[0, 0], &[false, false]);
        }
    }

    #[test]
    fn count_star_counts_nulls_too() {
        let mut cells = vec![KernelCell::default()];
        Kernel::update_star(&mut cells, 1, 0, &[0, 0, 0]);
        assert_eq!(
            Kernel::CountStar.state(&cells[0], false),
            vec![Value::Int(3)]
        );
    }

    #[test]
    fn float_extrema_use_total_cmp() {
        let mut cells = vec![KernelCell::default()];
        let vals = [0.0, -0.0];
        let slots = [0u32, 0];
        Kernel::Min.update_f64(&mut cells, 1, 0, &slots, &vals, &bitmap(&[true, true]), 0);
        // total_cmp puts -0.0 below 0.0, matching Value's ordering.
        assert_eq!(cells[0].acc_f.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn merge_is_iter_super() {
        let mut a = KernelCell {
            acc_i: 10,
            acc_f: 0.0,
            n: 2,
        };
        let b = KernelCell {
            acc_i: 4,
            acc_f: 0.0,
            n: 1,
        };
        Kernel::Sum.merge(&mut a, &b, false);
        assert_eq!((a.acc_i, a.n), (14, 3));

        let mut lo = KernelCell {
            acc_i: 3,
            acc_f: 0.0,
            n: 1,
        };
        let hi = KernelCell {
            acc_i: 9,
            acc_f: 0.0,
            n: 1,
        };
        Kernel::Min.merge(&mut lo, &hi, false);
        assert_eq!(lo.acc_i, 3);
        let empty = KernelCell::default();
        Kernel::Min.merge(&mut lo, &empty, false);
        assert_eq!((lo.acc_i, lo.n), (3, 2));
    }

    #[test]
    fn sum_state_rehydrates_float_path() {
        let mut cells = vec![KernelCell::default()];
        let vals = [1.25, 2.5];
        Kernel::Sum.update_f64(&mut cells, 1, 0, &[0, 0], &vals, &bitmap(&[true, true]), 0);
        let f = builtin("SUM").unwrap();
        let mut got = f.init();
        Kernel::Sum.rehydrate(got.as_mut(), &cells[0], true);
        assert_eq!(got.final_value(), Value::Float(3.75));
    }
}
