//! Vectorized aggregation kernels for the distributive/algebraic built-ins.
//!
//! The paper's Init / Iter / Final protocol (§4) is the *generic* contract:
//! any user-defined aggregate can plug in, at the price of one virtual call
//! and one `Value` match per (row, aggregate). The built-ins that dominate
//! real cube workloads — COUNT, SUM, MIN, MAX, AVG — are all distributive
//! or algebraic with tiny POD state, so they can instead run as
//! *monomorphized kernels* over the primitive column slices of a
//! [`ColumnarBatch`](dc relation columnar batch): one tight loop per
//! (kernel, column-type) pair, null-aware via the validity [`Bitmap`].
//!
//! A kernel's accumulator is a fixed 24-byte [`KernelCell`]; the engine
//! stores one flat `Vec<KernelCell>` per grouping set (stride = number of
//! kernel lanes). At materialization time each cell is rehydrated into the
//! aggregate's ordinary accumulator via [`Kernel::state`] +
//! `Accumulator::merge`, so Final() and output typing are exactly the row
//! path's — the kernels are an execution detail, not a semantic fork.
//!
//! An aggregate opts in by returning `Some(Kernel)` from
//! [`AggregateFunction::kernel`](crate::AggregateFunction::kernel); holistic
//! and user-defined aggregates keep the default `None` and the engine falls
//! back to Init/Iter/Final for the whole query.

use crate::accumulator::Accumulator;
use dc_relation::Value;

/// Morsel-relative validity for one kernel update: either every row is
/// valid (the common case — one branch for the whole morsel instead of
/// one per row) or a packed word slice aligned to the morsel's base.
///
/// Invariant for [`Validity::Words`]: bit `j` of the slice is row `j` of
/// the morsel, and bits at positions `>= slots.len()` are zero. Morsels
/// are 64-aligned (the engine's morsel size is a multiple of 64) and a
/// column's bitmap zero-fills its tail, so slicing
/// `bitmap.words()[base / 64 ..]` always satisfies this.
#[derive(Debug, Clone, Copy)]
pub enum Validity<'a> {
    /// Every row of the morsel is valid: kernels run the branch-free
    /// dense loop.
    All,
    /// Packed validity words, morsel-relative, tail bits zero.
    Words(&'a [u64]),
}

/// Visit every valid row index in `0..n` given morsel-relative validity
/// words. Full words take a fixed-width dense block (autovectorizable);
/// partial words iterate set bits only, so invalid rows cost nothing.
#[inline]
fn for_each_valid(words: &[u64], n: usize, mut f: impl FnMut(usize)) {
    for (wi, &word) in words.iter().enumerate() {
        let base = wi * 64;
        if base >= n {
            break;
        }
        if word == u64::MAX && base + 64 <= n {
            for j in base..base + 64 {
                f(j);
            }
        } else {
            let mut w = word;
            while w != 0 {
                f(base + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        }
    }
}

/// Visit valid absolute row indices in `start..end` against a
/// whole-column word array, masking the partial head and tail words.
#[inline]
fn for_each_valid_range(words: &[u64], start: usize, end: usize, mut f: impl FnMut(usize)) {
    if start >= end {
        return;
    }
    let (w0, w1) = (start / 64, (end - 1) / 64);
    for (wi, &word) in words.iter().enumerate().take(w1 + 1).skip(w0) {
        let mut w = word;
        if wi == w0 {
            w &= !0u64 << (start % 64);
        }
        if wi == w1 {
            let top = end - wi * 64;
            if top < 64 {
                w &= (1u64 << top) - 1;
            }
        }
        let base = wi * 64;
        while w != 0 {
            f(base + w.trailing_zeros() as usize);
            w &= w - 1;
        }
    }
}

/// Popcount of the valid bits in `start..end` — word-at-a-time, so a
/// COUNT over a run costs a handful of `popcnt`s instead of a row loop.
#[inline]
fn count_valid_range(words: &[u64], start: usize, end: usize) -> i64 {
    if start >= end {
        return 0;
    }
    let (w0, w1) = (start / 64, (end - 1) / 64);
    let mut n = 0i64;
    for (wi, &word) in words.iter().enumerate().take(w1 + 1).skip(w0) {
        let mut w = word;
        if wi == w0 {
            w &= !0u64 << (start % 64);
        }
        if wi == w1 {
            let top = end - wi * 64;
            if top < 64 {
                w &= (1u64 << top) - 1;
            }
        }
        n += w.count_ones() as i64;
    }
    n
}

/// The vectorized kernels. Each corresponds to one built-in aggregate whose
/// [`state`](Kernel::state) tuple matches that aggregate's row-path
/// accumulator, so rehydration via `merge` is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// COUNT(x): rows with a present value.
    Count,
    /// COUNT(*): every row.
    CountStar,
    /// SUM(x) over `i64` or `f64`.
    Sum,
    /// MIN(x), strict comparison, first-seen wins ties.
    Min,
    /// MAX(x), strict comparison, first-seen wins ties.
    Max,
    /// AVG(x): running `f64` sum plus count.
    Avg,
}

/// POD accumulator cell shared by all kernels: an integer lane, a float
/// lane, and a count. Which lanes are meaningful depends on the kernel and
/// the input column type.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelCell {
    /// Integer accumulator (SUM/MIN/MAX over `i64`).
    pub acc_i: i64,
    /// Float accumulator (SUM/MIN/MAX over `f64`, AVG always).
    pub acc_f: f64,
    /// Rows folded in (COUNT result; presence marker for MIN/MAX).
    pub n: i64,
}

/// One lane's operation in the fused row-major morsel update
/// ([`update_i64_fused`] / [`update_i64_gather_fused`]). Fusion applies
/// when every lane of a plan reads the same fully-valid `i64` column (the
/// counting lanes read nothing): one pass over the morsel updates all of a
/// row's adjacent lane cells while their cache lines are hot, instead of
/// re-touching them once per lane-major kernel pass. `COUNT(x)` over an
/// all-valid column degenerates to [`FusedOp::Star`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedOp {
    /// `n += 1` — COUNT(*) and all-valid COUNT(x).
    Star,
    /// SUM over `i64`: `acc_i += v`.
    Sum,
    /// MIN over `i64`, strict, first-seen wins ties.
    Min,
    /// MAX over `i64`, strict, first-seen wins ties.
    Max,
    /// AVG over `i64`: `acc_f += v as f64`.
    Avg,
}

#[inline(always)]
fn apply_fused(c: &mut KernelCell, op: FusedOp, v: i64) {
    match op {
        FusedOp::Star => c.n += 1,
        FusedOp::Sum => {
            c.acc_i += v;
            c.n += 1;
        }
        FusedOp::Min => {
            if c.n == 0 || v < c.acc_i {
                c.acc_i = v;
            }
            c.n += 1;
        }
        FusedOp::Max => {
            if c.n == 0 || v > c.acc_i {
                c.acc_i = v;
            }
            c.n += 1;
        }
        FusedOp::Avg => {
            c.acc_f += v as f64;
            c.n += 1;
        }
    }
}

/// Row-major fused update of one morsel: row `j` folds `vals[j]` into all
/// `ops.len()` lanes of cell `slots[j]` before moving on. Per (row, lane)
/// the arithmetic and ordering are identical to the lane-major all-valid
/// [`Kernel::update_i64`] arms, so results — floats included — are
/// bit-identical.
pub fn update_i64_fused(cells: &mut [KernelCell], ops: &[FusedOp], slots: &[u32], vals: &[i64]) {
    let stride = ops.len();
    for (&s, &v) in slots.iter().zip(vals) {
        let base = s as usize * stride;
        for (c, op) in cells[base..base + stride].iter_mut().zip(ops) {
            apply_fused(c, *op, v);
        }
    }
}

/// [`update_i64_fused`] with gathered values: row `j` reads
/// `vals[idxs[j]]` — the radix phase-2 replay of a partition's rows.
pub fn update_i64_gather_fused(
    cells: &mut [KernelCell],
    ops: &[FusedOp],
    slots: &[u32],
    idxs: &[u32],
    vals: &[i64],
) {
    let stride = ops.len();
    for (&s, &ri) in slots.iter().zip(idxs) {
        let v = vals[ri as usize];
        let base = s as usize * stride;
        for (c, op) in cells[base..base + stride].iter_mut().zip(ops) {
            apply_fused(c, *op, v);
        }
    }
}

impl Kernel {
    /// COUNT(*) update: no input column, every row counts. `slots[j]` is the
    /// group slot of morsel row `j`; a cell's lanes live at
    /// `cells[slot * stride + lane]`.
    #[inline]
    pub fn update_star(cells: &mut [KernelCell], stride: usize, lane: usize, slots: &[u32]) {
        for &s in slots {
            cells[s as usize * stride + lane].n += 1;
        }
    }

    /// Fold one morsel of an `i64` column. `vals` is the morsel slab;
    /// `validity` selects rows (see [`Validity`]). The all-valid arms are
    /// branch-free fixed-trip loops; the masked arms walk validity words
    /// and touch only set bits.
    #[inline]
    pub fn update_i64(
        self,
        cells: &mut [KernelCell],
        stride: usize,
        lane: usize,
        slots: &[u32],
        vals: &[i64],
        validity: Validity<'_>,
    ) {
        match self {
            Kernel::Count => match validity {
                Validity::All => {
                    for &s in slots {
                        cells[s as usize * stride + lane].n += 1;
                    }
                }
                Validity::Words(words) => for_each_valid(words, slots.len(), |j| {
                    cells[slots[j] as usize * stride + lane].n += 1;
                }),
            },
            Kernel::CountStar => Kernel::update_star(cells, stride, lane, slots),
            Kernel::Sum => match validity {
                Validity::All => {
                    for (&s, &v) in slots.iter().zip(vals) {
                        let c = &mut cells[s as usize * stride + lane];
                        c.acc_i += v;
                        c.n += 1;
                    }
                }
                Validity::Words(words) => for_each_valid(words, slots.len(), |j| {
                    let c = &mut cells[slots[j] as usize * stride + lane];
                    c.acc_i += vals[j];
                    c.n += 1;
                }),
            },
            Kernel::Min => match validity {
                Validity::All => {
                    for (&s, &v) in slots.iter().zip(vals) {
                        let c = &mut cells[s as usize * stride + lane];
                        if c.n == 0 || v < c.acc_i {
                            c.acc_i = v;
                        }
                        c.n += 1;
                    }
                }
                Validity::Words(words) => for_each_valid(words, slots.len(), |j| {
                    let c = &mut cells[slots[j] as usize * stride + lane];
                    if c.n == 0 || vals[j] < c.acc_i {
                        c.acc_i = vals[j];
                    }
                    c.n += 1;
                }),
            },
            Kernel::Max => match validity {
                Validity::All => {
                    for (&s, &v) in slots.iter().zip(vals) {
                        let c = &mut cells[s as usize * stride + lane];
                        if c.n == 0 || v > c.acc_i {
                            c.acc_i = v;
                        }
                        c.n += 1;
                    }
                }
                Validity::Words(words) => for_each_valid(words, slots.len(), |j| {
                    let c = &mut cells[slots[j] as usize * stride + lane];
                    if c.n == 0 || vals[j] > c.acc_i {
                        c.acc_i = vals[j];
                    }
                    c.n += 1;
                }),
            },
            Kernel::Avg => match validity {
                Validity::All => {
                    for (&s, &v) in slots.iter().zip(vals) {
                        let c = &mut cells[s as usize * stride + lane];
                        c.acc_f += v as f64;
                        c.n += 1;
                    }
                }
                Validity::Words(words) => for_each_valid(words, slots.len(), |j| {
                    let c = &mut cells[slots[j] as usize * stride + lane];
                    c.acc_f += vals[j] as f64;
                    c.n += 1;
                }),
            },
        }
    }

    /// Fold one morsel of an `f64` column; extrema use `total_cmp` to match
    /// the row path's `Value` ordering exactly.
    #[inline]
    pub fn update_f64(
        self,
        cells: &mut [KernelCell],
        stride: usize,
        lane: usize,
        slots: &[u32],
        vals: &[f64],
        validity: Validity<'_>,
    ) {
        use std::cmp::Ordering;
        match self {
            Kernel::Count => match validity {
                Validity::All => {
                    for &s in slots {
                        cells[s as usize * stride + lane].n += 1;
                    }
                }
                Validity::Words(words) => for_each_valid(words, slots.len(), |j| {
                    cells[slots[j] as usize * stride + lane].n += 1;
                }),
            },
            Kernel::CountStar => Kernel::update_star(cells, stride, lane, slots),
            Kernel::Sum | Kernel::Avg => match validity {
                Validity::All => {
                    for (&s, &v) in slots.iter().zip(vals) {
                        let c = &mut cells[s as usize * stride + lane];
                        c.acc_f += v;
                        c.n += 1;
                    }
                }
                Validity::Words(words) => for_each_valid(words, slots.len(), |j| {
                    let c = &mut cells[slots[j] as usize * stride + lane];
                    c.acc_f += vals[j];
                    c.n += 1;
                }),
            },
            Kernel::Min => match validity {
                Validity::All => {
                    for (&s, &v) in slots.iter().zip(vals) {
                        let c = &mut cells[s as usize * stride + lane];
                        if c.n == 0 || v.total_cmp(&c.acc_f) == Ordering::Less {
                            c.acc_f = v;
                        }
                        c.n += 1;
                    }
                }
                Validity::Words(words) => for_each_valid(words, slots.len(), |j| {
                    let c = &mut cells[slots[j] as usize * stride + lane];
                    if c.n == 0 || vals[j].total_cmp(&c.acc_f) == Ordering::Less {
                        c.acc_f = vals[j];
                    }
                    c.n += 1;
                }),
            },
            Kernel::Max => match validity {
                Validity::All => {
                    for (&s, &v) in slots.iter().zip(vals) {
                        let c = &mut cells[s as usize * stride + lane];
                        if c.n == 0 || v.total_cmp(&c.acc_f) == Ordering::Greater {
                            c.acc_f = v;
                        }
                        c.n += 1;
                    }
                }
                Validity::Words(words) => for_each_valid(words, slots.len(), |j| {
                    let c = &mut cells[slots[j] as usize * stride + lane];
                    if c.n == 0 || vals[j].total_cmp(&c.acc_f) == Ordering::Greater {
                        c.acc_f = vals[j];
                    }
                    c.n += 1;
                }),
            },
        }
    }

    /// Gather-update for radix phase 2: `idxs[k]` is an absolute row index
    /// into the whole-column `vals`, with group slot `slots[k]`; `valid`
    /// is the whole-column word array (`None` = all valid). This is the
    /// scatter loop after partitioning, where rows are no longer
    /// contiguous.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn update_i64_gather(
        self,
        cells: &mut [KernelCell],
        stride: usize,
        lane: usize,
        slots: &[u32],
        idxs: &[u32],
        vals: &[i64],
        valid: Option<&[u64]>,
    ) {
        let bit = |i: usize| match valid {
            None => true,
            Some(words) => words[i / 64] >> (i % 64) & 1 == 1,
        };
        match self {
            Kernel::CountStar => Kernel::update_star(cells, stride, lane, slots),
            Kernel::Count => {
                for (&s, &i) in slots.iter().zip(idxs) {
                    if bit(i as usize) {
                        cells[s as usize * stride + lane].n += 1;
                    }
                }
            }
            Kernel::Sum => {
                for (&s, &i) in slots.iter().zip(idxs) {
                    if bit(i as usize) {
                        let c = &mut cells[s as usize * stride + lane];
                        c.acc_i += vals[i as usize];
                        c.n += 1;
                    }
                }
            }
            Kernel::Min => {
                for (&s, &i) in slots.iter().zip(idxs) {
                    if bit(i as usize) {
                        let c = &mut cells[s as usize * stride + lane];
                        let v = vals[i as usize];
                        if c.n == 0 || v < c.acc_i {
                            c.acc_i = v;
                        }
                        c.n += 1;
                    }
                }
            }
            Kernel::Max => {
                for (&s, &i) in slots.iter().zip(idxs) {
                    if bit(i as usize) {
                        let c = &mut cells[s as usize * stride + lane];
                        let v = vals[i as usize];
                        if c.n == 0 || v > c.acc_i {
                            c.acc_i = v;
                        }
                        c.n += 1;
                    }
                }
            }
            Kernel::Avg => {
                for (&s, &i) in slots.iter().zip(idxs) {
                    if bit(i as usize) {
                        let c = &mut cells[s as usize * stride + lane];
                        c.acc_f += vals[i as usize] as f64;
                        c.n += 1;
                    }
                }
            }
        }
    }

    /// `f64` twin of [`Kernel::update_i64_gather`].
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn update_f64_gather(
        self,
        cells: &mut [KernelCell],
        stride: usize,
        lane: usize,
        slots: &[u32],
        idxs: &[u32],
        vals: &[f64],
        valid: Option<&[u64]>,
    ) {
        use std::cmp::Ordering;
        let bit = |i: usize| match valid {
            None => true,
            Some(words) => words[i / 64] >> (i % 64) & 1 == 1,
        };
        match self {
            Kernel::CountStar => Kernel::update_star(cells, stride, lane, slots),
            Kernel::Count => {
                for (&s, &i) in slots.iter().zip(idxs) {
                    if bit(i as usize) {
                        cells[s as usize * stride + lane].n += 1;
                    }
                }
            }
            Kernel::Sum | Kernel::Avg => {
                for (&s, &i) in slots.iter().zip(idxs) {
                    if bit(i as usize) {
                        let c = &mut cells[s as usize * stride + lane];
                        c.acc_f += vals[i as usize];
                        c.n += 1;
                    }
                }
            }
            Kernel::Min => {
                for (&s, &i) in slots.iter().zip(idxs) {
                    if bit(i as usize) {
                        let c = &mut cells[s as usize * stride + lane];
                        let v = vals[i as usize];
                        if c.n == 0 || v.total_cmp(&c.acc_f) == Ordering::Less {
                            c.acc_f = v;
                        }
                        c.n += 1;
                    }
                }
            }
            Kernel::Max => {
                for (&s, &i) in slots.iter().zip(idxs) {
                    if bit(i as usize) {
                        let c = &mut cells[s as usize * stride + lane];
                        let v = vals[i as usize];
                        if c.n == 0 || v.total_cmp(&c.acc_f) == Ordering::Greater {
                            c.acc_f = v;
                        }
                        c.n += 1;
                    }
                }
            }
        }
    }

    /// COUNT(*) over a whole run: `n` rows fold in one add.
    #[inline]
    pub fn fold_star(cell: &mut KernelCell, n: i64) {
        cell.n += n;
    }

    /// Fold a fully-valid run of an `i64` column into one cell. The run's
    /// rows all belong to one group, so SUM/AVG reduce into a register
    /// before one cell write and extrema take the slice min/max — this is
    /// the RLE fast path.
    #[inline]
    pub fn fold_i64(self, cell: &mut KernelCell, vals: &[i64]) {
        let len = vals.len() as i64;
        match self {
            Kernel::Count | Kernel::CountStar => cell.n += len,
            Kernel::Sum => {
                let mut acc = 0i64;
                for &v in vals {
                    acc += v;
                }
                cell.acc_i += acc;
                cell.n += len;
            }
            Kernel::Min => {
                if let Some(&m) = vals.iter().min() {
                    if cell.n == 0 || m < cell.acc_i {
                        cell.acc_i = m;
                    }
                    cell.n += len;
                }
            }
            Kernel::Max => {
                if let Some(&m) = vals.iter().max() {
                    if cell.n == 0 || m > cell.acc_i {
                        cell.acc_i = m;
                    }
                    cell.n += len;
                }
            }
            Kernel::Avg => {
                for &v in vals {
                    cell.acc_f += v as f64;
                }
                cell.n += len;
            }
        }
    }

    /// Fold a fully-valid run of an `f64` column. SUM/AVG accumulate in
    /// row order (bit-identical to the per-row loop); extrema reduce via
    /// `total_cmp`.
    #[inline]
    pub fn fold_f64(self, cell: &mut KernelCell, vals: &[f64]) {
        use std::cmp::Ordering;
        let len = vals.len() as i64;
        match self {
            Kernel::Count | Kernel::CountStar => cell.n += len,
            Kernel::Sum | Kernel::Avg => {
                for &v in vals {
                    cell.acc_f += v;
                }
                cell.n += len;
            }
            Kernel::Min => {
                if let Some(&first) = vals.first() {
                    let m = vals[1..].iter().fold(first, |a, &b| {
                        if b.total_cmp(&a) == Ordering::Less {
                            b
                        } else {
                            a
                        }
                    });
                    if cell.n == 0 || m.total_cmp(&cell.acc_f) == Ordering::Less {
                        cell.acc_f = m;
                    }
                    cell.n += len;
                }
            }
            Kernel::Max => {
                if let Some(&first) = vals.first() {
                    let m = vals[1..].iter().fold(first, |a, &b| {
                        if b.total_cmp(&a) == Ordering::Greater {
                            b
                        } else {
                            a
                        }
                    });
                    if cell.n == 0 || m.total_cmp(&cell.acc_f) == Ordering::Greater {
                        cell.acc_f = m;
                    }
                    cell.n += len;
                }
            }
        }
    }

    /// Fold rows `start..end` of an `i64` column with nulls: validity is
    /// probed word-at-a-time against the whole-column `words`. COUNT
    /// reduces to a masked popcount.
    #[inline]
    pub fn fold_i64_masked(
        self,
        cell: &mut KernelCell,
        vals: &[i64],
        words: &[u64],
        start: usize,
        end: usize,
    ) {
        match self {
            Kernel::CountStar => cell.n += (end - start) as i64,
            Kernel::Count => cell.n += count_valid_range(words, start, end),
            Kernel::Sum => {
                let (mut acc, mut n) = (0i64, 0i64);
                for_each_valid_range(words, start, end, |i| {
                    acc += vals[i];
                    n += 1;
                });
                cell.acc_i += acc;
                cell.n += n;
            }
            Kernel::Min => for_each_valid_range(words, start, end, |i| {
                if cell.n == 0 || vals[i] < cell.acc_i {
                    cell.acc_i = vals[i];
                }
                cell.n += 1;
            }),
            Kernel::Max => for_each_valid_range(words, start, end, |i| {
                if cell.n == 0 || vals[i] > cell.acc_i {
                    cell.acc_i = vals[i];
                }
                cell.n += 1;
            }),
            Kernel::Avg => for_each_valid_range(words, start, end, |i| {
                cell.acc_f += vals[i] as f64;
                cell.n += 1;
            }),
        }
    }

    /// `f64` twin of [`Kernel::fold_i64_masked`].
    #[inline]
    pub fn fold_f64_masked(
        self,
        cell: &mut KernelCell,
        vals: &[f64],
        words: &[u64],
        start: usize,
        end: usize,
    ) {
        use std::cmp::Ordering;
        match self {
            Kernel::CountStar => cell.n += (end - start) as i64,
            Kernel::Count => cell.n += count_valid_range(words, start, end),
            Kernel::Sum | Kernel::Avg => for_each_valid_range(words, start, end, |i| {
                cell.acc_f += vals[i];
                cell.n += 1;
            }),
            Kernel::Min => for_each_valid_range(words, start, end, |i| {
                if cell.n == 0 || vals[i].total_cmp(&cell.acc_f) == Ordering::Less {
                    cell.acc_f = vals[i];
                }
                cell.n += 1;
            }),
            Kernel::Max => for_each_valid_range(words, start, end, |i| {
                if cell.n == 0 || vals[i].total_cmp(&cell.acc_f) == Ordering::Greater {
                    cell.acc_f = vals[i];
                }
                cell.n += 1;
            }),
        }
    }

    /// Fold `n` copies of one valid `i64` value — the `n × value`
    /// shortcut for a constant run (§5 dense-array insight).
    #[inline]
    pub fn fold_repeat_i64(self, cell: &mut KernelCell, v: i64, n: i64) {
        match self {
            Kernel::Count | Kernel::CountStar => cell.n += n,
            Kernel::Sum => {
                cell.acc_i += v * n;
                cell.n += n;
            }
            Kernel::Min => {
                if cell.n == 0 || v < cell.acc_i {
                    cell.acc_i = v;
                }
                cell.n += n;
            }
            Kernel::Max => {
                if cell.n == 0 || v > cell.acc_i {
                    cell.acc_i = v;
                }
                cell.n += n;
            }
            Kernel::Avg => {
                cell.acc_f += v as f64 * n as f64;
                cell.n += n;
            }
        }
    }

    /// Fold `n` copies of one valid `f64` value. The multiply replaces
    /// `n` sequential adds; for the dyadic measure values the engine's
    /// differential oracle generates this is exact, and the RLE path only
    /// engages where the caller accepts reassociated float sums.
    #[inline]
    pub fn fold_repeat_f64(self, cell: &mut KernelCell, v: f64, n: i64) {
        use std::cmp::Ordering;
        match self {
            Kernel::Count | Kernel::CountStar => cell.n += n,
            Kernel::Sum | Kernel::Avg => {
                cell.acc_f += v * n as f64;
                cell.n += n;
            }
            Kernel::Min => {
                if cell.n == 0 || v.total_cmp(&cell.acc_f) == Ordering::Less {
                    cell.acc_f = v;
                }
                cell.n += n;
            }
            Kernel::Max => {
                if cell.n == 0 || v.total_cmp(&cell.acc_f) == Ordering::Greater {
                    cell.acc_f = v;
                }
                cell.n += n;
            }
        }
    }

    /// The paper's Iter_super: fold `src` into `dst`. `float_input` says
    /// which accumulator lane the extremum kernels live in.
    #[inline]
    pub fn merge(self, dst: &mut KernelCell, src: &KernelCell, float_input: bool) {
        use std::cmp::Ordering;
        match self {
            Kernel::Count | Kernel::CountStar => dst.n += src.n,
            Kernel::Sum => {
                dst.acc_i += src.acc_i;
                dst.acc_f += src.acc_f;
                dst.n += src.n;
            }
            Kernel::Avg => {
                dst.acc_f += src.acc_f;
                dst.n += src.n;
            }
            Kernel::Min | Kernel::Max => {
                if src.n == 0 {
                    return;
                }
                if dst.n == 0 {
                    *dst = *src;
                    return;
                }
                let want = if self == Kernel::Min {
                    Ordering::Less
                } else {
                    Ordering::Greater
                };
                let replace = if float_input {
                    src.acc_f.total_cmp(&dst.acc_f) == want
                } else {
                    src.acc_i.cmp(&dst.acc_i) == want
                };
                if replace {
                    let n = dst.n + src.n;
                    *dst = *src;
                    dst.n = n;
                } else {
                    dst.n += src.n;
                }
            }
        }
    }

    /// Render a cell as the state tuple of the corresponding row-path
    /// accumulator, so `init(); acc.merge(&state)` rehydrates it exactly.
    pub fn state(self, cell: &KernelCell, float_input: bool) -> Vec<Value> {
        match self {
            Kernel::Count | Kernel::CountStar => vec![Value::Int(cell.n)],
            Kernel::Sum => vec![
                Value::Int(if float_input { 0 } else { cell.acc_i }),
                Value::Float(if float_input { cell.acc_f } else { 0.0 }),
                Value::Bool(float_input && cell.n > 0),
                Value::Int(cell.n),
            ],
            Kernel::Min | Kernel::Max => {
                if cell.n == 0 {
                    vec![Value::Null]
                } else if float_input {
                    vec![Value::Float(cell.acc_f)]
                } else {
                    vec![Value::Int(cell.acc_i)]
                }
            }
            Kernel::Avg => vec![Value::Float(cell.acc_f), Value::Int(cell.n)],
        }
    }

    /// Rehydrate a cell into a freshly Init()ed row-path accumulator.
    pub fn rehydrate(self, acc: &mut dyn Accumulator, cell: &KernelCell, float_input: bool) {
        acc.merge(&self.state(cell, float_input));
    }

    /// Final() straight from the cell — byte-for-byte what the row-path
    /// accumulator's `final_value` would return after the same inputs, so
    /// materialization can skip rehydration entirely. (SUM over a pure
    /// `Float` column matches `SumAcc`: its `int_sum` stays 0, so the
    /// float total alone is the answer.)
    pub fn final_value(self, cell: &KernelCell, float_input: bool) -> Value {
        match self {
            Kernel::Count | Kernel::CountStar => Value::Int(cell.n),
            Kernel::Sum | Kernel::Min | Kernel::Max => {
                if cell.n == 0 {
                    Value::Null // SQL: the empty set folds to NULL
                } else if float_input {
                    Value::Float(cell.acc_f)
                } else {
                    Value::Int(cell.acc_i)
                }
            }
            Kernel::Avg => {
                if cell.n == 0 {
                    Value::Null
                } else {
                    Value::Float(cell.acc_f / cell.n as f64)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;
    use dc_relation::Bitmap;

    fn bitmap(bits: &[bool]) -> Bitmap {
        let mut b = Bitmap::new();
        for &x in bits {
            b.push(x);
        }
        b
    }

    /// Drive a kernel over one group and compare Final() against the row
    /// path fed the same values.
    fn check_i64(name: &str, kernel: Kernel, vals: &[i64], valid: &[bool]) {
        let mut cells = vec![KernelCell::default()];
        let slots = vec![0u32; vals.len()];
        let b = bitmap(valid);
        kernel.update_i64(&mut cells, 1, 0, &slots, vals, Validity::Words(b.words()));
        let f = builtin(name).unwrap();
        let mut want = f.init();
        for (v, ok) in vals.iter().zip(valid) {
            want.iter(&if *ok { Value::Int(*v) } else { Value::Null });
        }
        let mut got = f.init();
        kernel.rehydrate(got.as_mut(), &cells[0], false);
        assert_eq!(
            got.final_value(),
            want.final_value(),
            "{name} over {vals:?}"
        );
        // The direct final matches the rehydrated accumulator's.
        assert_eq!(
            kernel.final_value(&cells[0], false),
            want.final_value(),
            "{name} direct final over {vals:?}"
        );
    }

    /// Same, over an `f64` column.
    fn check_f64(name: &str, kernel: Kernel, vals: &[f64], valid: &[bool]) {
        let mut cells = vec![KernelCell::default()];
        let slots = vec![0u32; vals.len()];
        let b = bitmap(valid);
        kernel.update_f64(&mut cells, 1, 0, &slots, vals, Validity::Words(b.words()));
        let f = builtin(name).unwrap();
        let mut want = f.init();
        for (v, ok) in vals.iter().zip(valid) {
            want.iter(&if *ok { Value::Float(*v) } else { Value::Null });
        }
        assert_eq!(
            kernel.final_value(&cells[0], true),
            want.final_value(),
            "{name} direct final over {vals:?}"
        );
    }

    #[test]
    fn kernels_match_row_accumulators_over_f64() {
        let vals = [1.25, -3.5, 100.0, 0.75, -3.5];
        let valid = [true, false, true, true, true];
        for (name, k) in [
            ("COUNT", Kernel::Count),
            ("SUM", Kernel::Sum),
            ("MIN", Kernel::Min),
            ("MAX", Kernel::Max),
            ("AVG", Kernel::Avg),
        ] {
            check_f64(name, k, &vals, &valid);
            check_f64(name, k, &[], &[]);
            check_f64(name, k, &[0.0, 0.0], &[false, false]);
        }
    }

    #[test]
    fn kernels_match_row_accumulators_over_i64() {
        let vals = [5, -3, 12, 7, -3];
        let valid = [true, true, false, true, true];
        for (name, k) in [
            ("COUNT", Kernel::Count),
            ("SUM", Kernel::Sum),
            ("MIN", Kernel::Min),
            ("MAX", Kernel::Max),
            ("AVG", Kernel::Avg),
        ] {
            check_i64(name, k, &vals, &valid);
            check_i64(name, k, &[], &[]);
            check_i64(name, k, &[0, 0], &[false, false]);
        }
    }

    #[test]
    fn count_star_counts_nulls_too() {
        let mut cells = vec![KernelCell::default()];
        Kernel::update_star(&mut cells, 1, 0, &[0, 0, 0]);
        assert_eq!(
            Kernel::CountStar.state(&cells[0], false),
            vec![Value::Int(3)]
        );
    }

    #[test]
    fn float_extrema_use_total_cmp() {
        let mut cells = vec![KernelCell::default()];
        let vals = [0.0, -0.0];
        let slots = [0u32, 0];
        Kernel::Min.update_f64(&mut cells, 1, 0, &slots, &vals, Validity::All);
        // total_cmp puts -0.0 below 0.0, matching Value's ordering.
        assert_eq!(cells[0].acc_f.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn merge_is_iter_super() {
        let mut a = KernelCell {
            acc_i: 10,
            acc_f: 0.0,
            n: 2,
        };
        let b = KernelCell {
            acc_i: 4,
            acc_f: 0.0,
            n: 1,
        };
        Kernel::Sum.merge(&mut a, &b, false);
        assert_eq!((a.acc_i, a.n), (14, 3));

        let mut lo = KernelCell {
            acc_i: 3,
            acc_f: 0.0,
            n: 1,
        };
        let hi = KernelCell {
            acc_i: 9,
            acc_f: 0.0,
            n: 1,
        };
        Kernel::Min.merge(&mut lo, &hi, false);
        assert_eq!(lo.acc_i, 3);
        let empty = KernelCell::default();
        Kernel::Min.merge(&mut lo, &empty, false);
        assert_eq!((lo.acc_i, lo.n), (3, 2));
    }

    const ALL_KERNELS: [Kernel; 6] = [
        Kernel::Count,
        Kernel::CountStar,
        Kernel::Sum,
        Kernel::Min,
        Kernel::Max,
        Kernel::Avg,
    ];

    /// `Validity::All` and an all-set word mask produce identical cells,
    /// across a word boundary (so both the dense-block and set-bit arms
    /// of the word walk run).
    #[test]
    fn dense_and_masked_paths_agree() {
        let n = 150usize;
        let vals_i: Vec<i64> = (0..n as i64).map(|i| i * 7 % 23 - 11).collect();
        let vals_f: Vec<f64> = vals_i.iter().map(|&i| i as f64 * 0.25).collect();
        let slots: Vec<u32> = (0..n as u32).map(|i| i % 5).collect();
        let all_set = bitmap(&vec![true; n]);
        for k in ALL_KERNELS {
            let mut dense = vec![KernelCell::default(); 5];
            let mut masked = vec![KernelCell::default(); 5];
            k.update_i64(&mut dense, 1, 0, &slots, &vals_i, Validity::All);
            k.update_i64(
                &mut masked,
                1,
                0,
                &slots,
                &vals_i,
                Validity::Words(all_set.words()),
            );
            assert_eq!(dense, masked, "{k:?} i64");

            let mut dense = vec![KernelCell::default(); 5];
            let mut masked = vec![KernelCell::default(); 5];
            k.update_f64(&mut dense, 1, 0, &slots, &vals_f, Validity::All);
            k.update_f64(
                &mut masked,
                1,
                0,
                &slots,
                &vals_f,
                Validity::Words(all_set.words()),
            );
            assert_eq!(dense, masked, "{k:?} f64");
        }
    }

    /// Gather updates match the contiguous morsel updates when fed an
    /// identity index permutation, with and without a validity mask.
    #[test]
    fn gather_matches_contiguous() {
        let n = 100usize;
        let vals_i: Vec<i64> = (0..n as i64).map(|i| i % 13 - 6).collect();
        let vals_f: Vec<f64> = vals_i.iter().map(|&i| i as f64 + 0.5).collect();
        let valid: Vec<bool> = (0..n).map(|i| i % 7 != 3).collect();
        let b = bitmap(&valid);
        let slots: Vec<u32> = (0..n as u32).map(|i| i % 4).collect();
        let idxs: Vec<u32> = (0..n as u32).collect();
        for k in ALL_KERNELS {
            for mask in [false, true] {
                let mut want = vec![KernelCell::default(); 4];
                let validity = if mask {
                    Validity::Words(b.words())
                } else {
                    Validity::All
                };
                k.update_i64(&mut want, 1, 0, &slots, &vals_i, validity);
                let mut got = vec![KernelCell::default(); 4];
                k.update_i64_gather(
                    &mut got,
                    1,
                    0,
                    &slots,
                    &idxs,
                    &vals_i,
                    mask.then(|| b.words()),
                );
                assert_eq!(got, want, "{k:?} i64 mask={mask}");

                let mut want = vec![KernelCell::default(); 4];
                k.update_f64(&mut want, 1, 0, &slots, &vals_f, validity);
                let mut got = vec![KernelCell::default(); 4];
                k.update_f64_gather(
                    &mut got,
                    1,
                    0,
                    &slots,
                    &idxs,
                    &vals_f,
                    mask.then(|| b.words()),
                );
                assert_eq!(got, want, "{k:?} f64 mask={mask}");
            }
        }
    }

    /// Whole-run folds equal the per-row update over the same rows.
    #[test]
    fn run_folds_match_per_row() {
        let n = 130usize;
        let vals_i: Vec<i64> = (0..n as i64).map(|i| (i * 31) % 17 - 8).collect();
        let vals_f: Vec<f64> = vals_i.iter().map(|&i| i as f64 * 0.5).collect();
        let slots = vec![0u32; n];
        for k in ALL_KERNELS {
            let mut want = vec![KernelCell::default()];
            k.update_i64(&mut want, 1, 0, &slots, &vals_i, Validity::All);
            let mut got = KernelCell::default();
            if k == Kernel::CountStar {
                Kernel::fold_star(&mut got, n as i64);
            } else {
                k.fold_i64(&mut got, &vals_i);
            }
            assert_eq!(got, want[0], "{k:?} i64 fold");

            let mut want = vec![KernelCell::default()];
            k.update_f64(&mut want, 1, 0, &slots, &vals_f, Validity::All);
            let mut got = KernelCell::default();
            if k == Kernel::CountStar {
                Kernel::fold_star(&mut got, n as i64);
            } else {
                k.fold_f64(&mut got, &vals_f);
            }
            assert_eq!(got, want[0], "{k:?} f64 fold");
        }
    }

    /// Masked folds over an arbitrary sub-range (unaligned start and end)
    /// equal the per-row update restricted to that range.
    #[test]
    fn masked_folds_match_per_row_over_subranges() {
        let n = 200usize;
        let vals_i: Vec<i64> = (0..n as i64).map(|i| i % 11 - 5).collect();
        let vals_f: Vec<f64> = vals_i.iter().map(|&i| i as f64 - 0.25).collect();
        let valid: Vec<bool> = (0..n).map(|i| i % 3 != 1).collect();
        let b = bitmap(&valid);
        for (start, end) in [(0usize, 64usize), (7, 70), (65, 66), (100, 200), (3, 197)] {
            let rows = end - start;
            let slots = vec![0u32; rows];
            // Reference: per-row update over a morsel-relative remask.
            let sub = bitmap(&valid[start..end]);
            for k in ALL_KERNELS {
                let mut want = vec![KernelCell::default()];
                k.update_i64(
                    &mut want,
                    1,
                    0,
                    &slots,
                    &vals_i[start..end],
                    Validity::Words(sub.words()),
                );
                let mut got = KernelCell::default();
                k.fold_i64_masked(&mut got, &vals_i, b.words(), start, end);
                assert_eq!(got, want[0], "{k:?} i64 [{start}, {end})");

                let mut want = vec![KernelCell::default()];
                k.update_f64(
                    &mut want,
                    1,
                    0,
                    &slots,
                    &vals_f[start..end],
                    Validity::Words(sub.words()),
                );
                let mut got = KernelCell::default();
                k.fold_f64_masked(&mut got, &vals_f, b.words(), start, end);
                assert_eq!(got, want[0], "{k:?} f64 [{start}, {end})");
            }
        }
    }

    /// `n × value` constant folds equal folding the expanded run.
    #[test]
    fn repeat_folds_match_expanded_runs() {
        for k in ALL_KERNELS {
            let mut want = KernelCell::default();
            k.fold_i64(&mut want, &[7i64; 33]);
            let mut got = KernelCell::default();
            k.fold_repeat_i64(&mut got, 7, 33);
            assert_eq!(got, want, "{k:?} i64 repeat");

            let mut want = KernelCell::default();
            k.fold_f64(&mut want, &[2.25f64; 16]);
            let mut got = KernelCell::default();
            k.fold_repeat_f64(&mut got, 2.25, 16);
            assert_eq!(got, want, "{k:?} f64 repeat");
        }
    }

    #[test]
    fn sum_state_rehydrates_float_path() {
        let mut cells = vec![KernelCell::default()];
        let vals = [1.25, 2.5];
        Kernel::Sum.update_f64(&mut cells, 1, 0, &[0, 0], &vals, Validity::All);
        let f = builtin("SUM").unwrap();
        let mut got = f.init();
        Kernel::Sum.rehydrate(got.as_mut(), &cells[0], true);
        assert_eq!(got.final_value(), Value::Float(3.75));
    }
}
