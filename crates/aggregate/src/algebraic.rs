//! The algebraic aggregates: AVG, VARIANCE, STDDEV, MaxN/MinN.
//!
//! §5: "Aggregate function F() is algebraic if there is an M-tuple valued
//! function G() and a function H() such that F = H({G(partition)}). ...
//! For Average, the function G() records the sum and count of the subset.
//! The key to algebraic functions is that a fixed size result (an M-tuple)
//! can summarize the sub-aggregation." Each accumulator's `state()` below
//! is exactly that M-tuple.

use crate::accumulator::{Accumulator, AggKind, AggregateFunction, Retract};
use crate::vectorized::Kernel;
use dc_relation::{DataType, Value};

fn numeric(v: &Value) -> Option<f64> {
    if v.is_null() || v.is_all() {
        None
    } else {
        v.as_f64()
    }
}

// ------------------------------------------------------------------ AVG --

/// `AVG(column)`: scratchpad is the paper's canonical `(sum, count)` pair.
pub struct Avg;

#[derive(Default)]
pub struct AvgAcc {
    sum: f64,
    n: i64,
}

impl Accumulator for AvgAcc {
    fn iter(&mut self, v: &Value) {
        if let Some(x) = numeric(v) {
            self.sum += x;
            self.n += 1;
        }
    }

    fn state(&self) -> Vec<Value> {
        vec![Value::Float(self.sum), Value::Int(self.n)]
    }

    fn merge(&mut self, state: &[Value]) {
        // H(): add components, divide at Final.
        self.sum += state[0].as_f64().unwrap_or(0.0);
        self.n += state[1].as_i64().unwrap_or(0);
    }

    fn final_value(&self) -> Value {
        if self.n == 0 {
            Value::Null
        } else {
            Value::Float(self.sum / self.n as f64)
        }
    }

    fn retract(&mut self, v: &Value) -> Retract {
        if let Some(x) = numeric(v) {
            // NaN/±Inf contributions don't subtract back out.
            if !x.is_finite() || !self.sum.is_finite() {
                return Retract::Recompute;
            }
            self.sum -= x;
            self.n -= 1;
        }
        Retract::Applied
    }
}

impl AggregateFunction for Avg {
    fn name(&self) -> &str {
        "AVG"
    }
    fn kind(&self) -> AggKind {
        AggKind::Algebraic
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(AvgAcc::default())
    }
    fn output_type(&self, _input: DataType) -> Option<DataType> {
        Some(DataType::Float)
    }
    fn retractable(&self) -> bool {
        true
    }
    fn kernel(&self) -> Option<Kernel> {
        Some(Kernel::Avg)
    }
}

// --------------------------------------------------- VARIANCE / STDDEV --

/// Population variance; scratchpad is `(count, sum, sum of squares)`.
///
/// The sum-of-squares form (rather than Welford) is chosen *because* it
/// merges exactly — the M-tuples of two partitions add componentwise,
/// which is what the cube cascade needs.
pub struct Variance;

#[derive(Default)]
pub struct VarianceAcc {
    n: i64,
    sum: f64,
    sumsq: f64,
}

impl VarianceAcc {
    fn variance(&self) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        let n = self.n as f64;
        let mean = self.sum / n;
        // Guard tiny negative results from float cancellation.
        Some((self.sumsq / n - mean * mean).max(0.0))
    }
}

impl Accumulator for VarianceAcc {
    fn iter(&mut self, v: &Value) {
        if let Some(x) = numeric(v) {
            self.n += 1;
            self.sum += x;
            self.sumsq += x * x;
        }
    }

    fn state(&self) -> Vec<Value> {
        vec![
            Value::Int(self.n),
            Value::Float(self.sum),
            Value::Float(self.sumsq),
        ]
    }

    fn merge(&mut self, state: &[Value]) {
        self.n += state[0].as_i64().unwrap_or(0);
        self.sum += state[1].as_f64().unwrap_or(0.0);
        self.sumsq += state[2].as_f64().unwrap_or(0.0);
    }

    fn final_value(&self) -> Value {
        self.variance().map_or(Value::Null, Value::Float)
    }

    fn retract(&mut self, v: &Value) -> Retract {
        if let Some(x) = numeric(v) {
            // `x * x` overflows to Inf before x does; either way the
            // subtraction can't undo a non-finite contribution.
            if !(x * x).is_finite() || !self.sum.is_finite() || !self.sumsq.is_finite() {
                return Retract::Recompute;
            }
            self.n -= 1;
            self.sum -= x;
            self.sumsq -= x * x;
        }
        Retract::Applied
    }
}

impl AggregateFunction for Variance {
    fn name(&self) -> &str {
        "VARIANCE"
    }
    fn kind(&self) -> AggKind {
        AggKind::Algebraic
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(VarianceAcc::default())
    }
    fn output_type(&self, _input: DataType) -> Option<DataType> {
        Some(DataType::Float)
    }
    fn retractable(&self) -> bool {
        true
    }
    fn cost(&self) -> u32 {
        2
    }
}

/// Population standard deviation; same scratchpad as [`Variance`].
pub struct StdDev;

pub struct StdDevAcc(VarianceAcc);

impl Accumulator for StdDevAcc {
    fn iter(&mut self, v: &Value) {
        self.0.iter(v);
    }
    fn state(&self) -> Vec<Value> {
        self.0.state()
    }
    fn merge(&mut self, state: &[Value]) {
        self.0.merge(state);
    }
    fn final_value(&self) -> Value {
        self.0
            .variance()
            .map_or(Value::Null, |v| Value::Float(v.sqrt()))
    }
    fn retract(&mut self, v: &Value) -> Retract {
        self.0.retract(v)
    }
}

impl AggregateFunction for StdDev {
    fn name(&self) -> &str {
        "STDDEV"
    }
    fn kind(&self) -> AggKind {
        AggKind::Algebraic
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(StdDevAcc(VarianceAcc::default()))
    }
    fn output_type(&self, _input: DataType) -> Option<DataType> {
        Some(DataType::Float)
    }
    fn retractable(&self) -> bool {
        true
    }
    fn cost(&self) -> u32 {
        2
    }
}

// ------------------------------------------------------------- GEOMEAN --

/// Geometric mean over positive values; scratchpad is `(Σ ln x, count)`.
/// Non-positive and non-numeric inputs are skipped (the logarithm is
/// undefined for them), mirroring how SQL aggregates skip NULLs.
pub struct GeoMean;

#[derive(Default)]
pub struct GeoMeanAcc {
    log_sum: f64,
    n: i64,
}

impl Accumulator for GeoMeanAcc {
    fn iter(&mut self, v: &Value) {
        if let Some(x) = numeric(v) {
            if x > 0.0 {
                self.log_sum += x.ln();
                self.n += 1;
            }
        }
    }

    fn state(&self) -> Vec<Value> {
        vec![Value::Float(self.log_sum), Value::Int(self.n)]
    }

    fn merge(&mut self, state: &[Value]) {
        self.log_sum += state[0].as_f64().unwrap_or(0.0);
        self.n += state[1].as_i64().unwrap_or(0);
    }

    fn final_value(&self) -> Value {
        if self.n == 0 {
            Value::Null
        } else {
            Value::Float((self.log_sum / self.n as f64).exp())
        }
    }

    fn retract(&mut self, v: &Value) -> Retract {
        if let Some(x) = numeric(v) {
            if x > 0.0 {
                let l = x.ln();
                // ln(+Inf) is Inf: not subtractable.
                if !l.is_finite() || !self.log_sum.is_finite() {
                    return Retract::Recompute;
                }
                self.log_sum -= l;
                self.n -= 1;
            }
        }
        Retract::Applied
    }
}

impl AggregateFunction for GeoMean {
    fn name(&self) -> &str {
        "GEOMEAN"
    }
    fn kind(&self) -> AggKind {
        AggKind::Algebraic
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(GeoMeanAcc::default())
    }
    fn output_type(&self, _input: DataType) -> Option<DataType> {
        Some(DataType::Float)
    }
    fn retractable(&self) -> bool {
        true
    }
    fn cost(&self) -> u32 {
        2
    }
}

// ------------------------------------------------------------ MaxN/MinN --

/// Top-N accumulator shared by [`MaxN`] and [`MinN`]. The scratchpad is the
/// current best-N list — size bounded by N, hence algebraic (§5 lists
/// "MaxN(), MinN()" among the algebraic functions).
pub struct TopNAcc {
    is_max: bool,
    n: usize,
    // Sorted best-first.
    best: Vec<Value>,
}

impl TopNAcc {
    fn new(is_max: bool, n: usize) -> Self {
        TopNAcc {
            is_max,
            n,
            best: Vec::with_capacity(n + 1),
        }
    }

    fn insert(&mut self, v: &Value) {
        if v.is_null() || v.is_all() {
            return;
        }
        let pos = self
            .best
            .binary_search_by(|b| {
                if self.is_max {
                    v.cmp(b) // descending
                } else {
                    b.cmp(v) // ascending
                }
            })
            .unwrap_or_else(|p| p);
        self.best.insert(pos, v.clone());
        self.best.truncate(self.n);
    }
}

impl Accumulator for TopNAcc {
    fn iter(&mut self, v: &Value) {
        self.insert(v);
    }

    fn state(&self) -> Vec<Value> {
        self.best.clone()
    }

    fn merge(&mut self, state: &[Value]) {
        for v in state {
            self.insert(v);
        }
    }

    /// The N-th best value (SQL scalar convention), NULL when fewer than N
    /// inputs were seen. The full list is available through `state()`.
    fn final_value(&self) -> Value {
        self.best.get(self.n - 1).cloned().unwrap_or(Value::Null)
    }

    /// Like MAX, top-N is delete-holistic: deleting a list member loses
    /// information about the runner-up beyond the list.
    fn retract(&mut self, v: &Value) -> Retract {
        if v.is_null() || v.is_all() {
            return Retract::Applied;
        }
        if self.best.contains(v) {
            Retract::Recompute
        } else {
            Retract::Applied
        }
    }
}

/// `MAXN(column)` with fixed N: the N-th largest value.
pub struct MaxN(pub usize);

impl AggregateFunction for MaxN {
    fn name(&self) -> &str {
        "MAXN"
    }
    fn kind(&self) -> AggKind {
        AggKind::Algebraic
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(TopNAcc::new(true, self.0.max(1)))
    }
}

/// `MINN(column)` with fixed N: the N-th smallest value.
pub struct MinN(pub usize);

impl AggregateFunction for MinN {
    fn name(&self) -> &str {
        "MINN"
    }
    fn kind(&self) -> AggKind {
        AggKind::Algebraic
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(TopNAcc::new(false, self.0.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(f: &dyn AggregateFunction, vals: &[i64]) -> Box<dyn Accumulator> {
        let mut acc = f.init();
        for v in vals {
            acc.iter(&Value::Int(*v));
        }
        acc
    }

    #[test]
    fn avg_is_sum_over_count() {
        let acc = feed(&Avg, &[50, 40, 85, 115]);
        assert_eq!(acc.final_value(), Value::Float(72.5));
        assert_eq!(Avg.init().final_value(), Value::Null);
    }

    #[test]
    fn avg_merge_matches_paper_example() {
        // "The H() function adds these two components and then divides."
        let mut a = feed(&Avg, &[50, 40]);
        let b = feed(&Avg, &[85, 115]);
        a.merge(&b.state());
        assert_eq!(a.final_value(), Value::Float(72.5));
    }

    #[test]
    fn variance_and_stddev() {
        let acc = feed(&Variance, &[2, 4, 4, 4, 5, 5, 7, 9]);
        assert_eq!(acc.final_value(), Value::Float(4.0));
        let acc = feed(&StdDev, &[2, 4, 4, 4, 5, 5, 7, 9]);
        assert_eq!(acc.final_value(), Value::Float(2.0));
    }

    #[test]
    fn variance_merge_equals_single_pass() {
        let mut a = feed(&Variance, &[2, 4, 4, 4]);
        let b = feed(&Variance, &[5, 5, 7, 9]);
        a.merge(&b.state());
        assert_eq!(a.final_value(), Value::Float(4.0));
    }

    #[test]
    fn maxn_minn_report_nth_value() {
        let acc = feed(&MaxN(3), &[10, 50, 20, 40, 30]);
        assert_eq!(acc.final_value(), Value::Int(30)); // 3rd largest
        assert_eq!(
            acc.state(),
            vec![Value::Int(50), Value::Int(40), Value::Int(30)]
        );
        let acc = feed(&MinN(2), &[10, 50, 20, 40]);
        assert_eq!(acc.final_value(), Value::Int(20));
        // Fewer than N inputs: NULL.
        let acc = feed(&MaxN(3), &[1]);
        assert_eq!(acc.final_value(), Value::Null);
    }

    #[test]
    fn topn_state_is_bounded() {
        // The algebraic criterion: |state| <= N regardless of input size.
        let acc = feed(&MaxN(3), &(0..1000).collect::<Vec<_>>());
        assert_eq!(acc.state().len(), 3);
    }

    #[test]
    fn topn_merge_matches_single_pass() {
        let mut a = feed(&MaxN(3), &[1, 9, 3]);
        let b = feed(&MaxN(3), &[7, 2, 8]);
        a.merge(&b.state());
        let whole = feed(&MaxN(3), &[1, 9, 3, 7, 2, 8]);
        assert_eq!(a.state(), whole.state());
    }

    #[test]
    fn topn_is_delete_holistic() {
        let mut acc = feed(&MaxN(2), &[10, 50, 20]);
        assert_eq!(acc.retract(&Value::Int(10)), Retract::Applied);
        assert_eq!(acc.retract(&Value::Int(50)), Retract::Recompute);
    }

    #[test]
    fn avg_retracts() {
        let mut acc = feed(&Avg, &[10, 20, 30]);
        assert_eq!(acc.retract(&Value::Int(30)), Retract::Applied);
        assert_eq!(acc.final_value(), Value::Float(15.0));
    }

    #[test]
    fn geomean_merges_and_retracts() {
        let acc = feed(&GeoMean, &[2, 8]);
        assert!((acc.final_value().as_f64().unwrap() - 4.0).abs() < 1e-12);
        let mut a = feed(&GeoMean, &[2]);
        let b = feed(&GeoMean, &[8]);
        a.merge(&b.state());
        assert!((a.final_value().as_f64().unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(a.retract(&Value::Int(8)), Retract::Applied);
        assert!((a.final_value().as_f64().unwrap() - 2.0).abs() < 1e-12);
        // Non-positive values are skipped, never poisoning the log-sum.
        let acc = feed(&GeoMean, &[-5, 0, 4]);
        assert_eq!(acc.final_value(), Value::Float(4.0));
    }

    #[test]
    fn tokens_do_not_participate() {
        let mut acc = Avg.init();
        acc.iter(&Value::Int(10));
        acc.iter(&Value::Null);
        acc.iter(&Value::All);
        assert_eq!(acc.final_value(), Value::Float(10.0));
    }
}
