//! The aggregate lifecycle traits: Init / Iter / Final / Iter_super.

use dc_relation::{DataType, Value};

/// The paper's §5 classification of aggregate functions.
///
/// The classification determines how a cube may be computed:
///
/// * [`AggKind::Distributive`] — `F({X}) = G({F(partition)})` for some `G`
///   (`F = G` for all of SUM/MIN/MAX; `G = SUM` for COUNT). Super-aggregates
///   fold *results* of sub-aggregates.
/// * [`AggKind::Algebraic`] — a fixed-size M-tuple `G(partition)` summarizes
///   each partition and `H` combines M-tuples (AVG carries `(sum, count)`).
///   Super-aggregates fold *scratchpads*.
/// * [`AggKind::Holistic`] — no constant-bound state summarizes a partition
///   (MEDIAN, MODE, COUNT DISTINCT). Only the 2^N algorithm applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    Distributive,
    Algebraic,
    Holistic,
}

impl AggKind {
    /// Whether super-aggregates can be computed from sub-aggregate
    /// scratchpads at all (the from-core cascade of §5 / Figure 8).
    pub fn mergeable(self) -> bool {
        // Holistic accumulators in this crate *do* implement `merge` (their
        // state is the whole multiset), but the cascade gains nothing over
        // re-scanning, which is the paper's point; algorithm selection treats
        // them as non-cascadable for cost purposes.
        true
    }

    /// True when the function's scratchpad has a constant size bound — the
    /// paper's criterion separating algebraic from holistic.
    pub fn bounded_state(self) -> bool {
        !matches!(self, AggKind::Holistic)
    }
}

/// Result of attempting to retract (delete) a value from an accumulator —
/// the §6 maintenance taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retract {
    /// The deletion was folded into the scratchpad (SUM, COUNT, AVG:
    /// "algebraic for delete").
    Applied,
    /// The scratchpad cannot answer without revisiting base data — e.g.
    /// deleting the current MAX ("max is distributive for SELECT and
    /// INSERT, but holistic for DELETE", §6). The caller must recompute
    /// this cell from base rows.
    Recompute,
    /// This accumulator does not support retraction at all.
    Unsupported,
}

/// A live scratchpad: the handle that *Init* allocates in Figure 7.
///
/// `state()` returns the paper's M-tuple: the fixed-size summary that makes
/// a function algebraic. For distributive functions the tuple is the result
/// itself (M = 1); for holistic functions it has no constant bound (the
/// whole multiset) — which is exactly the paper's definition of holistic.
pub trait Accumulator: Send + Sync {
    /// *Iter*: fold in the next value. Implementations skip `NULL` and
    /// `ALL` ("ALL, like NULL, does not participate in any aggregate except
    /// COUNT()", §3.3); `COUNT(*)` is the one accumulator that counts them.
    fn iter(&mut self, v: &Value);

    /// The scratchpad contents as a value tuple (the algebraic M-tuple).
    fn state(&self) -> Vec<Value>;

    /// *Iter_super*: fold another accumulator's `state()` into this one.
    ///
    /// Folding states rather than `&dyn Accumulator` keeps the trait
    /// object-safe and doubles as the partition-coalescing step of the
    /// paper's parallel-aggregation note.
    fn merge(&mut self, state: &[Value]);

    /// *Final*: produce the aggregate value. Non-consuming so materialized
    /// cube cells can be read repeatedly while staying maintainable.
    fn final_value(&self) -> Value;

    /// Delete `v` from the aggregate, if the scratchpad permits.
    ///
    /// Default is [`Retract::Unsupported`]; see [`Retract`] for the
    /// taxonomy.
    fn retract(&mut self, _v: &Value) -> Retract {
        Retract::Unsupported
    }
}

/// An aggregate function definition: the factory side of Figure 7.
pub trait AggregateFunction: Send + Sync {
    /// Canonical (upper-case) name, e.g. `"SUM"`.
    fn name(&self) -> &str;

    /// §5 taxonomy position.
    fn kind(&self) -> AggKind;

    /// *Init*: allocate and initialize a scratchpad.
    fn init(&self) -> Box<dyn Accumulator>;

    /// Result type given the input column type. `None` means "same as
    /// input" (MIN/MAX track their column's type).
    fn output_type(&self, input: DataType) -> Option<DataType> {
        let _ = input;
        None
    }

    /// True if every accumulator of this function supports retraction
    /// without ever requesting a recompute — §6's "algebraic for insert,
    /// update, and delete" class (COUNT, SUM, AVG...). MIN/MAX return
    /// `false`: they are delete-holistic.
    fn retractable(&self) -> bool {
        false
    }

    /// Relative evaluation cost the optimizer may use to order work; the
    /// paper notes "more sophisticated systems allow the aggregate function
    /// to declare a computation cost". Unit: arbitrary, 1 = trivial fold.
    fn cost(&self) -> u32 {
        1
    }

    /// The vectorized kernel that computes this aggregate over primitive
    /// column slices, if one exists (see [`crate::vectorized`]). `None` —
    /// the default, and the only possibility for holistic and user-defined
    /// aggregates — keeps the query on the Init/Iter/Final row path.
    fn kernel(&self) -> Option<crate::vectorized::Kernel> {
        None
    }

    /// True when [`Accumulator::merge`] genuinely folds sub-aggregate
    /// state — i.e. the paper's Iter_super is available. Every built-in
    /// merges (holistic ones carry the whole multiset as their state); a
    /// user-defined holistic aggregate built without `state()`/`merge()`
    /// does not, and its no-op `merge` would silently drop data in any
    /// merge-based plan. Algorithm selection must route such functions to
    /// a direct scan (see the cube engine's non-mergeable fallback).
    fn mergeable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(AggKind::Distributive.bounded_state());
        assert!(AggKind::Algebraic.bounded_state());
        assert!(!AggKind::Holistic.bounded_state());
    }
}
