//! User-defined aggregate functions.
//!
//! §1.2 of the paper describes the Illustra/DB2 extension mechanism —
//! register a program with Init(&handle) / Iter(&handle, value) /
//! value = Final(&handle) callbacks — and §5 adds the Iter_super(&handle,
//! &handle) call that makes a user aggregate cube-cascadable. This module
//! is that mechanism in Rust: [`UdaBuilder`] assembles the callbacks around
//! a user state type `S` (the "handle") and yields an
//! [`AggregateFunction`] indistinguishable from the built-ins.

use crate::accumulator::{Accumulator, AggKind, AggregateFunction, Retract};
use crate::error::{AggError, AggResult};
use crate::AggRef;
use dc_relation::Value;
use std::sync::Arc;

type InitFn<S> = Arc<dyn Fn() -> S + Send + Sync>;
type IterFn<S> = Arc<dyn Fn(&mut S, &Value) + Send + Sync>;
type StateFn<S> = Arc<dyn Fn(&S) -> Vec<Value> + Send + Sync>;
type MergeFn<S> = Arc<dyn Fn(&mut S, &[Value]) + Send + Sync>;
type FinalFn<S> = Arc<dyn Fn(&S) -> Value + Send + Sync>;
type RetractFn<S> = Arc<dyn Fn(&mut S, &Value) -> Retract + Send + Sync>;

/// Builder for a user-defined aggregate over handle type `S`.
///
/// Required pieces: `init` (given at construction), [`UdaBuilder::iter`],
/// and [`UdaBuilder::finalize`]. Supplying [`UdaBuilder::state`] *and*
/// [`UdaBuilder::merge`] makes the function cube-cascadable (the paper's
/// Iter_super); without them the function is treated as holistic.
/// [`UdaBuilder::retract`] opts into §6 incremental maintenance.
///
/// ```
/// use dc_aggregate::{UdaBuilder, AggKind};
/// use dc_relation::Value;
///
/// // The paper's running example: Average via a (sum, count) handle.
/// let avg = UdaBuilder::new("MY_AVG", AggKind::Algebraic, || (0.0, 0i64))
///     .iter(|s, v| {
///         if let Some(x) = v.as_f64() {
///             s.0 += x;
///             s.1 += 1;
///         }
///     })
///     .state(|s| vec![Value::Float(s.0), Value::Int(s.1)])
///     .merge(|s, st| {
///         s.0 += st[0].as_f64().unwrap_or(0.0);
///         s.1 += st[1].as_i64().unwrap_or(0);
///     })
///     .finalize(|s| {
///         if s.1 == 0 { Value::Null } else { Value::Float(s.0 / s.1 as f64) }
///     })
///     .build()
///     .unwrap();
///
/// let mut acc = avg.init();
/// for v in [2.0, 4.0] { acc.iter(&Value::Float(v)); }
/// assert_eq!(acc.final_value(), Value::Float(3.0));
/// ```
pub struct UdaBuilder<S> {
    name: String,
    kind: AggKind,
    init: InitFn<S>,
    iter: Option<IterFn<S>>,
    state: Option<StateFn<S>>,
    merge: Option<MergeFn<S>>,
    final_: Option<FinalFn<S>>,
    retract: Option<RetractFn<S>>,
    cost: u32,
}

impl<S: Send + Sync + 'static> UdaBuilder<S> {
    /// Start a definition. `init` is the paper's Init(): allocate and
    /// initialize the handle.
    pub fn new(
        name: impl Into<String>,
        kind: AggKind,
        init: impl Fn() -> S + Send + Sync + 'static,
    ) -> Self {
        UdaBuilder {
            name: name.into(),
            kind,
            init: Arc::new(init),
            iter: None,
            state: None,
            merge: None,
            final_: None,
            retract: None,
            cost: 1,
        }
    }

    /// Iter(): fold the next value into the handle.
    pub fn iter(mut self, f: impl Fn(&mut S, &Value) + Send + Sync + 'static) -> Self {
        self.iter = Some(Arc::new(f));
        self
    }

    /// Expose the handle as an M-tuple (enables Iter_super together with
    /// [`UdaBuilder::merge`]).
    pub fn state(mut self, f: impl Fn(&S) -> Vec<Value> + Send + Sync + 'static) -> Self {
        self.state = Some(Arc::new(f));
        self
    }

    /// Iter_super(): fold another handle's M-tuple into this handle.
    pub fn merge(mut self, f: impl Fn(&mut S, &[Value]) + Send + Sync + 'static) -> Self {
        self.merge = Some(Arc::new(f));
        self
    }

    /// Final(): produce the aggregate value from the handle.
    pub fn finalize(mut self, f: impl Fn(&S) -> Value + Send + Sync + 'static) -> Self {
        self.final_ = Some(Arc::new(f));
        self
    }

    /// Opt into deletion maintenance (§6).
    pub fn retract(
        mut self,
        f: impl Fn(&mut S, &Value) -> Retract + Send + Sync + 'static,
    ) -> Self {
        self.retract = Some(Arc::new(f));
        self
    }

    /// Declared evaluation cost (the paper: "so that the query optimizer
    /// knows to minimize calls to expensive functions").
    pub fn cost(mut self, cost: u32) -> Self {
        self.cost = cost;
        self
    }

    /// Validate and produce the function object.
    pub fn build(self) -> AggResult<AggRef> {
        let iter = self
            .iter
            .ok_or_else(|| AggError::Invalid(format!("UDA {}: missing iter()", self.name)))?;
        let final_ = self
            .final_
            .ok_or_else(|| AggError::Invalid(format!("UDA {}: missing finalize()", self.name)))?;
        if self.kind.bounded_state() && (self.state.is_none() || self.merge.is_none()) {
            return Err(AggError::Invalid(format!(
                "UDA {}: declared {:?} but lacks state()/merge() — \
                 a bounded-state function must supply its M-tuple",
                self.name, self.kind
            )));
        }
        Ok(Arc::new(Uda {
            name: self.name.to_uppercase(),
            kind: self.kind,
            retractable: self.retract.is_some(),
            cost: self.cost,
            init: self.init,
            iter,
            state: self.state,
            merge: self.merge,
            final_,
            retract: self.retract,
        }))
    }
}

struct Uda<S> {
    name: String,
    kind: AggKind,
    retractable: bool,
    cost: u32,
    init: InitFn<S>,
    iter: IterFn<S>,
    state: Option<StateFn<S>>,
    merge: Option<MergeFn<S>>,
    final_: FinalFn<S>,
    retract: Option<RetractFn<S>>,
}

struct UdaAcc<S> {
    handle: S,
    iter: IterFn<S>,
    state: Option<StateFn<S>>,
    merge: Option<MergeFn<S>>,
    final_: FinalFn<S>,
    retract: Option<RetractFn<S>>,
}

impl<S: Send + Sync + 'static> Accumulator for UdaAcc<S> {
    fn iter(&mut self, v: &Value) {
        #[cfg(feature = "faults")]
        crate::faults::hit("uda::iter");
        (self.iter)(&mut self.handle, v);
    }

    fn state(&self) -> Vec<Value> {
        match &self.state {
            Some(f) => f(&self.handle),
            None => Vec::new(),
        }
    }

    fn merge(&mut self, state: &[Value]) {
        #[cfg(feature = "faults")]
        crate::faults::hit("uda::merge");
        if let Some(f) = &self.merge {
            f(&mut self.handle, state);
        }
    }

    fn final_value(&self) -> Value {
        #[cfg(feature = "faults")]
        crate::faults::hit("uda::final");
        (self.final_)(&self.handle)
    }

    fn retract(&mut self, v: &Value) -> Retract {
        match &self.retract {
            Some(f) => f(&mut self.handle, v),
            None => Retract::Unsupported,
        }
    }
}

impl<S: Send + Sync + 'static> AggregateFunction for Uda<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> AggKind {
        self.kind
    }

    fn init(&self) -> Box<dyn Accumulator> {
        #[cfg(feature = "faults")]
        crate::faults::hit("uda::init");
        Box::new(UdaAcc {
            handle: (self.init)(),
            iter: Arc::clone(&self.iter),
            state: self.state.clone(),
            merge: self.merge.clone(),
            final_: Arc::clone(&self.final_),
            retract: self.retract.clone(),
        })
    }

    fn retractable(&self) -> bool {
        self.retractable
    }

    fn cost(&self) -> u32 {
        self.cost
    }

    fn mergeable(&self) -> bool {
        // Without both pieces of the Iter_super protocol the accumulator's
        // merge is a no-op — merge-based algorithms must not rely on it.
        self.state.is_some() && self.merge.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Geometric mean: an algebraic UDA carrying (sum of logs, count).
    fn geo_mean() -> AggRef {
        UdaBuilder::new("GEO_MEAN", AggKind::Algebraic, || (0.0f64, 0i64))
            .iter(|s, v| {
                if let Some(x) = v.as_f64() {
                    if x > 0.0 {
                        s.0 += x.ln();
                        s.1 += 1;
                    }
                }
            })
            .state(|s| vec![Value::Float(s.0), Value::Int(s.1)])
            .merge(|s, st| {
                s.0 += st[0].as_f64().unwrap_or(0.0);
                s.1 += st[1].as_i64().unwrap_or(0);
            })
            .finalize(|s| {
                if s.1 == 0 {
                    Value::Null
                } else {
                    Value::Float((s.0 / s.1 as f64).exp())
                }
            })
            .retract(|s, v| {
                if let Some(x) = v.as_f64() {
                    if x > 0.0 {
                        s.0 -= x.ln();
                        s.1 -= 1;
                    }
                }
                Retract::Applied
            })
            .build()
            .unwrap()
    }

    #[test]
    fn uda_full_lifecycle() {
        let f = geo_mean();
        assert_eq!(f.name(), "GEO_MEAN");
        assert_eq!(f.kind(), AggKind::Algebraic);
        assert!(f.retractable());
        let mut acc = f.init();
        for v in [2.0, 8.0] {
            acc.iter(&Value::Float(v));
        }
        let got = acc.final_value().as_f64().unwrap();
        assert!((got - 4.0).abs() < 1e-12);
    }

    #[test]
    fn uda_iter_super_merges_partitions() {
        let f = geo_mean();
        let mut a = f.init();
        a.iter(&Value::Float(2.0));
        let mut b = f.init();
        b.iter(&Value::Float(8.0));
        a.merge(&b.state());
        assert!((a.final_value().as_f64().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn uda_retract() {
        let f = geo_mean();
        let mut acc = f.init();
        for v in [2.0, 8.0, 100.0] {
            acc.iter(&Value::Float(v));
        }
        assert_eq!(acc.retract(&Value::Float(100.0)), Retract::Applied);
        assert!((acc.final_value().as_f64().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn algebraic_uda_requires_merge() {
        let res = UdaBuilder::new("BROKEN", AggKind::Algebraic, || 0i64)
            .iter(|_, _| {})
            .finalize(|_| Value::Null)
            .build();
        assert!(matches!(res, Err(AggError::Invalid(_))));
    }

    #[test]
    fn holistic_uda_without_merge_is_allowed() {
        let f = UdaBuilder::new("FIRST", AggKind::Holistic, || None::<Value>)
            .iter(|s, v| {
                if s.is_none() && !v.is_null() {
                    *s = Some(v.clone());
                }
            })
            .finalize(|s| s.clone().unwrap_or(Value::Null))
            .build()
            .unwrap();
        let mut acc = f.init();
        acc.iter(&Value::Int(7));
        acc.iter(&Value::Int(9));
        assert_eq!(acc.final_value(), Value::Int(7));
        assert_eq!(acc.retract(&Value::Int(7)), Retract::Unsupported);
        // ... but it must advertise that Iter_super is unavailable, so the
        // engine keeps it off merge-based plans.
        assert!(!f.mergeable());
    }

    #[test]
    fn uda_with_state_and_merge_is_mergeable() {
        assert!(geo_mean().mergeable());
    }

    #[test]
    fn missing_iter_or_finalize_rejected() {
        assert!(UdaBuilder::new("X", AggKind::Holistic, || ())
            .finalize(|_| Value::Null)
            .build()
            .is_err());
        assert!(UdaBuilder::new("X", AggKind::Holistic, || ())
            .iter(|_, _| {})
            .build()
            .is_err());
    }
}
