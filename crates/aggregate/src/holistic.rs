//! The holistic aggregates: MEDIAN, MODE, PERCENTILE, COUNT DISTINCT.
//!
//! §5: "Aggregate function F() is holistic if there is no constant bound on
//! the size of the storage needed to describe a sub-aggregate. Median(),
//! MostFrequent() (also called the Mode()), and Rank() are common
//! examples." These accumulators keep the whole multiset — their `state()`
//! grows with the input, which is precisely what makes them holistic and
//! why the cube cascade gives them no shortcut (benchmark C10). The paper
//! observes (§6) that practitioners usually *approximate* such functions;
//! we compute them exactly and let the benchmarks show the cost.

use crate::accumulator::{Accumulator, AggKind, AggregateFunction, Retract};
use dc_relation::{DataType, Value};
use std::collections::HashMap;

fn participates(v: &Value) -> bool {
    !v.is_null() && !v.is_all()
}

/// Multiset-backed base used by every holistic accumulator.
#[derive(Default)]
struct Bag {
    values: Vec<Value>,
}

impl Bag {
    fn push(&mut self, v: &Value) {
        if participates(v) {
            self.values.push(v.clone());
        }
    }

    fn remove_one(&mut self, v: &Value) -> bool {
        if let Some(pos) = self.values.iter().position(|x| x == v) {
            self.values.swap_remove(pos);
            true
        } else {
            false
        }
    }

    fn sorted(&self) -> Vec<Value> {
        let mut vs = self.values.clone();
        vs.sort();
        vs
    }
}

// --------------------------------------------------------------- MEDIAN --

/// `MEDIAN(column)`: middle value; for an even numeric count, the mean of
/// the two middles, otherwise the lower middle.
pub struct Median;

#[derive(Default)]
pub struct MedianAcc {
    bag: Bag,
}

impl Accumulator for MedianAcc {
    fn iter(&mut self, v: &Value) {
        self.bag.push(v);
    }

    fn state(&self) -> Vec<Value> {
        // Unbounded: the whole multiset. This is the holistic signature.
        self.bag.values.clone()
    }

    fn merge(&mut self, state: &[Value]) {
        self.bag.values.extend_from_slice(state);
    }

    fn final_value(&self) -> Value {
        let sorted = self.bag.sorted();
        let n = sorted.len();
        if n == 0 {
            return Value::Null;
        }
        if n % 2 == 1 {
            return sorted[n / 2].clone();
        }
        let (lo, hi) = (&sorted[n / 2 - 1], &sorted[n / 2]);
        match (lo.as_f64(), hi.as_f64()) {
            (Some(a), Some(b)) => Value::Float((a + b) / 2.0),
            _ => lo.clone(),
        }
    }

    /// Exact holistic state makes retraction possible (we keep everything),
    /// so maintenance *works* — it is just as expensive as recomputation,
    /// which is the paper's cost point, not an impossibility claim.
    fn retract(&mut self, v: &Value) -> Retract {
        if !participates(v) || self.bag.remove_one(v) {
            Retract::Applied
        } else {
            Retract::Recompute
        }
    }
}

impl AggregateFunction for Median {
    fn name(&self) -> &str {
        "MEDIAN"
    }
    fn kind(&self) -> AggKind {
        AggKind::Holistic
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(MedianAcc::default())
    }
    fn cost(&self) -> u32 {
        8
    }
}

// ----------------------------------------------------------------- MODE --

/// `MODE(column)` — the paper's MostFrequent(). Ties break to the smallest
/// value so the result is deterministic.
pub struct Mode;

#[derive(Default)]
pub struct ModeAcc {
    bag: Bag,
}

impl Accumulator for ModeAcc {
    fn iter(&mut self, v: &Value) {
        self.bag.push(v);
    }

    fn state(&self) -> Vec<Value> {
        self.bag.values.clone()
    }

    fn merge(&mut self, state: &[Value]) {
        self.bag.values.extend_from_slice(state);
    }

    fn final_value(&self) -> Value {
        let mut counts: HashMap<&Value, usize> = HashMap::new();
        for v in &self.bag.values {
            *counts.entry(v).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .max_by(|(va, ca), (vb, cb)| ca.cmp(cb).then_with(|| vb.cmp(va)))
            .map_or(Value::Null, |(v, _)| v.clone())
    }

    fn retract(&mut self, v: &Value) -> Retract {
        if !participates(v) || self.bag.remove_one(v) {
            Retract::Applied
        } else {
            Retract::Recompute
        }
    }
}

impl AggregateFunction for Mode {
    fn name(&self) -> &str {
        "MODE"
    }
    fn kind(&self) -> AggKind {
        AggKind::Holistic
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(ModeAcc::default())
    }
    fn cost(&self) -> u32 {
        8
    }
}

// ----------------------------------------------------------- PERCENTILE --

/// `PERCENTILE(column)` at a fixed fraction `p` in (0, 1], nearest-rank
/// method. `PERCENTILE(0.5)` is the lower-median; RANK-style questions
/// ("the middle 10% of temperatures", §1.2) are asked through this and
/// [`crate::ordered::n_tile`].
pub struct Percentile(pub f64);

pub struct PercentileAcc {
    p: f64,
    bag: Bag,
}

impl Accumulator for PercentileAcc {
    fn iter(&mut self, v: &Value) {
        self.bag.push(v);
    }

    fn state(&self) -> Vec<Value> {
        self.bag.values.clone()
    }

    fn merge(&mut self, state: &[Value]) {
        self.bag.values.extend_from_slice(state);
    }

    fn final_value(&self) -> Value {
        let sorted = self.bag.sorted();
        if sorted.is_empty() {
            return Value::Null;
        }
        let rank = ((self.p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1].clone()
    }

    fn retract(&mut self, v: &Value) -> Retract {
        if !participates(v) || self.bag.remove_one(v) {
            Retract::Applied
        } else {
            Retract::Recompute
        }
    }
}

impl AggregateFunction for Percentile {
    fn name(&self) -> &str {
        "PERCENTILE"
    }
    fn kind(&self) -> AggKind {
        AggKind::Holistic
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(PercentileAcc {
            p: self.0.clamp(f64::MIN_POSITIVE, 1.0),
            bag: Bag::default(),
        })
    }
    fn cost(&self) -> u32 {
        8
    }
}

// ------------------------------------------------------- COUNT DISTINCT --

/// `COUNT(DISTINCT column)` (§1.1's "aggregation over distinct values").
/// Holistic: the set of seen values has no constant bound.
pub struct CountDistinct;

#[derive(Default)]
pub struct CountDistinctAcc {
    seen: HashMap<Value, usize>,
}

impl Accumulator for CountDistinctAcc {
    fn iter(&mut self, v: &Value) {
        if participates(v) {
            *self.seen.entry(v.clone()).or_insert(0) += 1;
        }
    }

    fn state(&self) -> Vec<Value> {
        // Distinct values with multiplicities flattened as (v, count) pairs
        // so merge preserves retractability.
        let mut out = Vec::with_capacity(self.seen.len() * 2);
        for (v, c) in &self.seen {
            out.push(v.clone());
            out.push(Value::Int(*c as i64));
        }
        out
    }

    fn merge(&mut self, state: &[Value]) {
        for pair in state.chunks_exact(2) {
            let c = pair[1].as_i64().unwrap_or(0) as usize;
            *self.seen.entry(pair[0].clone()).or_insert(0) += c;
        }
    }

    fn final_value(&self) -> Value {
        Value::Int(self.seen.len() as i64)
    }

    fn retract(&mut self, v: &Value) -> Retract {
        if !participates(v) {
            return Retract::Applied;
        }
        match self.seen.get_mut(v) {
            Some(c) if *c > 1 => {
                *c -= 1;
                Retract::Applied
            }
            Some(_) => {
                self.seen.remove(v);
                Retract::Applied
            }
            None => Retract::Recompute,
        }
    }
}

impl AggregateFunction for CountDistinct {
    fn name(&self) -> &str {
        "COUNT DISTINCT"
    }
    fn kind(&self) -> AggKind {
        AggKind::Holistic
    }
    fn init(&self) -> Box<dyn Accumulator> {
        Box::new(CountDistinctAcc::default())
    }
    fn output_type(&self, _input: DataType) -> Option<DataType> {
        Some(DataType::Int)
    }
    fn cost(&self) -> u32 {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(f: &dyn AggregateFunction, vals: &[i64]) -> Box<dyn Accumulator> {
        let mut acc = f.init();
        for v in vals {
            acc.iter(&Value::Int(*v));
        }
        acc
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(feed(&Median, &[3, 1, 2]).final_value(), Value::Int(2));
        assert_eq!(
            feed(&Median, &[4, 1, 2, 3]).final_value(),
            Value::Float(2.5)
        );
        assert_eq!(Median.init().final_value(), Value::Null);
    }

    #[test]
    fn median_non_numeric_takes_lower_middle() {
        let mut acc = Median.init();
        for s in ["b", "a", "d", "c"] {
            acc.iter(&Value::str(s));
        }
        assert_eq!(acc.final_value(), Value::str("b"));
    }

    #[test]
    fn mode_picks_most_frequent_deterministically() {
        assert_eq!(feed(&Mode, &[1, 2, 2, 3]).final_value(), Value::Int(2));
        // Tie: smallest wins.
        assert_eq!(feed(&Mode, &[3, 1, 3, 1]).final_value(), Value::Int(1));
        assert_eq!(Mode.init().final_value(), Value::Null);
    }

    #[test]
    fn percentile_nearest_rank() {
        let acc = feed(&Percentile(0.5), &(1..=10).collect::<Vec<_>>());
        assert_eq!(acc.final_value(), Value::Int(5));
        let acc = feed(&Percentile(0.9), &(1..=10).collect::<Vec<_>>());
        assert_eq!(acc.final_value(), Value::Int(9));
        let acc = feed(&Percentile(1.0), &(1..=10).collect::<Vec<_>>());
        assert_eq!(acc.final_value(), Value::Int(10));
    }

    #[test]
    fn count_distinct() {
        let acc = feed(&CountDistinct, &[1, 2, 2, 3, 3, 3]);
        assert_eq!(acc.final_value(), Value::Int(3));
    }

    #[test]
    fn count_distinct_merge_and_retract() {
        let mut a = feed(&CountDistinct, &[1, 2]);
        let b = feed(&CountDistinct, &[2, 3]);
        a.merge(&b.state());
        assert_eq!(a.final_value(), Value::Int(3));
        // 2 has multiplicity 2: one retraction keeps it distinct.
        assert_eq!(a.retract(&Value::Int(2)), Retract::Applied);
        assert_eq!(a.final_value(), Value::Int(3));
        assert_eq!(a.retract(&Value::Int(2)), Retract::Applied);
        assert_eq!(a.final_value(), Value::Int(2));
        assert_eq!(a.retract(&Value::Int(99)), Retract::Recompute);
    }

    #[test]
    fn holistic_state_is_unbounded() {
        // The defining property: state size tracks input size.
        let small = feed(&Median, &[1, 2, 3]).state().len();
        let large = feed(&Median, &(0..100).collect::<Vec<_>>()).state().len();
        assert_eq!(small, 3);
        assert_eq!(large, 100);
    }

    #[test]
    fn holistic_merge_matches_single_pass() {
        let mut a = feed(&Median, &[1, 5, 3]);
        let b = feed(&Median, &[2, 4]);
        a.merge(&b.state());
        assert_eq!(a.final_value(), Value::Int(3));
    }

    #[test]
    fn median_retract() {
        let mut acc = feed(&Median, &[1, 2, 3, 4, 5]);
        assert_eq!(acc.retract(&Value::Int(5)), Retract::Applied);
        assert_eq!(acc.final_value(), Value::Float(2.5));
        assert_eq!(acc.retract(&Value::Int(42)), Retract::Recompute);
    }
}
