//! Name → aggregate-function registry.
//!
//! Mirrors the paper's observation that "some systems allow users to add
//! new aggregation functions" (§1.2): the SQL layer resolves aggregate
//! names here, and user-defined aggregates built with
//! [`crate::UdaBuilder`] register alongside the standard five.

use crate::algebraic::{Avg, GeoMean, StdDev, Variance};
use crate::distributive::{BoolAgg, Count, CountStar, Max, Min, Product, Sum};
use crate::error::{AggError, AggResult};
use crate::holistic::{CountDistinct, Median, Mode};
use crate::AggRef;
use std::collections::HashMap;
use std::sync::Arc;

/// A case-insensitive registry of aggregate functions.
#[derive(Clone, Default)]
pub struct Registry {
    map: HashMap<String, AggRef>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register a function under its canonical name; duplicate names are an
    /// error so a UDA cannot silently shadow a built-in.
    pub fn register(&mut self, f: AggRef) -> AggResult<()> {
        let key = f.name().to_uppercase();
        if self.map.contains_key(&key) {
            return Err(AggError::DuplicateFunction(key));
        }
        self.map.insert(key, f);
        Ok(())
    }

    /// Look up a function, case-insensitively.
    pub fn get(&self, name: &str) -> AggResult<AggRef> {
        self.map
            .get(&name.to_uppercase())
            .cloned()
            .ok_or_else(|| AggError::UnknownFunction(name.to_string()))
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.map.values().map(|f| f.name()).collect();
        v.sort_unstable();
        v
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The built-in functions: SQL's standard five (§1.1) plus the statistical
/// and holistic extensions the paper discusses.
pub fn builtins() -> Registry {
    let mut r = Registry::new();
    let fns: Vec<AggRef> = vec![
        Arc::new(Count),
        Arc::new(CountStar),
        Arc::new(Sum),
        Arc::new(Min),
        Arc::new(Max),
        Arc::new(Avg),
        Arc::new(Variance),
        Arc::new(StdDev),
        Arc::new(Median),
        Arc::new(Mode),
        Arc::new(CountDistinct),
        Arc::new(Product),
        Arc::new(BoolAgg::<true>),  // EVERY
        Arc::new(BoolAgg::<false>), // SOME
        Arc::new(GeoMean),
    ];
    for f in fns {
        // cube-lint: allow(panic, static list of distinct built-in names; covered by registry tests)
        r.register(f).expect("built-in names are unique");
    }
    r
}

/// Convenience: resolve one of the built-ins directly.
pub fn builtin(name: &str) -> AggResult<AggRef> {
    builtins().get(name)
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("functions", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulator::AggKind;
    use crate::UdaBuilder;
    use dc_relation::Value;

    #[test]
    fn builtins_present_and_case_insensitive() {
        let r = builtins();
        assert_eq!(r.len(), 15);
        assert_eq!(r.get("sum").unwrap().name(), "SUM");
        assert_eq!(r.get("Avg").unwrap().name(), "AVG");
        assert!(r.get("NOPE").is_err());
    }

    #[test]
    fn kinds_match_the_paper_taxonomy() {
        let r = builtins();
        for name in ["COUNT", "SUM", "MIN", "MAX", "PRODUCT", "EVERY", "SOME"] {
            assert_eq!(r.get(name).unwrap().kind(), AggKind::Distributive, "{name}");
        }
        for name in ["AVG", "VARIANCE", "STDDEV", "GEOMEAN"] {
            assert_eq!(r.get(name).unwrap().kind(), AggKind::Algebraic, "{name}");
        }
        for name in ["MEDIAN", "MODE", "COUNT DISTINCT"] {
            assert_eq!(r.get(name).unwrap().kind(), AggKind::Holistic, "{name}");
        }
    }

    #[test]
    fn uda_registers_but_cannot_shadow() {
        let mut r = builtins();
        let f = UdaBuilder::new("MY_FIRST", AggKind::Holistic, || None::<Value>)
            .iter(|s, v| {
                if s.is_none() {
                    *s = Some(v.clone());
                }
            })
            .finalize(|s| s.clone().unwrap_or(Value::Null))
            .build()
            .unwrap();
        r.register(f.clone()).unwrap();
        assert!(r.get("my_first").is_ok());
        assert!(matches!(r.register(f), Err(AggError::DuplicateFunction(_))));
    }
}
