//! Canonical comparison of aggregate results.
//!
//! Cube algorithms are interchangeable *as relations*, but float
//! aggregates reach their result through different association trees: a
//! partition-parallel SUM adds partials in a different order than a serial
//! scan, and transcendental folds (GEOMEAN's Σln x) reassociate under the
//! from-core cascade. IEEE addition is not associative, so bitwise
//! equality is the wrong spec — results are "the same" when they are
//! within a few ULPs (or a small relative band for transcendental noise).
//! Everything else — NULL, ALL, ints, strings, NaN-ness, zero signs on
//! *group keys* — must match exactly; this module only relaxes float
//! *aggregate* cells, and deliberately treats NaN == NaN and -0.0 == +0.0
//! (one value, two encodings, per IEEE `==`).

use dc_relation::Value;

/// True when two aggregate floats denote the same result.
///
/// * NaN equals NaN (any payload), and nothing else.
/// * `a == b` covers exact matches, ±0.0, and equal infinities.
/// * Otherwise both must be finite and within `max_ulps` units in the
///   last place, or within a `1e-9` relative band — merge-order noise on
///   an n-element transcendental fold scales like `n·ε·|Σ|`, which can
///   exceed any small fixed ULP count while real divergences are
///   wholesale different values.
pub fn floats_close(a: f64, b: f64, max_ulps: u64) -> bool {
    if a.is_nan() || b.is_nan() {
        return a.is_nan() && b.is_nan();
    }
    if a == b {
        return true;
    }
    if a.is_infinite() || b.is_infinite() {
        return false;
    }
    if ulps_apart(a, b) <= max_ulps {
        return true;
    }
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Distance in representable values between two finite floats, sign
/// included (so `-x` and `+x` are far apart, and values straddling zero
/// are measured through it).
fn ulps_apart(a: f64, b: f64) -> u64 {
    // Map the float line onto a monotone integer line: non-negative
    // floats keep their bit pattern, negative floats are mirrored below
    // zero. Adjacent representable values then differ by exactly 1.
    fn monotone(x: f64) -> i128 {
        let bits = x.to_bits() as i64;
        let key = if bits < 0 { i64::MIN - bits } else { bits };
        key as i128
    }
    monotone(a).abs_diff(monotone(b)).min(u64::MAX as u128) as u64
}

/// Cell-level comparison: float cells get [`floats_close`], everything
/// else compares by the relation's own equality (which already treats
/// numerically equal Int/Float as equal).
pub fn value_close(a: &Value, b: &Value, max_ulps: u64) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => floats_close(*x, *y, max_ulps),
        (Value::Float(x), Value::Int(y)) | (Value::Int(y), Value::Float(x)) => {
            floats_close(*x, *y as f64, max_ulps)
        }
        // cube-lint: allow(wildcard, defers to Value equality which is variant-exhaustive)
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_equals_nan_only() {
        assert!(floats_close(f64::NAN, f64::NAN, 0));
        assert!(floats_close(f64::NAN, -f64::NAN, 0));
        assert!(!floats_close(f64::NAN, 1.0, u64::MAX));
        assert!(!floats_close(0.0, f64::NAN, u64::MAX));
    }

    #[test]
    fn zero_signs_and_infinities() {
        assert!(floats_close(0.0, -0.0, 0));
        assert!(floats_close(f64::INFINITY, f64::INFINITY, 0));
        assert!(!floats_close(f64::INFINITY, f64::NEG_INFINITY, u64::MAX));
        assert!(!floats_close(f64::INFINITY, 1e308, 64));
    }

    #[test]
    fn ulp_distance_is_tight() {
        let x = 1.0f64;
        let next = f64::from_bits(x.to_bits() + 1);
        assert!(floats_close(x, next, 1));
        assert!(!floats_close(x, 2.0, 64));
        // Across zero: -ε to +ε is two steps away from either sign.
        let eps = f64::from_bits(1);
        assert!(floats_close(eps, -eps, 2));
        assert!(!floats_close(1.0, -1.0, 1000));
    }

    #[test]
    fn relative_band_absorbs_merge_order_noise() {
        // A reassociated 200-term sum can drift ~n·ε relative.
        let a = 1234.5678;
        let b = a * (1.0 + 3e-13);
        assert!(floats_close(a, b, 32));
        // But a real divergence (1%) never passes.
        assert!(!floats_close(100.0, 101.0, 32));
    }

    #[test]
    fn value_close_mixes_numeric_types_but_not_others() {
        assert!(value_close(&Value::Int(3), &Value::Float(3.0), 0));
        assert!(value_close(&Value::Null, &Value::Null, 0));
        assert!(value_close(&Value::All, &Value::All, 0));
        assert!(!value_close(&Value::Null, &Value::All, u64::MAX));
        assert!(!value_close(&Value::str("a"), &Value::str("b"), u64::MAX));
    }
}
