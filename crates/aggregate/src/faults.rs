//! Fault-injection failpoints (test support, behind the `faults` feature).
//!
//! A failpoint is a named site in the engine — `uda::iter`, `core::scan`,
//! `parallel::worker`, ... — where a test can *arm* a [`Fault`] that fires
//! the next time execution passes through. Three fault shapes cover the
//! failure modes the governance layer must absorb:
//!
//! * [`Fault::Panic`] — the site panics, as a buggy user-defined aggregate
//!   would; the engine must convert it into `CubeError::AggPanicked`.
//! * [`Fault::SleepMs`] — the site stalls, simulating a slow worker; the
//!   engine must still honour deadlines and cancellation.
//! * [`Fault::TripBudget`] — the site reports a spent budget; the engine
//!   must unwind with `CubeError::ResourceExhausted`.
//!
//! The registry is global, so tests that arm faults must serialize (the
//! fault suites hold a `Mutex` for the duration of each scenario) and
//! disarm with [`disarm_all`] before releasing it. When no fault is armed
//! the fast path is one relaxed atomic load.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// What an armed failpoint does when execution reaches it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Panic with this message (stays armed; every hit panics).
    Panic(String),
    /// Sleep this many milliseconds, then continue (a slow worker).
    SleepMs(u64),
    /// Report the budget as spent: [`hit`] returns `true` and the caller
    /// is expected to unwind with a resource-exhausted error.
    TripBudget,
}

/// Every failpoint site in the engine, by name. `cube_lint` (rule R3)
/// cross-checks this list against the `failpoint("…")` / `faults::hit("…")`
/// call sites in the workspace: a site referenced but not listed here, a
/// listed name no longer referenced, or a duplicate entry all fail the
/// lint — so this registry can never drift from the code.
pub const SITES: &[&str] = &[
    "uda::init",
    "uda::iter",
    "uda::merge",
    "uda::final",
    "core::scan",
    "materialize",
    "cascade::level",
    "array::sweep",
    "sort::scan",
    "naive::scan",
    "unions::scan",
    "parallel::worker",
    "vectorized::morsel",
    "vectorized::radix_partition",
    "vectorized::rle_run",
    "pipesort::pipeline",
    "service::admit",
    "service::queue_wait",
    "service::respond",
    "cache::lookup",
    "cache::rewrite",
    "cache::evict",
    "cache::absorb",
    "maintain::batch_fold",
    "maintain::shard_lock",
    "maintain::recompute",
];

/// Count of armed sites — the fast-path guard. Zero means every failpoint
/// is a single relaxed load.
static ARMED: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<HashMap<String, Fault>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Fault>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arm `fault` at `site`. Replaces any fault already armed there.
pub fn arm(site: &str, fault: Fault) {
    let mut map = registry().lock().unwrap_or_else(|p| p.into_inner());
    if map.insert(site.to_string(), fault).is_none() {
        ARMED.fetch_add(1, Ordering::SeqCst);
    }
}

/// Disarm every failpoint. Tests call this before releasing the suite
/// mutex so one scenario can never leak into the next.
pub fn disarm_all() {
    let mut map = registry().lock().unwrap_or_else(|p| p.into_inner());
    if !map.is_empty() {
        ARMED.fetch_sub(map.len(), Ordering::SeqCst);
        map.clear();
    }
}

/// Execute the failpoint at `site`: panics or sleeps in place per the
/// armed [`Fault`], and returns `true` when an armed [`Fault::TripBudget`]
/// asks the caller to unwind as if a resource budget were exhausted.
/// Returns `false` (for free) when nothing is armed.
pub fn hit(site: &str) -> bool {
    // cube-lint: allow(atomic, lock-free fast path; arming happens under the registry mutex and armed paths re-read it there)
    if ARMED.load(Ordering::Relaxed) == 0 {
        return false;
    }
    let fault = {
        let map = registry().lock().unwrap_or_else(|p| p.into_inner());
        map.get(site).cloned()
    };
    match fault {
        None => false,
        // cube-lint: allow(panic, the Panic fault exists to panic; callers guard it)
        Some(Fault::Panic(msg)) => panic!("injected fault at {site}: {msg}"),
        Some(Fault::SleepMs(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            false
        }
        Some(Fault::TripBudget) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The registry is process-global; serialize these tests.
    fn lock() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn unarmed_sites_are_free() {
        let _g = lock();
        disarm_all();
        assert!(!hit("nowhere"));
    }

    #[test]
    fn trip_budget_reports_once_armed() {
        let _g = lock();
        arm("site::a", Fault::TripBudget);
        assert!(hit("site::a"));
        assert!(!hit("site::b"));
        disarm_all();
        assert!(!hit("site::a"));
    }

    #[test]
    fn registry_is_duplicate_free_and_covers_maintenance_sites() {
        let mut sorted: Vec<&str> = SITES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), SITES.len(), "duplicate SITES entry");

        // The incremental-maintenance sites must stay registered: the
        // fault suites drive crash-consistency scenarios through each,
        // and rule R3 cross-checks them against the code.
        let _g = lock();
        for site in [
            "cache::absorb",
            "maintain::batch_fold",
            "maintain::shard_lock",
            "maintain::recompute",
        ] {
            assert!(SITES.contains(&site), "{site} missing from SITES");
            arm(site, Fault::TripBudget);
            assert!(hit(site), "{site} did not fire once armed");
        }
        disarm_all();
    }

    #[test]
    fn panic_fault_panics_with_site_name() {
        let _g = lock();
        arm("site::boom", Fault::Panic("kaboom".into()));
        let err = std::panic::catch_unwind(|| hit("site::boom")).unwrap_err();
        disarm_all();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("site::boom") && msg.contains("kaboom"),
            "{msg}"
        );
    }
}
