//! Red Brick's ordered aggregates (§1.2): RANK, N_TILE, RATIO_TO_TOTAL,
//! and the cumulative family (CUMULATIVE, RUNNING_SUM, RUNNING_AVERAGE).
//!
//! These differ from the Init/Iter/Final aggregates: they map a whole
//! ordered column to a column of the same length, and they may be "reset
//! each time a grouping value changes in an ordered selection" — provided
//! here by [`segmented`]. The paper points out (§3) that the cumulative
//! family "works especially well with ROLLUP because the answer set is
//! naturally sequential (linear)".

use crate::error::{AggError, AggResult};
use dc_relation::Value;

fn numeric(v: &Value) -> Option<f64> {
    if v.is_null() || v.is_all() {
        None
    } else {
        v.as_f64()
    }
}

/// Red Brick `Rank(expression)`: "If there are N values in the column, and
/// this is the highest value, the rank is N, if it is the lowest value the
/// rank is 1." Ties share the lowest applicable rank; NULL/ALL rank as
/// NULL.
pub fn rank(values: &[Value]) -> Vec<Value> {
    values
        .iter()
        .map(|v| {
            if v.is_null() || v.is_all() {
                return Value::Null;
            }
            let below = values
                .iter()
                .filter(|o| !o.is_null() && !o.is_all() && *o < v)
                .count();
            Value::Int(below as i64 + 1)
        })
        .collect()
}

/// Red Brick `N_tile(expression, n)`: divide the value range into `n`
/// buckets "of approximately equal population" and return each value's
/// bucket number, 1-based. Ties land in the same bucket. The paper notes
/// Red Brick ships only `N_tile(expression, 3)`; we allow any `n >= 1`.
pub fn n_tile(values: &[Value], n: usize) -> AggResult<Vec<Value>> {
    if n == 0 {
        return Err(AggError::Invalid("N_TILE requires n >= 1".into()));
    }
    let total = values
        .iter()
        .filter(|v| !v.is_null() && !v.is_all())
        .count();
    Ok(values
        .iter()
        .map(|v| {
            if v.is_null() || v.is_all() || total == 0 {
                return Value::Null;
            }
            // Min-rank of ties keeps equal values in one bucket.
            let below = values
                .iter()
                .filter(|o| !o.is_null() && !o.is_all() && *o < v)
                .count();
            Value::Int((below * n / total) as i64 + 1)
        })
        .collect())
}

/// Red Brick `Ratio_To_Total(expression)`: "Sums all the expressions. Then
/// for each instance, divides the expression instance by the total sum."
pub fn ratio_to_total(values: &[Value]) -> Vec<Value> {
    let total: f64 = values.iter().filter_map(numeric).sum();
    values
        .iter()
        .map(|v| match numeric(v) {
            Some(x) if total != 0.0 => Value::Float(x / total),
            _ => Value::Null,
        })
        .collect()
}

/// Red Brick `Cumulative(expression)`: prefix sums over the given order.
/// NULLs contribute nothing and yield the running total unchanged.
pub fn cumulative(values: &[Value]) -> Vec<Value> {
    let mut sum = 0.0;
    let mut seen_any = false;
    values
        .iter()
        .map(|v| {
            if let Some(x) = numeric(v) {
                sum += x;
                seen_any = true;
            }
            if seen_any {
                Value::Float(sum)
            } else {
                Value::Null
            }
        })
        .collect()
}

/// Red Brick `Running_Sum(expression, n)`: sum of the most recent `n`
/// values. "The initial n-1 values are NULL."
pub fn running_sum(values: &[Value], n: usize) -> AggResult<Vec<Value>> {
    running_window(values, n, |window| window.iter().sum())
}

/// Red Brick `Running_Average(expression, n)`: mean of the most recent `n`
/// values. "The initial n-1 values are NULL."
pub fn running_average(values: &[Value], n: usize) -> AggResult<Vec<Value>> {
    running_window(values, n, |window| {
        window.iter().sum::<f64>() / window.len() as f64
    })
}

fn running_window(values: &[Value], n: usize, f: impl Fn(&[f64]) -> f64) -> AggResult<Vec<Value>> {
    if n == 0 {
        return Err(AggError::Invalid("running window requires n >= 1".into()));
    }
    let nums: Vec<Option<f64>> = values.iter().map(numeric).collect();
    Ok((0..values.len())
        .map(|i| {
            if i + 1 < n {
                return Value::Null; // the initial n-1 values
            }
            let window: Option<Vec<f64>> = nums[i + 1 - n..=i].iter().copied().collect();
            match window {
                Some(w) => Value::Float(f(&w)),
                None => Value::Null, // a NULL inside the window poisons it
            }
        })
        .collect())
}

/// Apply an ordered aggregate per group run: "These aggregate functions are
/// optionally reset each time a grouping value changes in an ordered
/// selection." `keys` must be ordered so equal keys are adjacent (i.e. the
/// input is sorted by the grouping columns, as ROLLUP output naturally is).
pub fn segmented(
    values: &[Value],
    keys: &[Value],
    f: impl Fn(&[Value]) -> Vec<Value>,
) -> Vec<Value> {
    assert_eq!(values.len(), keys.len(), "values and keys must align");
    let mut out = Vec::with_capacity(values.len());
    let mut start = 0;
    while start < values.len() {
        let mut end = start + 1;
        while end < values.len() && keys[end] == keys[start] {
            end += 1;
        }
        out.extend(f(&values[start..end]));
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(xs: &[i64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::Int(x)).collect()
    }

    #[test]
    fn rank_lowest_is_one_highest_is_n() {
        let r = rank(&ints(&[30, 10, 20]));
        assert_eq!(r, ints(&[3, 1, 2]));
    }

    #[test]
    fn rank_ties_share_min_rank_and_nulls_pass_through() {
        let mut vals = ints(&[10, 20, 20, 30]);
        vals.push(Value::Null);
        let r = rank(&vals);
        assert_eq!(r[..4], ints(&[1, 2, 2, 4])[..]);
        assert_eq!(r[4], Value::Null);
    }

    #[test]
    fn n_tile_splits_population() {
        // 10 values into 10 tiles: each value its own tile — the paper's
        // bank-balance example ("among the largest 10% ... would return 10").
        let vals = ints(&(1..=10).collect::<Vec<_>>());
        let t = n_tile(&vals, 10).unwrap();
        assert_eq!(t, ints(&(1..=10).collect::<Vec<_>>()));
        // Red Brick's actual N_tile(expr, 3).
        let t3 = n_tile(&ints(&[1, 2, 3, 4, 5, 6]), 3).unwrap();
        assert_eq!(t3, ints(&[1, 1, 2, 2, 3, 3]));
        assert!(n_tile(&vals, 0).is_err());
    }

    #[test]
    fn n_tile_ties_stay_together() {
        let t = n_tile(&ints(&[5, 5, 5, 5]), 2).unwrap();
        assert!(t.iter().all(|v| *v == Value::Int(1)));
    }

    #[test]
    fn ratio_to_total_sums_to_one() {
        let r = ratio_to_total(&ints(&[50, 40, 85, 115]));
        let total: f64 = r.iter().map(|v| v.as_f64().unwrap()).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(r[0], Value::Float(50.0 / 290.0));
    }

    #[test]
    fn cumulative_is_prefix_sum() {
        let c = cumulative(&ints(&[1, 2, 3]));
        assert_eq!(
            c,
            vec![Value::Float(1.0), Value::Float(3.0), Value::Float(6.0)]
        );
        // Leading NULL yields NULL, then sums resume.
        let mut vals = vec![Value::Null];
        vals.extend(ints(&[5, 7]));
        let c = cumulative(&vals);
        assert_eq!(c, vec![Value::Null, Value::Float(5.0), Value::Float(12.0)]);
    }

    #[test]
    fn running_sum_initial_values_are_null() {
        let r = running_sum(&ints(&[1, 2, 3, 4]), 2).unwrap();
        assert_eq!(
            r,
            vec![
                Value::Null,
                Value::Float(3.0),
                Value::Float(5.0),
                Value::Float(7.0)
            ]
        );
        assert!(running_sum(&ints(&[1]), 0).is_err());
    }

    #[test]
    fn running_average_over_full_window_only() {
        let r = running_average(&ints(&[2, 4, 6]), 3).unwrap();
        assert_eq!(r, vec![Value::Null, Value::Null, Value::Float(4.0)]);
    }

    #[test]
    fn segmented_resets_per_group() {
        // Two groups (Chevy, Ford): cumulative resets at the boundary.
        let values = ints(&[50, 40, 85, 75]);
        let keys = vec![
            Value::str("Chevy"),
            Value::str("Chevy"),
            Value::str("Ford"),
            Value::str("Ford"),
        ];
        let c = segmented(&values, &keys, cumulative);
        assert_eq!(
            c,
            vec![
                Value::Float(50.0),
                Value::Float(90.0),
                Value::Float(85.0),
                Value::Float(160.0)
            ]
        );
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    fn ints(xs: &[i64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::Int(x)).collect()
    }

    #[test]
    fn segmented_running_sum_resets() {
        // The Red Brick manual's reset-per-group semantics with a window.
        let values = ints(&[1, 2, 3, 10, 20, 30]);
        let keys = vec![
            Value::Int(1),
            Value::Int(1),
            Value::Int(1),
            Value::Int(2),
            Value::Int(2),
            Value::Int(2),
        ];
        let out = segmented(&values, &keys, |seg| running_sum(seg, 2).unwrap());
        assert_eq!(
            out,
            vec![
                Value::Null,
                Value::Float(3.0),
                Value::Float(5.0),
                Value::Null, // reset: window does not straddle groups
                Value::Float(30.0),
                Value::Float(50.0),
            ]
        );
    }

    #[test]
    fn ratio_to_total_of_all_nulls_is_null() {
        let vals = vec![Value::Null, Value::Null];
        assert_eq!(ratio_to_total(&vals), vec![Value::Null, Value::Null]);
    }

    #[test]
    fn rank_on_empty_and_singleton() {
        assert!(rank(&[]).is_empty());
        assert_eq!(rank(&ints(&[42])), ints(&[1]));
    }

    #[test]
    fn cumulative_all_tokens() {
        let vals = vec![Value::Null, Value::All];
        assert_eq!(cumulative(&vals), vec![Value::Null, Value::Null]);
    }
}
