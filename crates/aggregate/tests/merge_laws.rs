//! Property tests for the framework's central contracts:
//!
//! * **the partition law** (§5): folding any partitioning of the input via
//!   `merge` (Iter_super) equals one pass over the whole input — the very
//!   property that makes the from-core cascade and parallel aggregation
//!   correct;
//! * **the retraction law** (§6): inserting then retracting a value is an
//!   identity on the aggregate (for functions that apply retractions).

use dc_aggregate::{builtins, Accumulator, AggRef, Retract};
use dc_relation::Value;
use proptest::prelude::*;

fn builtin_list() -> Vec<AggRef> {
    let reg = builtins();
    reg.names().iter().map(|n| reg.get(n).unwrap()).collect()
}

fn feed(f: &AggRef, vals: &[Value]) -> Box<dyn Accumulator> {
    let mut acc = f.init();
    for v in vals {
        acc.iter(v);
    }
    acc
}

fn approx_eq(a: &Value, b: &Value) -> bool {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-9 * scale
        }
        _ => a == b,
    }
}

/// Mixed-type inputs: ints, bools, and the tokens aggregates must skip.
fn arb_values(max: usize) -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(
        prop_oneof![
            (1i64..100).prop_map(Value::Int),
            any::<bool>().prop_map(Value::Bool),
            Just(Value::Null),
        ],
        0..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// F(whole) = merge of F(partitions), for every builtin and every
    /// split point.
    #[test]
    fn partition_law(vals in arb_values(40), split in 0usize..40) {
        let split = split.min(vals.len());
        let (left, right) = vals.split_at(split);
        for f in builtin_list() {
            let mut merged = feed(&f, left);
            let partial = feed(&f, right);
            merged.merge(&partial.state());
            let whole = feed(&f, &vals);
            prop_assert!(
                approx_eq(&merged.final_value(), &whole.final_value()),
                "{}: merged {:?} != whole {:?}",
                f.name(),
                merged.final_value(),
                whole.final_value()
            );
        }
    }

    /// Three-way partitioning in arbitrary merge order.
    #[test]
    fn partition_law_three_way(vals in arb_values(45)) {
        let third = vals.len() / 3;
        let (a, rest) = vals.split_at(third);
        let (b, c) = rest.split_at(third.min(rest.len()));
        for f in builtin_list() {
            // Merge c into b, then (b+c) into a — chained scratchpads.
            let mut bc = feed(&f, b);
            bc.merge(&feed(&f, c).state());
            let mut abc = feed(&f, a);
            abc.merge(&bc.state());
            let whole = feed(&f, &vals);
            prop_assert!(
                approx_eq(&abc.final_value(), &whole.final_value()),
                "{}: chained merge diverged",
                f.name()
            );
        }
    }

    /// Insert-then-retract is an identity whenever the retraction is
    /// applied in place.
    #[test]
    fn retraction_law(vals in arb_values(30), extra in 1i64..100) {
        let v = Value::Int(extra);
        for f in builtin_list() {
            let baseline = feed(&f, &vals).final_value();
            let mut acc = feed(&f, &vals);
            acc.iter(&v);
            match acc.retract(&v) {
                Retract::Applied => {
                    prop_assert!(
                        approx_eq(&acc.final_value(), &baseline),
                        "{}: insert+retract of {v} changed {:?} -> {:?}",
                        f.name(),
                        baseline,
                        acc.final_value()
                    );
                }
                // Recompute/Unsupported are legitimate answers (MIN/MAX
                // champions, MaxN members); the maintenance layer handles
                // them by rescanning.
                Retract::Recompute | Retract::Unsupported => {}
            }
        }
    }

    /// Retractable functions never ask for a recompute — §6's
    /// "algebraic for insert, update, and delete" class.
    #[test]
    fn retractable_functions_always_apply(vals in arb_values(30)) {
        for f in builtin_list().into_iter().filter(|f| f.retractable()) {
            let mut acc = feed(&f, &vals);
            for v in &vals {
                prop_assert_eq!(
                    acc.retract(v),
                    Retract::Applied,
                    "{} claims retractable but refused",
                    f.name()
                );
            }
        }
    }

    /// Tokens never change any aggregate except COUNT(*).
    #[test]
    fn tokens_are_inert(vals in arb_values(25)) {
        for f in builtin_list() {
            if f.name() == "COUNT(*)" {
                continue;
            }
            let baseline = feed(&f, &vals).final_value();
            let mut acc = feed(&f, &vals);
            acc.iter(&Value::Null);
            acc.iter(&Value::All);
            prop_assert!(
                approx_eq(&acc.final_value(), &baseline),
                "{}: NULL/ALL participated",
                f.name()
            );
        }
    }
}
