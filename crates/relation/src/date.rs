//! A small calendar date-time type.
//!
//! The paper's motivating examples group weather observations by
//! `Day(Time)`, `Month(Time)`, `Year(Time)` and note (§3.6) that calendar
//! granularities form a lattice, not a hierarchy (weeks straddle years).
//! We implement just enough of a proleptic Gregorian calendar to support
//! those functions honestly — day-of-week, ISO-like week numbers, quarters —
//! without pulling in a chrono dependency.

use std::fmt;

/// A Gregorian calendar timestamp with minute precision.
///
/// Ordering is chronological. Invalid dates are rejected at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    year: i32,
    month: u8,
    day: u8,
    hour: u8,
    minute: u8,
}

const DAYS_IN_MONTH: [u8; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// True if `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in `month` (1-12) of `year`.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    if month == 2 && is_leap_year(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize]
    }
}

impl Date {
    /// Build a date, validating calendar bounds.
    pub fn new(year: i32, month: u8, day: u8) -> Option<Self> {
        Self::new_at(year, month, day, 0, 0)
    }

    /// Build a timestamp, validating calendar bounds.
    pub fn new_at(year: i32, month: u8, day: u8, hour: u8, minute: u8) -> Option<Self> {
        if !(1..=12).contains(&month)
            || day == 0
            || day > days_in_month(year, month)
            || hour > 23
            || minute > 59
        {
            return None;
        }
        Some(Date {
            year,
            month,
            day,
            hour,
            minute,
        })
    }

    /// Build a date without hour/minute, panicking on invalid input.
    ///
    /// Intended for literals in tests and examples where the date is known
    /// valid at the call site.
    pub fn ymd(year: i32, month: u8, day: u8) -> Self {
        // cube-lint: allow(panic, documented panicking constructor for known-valid literals)
        Self::new(year, month, day).unwrap_or_else(|| panic!("invalid date {year}-{month}-{day}"))
    }

    pub fn year(&self) -> i32 {
        self.year
    }

    pub fn month(&self) -> u8 {
        self.month
    }

    pub fn day(&self) -> u8 {
        self.day
    }

    pub fn hour(&self) -> u8 {
        self.hour
    }

    pub fn minute(&self) -> u8 {
        self.minute
    }

    /// Calendar quarter, 1-4.
    pub fn quarter(&self) -> u8 {
        (self.month - 1) / 3 + 1
    }

    /// Days since the epoch 0001-01-01 (day 0), proleptic Gregorian.
    pub fn days_from_epoch(&self) -> i64 {
        let y = i64::from(self.year) - 1;
        let mut days = y * 365 + y / 4 - y / 100 + y / 400;
        for m in 1..self.month {
            days += i64::from(days_in_month(self.year, m));
        }
        days + i64::from(self.day) - 1
    }

    /// Day of week, 0 = Monday .. 6 = Sunday.
    pub fn weekday(&self) -> u8 {
        // 0001-01-01 was a Monday in the proleptic Gregorian calendar.
        (self.days_from_epoch().rem_euclid(7)) as u8
    }

    /// True on Saturday or Sunday — the paper's analysts think in terms of
    /// weekdays vs. weekends (§3.6).
    pub fn is_weekend(&self) -> bool {
        self.weekday() >= 5
    }

    /// Week number within the year, 1-54: the week containing January 1st is
    /// week 1, and weeks begin on Monday.
    ///
    /// Deliberately *not* ISO-8601: the paper's point is that "some weeks are
    /// partly in two years", i.e. weeks do not nest in months or years. This
    /// numbering preserves exactly that property, which the hierarchy tests
    /// in `datacube::hierarchy` rely on.
    pub fn week(&self) -> u8 {
        let jan1 = Date::ymd(self.year, 1, 1);
        let offset = i64::from(jan1.weekday());
        let doy = self.days_from_epoch() - jan1.days_from_epoch();
        ((doy + offset) / 7 + 1) as u8
    }

    /// The date `n` days later (or earlier for negative `n`).
    pub fn plus_days(&self, n: i64) -> Self {
        let mut days = self.days_from_epoch() + n;
        // Convert back from epoch days; fine for the modest ranges the
        // generators use.
        let mut year = 1i32;
        // Jump by 400-year cycles (146097 days), then refine.
        let cycles = days.div_euclid(146_097);
        year += (cycles * 400) as i32;
        days -= cycles * 146_097;
        loop {
            let in_year: i64 = if is_leap_year(year) { 366 } else { 365 };
            if days < in_year {
                break;
            }
            days -= in_year;
            year += 1;
        }
        let mut month = 1u8;
        loop {
            let in_month = i64::from(days_in_month(year, month));
            if days < in_month {
                break;
            }
            days -= in_month;
            month += 1;
        }
        Date {
            year,
            month,
            day: (days + 1) as u8,
            hour: self.hour,
            minute: self.minute,
        }
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hour == 0 && self.minute == 0 {
            write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
        } else {
            write!(
                f,
                "{:04}-{:02}-{:02} {:02}:{:02}",
                self.year, self.month, self.day, self.hour, self.minute
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leap_years() {
        assert!(is_leap_year(1996));
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(1995));
    }

    #[test]
    fn rejects_invalid_dates() {
        assert!(Date::new(1995, 2, 29).is_none());
        assert!(Date::new(1996, 2, 29).is_some());
        assert!(Date::new(1995, 13, 1).is_none());
        assert!(Date::new(1995, 0, 1).is_none());
        assert!(Date::new(1995, 6, 31).is_none());
        assert!(Date::new_at(1995, 6, 30, 24, 0).is_none());
    }

    #[test]
    fn weekday_known_dates() {
        // 1996-02-26 (ICDE 1996 week, New Orleans) was a Monday.
        assert_eq!(Date::ymd(1996, 2, 26).weekday(), 0);
        // 1995-01-25 (Table 7's sample day) was a Wednesday.
        assert_eq!(Date::ymd(1995, 1, 25).weekday(), 2);
        // 2000-01-01 was a Saturday.
        assert_eq!(Date::ymd(2000, 1, 1).weekday(), 5);
        assert!(Date::ymd(2000, 1, 1).is_weekend());
    }

    #[test]
    fn plus_days_round_trips_across_boundaries() {
        let d = Date::ymd(1995, 12, 31);
        assert_eq!(d.plus_days(1), Date::ymd(1996, 1, 1));
        assert_eq!(d.plus_days(60), Date::ymd(1996, 2, 29));
        assert_eq!(d.plus_days(366), Date::ymd(1996, 12, 31));
        assert_eq!(d.plus_days(-365), Date::ymd(1994, 12, 31));
        for n in [-1000i64, -1, 0, 1, 59, 365, 1461] {
            let e = d.plus_days(n);
            assert_eq!(e.days_from_epoch() - d.days_from_epoch(), n);
        }
    }

    #[test]
    fn weeks_straddle_years() {
        // The paper: "some weeks are partly in two years". 1996-01-01 was a
        // Monday, so the last week of 1995 ends Sunday 1995-12-31 and week 1
        // of 1996 starts cleanly; but 1998-01-01 was a Thursday, so that week
        // contains days of both years.
        let dec31 = Date::ymd(1997, 12, 31); // Wednesday
        let jan1 = Date::ymd(1998, 1, 1); // Thursday
        assert_eq!(dec31.weekday(), 2);
        assert_eq!(jan1.weekday(), 3);
        // Same Monday-started week, different years: weeks do not nest.
        assert_eq!(dec31.week(), 53);
        assert_eq!(jan1.week(), 1);
    }

    #[test]
    fn quarters() {
        assert_eq!(Date::ymd(1995, 1, 1).quarter(), 1);
        assert_eq!(Date::ymd(1995, 3, 31).quarter(), 1);
        assert_eq!(Date::ymd(1995, 4, 1).quarter(), 2);
        assert_eq!(Date::ymd(1995, 12, 31).quarter(), 4);
    }

    #[test]
    fn ordering_is_chronological() {
        let a = Date::new_at(1995, 6, 1, 14, 59).unwrap();
        let b = Date::new_at(1995, 6, 1, 15, 0).unwrap();
        let c = Date::ymd(1995, 6, 2);
        assert!(a < b && b < c);
    }
}

#[cfg(test)]
mod boundary_tests {
    use super::*;

    #[test]
    fn century_and_cycle_boundaries() {
        // 1900 is not a leap year; 2000 is: the Gregorian exceptions.
        assert_eq!(days_in_month(1900, 2), 28);
        assert_eq!(days_in_month(2000, 2), 29);
        // Crossing 1900-02-28 → 03-01 in one step.
        assert_eq!(Date::ymd(1900, 2, 28).plus_days(1), Date::ymd(1900, 3, 1));
        // A full 400-year cycle is exactly 146097 days.
        let a = Date::ymd(1600, 1, 1);
        let b = Date::ymd(2000, 1, 1);
        assert_eq!(b.days_from_epoch() - a.days_from_epoch(), 146_097);
    }

    #[test]
    fn week_one_contains_january_first() {
        for year in [1994, 1995, 1996, 1997, 1998] {
            assert_eq!(Date::ymd(year, 1, 1).week(), 1, "year {year}");
        }
    }

    #[test]
    fn display_both_forms() {
        assert_eq!(Date::ymd(1996, 2, 29).to_string(), "1996-02-29");
        assert_eq!(
            Date::new_at(1996, 2, 29, 7, 5).unwrap().to_string(),
            "1996-02-29 07:05"
        );
    }
}
