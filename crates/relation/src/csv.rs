//! CSV import/export for tables.
//!
//! Minimal RFC-4180-style reader/writer so examples and experiments can
//! exchange data with the outside world (and cube relations can be
//! eyeballed in a spreadsheet — fitting, given the paper's pivot-table
//! lineage). Values are parsed against a declared [`Schema`]; the `ALL`
//! token round-trips through the literal string `ALL` in `ALL ALLOWED`
//! columns, and empty fields are `NULL`.

use crate::date::Date;
use crate::error::{RelError, RelResult};
use crate::row::Row;
use crate::schema::{DataType, Schema};
use crate::table::Table;
use crate::value::Value;

/// Render a table as CSV with a header row.
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let names: Vec<String> = table.schema().names().iter().map(|n| escape(n)).collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for row in table.rows() {
        let fields: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                other => escape(&other.to_string()),
            })
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

fn escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Parse CSV text (with a header row) into a table under `schema`.
/// Header names must match the schema in order; fields are parsed by the
/// column's declared type.
pub fn from_csv(text: &str, schema: Schema) -> RelResult<Table> {
    let mut records = parse_records(text)?;
    if records.is_empty() {
        return Err(RelError::Invalid("CSV input has no header row".into()));
    }
    let header = records.remove(0);
    let expected = schema.names();
    if header.len() != expected.len() || header.iter().zip(expected.iter()).any(|(h, e)| h != e) {
        return Err(RelError::SchemaMismatch(format!(
            "CSV header {header:?} does not match schema {expected:?}"
        )));
    }
    let mut table = Table::empty(schema);
    for (line_no, record) in records.into_iter().enumerate() {
        if record.len() != table.schema().len() {
            return Err(RelError::ArityMismatch {
                expected: table.schema().len(),
                got: record.len(),
            });
        }
        let mut values = Vec::with_capacity(record.len());
        for (field, col) in record.into_iter().zip(table.schema().columns().to_vec()) {
            values.push(
                parse_field(&field, col.dtype, col.all_allowed).map_err(|e| {
                    RelError::Invalid(format!("row {}: column '{}': {e}", line_no + 1, col.name))
                })?,
            );
        }
        table.push(Row::new(values))?;
    }
    Ok(table)
}

fn parse_field(field: &str, dtype: DataType, all_allowed: bool) -> Result<Value, String> {
    if field.is_empty() {
        return Ok(Value::Null);
    }
    if all_allowed && field == "ALL" {
        return Ok(Value::All);
    }
    match dtype {
        DataType::Bool => match field.to_ascii_uppercase().as_str() {
            "TRUE" | "T" | "1" => Ok(Value::Bool(true)),
            "FALSE" | "F" | "0" => Ok(Value::Bool(false)),
            _ => Err(format!("'{field}' is not a boolean")),
        },
        DataType::Int => field
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| format!("'{field}' is not an integer")),
        DataType::Float => field
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("'{field}' is not a float")),
        DataType::Str => Ok(Value::str(field)),
        DataType::Date => parse_date(field).ok_or_else(|| format!("'{field}' is not a date")),
    }
}

/// Dates as `YYYY-MM-DD` or `YYYY-MM-DD HH:MM` (the [`Date`] display
/// forms).
fn parse_date(s: &str) -> Option<Value> {
    let (date_part, time_part) = match s.split_once(' ') {
        Some((d, t)) => (d, Some(t)),
        None => (s, None),
    };
    let mut it = date_part.split('-');
    let year: i32 = it.next()?.parse().ok()?;
    let month: u8 = it.next()?.parse().ok()?;
    let day: u8 = it.next()?.parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    let (hour, minute) = match time_part {
        None => (0, 0),
        Some(t) => {
            let (h, m) = t.split_once(':')?;
            (h.parse().ok()?, m.parse().ok()?)
        }
    };
    Date::new_at(year, month, day, hour, minute).map(Value::Date)
}

/// Split CSV text into records of unescaped fields.
fn parse_records(text: &str) -> RelResult<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut saw_any = false;
    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    field.push('"');
                    chars.next();
                }
                '"' => in_quotes = false,
                other => field.push(other),
            }
        } else {
            match c {
                '"' if field.is_empty() => in_quotes = true,
                '"' => return Err(RelError::Invalid("stray quote in CSV field".into())),
                ',' => record.push(std::mem::take(&mut field)),
                '\r' => {}
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(RelError::Invalid("unterminated quoted CSV field".into()));
    }
    if saw_any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::ColumnDef;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("units", DataType::Int),
        ])
    }

    #[test]
    fn round_trip_plain() {
        let t = Table::new(
            schema(),
            vec![row!["Chevy", 1994, 90], row!["Ford", 1995, 160]],
        )
        .unwrap();
        let csv = to_csv(&t);
        let back = from_csv(&csv, schema()).unwrap();
        assert_eq!(back.rows(), t.rows());
    }

    #[test]
    fn quoting_and_escaping() {
        let t = Table::new(
            schema(),
            vec![row!["has,comma", 1, 1], row!["has \"quotes\"", 2, 2]],
        )
        .unwrap();
        let csv = to_csv(&t);
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has \"\"quotes\"\"\""));
        let back = from_csv(&csv, schema()).unwrap();
        assert_eq!(back.rows(), t.rows());
    }

    #[test]
    fn null_and_all_round_trip() {
        let cube_schema = Schema::new(vec![
            ColumnDef::with_all("model", DataType::Str),
            ColumnDef::new("units", DataType::Int),
        ])
        .unwrap();
        let t = Table::new(
            cube_schema.clone(),
            vec![
                row!["Chevy", 290],
                Row::new(vec![Value::All, Value::Int(510)]),
                Row::new(vec![Value::Null, Value::Int(7)]),
            ],
        )
        .unwrap();
        let csv = to_csv(&t);
        let back = from_csv(&csv, cube_schema).unwrap();
        assert_eq!(back.rows(), t.rows());
        // But in an ALL NOT ALLOWED column, "ALL" is just a string.
        let plain = from_csv("model,units\nALL,1\n", schema_model_units()).unwrap();
        assert_eq!(plain.rows()[0][0], Value::str("ALL"));
    }

    fn schema_model_units() -> Schema {
        Schema::from_pairs(&[("model", DataType::Str), ("units", DataType::Int)])
    }

    #[test]
    fn dates_round_trip() {
        let s = Schema::from_pairs(&[("t", DataType::Date)]);
        let t = Table::new(
            s.clone(),
            vec![
                Row::new(vec![Value::Date(Date::ymd(1995, 6, 1))]),
                Row::new(vec![Value::Date(
                    Date::new_at(1996, 2, 29, 15, 30).unwrap(),
                )]),
            ],
        )
        .unwrap();
        let back = from_csv(&to_csv(&t), s).unwrap();
        assert_eq!(back.rows(), t.rows());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(from_csv("", schema()).is_err());
        assert!(from_csv("wrong,header,names\n", schema()).is_err());
        assert!(from_csv("model,year,units\nChevy,notanumber,1\n", schema()).is_err());
        assert!(from_csv("model,year,units\nChevy,1994\n", schema()).is_err());
        assert!(from_csv("model,year,units\n\"unterminated,1,2\n", schema()).is_err());
    }

    #[test]
    fn crlf_and_trailing_newline_tolerated() {
        let t = from_csv("model,year,units\r\nChevy,1994,90\r\n", schema()).unwrap();
        assert_eq!(t.len(), 1);
        let t2 = from_csv("model,year,units\nChevy,1994,90", schema()).unwrap();
        assert_eq!(t2.len(), 1);
    }
}
