//! Columnar batches: typed column vectors with validity bitmaps.
//!
//! The paper's §5 discussion of dense cross-tab arrays assumes the data can
//! be touched as typed arrays rather than polymorphic records; modern OLAP
//! engines make the same move by storing each column as a primitive vector
//! plus a validity bitmap. [`ColumnarBatch`] is that representation for a
//! [`Table`]: `i64` / `f64` measure vectors and dictionary-code `u32`
//! vectors for everything else, reusing [`SymbolTable`] (Graefe's hashed
//! symbol table, §5) for the dictionary.
//!
//! Layout per column (row `i`):
//!
//! ```text
//!   data:     [ v0 | v1 | v2 | ... ]      Vec<i64> | Vec<f64> | Vec<u32>
//!   validity: [ 1  | 0  | 1  | ... ]      1 bit per row, packed in u64 words
//! ```
//!
//! An invalid bit means the row's value is SQL `NULL`; the data slot holds a
//! zero filler that kernels must not read. The aggregation kernels in
//! `dc-aggregate` consume these slices directly, which is what turns the
//! per-row `Value` match into a tight loop over primitives.

use crate::dictionary::SymbolTable;
use crate::row::Row;
use crate::schema::DataType;
use crate::table::Table;
use crate::value::Value;

/// A packed validity bitmap: one bit per row, `true` = value present.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    pub fn new() -> Self {
        Bitmap::default()
    }

    pub fn with_capacity(rows: usize) -> Self {
        Bitmap {
            words: Vec::with_capacity(rows.div_ceil(64)),
            len: 0,
        }
    }

    /// Append one bit.
    pub fn push(&mut self, valid: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if valid {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Bit at row `i` (panics past the end, like slice indexing).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of valid (set) bits.
    pub fn count_valid(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when every row is valid — kernels use this to skip the
    /// per-row bitmap probe entirely.
    pub fn all_valid(&self) -> bool {
        self.count_valid() == self.len
    }

    /// Construct directly from packed words. Bits at positions `>= len`
    /// in the last word must be zero — kernels rely on that to process
    /// whole words without a tail mask.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        debug_assert!(words.len() == len.div_ceil(64));
        debug_assert!(len.is_multiple_of(64) || words.last().is_none_or(|w| w >> (len % 64) == 0));
        Bitmap { words, len }
    }

    /// The packed `u64` words. One bit per row, LSB-first within each
    /// word; bits past `len` in the final word are always zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Word-at-a-time [`Bitmap`] construction: bits accumulate in a register
/// and spill to the word vector every 64 appends, so building a bitmap
/// costs one shift/or per row instead of an indexed read-modify-write.
#[derive(Debug, Default)]
pub struct BitmapBuilder {
    words: Vec<u64>,
    cur: u64,
    len: usize,
}

impl BitmapBuilder {
    pub fn with_capacity(rows: usize) -> Self {
        BitmapBuilder {
            words: Vec::with_capacity(rows.div_ceil(64)),
            cur: 0,
            len: 0,
        }
    }

    /// Append one bit (branch-free except for the per-64 word spill).
    #[inline]
    pub fn append(&mut self, valid: bool) {
        self.cur |= (valid as u64) << (self.len & 63);
        self.len += 1;
        if self.len & 63 == 0 {
            self.words.push(self.cur);
            self.cur = 0;
        }
    }

    pub fn finish(mut self) -> Bitmap {
        if self.len & 63 != 0 {
            self.words.push(self.cur);
        }
        Bitmap {
            words: self.words,
            len: self.len,
        }
    }
}

/// The typed vector behind one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// `i64` values (from [`Value::Int`]).
    Int(Vec<i64>),
    /// `f64` values (from [`Value::Float`]).
    Float(Vec<f64>),
    /// Dictionary codes into `dict` (any value type; strings in practice).
    Dict { codes: Vec<u32>, dict: SymbolTable },
}

/// One column: typed data plus its validity bitmap.
#[derive(Debug, Clone)]
pub struct Column {
    pub data: ColumnData,
    pub validity: Bitmap,
}

impl Column {
    /// Extract column `idx` as an `i64` vector. Returns `None` if any row
    /// holds something other than `Int` or `NULL` — the caller then falls
    /// back to a dictionary column or the row path.
    pub fn try_ints(rows: &[Row], idx: usize) -> Option<Column> {
        let mut vals = Vec::with_capacity(rows.len());
        let mut validity = BitmapBuilder::with_capacity(rows.len());
        for row in rows {
            match &row[idx] {
                Value::Int(i) => {
                    vals.push(*i);
                    validity.append(true);
                }
                Value::Null => {
                    vals.push(0);
                    validity.append(false);
                }
                Value::All | Value::Bool(_) | Value::Float(_) | Value::Str(_) | Value::Date(_) => {
                    return None
                }
            }
        }
        Some(Column {
            data: ColumnData::Int(vals),
            validity: validity.finish(),
        })
    }

    /// Extract column `idx` as an `f64` vector (`Float` or `NULL` rows
    /// only), mirroring [`Column::try_ints`].
    pub fn try_floats(rows: &[Row], idx: usize) -> Option<Column> {
        let mut vals = Vec::with_capacity(rows.len());
        let mut validity = BitmapBuilder::with_capacity(rows.len());
        for row in rows {
            match &row[idx] {
                Value::Float(f) => {
                    vals.push(*f);
                    validity.append(true);
                }
                Value::Null => {
                    vals.push(0.0);
                    validity.append(false);
                }
                Value::All | Value::Bool(_) | Value::Int(_) | Value::Str(_) | Value::Date(_) => {
                    return None
                }
            }
        }
        Some(Column {
            data: ColumnData::Float(vals),
            validity: validity.finish(),
        })
    }

    /// Dictionary-encode column `idx`: every non-`NULL` value is interned
    /// into a [`SymbolTable`] (first-seen dense codes), `NULL` rows get an
    /// invalid bit with a zero code filler. Never fails — this is the
    /// universal fallback representation.
    pub fn dict(rows: &[Row], idx: usize) -> Column {
        let mut dict = SymbolTable::new();
        let mut codes = Vec::with_capacity(rows.len());
        let mut validity = BitmapBuilder::with_capacity(rows.len());
        for row in rows {
            let v = &row[idx];
            if v.is_null() {
                codes.push(0);
                validity.append(false);
            } else {
                codes.push(dict.intern(v));
                validity.append(true);
            }
        }
        Column {
            data: ColumnData::Dict { codes, dict },
            validity: validity.finish(),
        }
    }

    /// Build the best representation for a column of declared `dtype`:
    /// primitive vectors for `Int` / `Float`, dictionary codes otherwise
    /// (including `Int`/`Float` columns that turn out to hold `ALL` tokens,
    /// which only appear in cube interiors).
    pub fn from_rows(rows: &[Row], idx: usize, dtype: DataType) -> Column {
        match dtype {
            DataType::Int => Column::try_ints(rows, idx).unwrap_or_else(|| Column::dict(rows, idx)),
            DataType::Float => {
                Column::try_floats(rows, idx).unwrap_or_else(|| Column::dict(rows, idx))
            }
            _ => Column::dict(rows, idx),
        }
    }

    pub fn len(&self) -> usize {
        self.validity.len()
    }

    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// The column's validity bits as packed `u64` words — the shared
    /// representation consumed by kernel selection masks.
    #[inline]
    pub fn validity_words(&self) -> &[u64] {
        self.validity.words()
    }

    /// Build a run-length index over this column, or `None` when the
    /// column does not compress (see [`RleIndex::is_beneficial`]).
    /// Sorted and low-cardinality columns are where runs actually form;
    /// random high-cardinality data degenerates to one run per row and
    /// is rejected.
    pub fn rle_index(&self) -> Option<RleIndex> {
        let idx = match &self.data {
            ColumnData::Int(v) => RleIndex::from_i64(v, &self.validity),
            ColumnData::Float(v) => RleIndex::from_f64(v, &self.validity),
            ColumnData::Dict { codes, .. } => RleIndex::from_codes(codes, &self.validity),
        };
        idx.is_beneficial().then_some(idx)
    }

    /// Rehydrate row `i` back into a [`Value`] (tests and fallbacks only —
    /// hot paths read the typed vectors directly).
    pub fn value(&self, i: usize) -> Value {
        if !self.validity.get(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Dict { codes, dict } => dict
                .decode(codes[i])
                // cube-lint: allow(panic, codes were interned by this column's own dictionary)
                .expect("dictionary code out of range")
                .clone(),
        }
    }
}

/// A run-length index over a column: `run_ends[i]` is the exclusive end
/// row of run `i`, so run `i` covers rows `run_ends[i-1] .. run_ends[i]`
/// (run 0 starts at row 0). Within one run every row has the same
/// validity bit and — when valid — the same value, which is what lets
/// kernels aggregate a whole run as `n × value` instead of row by row
/// (the §5 dense-array insight applied to storage).
///
/// Row offsets are `u32`: columnar batches are capped well below
/// `u32::MAX` rows by the builders, which assert it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RleIndex {
    run_ends: Vec<u32>,
    len: usize,
}

impl RleIndex {
    fn from_eq(len: usize, validity: &Bitmap, same: impl Fn(usize, usize) -> bool) -> RleIndex {
        assert!(len < u32::MAX as usize, "RLE index caps rows at u32");
        assert_eq!(validity.len(), len);
        let mut run_ends = Vec::new();
        if validity.all_valid() {
            // No NULLs: a run breaks only on value change, so skip the two
            // per-row validity probes — they dominate the build otherwise.
            for i in 1..len {
                if !same(i - 1, i) {
                    run_ends.push(i as u32);
                }
            }
        } else {
            for i in 1..len {
                let (va, vb) = (validity.get(i - 1), validity.get(i));
                let boundary = va != vb || (va && !same(i - 1, i));
                if boundary {
                    run_ends.push(i as u32);
                }
            }
        }
        if len > 0 {
            run_ends.push(len as u32);
        }
        RleIndex { run_ends, len }
    }

    pub fn from_i64(vals: &[i64], validity: &Bitmap) -> RleIndex {
        RleIndex::from_eq(vals.len(), validity, |a, b| vals[a] == vals[b])
    }

    /// Floats compare by bit pattern: NaN extends a NaN run (any payload
    /// difference breaks it), and `-0.0` / `0.0` conservatively split.
    pub fn from_f64(vals: &[f64], validity: &Bitmap) -> RleIndex {
        RleIndex::from_eq(vals.len(), validity, |a, b| {
            vals[a].to_bits() == vals[b].to_bits()
        })
    }

    pub fn from_codes(codes: &[u32], validity: &Bitmap) -> RleIndex {
        RleIndex::from_eq(codes.len(), validity, |a, b| codes[a] == codes[b])
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn n_runs(&self) -> usize {
        self.run_ends.len()
    }

    /// Mean rows per run — the compression ratio kernels care about.
    pub fn avg_run_len(&self) -> f64 {
        if self.run_ends.is_empty() {
            return 0.0;
        }
        self.len as f64 / self.run_ends.len() as f64
    }

    /// True when rows `start..end` (half-open, non-empty) all fall inside
    /// one run — i.e. one validity bit and one value cover the range.
    pub fn constant_over(&self, start: usize, end: usize) -> bool {
        debug_assert!(start < end && end <= self.len);
        let run = self.run_ends.partition_point(|&e| e as usize <= start);
        self.run_ends[run] as usize >= end
    }

    /// Exclusive end rows of the runs, strictly increasing, last == len.
    pub fn run_ends(&self) -> &[u32] {
        &self.run_ends
    }

    /// Worth keeping: enough rows to matter and an average run long
    /// enough (≥ 4 rows) that per-run dispatch beats the per-row loop.
    pub fn is_beneficial(&self) -> bool {
        self.len >= 64 && self.avg_run_len() >= 4.0
    }
}

/// A table converted to columnar form: one [`Column`] per schema column.
#[derive(Debug, Clone)]
pub struct ColumnarBatch {
    pub columns: Vec<Column>,
    pub n_rows: usize,
}

impl ColumnarBatch {
    /// Convert a [`Table`] column by column, using the schema's declared
    /// types to pick primitive vs dictionary representations.
    pub fn from_table(table: &Table) -> ColumnarBatch {
        let rows = table.rows();
        let columns = table
            .schema()
            .columns()
            .iter()
            .enumerate()
            .map(|(idx, col)| Column::from_rows(rows, idx, col.dtype))
            .collect();
        ColumnarBatch {
            columns,
            n_rows: rows.len(),
        }
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::Schema;

    fn sales() -> Table {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("price", DataType::Float),
        ]);
        let mut t = Table::new(
            schema,
            vec![row!["Chevy", 1994, 10.5], row!["Ford", 1995, 20.25]],
        )
        .unwrap();
        t.push(Row::new(vec![Value::Null, Value::Null, Value::Null]))
            .unwrap();
        t.push(row!["Chevy", 1995, 30.0]).unwrap();
        t
    }

    #[test]
    fn bitmap_packs_bits() {
        let mut b = Bitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(b.count_valid(), (0..130).filter(|i| i % 3 == 0).count());
        assert!(!b.all_valid());
    }

    #[test]
    fn from_table_picks_typed_columns() {
        let batch = ColumnarBatch::from_table(&sales());
        assert_eq!(batch.n_rows, 4);
        assert!(matches!(batch.column(0).data, ColumnData::Dict { .. }));
        assert!(matches!(batch.column(1).data, ColumnData::Int(_)));
        assert!(matches!(batch.column(2).data, ColumnData::Float(_)));
    }

    #[test]
    fn nulls_become_invalid_bits() {
        let batch = ColumnarBatch::from_table(&sales());
        for col in &batch.columns {
            assert_eq!(col.len(), 4);
            assert!(col.validity.get(0));
            assert!(!col.validity.get(2), "NULL row must be invalid");
            assert!(col.validity.get(3));
        }
        let ColumnData::Int(years) = &batch.column(1).data else {
            panic!("year should be Int")
        };
        assert_eq!(years[2], 0, "NULL slot holds the zero filler");
    }

    #[test]
    fn values_round_trip() {
        let t = sales();
        let batch = ColumnarBatch::from_table(&t);
        for (i, row) in t.rows().iter().enumerate() {
            for (j, col) in batch.columns.iter().enumerate() {
                assert_eq!(col.value(i), row[j], "row {i} col {j}");
            }
        }
    }

    #[test]
    fn dict_reuses_codes_for_repeats() {
        let t = sales();
        let col = Column::dict(t.rows(), 0);
        let ColumnData::Dict { codes, dict } = &col.data else {
            panic!()
        };
        assert_eq!(dict.cardinality(), 2);
        assert_eq!(codes[0], codes[3], "both Chevy rows share one code");
    }

    #[test]
    fn bitmap_builder_matches_push() {
        for n in [0usize, 1, 63, 64, 65, 130, 256] {
            let mut pushed = Bitmap::new();
            let mut built = BitmapBuilder::with_capacity(n);
            for i in 0..n {
                let bit = i % 5 != 2;
                pushed.push(bit);
                built.append(bit);
            }
            let built = built.finish();
            assert_eq!(built, pushed, "n = {n}");
            assert_eq!(built.words().len(), n.div_ceil(64));
        }
    }

    #[test]
    fn bitmap_from_words_round_trips() {
        let mut b = BitmapBuilder::with_capacity(70);
        for i in 0..70 {
            b.append(i % 2 == 0);
        }
        let b = b.finish();
        let again = Bitmap::from_words(b.words().to_vec(), b.len());
        assert_eq!(again, b);
    }

    #[test]
    fn rle_index_finds_runs_and_boundaries() {
        let vals: Vec<i64> = [5i64; 40]
            .into_iter()
            .chain([7i64; 24])
            .chain([7i64; 10])
            .collect();
        let mut validity = BitmapBuilder::with_capacity(vals.len());
        for i in 0..vals.len() {
            validity.append(i < 64); // the last 10 rows are NULL
        }
        let idx = RleIndex::from_i64(&vals, &validity.finish());
        // runs: 40×5 valid, 24×7 valid, 10×NULL
        assert_eq!(idx.n_runs(), 3);
        assert_eq!(idx.run_ends(), &[40, 64, 74]);
        assert!(idx.constant_over(0, 40));
        assert!(idx.constant_over(10, 39));
        assert!(!idx.constant_over(39, 41));
        assert!(idx.constant_over(64, 74));
        assert!((idx.avg_run_len() - 74.0 / 3.0).abs() < 1e-9);
        assert!(idx.is_beneficial());
    }

    #[test]
    fn rle_rejects_incompressible_and_tiny_columns() {
        let vals: Vec<i64> = (0..128).collect();
        let mut validity = BitmapBuilder::with_capacity(vals.len());
        (0..vals.len()).for_each(|_| validity.append(true));
        let idx = RleIndex::from_i64(&vals, &validity.finish());
        assert_eq!(idx.n_runs(), 128);
        assert!(!idx.is_beneficial(), "one run per row never pays off");

        let short = vec![1i64; 10];
        let mut validity = BitmapBuilder::with_capacity(10);
        (0..10).for_each(|_| validity.append(true));
        assert!(!RleIndex::from_i64(&short, &validity.finish()).is_beneficial());
    }

    #[test]
    fn rle_float_runs_compare_by_bits() {
        let vals = [f64::NAN, f64::NAN, 0.0, -0.0, 1.5, 1.5];
        let mut validity = BitmapBuilder::with_capacity(vals.len());
        (0..vals.len()).for_each(|_| validity.append(true));
        let idx = RleIndex::from_f64(&vals, &validity.finish());
        assert_eq!(idx.run_ends(), &[2, 3, 4, 6], "NaN runs; ±0.0 split");
    }

    #[test]
    fn column_rle_index_gated_by_benefit() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let sorted: Vec<Row> = (0..256)
            .map(|i| Row::new(vec![Value::Int(i / 64)]))
            .collect();
        let t = Table::new(schema.clone(), sorted).unwrap();
        let col = Column::from_rows(t.rows(), 0, DataType::Int);
        let idx = col.rle_index().expect("sorted column should compress");
        assert_eq!(idx.n_runs(), 4);

        let random: Vec<Row> = (0..256)
            .map(|i| Row::new(vec![Value::Int(i * 37 % 251)]))
            .collect();
        let t = Table::new(schema, random).unwrap();
        let col = Column::from_rows(t.rows(), 0, DataType::Int);
        assert!(col.rle_index().is_none(), "shuffled column must not");
    }

    #[test]
    fn validity_words_expose_packed_bits() {
        let batch = ColumnarBatch::from_table(&sales());
        let words = batch.column(1).validity_words();
        assert_eq!(words.len(), 1);
        assert_eq!(words[0], 0b1011, "row 2 is the NULL row");
    }

    #[test]
    fn mixed_int_column_falls_back_to_dict() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let t = Table::new(schema, vec![row![1], row![2]]).unwrap();
        assert!(Column::try_floats(t.rows(), 0).is_none());
        // ALL tokens (cube interiors) are not Int rows; from_rows falls back.
        let rows = vec![Row::new(vec![Value::Int(1)]), Row::new(vec![Value::All])];
        assert!(Column::try_ints(&rows, 0).is_none());
        let col = Column::from_rows(&rows, 0, DataType::Int);
        assert!(matches!(col.data, ColumnData::Dict { .. }));
        assert_eq!(col.value(1), Value::All);
    }
}
