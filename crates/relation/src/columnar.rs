//! Columnar batches: typed column vectors with validity bitmaps.
//!
//! The paper's §5 discussion of dense cross-tab arrays assumes the data can
//! be touched as typed arrays rather than polymorphic records; modern OLAP
//! engines make the same move by storing each column as a primitive vector
//! plus a validity bitmap. [`ColumnarBatch`] is that representation for a
//! [`Table`]: `i64` / `f64` measure vectors and dictionary-code `u32`
//! vectors for everything else, reusing [`SymbolTable`] (Graefe's hashed
//! symbol table, §5) for the dictionary.
//!
//! Layout per column (row `i`):
//!
//! ```text
//!   data:     [ v0 | v1 | v2 | ... ]      Vec<i64> | Vec<f64> | Vec<u32>
//!   validity: [ 1  | 0  | 1  | ... ]      1 bit per row, packed in u64 words
//! ```
//!
//! An invalid bit means the row's value is SQL `NULL`; the data slot holds a
//! zero filler that kernels must not read. The aggregation kernels in
//! `dc-aggregate` consume these slices directly, which is what turns the
//! per-row `Value` match into a tight loop over primitives.

use crate::dictionary::SymbolTable;
use crate::row::Row;
use crate::schema::DataType;
use crate::table::Table;
use crate::value::Value;

/// A packed validity bitmap: one bit per row, `true` = value present.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    pub fn new() -> Self {
        Bitmap::default()
    }

    pub fn with_capacity(rows: usize) -> Self {
        Bitmap {
            words: Vec::with_capacity(rows.div_ceil(64)),
            len: 0,
        }
    }

    /// Append one bit.
    pub fn push(&mut self, valid: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if valid {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Bit at row `i` (panics past the end, like slice indexing).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of valid (set) bits.
    pub fn count_valid(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when every row is valid — kernels use this to skip the
    /// per-row bitmap probe entirely.
    pub fn all_valid(&self) -> bool {
        self.count_valid() == self.len
    }
}

/// The typed vector behind one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// `i64` values (from [`Value::Int`]).
    Int(Vec<i64>),
    /// `f64` values (from [`Value::Float`]).
    Float(Vec<f64>),
    /// Dictionary codes into `dict` (any value type; strings in practice).
    Dict { codes: Vec<u32>, dict: SymbolTable },
}

/// One column: typed data plus its validity bitmap.
#[derive(Debug, Clone)]
pub struct Column {
    pub data: ColumnData,
    pub validity: Bitmap,
}

impl Column {
    /// Extract column `idx` as an `i64` vector. Returns `None` if any row
    /// holds something other than `Int` or `NULL` — the caller then falls
    /// back to a dictionary column or the row path.
    pub fn try_ints(rows: &[Row], idx: usize) -> Option<Column> {
        let mut vals = Vec::with_capacity(rows.len());
        let mut validity = Bitmap::with_capacity(rows.len());
        for row in rows {
            match &row[idx] {
                Value::Int(i) => {
                    vals.push(*i);
                    validity.push(true);
                }
                Value::Null => {
                    vals.push(0);
                    validity.push(false);
                }
                Value::All | Value::Bool(_) | Value::Float(_) | Value::Str(_) | Value::Date(_) => {
                    return None
                }
            }
        }
        Some(Column {
            data: ColumnData::Int(vals),
            validity,
        })
    }

    /// Extract column `idx` as an `f64` vector (`Float` or `NULL` rows
    /// only), mirroring [`Column::try_ints`].
    pub fn try_floats(rows: &[Row], idx: usize) -> Option<Column> {
        let mut vals = Vec::with_capacity(rows.len());
        let mut validity = Bitmap::with_capacity(rows.len());
        for row in rows {
            match &row[idx] {
                Value::Float(f) => {
                    vals.push(*f);
                    validity.push(true);
                }
                Value::Null => {
                    vals.push(0.0);
                    validity.push(false);
                }
                Value::All | Value::Bool(_) | Value::Int(_) | Value::Str(_) | Value::Date(_) => {
                    return None
                }
            }
        }
        Some(Column {
            data: ColumnData::Float(vals),
            validity,
        })
    }

    /// Dictionary-encode column `idx`: every non-`NULL` value is interned
    /// into a [`SymbolTable`] (first-seen dense codes), `NULL` rows get an
    /// invalid bit with a zero code filler. Never fails — this is the
    /// universal fallback representation.
    pub fn dict(rows: &[Row], idx: usize) -> Column {
        let mut dict = SymbolTable::new();
        let mut codes = Vec::with_capacity(rows.len());
        let mut validity = Bitmap::with_capacity(rows.len());
        for row in rows {
            let v = &row[idx];
            if v.is_null() {
                codes.push(0);
                validity.push(false);
            } else {
                codes.push(dict.intern(v));
                validity.push(true);
            }
        }
        Column {
            data: ColumnData::Dict { codes, dict },
            validity,
        }
    }

    /// Build the best representation for a column of declared `dtype`:
    /// primitive vectors for `Int` / `Float`, dictionary codes otherwise
    /// (including `Int`/`Float` columns that turn out to hold `ALL` tokens,
    /// which only appear in cube interiors).
    pub fn from_rows(rows: &[Row], idx: usize, dtype: DataType) -> Column {
        match dtype {
            DataType::Int => Column::try_ints(rows, idx).unwrap_or_else(|| Column::dict(rows, idx)),
            DataType::Float => {
                Column::try_floats(rows, idx).unwrap_or_else(|| Column::dict(rows, idx))
            }
            _ => Column::dict(rows, idx),
        }
    }

    pub fn len(&self) -> usize {
        self.validity.len()
    }

    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// Rehydrate row `i` back into a [`Value`] (tests and fallbacks only —
    /// hot paths read the typed vectors directly).
    pub fn value(&self, i: usize) -> Value {
        if !self.validity.get(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Dict { codes, dict } => dict
                .decode(codes[i])
                // cube-lint: allow(panic, codes were interned by this column's own dictionary)
                .expect("dictionary code out of range")
                .clone(),
        }
    }
}

/// A table converted to columnar form: one [`Column`] per schema column.
#[derive(Debug, Clone)]
pub struct ColumnarBatch {
    pub columns: Vec<Column>,
    pub n_rows: usize,
}

impl ColumnarBatch {
    /// Convert a [`Table`] column by column, using the schema's declared
    /// types to pick primitive vs dictionary representations.
    pub fn from_table(table: &Table) -> ColumnarBatch {
        let rows = table.rows();
        let columns = table
            .schema()
            .columns()
            .iter()
            .enumerate()
            .map(|(idx, col)| Column::from_rows(rows, idx, col.dtype))
            .collect();
        ColumnarBatch {
            columns,
            n_rows: rows.len(),
        }
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::Schema;

    fn sales() -> Table {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("price", DataType::Float),
        ]);
        let mut t = Table::new(
            schema,
            vec![row!["Chevy", 1994, 10.5], row!["Ford", 1995, 20.25]],
        )
        .unwrap();
        t.push(Row::new(vec![Value::Null, Value::Null, Value::Null]))
            .unwrap();
        t.push(row!["Chevy", 1995, 30.0]).unwrap();
        t
    }

    #[test]
    fn bitmap_packs_bits() {
        let mut b = Bitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(b.count_valid(), (0..130).filter(|i| i % 3 == 0).count());
        assert!(!b.all_valid());
    }

    #[test]
    fn from_table_picks_typed_columns() {
        let batch = ColumnarBatch::from_table(&sales());
        assert_eq!(batch.n_rows, 4);
        assert!(matches!(batch.column(0).data, ColumnData::Dict { .. }));
        assert!(matches!(batch.column(1).data, ColumnData::Int(_)));
        assert!(matches!(batch.column(2).data, ColumnData::Float(_)));
    }

    #[test]
    fn nulls_become_invalid_bits() {
        let batch = ColumnarBatch::from_table(&sales());
        for col in &batch.columns {
            assert_eq!(col.len(), 4);
            assert!(col.validity.get(0));
            assert!(!col.validity.get(2), "NULL row must be invalid");
            assert!(col.validity.get(3));
        }
        let ColumnData::Int(years) = &batch.column(1).data else {
            panic!("year should be Int")
        };
        assert_eq!(years[2], 0, "NULL slot holds the zero filler");
    }

    #[test]
    fn values_round_trip() {
        let t = sales();
        let batch = ColumnarBatch::from_table(&t);
        for (i, row) in t.rows().iter().enumerate() {
            for (j, col) in batch.columns.iter().enumerate() {
                assert_eq!(col.value(i), row[j], "row {i} col {j}");
            }
        }
    }

    #[test]
    fn dict_reuses_codes_for_repeats() {
        let t = sales();
        let col = Column::dict(t.rows(), 0);
        let ColumnData::Dict { codes, dict } = &col.data else {
            panic!()
        };
        assert_eq!(dict.cardinality(), 2);
        assert_eq!(codes[0], codes[3], "both Chevy rows share one code");
    }

    #[test]
    fn mixed_int_column_falls_back_to_dict() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let t = Table::new(schema, vec![row![1], row![2]]).unwrap();
        assert!(Column::try_floats(t.rows(), 0).is_none());
        // ALL tokens (cube interiors) are not Int rows; from_rows falls back.
        let rows = vec![Row::new(vec![Value::Int(1)]), Row::new(vec![Value::All])];
        assert!(Column::try_ints(&rows, 0).is_none());
        let col = Column::from_rows(&rows, 0, DataType::Int);
        assert!(matches!(col.data, ColumnData::Dict { .. }));
        assert_eq!(col.value(1), Value::All);
    }
}
