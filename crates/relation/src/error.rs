//! Error type shared by the relational substrate.

use std::fmt;

/// Errors raised by the relational layer.
///
/// Higher layers (`dc-aggregate`, `datacube`, `dc-sql`) wrap this in their
/// own error enums rather than panicking, so a malformed query or a type
/// mismatch surfaces as a `Result` to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// A column name was not found in a schema.
    UnknownColumn(String),
    /// A row's arity did not match the schema it was inserted under.
    ArityMismatch { expected: usize, got: usize },
    /// A value's type did not match the column or operation that received it.
    TypeMismatch { expected: String, got: String },
    /// Two schemas that had to be union-compatible were not.
    SchemaMismatch(String),
    /// A duplicate column name was used where names must be unique.
    DuplicateColumn(String),
    /// Anything else worth reporting with context.
    Invalid(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            RelError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} columns, row has {got}"
                )
            }
            RelError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            RelError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            RelError::DuplicateColumn(name) => write!(f, "duplicate column: {name}"),
            RelError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for RelError {}

/// Convenience alias used across the substrate.
pub type RelResult<T> = Result<T, RelError>;
