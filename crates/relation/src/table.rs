//! In-memory tables (bag relations) and the basic relational operators the
//! cube algorithms are built from: project, filter, sort, union, distinct.

use crate::error::{RelError, RelResult};
use crate::row::Row;
use crate::schema::{ColumnDef, DataType, Schema};
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashSet;
use std::fmt;

/// A bag (multiset) of rows under a schema.
///
/// `Table` is the unit of data flow throughout the reproduction: base data,
/// GROUP BY cores, and cube results are all `Table`s — the paper's central
/// point being precisely that *cubes are relations*.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    rows: Vec<Row>,
}

impl Table {
    /// An empty table under `schema`.
    pub fn empty(schema: Schema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// Build a table, validating every row against the schema.
    pub fn new(schema: Schema, rows: Vec<Row>) -> RelResult<Self> {
        let mut t = Table::empty(schema);
        for row in rows {
            t.push(row)?;
        }
        Ok(t)
    }

    /// Build a table without per-row validation.
    ///
    /// Used on hot paths (cube interiors) where rows are constructed by the
    /// engine itself and already well-typed. Debug builds still assert the
    /// arity so corruption is caught in tests.
    pub fn from_validated_rows(schema: Schema, rows: Vec<Row>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == schema.len()));
        Table { schema, rows }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append one row, validating arity and column types.
    pub fn push(&mut self, row: Row) -> RelResult<()> {
        if row.len() != self.schema.len() {
            return Err(RelError::ArityMismatch {
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        for (col, v) in self.schema.columns().iter().zip(row.iter()) {
            col.check(v)?;
        }
        self.rows.push(row);
        Ok(())
    }

    /// Append a row constructed by the engine; skips validation in release
    /// builds.
    pub fn push_unchecked(&mut self, row: Row) {
        debug_assert_eq!(row.len(), self.schema.len());
        self.rows.push(row);
    }

    /// Column values by name, in row order.
    pub fn column_values(&self, name: &str) -> RelResult<Vec<Value>> {
        let idx = self.schema.index_of(name)?;
        Ok(self.rows.iter().map(|r| r[idx].clone()).collect())
    }

    /// Project onto named columns (clones values).
    pub fn project(&self, names: &[&str]) -> RelResult<Table> {
        let indices = self.schema.indices_of(names)?;
        let schema = self.schema.project(names)?;
        let rows = self.rows.iter().map(|r| r.project(&indices)).collect();
        Ok(Table::from_validated_rows(schema, rows))
    }

    /// Keep rows satisfying `pred` (SQL `WHERE`: unknown is excluded, so the
    /// predicate returns plain `bool`; three-valued logic is resolved by the
    /// caller, e.g. the SQL layer maps unknown to `false`).
    pub fn filter(&self, pred: impl Fn(&Row) -> bool) -> Table {
        Table {
            schema: self.schema.clone(),
            rows: self.rows.iter().filter(|r| pred(r)).cloned().collect(),
        }
    }

    /// Sort by the named columns, ascending, using the grouping total order
    /// (`NULL` first, `ALL` last). Stable, so prior orderings survive ties.
    pub fn sort_by_columns(&self, names: &[&str]) -> RelResult<Table> {
        let indices = self.schema.indices_of(names)?;
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| Self::cmp_on(a, b, &indices));
        Ok(Table {
            schema: self.schema.clone(),
            rows,
        })
    }

    /// Sort in place by precomputed column indices (hot path for the
    /// sort-based ROLLUP algorithm).
    pub fn sort_by_indices(&mut self, indices: &[usize]) {
        self.rows.sort_by(|a, b| Self::cmp_on(a, b, indices));
    }

    fn cmp_on(a: &Row, b: &Row, indices: &[usize]) -> Ordering {
        for &i in indices {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// The rows in canonical relation order: sorted by the first
    /// `key_cols` columns under the grouping total order (`NULL` first,
    /// `ALL` last, NaN and ±0.0 each ordered by identity), with the full
    /// row as tie-break. In a cube result the leading dimension tuple —
    /// ALL pattern included — is unique, so the order is total on the key
    /// alone; the tie-break only matters for arbitrary bags. This is the
    /// canonical form differential tests compare under.
    pub fn canonical_rows(&self, key_cols: usize) -> Vec<Row> {
        let mut rows = self.rows.clone();
        canonical_sort(&mut rows, key_cols);
        rows
    }

    /// Bag union (SQL `UNION ALL`); schemas must be union-compatible, and
    /// the left schema's names win.
    pub fn union_all(&self, other: &Table) -> RelResult<Table> {
        self.schema.union_compatible(&other.schema)?;
        let mut rows = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        Ok(Table {
            schema: self.schema.clone(),
            rows,
        })
    }

    /// Set union (SQL `UNION`): union-all then duplicate elimination.
    pub fn union(&self, other: &Table) -> RelResult<Table> {
        Ok(self.union_all(other)?.distinct())
    }

    /// Remove duplicate rows (grouping equality: NULLs and ALLs unify).
    /// Keeps the first occurrence of each row, preserving order.
    pub fn distinct(&self) -> Table {
        let mut seen = HashSet::with_capacity(self.rows.len());
        let rows = self
            .rows
            .iter()
            .filter(|r| seen.insert((*r).clone()))
            .cloned()
            .collect();
        Table {
            schema: self.schema.clone(),
            rows,
        }
    }

    /// Rows in `self` that do not appear in `other` (bag difference by
    /// distinct membership). Used to show Table 5.b — the rows a CUBE adds
    /// beyond a ROLLUP.
    pub fn difference(&self, other: &Table) -> RelResult<Table> {
        self.schema.union_compatible(&other.schema)?;
        let there: HashSet<&Row> = other.rows.iter().collect();
        Ok(Table {
            schema: self.schema.clone(),
            rows: self
                .rows
                .iter()
                .filter(|r| !there.contains(*r))
                .cloned()
                .collect(),
        })
    }

    /// Distinct values of the named column, sorted, excluding `NULL` and
    /// `ALL`. This is the paper's `ALL()` function — "the set over which the
    /// aggregate was computed" (§3.3) — evaluated against a relation.
    pub fn domain(&self, name: &str) -> RelResult<Vec<Value>> {
        let idx = self.schema.index_of(name)?;
        let mut set: Vec<Value> = self
            .rows
            .iter()
            .map(|r| r[idx].clone())
            .filter(|v| !v.is_all() && !v.is_null())
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        set.sort();
        Ok(set)
    }

    /// Convert the first-class `ALL` encoding into the §3.4 minimalist
    /// encoding: every `ALL` in the named grouping columns becomes `NULL`,
    /// and one `grouping(<col>)` Bool column per grouping column is appended
    /// carrying the paper's `GROUPING()` bit.
    pub fn to_null_grouping_encoding(&self, grouping_cols: &[&str]) -> RelResult<Table> {
        let indices = self.schema.indices_of(grouping_cols)?;
        let mut schema = self.schema.clone();
        for name in grouping_cols {
            schema.push(ColumnDef::new(format!("grouping({name})"), DataType::Bool))?;
        }
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let mut vals = r.values().to_vec();
                let mut bits = Vec::with_capacity(indices.len());
                for &i in &indices {
                    let is_all = vals[i].is_all();
                    bits.push(Value::Bool(is_all));
                    if is_all {
                        vals[i] = Value::Null;
                    }
                }
                vals.extend(bits);
                Row::new(vals)
            })
            .collect();
        Ok(Table::from_validated_rows(schema, rows))
    }

    /// Invert [`Table::to_null_grouping_encoding`]: consume the trailing
    /// `grouping(...)` columns and restore `ALL` tokens.
    pub fn from_null_grouping_encoding(&self, grouping_cols: &[&str]) -> RelResult<Table> {
        let data_indices = self.schema.indices_of(grouping_cols)?;
        let bit_names: Vec<String> = grouping_cols
            .iter()
            .map(|n| format!("grouping({n})"))
            .collect();
        let bit_refs: Vec<&str> = bit_names.iter().map(String::as_str).collect();
        let bit_indices = self.schema.indices_of(&bit_refs)?;
        let keep: Vec<usize> = (0..self.schema.len())
            .filter(|i| !bit_indices.contains(i))
            .collect();
        let schema = Schema::new(
            keep.iter()
                .map(|&i| {
                    let c = self.schema.column_at(i).clone();
                    if data_indices.contains(&i) {
                        ColumnDef::with_all(&*c.name, c.dtype)
                    } else {
                        c
                    }
                })
                .collect(),
        )?;
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let mut vals = r.values().to_vec();
                for (&di, &bi) in data_indices.iter().zip(bit_indices.iter()) {
                    if vals[bi] == Value::Bool(true) {
                        vals[di] = Value::All;
                    }
                }
                Row::new(keep.iter().map(|&i| vals[i].clone()).collect())
            })
            .collect();
        Ok(Table::from_validated_rows(schema, rows))
    }
}

/// Sort a bag of rows into canonical relation order: lexicographic on the
/// first `key_cols` columns (the grouping total order), full row as
/// tie-break. Shared by [`Table::canonical_rows`] and by oracles that hold
/// bare row vectors rather than tables.
pub fn canonical_sort(rows: &mut [Row], key_cols: usize) {
    rows.sort_by(|a, b| {
        for i in 0..key_cols {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        a.cmp(b)
    });
}

impl fmt::Display for Table {
    /// Renders via [`crate::display::render_table`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::display::render_table(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn sales() -> Table {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("color", DataType::Str),
            ("units", DataType::Int),
        ]);
        Table::new(
            schema,
            vec![
                row!["Chevy", 1994, "black", 50],
                row!["Chevy", 1994, "white", 40],
                row!["Chevy", 1995, "black", 85],
                row!["Chevy", 1995, "white", 115],
            ],
        )
        .unwrap()
    }

    #[test]
    fn push_validates_arity_and_types() {
        let mut t = sales();
        assert!(matches!(
            t.push(row!["Ford", 1994]),
            Err(RelError::ArityMismatch {
                expected: 4,
                got: 2
            })
        ));
        assert!(t.push(row!["Ford", "1994", "black", 1]).is_err());
        assert!(t.push(row!["Ford", 1994, "black", 50]).is_ok());
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn all_rejected_in_base_columns() {
        let mut t = sales();
        let err = t.push(Row::new(vec![
            Value::All,
            Value::Int(1994),
            Value::str("black"),
            Value::Int(1),
        ]));
        assert!(err.is_err());
    }

    #[test]
    fn projection() {
        let p = sales().project(&["units", "model"]).unwrap();
        assert_eq!(p.schema().names(), vec!["units", "model"]);
        assert_eq!(p.rows()[0], row![50, "Chevy"]);
    }

    #[test]
    fn filter_drops_rows() {
        let t = sales();
        let idx = t.schema().index_of("year").unwrap();
        let f = t.filter(|r| r[idx] == Value::Int(1995));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn sort_is_stable_and_all_last() {
        let mut t = sales();
        t.push(Row::new(vec![
            Value::str("Chevy"),
            Value::Int(1994),
            Value::Null,
            Value::Int(7),
        ]))
        .unwrap();
        let sorted = t.sort_by_columns(&["year", "color"]).unwrap();
        // NULL color sorts first within 1994.
        assert_eq!(sorted.rows()[0][2], Value::Null);
    }

    #[test]
    fn union_all_and_distinct() {
        let t = sales();
        let u = t.union_all(&t).unwrap();
        assert_eq!(u.len(), 8);
        assert_eq!(u.distinct().len(), 4);
        assert_eq!(t.union(&t).unwrap().len(), 4);
    }

    #[test]
    fn union_rejects_incompatible() {
        let t = sales();
        let other = Table::empty(Schema::from_pairs(&[("x", DataType::Int)]));
        assert!(t.union_all(&other).is_err());
    }

    #[test]
    fn difference() {
        let t = sales();
        let subset = t.filter(|r| r[1] == Value::Int(1994));
        let diff = t.difference(&subset).unwrap();
        assert_eq!(diff.len(), 2);
        assert!(diff.rows().iter().all(|r| r[1] == Value::Int(1995)));
    }

    #[test]
    fn domain_excludes_tokens() {
        let schema = Schema::new(vec![
            ColumnDef::with_all("model", DataType::Str),
            ColumnDef::new("units", DataType::Int),
        ])
        .unwrap();
        let t = Table::new(
            schema,
            vec![
                row!["Chevy", 1],
                Row::new(vec![Value::All, Value::Int(3)]),
                row!["Ford", 2],
                Row::new(vec![Value::Null, Value::Int(9)]),
                row!["Chevy", 4],
            ],
        )
        .unwrap();
        assert_eq!(
            t.domain("model").unwrap(),
            vec![Value::str("Chevy"), Value::str("Ford")]
        );
    }

    #[test]
    fn null_grouping_encoding_round_trip() {
        // Build a tiny "cube-like" table with ALL tokens.
        let schema = Schema::new(vec![
            ColumnDef::with_all("model", DataType::Str),
            ColumnDef::with_all("year", DataType::Int),
            ColumnDef::new("units", DataType::Int),
        ])
        .unwrap();
        let t = Table::new(
            schema,
            vec![
                row!["Chevy", 1994, 90],
                Row::new(vec![Value::str("Chevy"), Value::All, Value::Int(290)]),
                Row::new(vec![Value::All, Value::All, Value::Int(510)]),
            ],
        )
        .unwrap();
        let enc = t.to_null_grouping_encoding(&["model", "year"]).unwrap();
        assert_eq!(enc.schema().len(), 5);
        // Figure-4-style check: the global row is (NULL, NULL, v, TRUE, TRUE).
        let global = &enc.rows()[2];
        assert_eq!(global[0], Value::Null);
        assert_eq!(global[1], Value::Null);
        assert_eq!(global[3], Value::Bool(true));
        assert_eq!(global[4], Value::Bool(true));
        // And NULL-vs-ALL is now distinguishable only via the grouping bits,
        // exactly the §3.4 design. Round-trip restores the original.
        let back = enc.from_null_grouping_encoding(&["model", "year"]).unwrap();
        assert_eq!(back.rows(), t.rows());
    }

    #[test]
    fn canonical_rows_sorts_by_key_prefix_with_grouping_order() {
        let schema = Schema::new(vec![
            ColumnDef::with_all("model", DataType::Str),
            ColumnDef::new("units", DataType::Int),
        ])
        .unwrap();
        let t = Table::new(
            schema,
            vec![
                Row::new(vec![Value::All, Value::Int(3)]),
                row!["Ford", 2],
                Row::new(vec![Value::Null, Value::Int(0)]),
                row!["Chevy", 1],
            ],
        )
        .unwrap();
        let canon = t.canonical_rows(1);
        // Grouping total order: NULL first, then data values, ALL last.
        assert_eq!(canon[0][0], Value::Null);
        assert_eq!(canon[1][0], Value::str("Chevy"));
        assert_eq!(canon[2][0], Value::str("Ford"));
        assert_eq!(canon[3][0], Value::All);
        // Duplicate keys fall back to the full row, so the order is total.
        let mut dup = vec![row!["x", 2], row!["x", 1]];
        canonical_sort(&mut dup, 1);
        assert_eq!(dup[0][1], Value::Int(1));
    }
}
