//! The value domain, including the paper's `ALL` pseudo-value.
//!
//! §3.3 of the paper: "Each ALL value really represents a set — the set over
//! which the aggregate was computed." We follow the paper's pragmatic design:
//! `ALL` is a token (a non-value, like `NULL`) stored in grouping columns of
//! super-aggregate rows, the string `"ALL"` is for display, and the
//! [`Value::grouping`] predicate (the paper's `GROUPING()` function) tells
//! aggregate rows apart from data rows. The set a given `ALL` denotes can be
//! recovered from the relation it appears in; `datacube::addressing::all_set`
//! implements the paper's `ALL()` function that way.

use crate::date::Date;
use crate::schema::DataType;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single relational value.
///
/// `Value` implements `Eq`, `Ord`, and `Hash` with *grouping semantics*:
/// `Null == Null` and `All == All`, so values can be used directly as
/// group-by keys (SQL's `GROUP BY` also treats NULLs as one group). The
/// three-valued SQL comparison used by `WHERE` lives in [`Value::sql_cmp`].
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL: absent / unknown.
    Null,
    /// The paper's ALL token: "the set over which the aggregate was
    /// computed". Appears only in grouping columns of super-aggregate rows.
    All,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Arc<str>),
    Date(Date),
}

impl Value {
    /// Intern a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The paper's `GROUPING()` predicate: true iff this is an `ALL` value
    /// (or, under the §3.4 minimalist encoding, would have been one).
    pub fn grouping(&self) -> bool {
        matches!(self, Value::All)
    }

    /// True iff this is the `ALL` token.
    pub fn is_all(&self) -> bool {
        matches!(self, Value::All)
    }

    /// True iff this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The dynamic type of this value, if it has one. `Null` and `All` are
    /// typeless tokens and return `None`.
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Null | Value::All => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// Numeric view: `Int` and `Float` (and `Bool` as 0/1) coerce to `f64`.
    /// Used by the aggregate functions, which per the paper skip `NULL` and
    /// `ALL` ("ALL, like NULL, does not participate in any aggregate except
    /// COUNT()", §3.3).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Null | Value::All | Value::Str(_) | Value::Date(_) => None,
        }
    }

    /// Integer view without loss: `Int` only.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Null
            | Value::All
            | Value::Bool(_)
            | Value::Float(_)
            | Value::Str(_)
            | Value::Date(_) => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Null
            | Value::All
            | Value::Bool(_)
            | Value::Int(_)
            | Value::Float(_)
            | Value::Date(_) => None,
        }
    }

    /// Date view.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            Value::Null
            | Value::All
            | Value::Bool(_)
            | Value::Int(_)
            | Value::Float(_)
            | Value::Str(_) => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Null
            | Value::All
            | Value::Int(_)
            | Value::Float(_)
            | Value::Str(_)
            | Value::Date(_) => None,
        }
    }

    /// Three-valued SQL comparison (`WHERE` semantics): comparing with
    /// `NULL` yields `None` (unknown). Comparing with `ALL` also yields
    /// `None`: the paper's set interpretation would make `ALL = x` a set
    /// membership question, which we deliberately do not answer in the
    /// scalar comparator — use `GROUPING()` to select aggregate rows.
    ///
    /// Numeric types compare across `Int`/`Float`; any other cross-type
    /// comparison is `None` (SQL would raise a type error at plan time; the
    /// SQL layer checks types before evaluation).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) | (All, _) | (_, All) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => Some(a.total_cmp(b)),
            (Int(a), Float(b)) => Some((*a as f64).total_cmp(b)),
            (Float(a), Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            // Remaining cross-type pairs are unknown; new variants are
            // still caught at compile time by `type_rank`, which matches
            // exhaustively. cube-lint: allow(wildcard, cross-type pair fallback; type_rank stays exhaustive)
            _ => None,
        }
    }

    /// Three-valued SQL equality. `None` means unknown (NULL involved).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Rank used to give `Value` a total order across variants. `ALL` sorts
    /// *after* every real value so that super-aggregate rows land at the end
    /// of each group in sorted output — matching the paper's report layouts
    /// (Table 5.a lists detail rows before their `ALL` sub-total).
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // Int and Float interleave numerically
            Value::Str(_) => 3,
            Value::Date(_) => 4,
            Value::All => 5,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order with grouping semantics: `Null` first, `All` last,
    /// numerics interleaved, same-type values in their natural order.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) | (All, All) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            // Cross-type pairs order by rank; `type_rank` is exhaustive,
            // so a new variant cannot silently fall through here.
            // cube-lint: allow(wildcard, cross-type pair fallback; type_rank stays exhaustive)
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

/// Pre-mix for numeric hashes. Small integers as `f64` bits differ only
/// in the exponent and top mantissa bits (the low ~40 bits are all
/// zero), and the multiplicative hashers used for group maps (Fx) never
/// move high input bits downward — without this mix, every small-int key
/// shares its bucket-index bits and hash tables degrade to one linear
/// probe chain (interning a cardinality-1000 integer dimension was ~10×
/// slower than a cardinality-10 one). The xor-shift/multiply/xor-shift
/// finalizer (Murmur3's) makes every output bit depend on every input
/// bit; it is a bijection applied identically to the Int and Float arms,
/// so the cross-type Eq/Hash contract is kept.
#[inline]
fn mix_numeric(bits: u64) -> u64 {
    let mut b = bits ^ (bits >> 33);
    b = b.wrapping_mul(0xff51_afd7_ed55_8ccd);
    b ^ (b >> 33)
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::All => state.write_u8(5),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            Value::Int(i) => {
                state.write_u8(2);
                // Hash Int and Float identically when numerically equal so
                // that the Eq/Hash contract holds across the coercion.
                mix_numeric((*i as f64).to_bits()).hash(state);
            }
            Value::Float(f) => {
                state.write_u8(2);
                mix_numeric(f.to_bits()).hash(state);
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
            Value::Date(d) => {
                state.write_u8(4);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::All => write!(f, "ALL"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn grouping_predicate_matches_paper() {
        assert!(Value::All.grouping());
        assert!(!Value::Null.grouping());
        assert!(!Value::Int(1).grouping());
    }

    #[test]
    fn grouping_equality_for_tokens() {
        // Group-by key semantics: NULL groups with NULL, ALL with ALL.
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::All, Value::All);
        assert_ne!(Value::Null, Value::All);
    }

    #[test]
    fn sql_comparison_is_three_valued() {
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::All.sql_eq(&Value::Int(3)), None);
        assert_eq!(Value::Int(3).sql_eq(&Value::Int(3)), Some(true));
        assert_eq!(Value::Int(3).sql_eq(&Value::Float(3.0)), Some(true));
        assert_eq!(
            Value::str("a").sql_cmp(&Value::str("b")),
            Some(Ordering::Less)
        );
        // Cross-type comparisons are unknown (caught at plan time upstream).
        assert_eq!(Value::Int(1).sql_eq(&Value::str("1")), None);
    }

    #[test]
    fn all_sorts_last_null_first() {
        let mut vs = [
            Value::All,
            Value::str("white"),
            Value::Null,
            Value::Int(2),
            Value::str("black"),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(*vs.last().unwrap(), Value::All);
    }

    #[test]
    fn numeric_cross_type_eq_hash_contract() {
        let a = Value::Int(42);
        let b = Value::Float(42.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, nan); // total_cmp: NaN groups with itself
        assert_eq!(hash_of(&nan), hash_of(&nan));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::All.to_string(), "ALL");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(290).to_string(), "290");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::str("Chevy").to_string(), "Chevy");
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
    }

    #[test]
    fn dtype_of_tokens_is_none() {
        assert_eq!(Value::Null.dtype(), None);
        assert_eq!(Value::All.dtype(), None);
        assert_eq!(Value::Int(1).dtype(), Some(DataType::Int));
    }

    #[test]
    fn as_f64_coercions() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::All.as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }
}
