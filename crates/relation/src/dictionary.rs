//! Dictionary (hashed symbol table) encoding of dimension values.
//!
//! §5 of the paper, quoting Graefe's aggregation tips: "If the aggregation
//! values are large strings, it may be wise to keep a hashed symbol table
//! that maps each string to an integer so that the aggregate values are
//! small. ... the values become dense and the aggregates can be stored as an
//! N-dimensional array." [`SymbolTable`] is that structure; the dense-array
//! cube algorithm in `datacube::algorithm::array` builds on it.

use crate::fx::FxHashMap;
use crate::value::Value;

/// Maps each distinct [`Value`] of one dimension to a dense code
/// `0..cardinality`, in first-seen order.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    codes: FxHashMap<Value, u32>,
    values: Vec<Value>,
}

impl SymbolTable {
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Code for `v`, assigning the next dense code on first sight.
    pub fn intern(&mut self, v: &Value) -> u32 {
        if let Some(&c) = self.codes.get(v) {
            return c;
        }
        // cube-lint: allow(panic, documented capacity limit of 2^32 distinct dimension values)
        let c = u32::try_from(self.values.len()).expect("dimension cardinality exceeds u32");
        self.codes.insert(v.clone(), c);
        self.values.push(v.clone());
        c
    }

    /// Code for `v` if already interned.
    pub fn lookup(&self, v: &Value) -> Option<u32> {
        self.codes.get(v).copied()
    }

    /// The value behind a code.
    pub fn decode(&self, code: u32) -> Option<&Value> {
        self.values.get(code as usize)
    }

    /// Number of distinct values seen — the dimension's cardinality `C_i`.
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All interned values in code order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

/// Dictionary-encode several columns of rows at once: returns one
/// [`SymbolTable`] per column and the coded rows. The coded form is what the
/// dense-array cube indexes with.
pub fn encode_columns(rows: &[crate::Row], indices: &[usize]) -> (Vec<SymbolTable>, Vec<Vec<u32>>) {
    let mut tables: Vec<SymbolTable> = indices.iter().map(|_| SymbolTable::new()).collect();
    let coded = rows
        .iter()
        .map(|row| {
            indices
                .iter()
                .zip(tables.iter_mut())
                .map(|(&i, t)| t.intern(&row[i]))
                .collect()
        })
        .collect();
    (tables, coded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn intern_is_dense_and_stable() {
        let mut t = SymbolTable::new();
        let a = t.intern(&Value::str("Chevy"));
        let b = t.intern(&Value::str("Ford"));
        let a2 = t.intern(&Value::str("Chevy"));
        assert_eq!((a, b, a2), (0, 1, 0));
        assert_eq!(t.cardinality(), 2);
        assert_eq!(t.decode(1), Some(&Value::str("Ford")));
        assert_eq!(t.lookup(&Value::str("Dodge")), None);
    }

    #[test]
    fn interns_any_value_type() {
        let mut t = SymbolTable::new();
        t.intern(&Value::Int(1994));
        t.intern(&Value::Int(1995));
        t.intern(&Value::Null); // NULL is a groupable key
        assert_eq!(t.cardinality(), 3);
    }

    #[test]
    fn encode_columns_per_dimension() {
        let rows = vec![
            row!["Chevy", 1994, "black"],
            row!["Chevy", 1995, "white"],
            row!["Ford", 1994, "black"],
        ];
        let (tables, coded) = encode_columns(&rows, &[0, 2]);
        assert_eq!(tables[0].cardinality(), 2); // Chevy, Ford
        assert_eq!(tables[1].cardinality(), 2); // black, white
        assert_eq!(coded, vec![vec![0, 0], vec![0, 1], vec![1, 0]]);
    }
}
