//! Dictionary (hashed symbol table) encoding of dimension values.
//!
//! §5 of the paper, quoting Graefe's aggregation tips: "If the aggregation
//! values are large strings, it may be wise to keep a hashed symbol table
//! that maps each string to an integer so that the aggregate values are
//! small. ... the values become dense and the aggregates can be stored as an
//! N-dimensional array." [`SymbolTable`] is that structure; the dense-array
//! cube algorithm in `datacube::algorithm::array` builds on it.

use crate::fx::FxHashMap;
use crate::value::Value;

/// Size of the direct-index integer fast lane: a window of
/// `INT_WINDOW` consecutive integers centred on the first one seen.
/// Integer dimensions are the common case (years, ids, bucketed
/// measures) and their codes cluster in a narrow range, so most interns
/// resolve with one array load instead of a hash probe. Values outside
/// the window — and every non-integer value — take the hash-map lane.
const INT_WINDOW: i64 = 8192;

/// Maps each distinct [`Value`] of one dimension to a dense code
/// `0..cardinality`, in first-seen order.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    codes: FxHashMap<Value, u32>,
    values: Vec<Value>,
    /// Integer fast lane: `int_codes[v - int_lo]` holds `code + 1`
    /// (0 = unseen) for `v` in `[int_lo, int_lo + INT_WINDOW)`. Empty
    /// until the first in-lane integer is interned.
    int_lo: i64,
    int_codes: Vec<u32>,
}

/// The fast-lane key of `v`, if it has one: an `Int`, or a `Float` whose
/// bits are exactly an integer's `as f64` form (those compare equal under
/// [`Value`]'s `total_cmp`-based `Eq`, so they must share a code; e.g.
/// `-0.0` is *not* equal to `0` and stays on the hash lane).
#[inline]
fn int_lane_key(v: &Value) -> Option<i64> {
    match v {
        Value::Int(i) => Some(*i),
        Value::Float(f) => {
            let i = *f as i64;
            (f.to_bits() == (i as f64).to_bits()).then_some(i)
        }
        // cube-lint: allow(wildcard, non-numeric variants have no integer lane key by definition)
        _ => None,
    }
}

impl SymbolTable {
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Code for `v`, assigning the next dense code on first sight.
    pub fn intern(&mut self, v: &Value) -> u32 {
        if let Some(i) = int_lane_key(v) {
            if self.int_codes.is_empty() {
                self.int_lo = i.saturating_sub(INT_WINDOW / 2);
                self.int_codes = vec![0u32; INT_WINDOW as usize];
            }
            let off = i.wrapping_sub(self.int_lo);
            if (0..INT_WINDOW).contains(&off) {
                let entry = &mut self.int_codes[off as usize];
                if *entry != 0 {
                    return *entry - 1;
                }
                let c =
                    // cube-lint: allow(panic, documented capacity limit of 2^32 distinct dimension values)
                    u32::try_from(self.values.len()).expect("dimension cardinality exceeds u32");
                *entry = c + 1;
                self.values.push(v.clone());
                return c;
            }
        }
        if let Some(&c) = self.codes.get(v) {
            return c;
        }
        // cube-lint: allow(panic, documented capacity limit of 2^32 distinct dimension values)
        let c = u32::try_from(self.values.len()).expect("dimension cardinality exceeds u32");
        self.codes.insert(v.clone(), c);
        self.values.push(v.clone());
        c
    }

    /// Code for `v` if already interned.
    pub fn lookup(&self, v: &Value) -> Option<u32> {
        if let Some(i) = int_lane_key(v) {
            let off = i.wrapping_sub(self.int_lo);
            if !self.int_codes.is_empty() && (0..INT_WINDOW).contains(&off) {
                let entry = self.int_codes[off as usize];
                return (entry != 0).then(|| entry - 1);
            }
        }
        self.codes.get(v).copied()
    }

    /// The value behind a code.
    pub fn decode(&self, code: u32) -> Option<&Value> {
        self.values.get(code as usize)
    }

    /// Number of distinct values seen — the dimension's cardinality `C_i`.
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All interned values in code order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

/// Dictionary-encode several columns of rows at once: returns one
/// [`SymbolTable`] per column and the coded rows. The coded form is what the
/// dense-array cube indexes with.
pub fn encode_columns(rows: &[crate::Row], indices: &[usize]) -> (Vec<SymbolTable>, Vec<Vec<u32>>) {
    let mut tables: Vec<SymbolTable> = indices.iter().map(|_| SymbolTable::new()).collect();
    let coded = rows
        .iter()
        .map(|row| {
            indices
                .iter()
                .zip(tables.iter_mut())
                .map(|(&i, t)| t.intern(&row[i]))
                .collect()
        })
        .collect();
    (tables, coded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn intern_is_dense_and_stable() {
        let mut t = SymbolTable::new();
        let a = t.intern(&Value::str("Chevy"));
        let b = t.intern(&Value::str("Ford"));
        let a2 = t.intern(&Value::str("Chevy"));
        assert_eq!((a, b, a2), (0, 1, 0));
        assert_eq!(t.cardinality(), 2);
        assert_eq!(t.decode(1), Some(&Value::str("Ford")));
        assert_eq!(t.lookup(&Value::str("Dodge")), None);
    }

    #[test]
    fn interns_any_value_type() {
        let mut t = SymbolTable::new();
        t.intern(&Value::Int(1994));
        t.intern(&Value::Int(1995));
        t.intern(&Value::Null); // NULL is a groupable key
        assert_eq!(t.cardinality(), 3);
    }

    #[test]
    fn int_fast_lane_coalesces_with_equal_floats() {
        // Int(5) == Float(5.0) under Value's Eq, so the integer fast
        // lane must hand them the same code — whether the Int or the
        // Float arrives first, and likewise via lookup.
        let mut t = SymbolTable::new();
        let a = t.intern(&Value::Int(5));
        let b = t.intern(&Value::Float(5.0));
        assert_eq!(a, b);
        assert_eq!(t.cardinality(), 1);
        assert_eq!(t.lookup(&Value::Float(5.0)), Some(a));

        let mut t = SymbolTable::new();
        let a = t.intern(&Value::Float(7.0));
        let b = t.intern(&Value::Int(7));
        assert_eq!(a, b);
        assert_eq!(t.lookup(&Value::Int(7)), Some(a));

        // Values far outside the window spill to the hash lane but must
        // still coalesce across the Int/Float boundary.
        let far = 40 * INT_WINDOW;
        let c = t.intern(&Value::Int(far));
        assert_eq!(t.intern(&Value::Float(far as f64)), c);
        assert_ne!(a, c);

        // -0.0 == 0.0 is *false* under total_cmp: distinct codes, and
        // the hash-lane entry for -0.0 must not shadow the lane's 0.
        let mut t = SymbolTable::new();
        let zero = t.intern(&Value::Int(0));
        let neg = t.intern(&Value::Float(-0.0));
        assert_ne!(zero, neg);
        assert_eq!(t.cardinality(), 2);
        assert_eq!(t.lookup(&Value::Float(0.0)), Some(zero));
        assert_eq!(t.lookup(&Value::Float(-0.0)), Some(neg));

        // A non-integral float never takes the lane and never collides.
        let mut t = SymbolTable::new();
        let half = t.intern(&Value::Float(0.5));
        assert_ne!(t.intern(&Value::Int(0)), half);
        assert_eq!(t.cardinality(), 2);
    }

    #[test]
    fn encode_columns_per_dimension() {
        let rows = vec![
            row!["Chevy", 1994, "black"],
            row!["Chevy", 1995, "white"],
            row!["Ford", 1994, "black"],
        ];
        let (tables, coded) = encode_columns(&rows, &[0, 2]);
        assert_eq!(tables[0].cardinality(), 2); // Chevy, Ford
        assert_eq!(tables[1].cardinality(), 2); // black, white
        assert_eq!(coded, vec![vec![0, 0], vec![0, 1], vec![1, 0]]);
    }
}
