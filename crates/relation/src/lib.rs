//! Relational substrate for the data cube reproduction.
//!
//! This crate provides the in-memory relational model that the
//! [Gray et al. 1996 data cube paper] assumes as a substrate: typed values,
//! schemas, rows, and tables, together with the two pseudo-values the paper
//! revolves around:
//!
//! * [`Value::Null`] — SQL's missing value, and
//! * [`Value::All`] — the paper's `ALL` token (§3.3) denoting *the set over
//!   which an aggregate was computed*, used to mark super-aggregate rows in
//!   a cube relation.
//!
//! The paper (§3.4) also describes a "minimalist" encoding that veteran SQL
//! implementers preferred: store `NULL` in the data column and expose a
//! `GROUPING()` predicate instead of a first-class `ALL`. Both encodings are
//! supported here; see [`Value::is_all`] and the conversion helpers on
//! [`Table`].
//!
//! Everything is deliberately simple and allocation-conscious: rows are
//! `Vec<Value>`, strings are interned `Arc<str>`, and dimensions can be
//! dictionary-encoded through [`dictionary::SymbolTable`] (Graefe's hashed
//! symbol-table tip quoted in §5 of the paper).
//!
//! [Gray et al. 1996 data cube paper]:
//!     https://doi.org/10.1109/ICDE.1996.492099

pub mod columnar;
pub mod csv;
pub mod date;
pub mod dictionary;
pub mod display;
pub mod error;
pub mod fx;
pub mod row;
pub mod schema;
pub mod table;
pub mod value;

pub use columnar::{Bitmap, BitmapBuilder, Column, ColumnData, ColumnarBatch, RleIndex};
pub use date::Date;
pub use dictionary::SymbolTable;
pub use error::{RelError, RelResult};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use row::Row;
pub use schema::{ColumnDef, DataType, Schema};
pub use table::Table;
pub use value::Value;
