//! Rows: fixed-arity tuples of values.

use crate::value::Value;
use std::fmt;
use std::ops::{Index, IndexMut};

/// One tuple. A thin wrapper over `Vec<Value>` that keeps construction
/// ergonomic (`row![...]`, `From<Vec<Value>>`) and gives rows grouping-key
/// `Eq`/`Ord`/`Hash` for free via `Value`'s semantics.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Row(pub Vec<Value>);

impl Row {
    pub fn new(values: Vec<Value>) -> Self {
        Row(values)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn values(&self) -> &[Value] {
        &self.0
    }

    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.0.get(idx)
    }

    /// Project this row onto the given column indices, cloning values.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row(indices.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Append a value, returning the extended row (used by decorators).
    pub fn extended(mut self, v: Value) -> Row {
        self.0.push(v);
        self
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }
}

impl Index<usize> for Row {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.0[idx]
    }
}

impl IndexMut<usize> for Row {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        &mut self.0[idx]
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Self {
        Row(v)
    }
}

impl IntoIterator for Row {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a Row {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Display for Row {
    /// Tuple-style rendering: `(a, b, c)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Build a [`Row`] from a comma-separated list of expressions convertible
/// into [`Value`].
///
/// ```
/// use dc_relation::{row, Value};
/// let r = row!["Chevy", 1994, "black", 50];
/// assert_eq!(r[1], Value::Int(1994));
/// ```
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use crate::{Row, Value};

    #[test]
    fn row_macro_converts_literals() {
        let r = row!["Chevy", 1994, 2.5, true];
        assert_eq!(r.len(), 4);
        assert_eq!(r[0], Value::str("Chevy"));
        assert_eq!(r[1], Value::Int(1994));
        assert_eq!(r[2], Value::Float(2.5));
        assert_eq!(r[3], Value::Bool(true));
    }

    #[test]
    fn projection_reorders_and_clones() {
        let r = row!["a", 1, "b"];
        let p = r.project(&[2, 0]);
        assert_eq!(p, row!["b", "a"]);
        assert_eq!(r.len(), 3); // original untouched
    }

    #[test]
    fn rows_group_with_token_semantics() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Row::new(vec![Value::All, Value::Null]));
        set.insert(Row::new(vec![Value::All, Value::Null]));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn display_is_tuple_like() {
        let r = Row::new(vec![Value::All, Value::Int(941)]);
        assert_eq!(r.to_string(), "(ALL, 941)");
    }
}
