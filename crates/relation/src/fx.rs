//! A fast, non-cryptographic hasher for in-memory group-by state.
//!
//! `std`'s default `HashMap` hasher is SipHash-1-3 with a random key —
//! HashDoS-resistant, but a large cost for the hash-heavy inner loops of
//! cube computation, where every row touches one map cell per grouping
//! set. Cube inputs are not attacker-controlled hash keys, so we trade
//! the DoS resistance away for speed, the same call rustc itself makes.
//!
//! [`FxHasher`] is the Firefox/rustc "Fx" multiply-rotate hash: fold each
//! 8-byte chunk into the state with a rotate, xor, and multiply by a
//! constant with good bit dispersion. It is deterministic (no per-process
//! random state), which also makes encoded-key map iteration reproducible
//! across runs of the same build.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Fx hash family: a 64-bit constant with no obvious
/// structure and good avalanche behaviour under `wrapping_mul`.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc/Firefox "Fx" hasher: not cryptographic, very fast on the
/// short keys (packed `u64` coordinates, small `Row`s) group maps use.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // cube-lint: allow(panic, chunks_exact(8) yields exactly 8-byte slices)
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            // The remainder is at most 7 bytes, so the top byte is free:
            // store the length there to keep zero-padded tails (b"\0" vs
            // b"\0\0" vs the chunk boundary) from colliding.
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            tail[7] = rest.len() as u8;
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Zero-sized `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed by the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed by the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hasher_instances() {
        let hash = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b"Chevy"), hash(b"Chevy"));
        assert_ne!(hash(b"Chevy"), hash(b"Ford"));
        assert_ne!(hash(b""), hash(b"\0"));
    }

    #[test]
    fn u64_keys_disperse() {
        // Consecutive packed keys must not collide in the low bits the
        // table indexes with.
        let mut low_bits = FxHashSet::default();
        for k in 0u64..1024 {
            let mut h = FxHasher::default();
            h.write_u64(k);
            low_bits.insert(h.finish() & 0x3ff);
        }
        // With 1024 keys into 1024 buckets, a decent hash fills most.
        assert!(
            low_bits.len() > 512,
            "only {} distinct low-bit patterns",
            low_bits.len()
        );
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        m.insert("a".into(), 1);
        assert_eq!(m["a"], 1);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
