//! Schemas: ordered, named, typed columns.

use crate::error::{RelError, RelResult};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Declared column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Str,
    Date,
}

impl DataType {
    /// True if a value of type `other` may be stored in a column of this
    /// type. Ints widen to Float; nothing else coerces implicitly.
    pub fn accepts(self, other: DataType) -> bool {
        self == other || (self == DataType::Float && other == DataType::Int)
    }

    /// True for the numeric types.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STRING",
            DataType::Date => "DATE",
        };
        f.write_str(s)
    }
}

/// One column of a schema.
///
/// `all_allowed` mirrors the paper's proposed `ALL [NOT] ALLOWED` column
/// attribute (§3.3): cube results set it on their grouping columns; base
/// tables leave it off, and inserting an `ALL` into such a column is an
/// error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: Arc<str>,
    pub dtype: DataType,
    pub all_allowed: bool,
}

impl ColumnDef {
    /// A normal data column: `ALL NOT ALLOWED`.
    pub fn new(name: impl AsRef<str>, dtype: DataType) -> Self {
        ColumnDef {
            name: Arc::from(name.as_ref()),
            dtype,
            all_allowed: false,
        }
    }

    /// A grouping column of an aggregate result: `ALL ALLOWED`.
    pub fn with_all(name: impl AsRef<str>, dtype: DataType) -> Self {
        ColumnDef {
            name: Arc::from(name.as_ref()),
            dtype,
            all_allowed: true,
        }
    }

    /// Check a single value against this column's declaration.
    pub fn check(&self, v: &Value) -> RelResult<()> {
        match v {
            Value::Null => Ok(()),
            Value::All if self.all_allowed => Ok(()),
            Value::All => Err(RelError::Invalid(format!(
                "column '{}' is ALL NOT ALLOWED",
                self.name
            ))),
            other => {
                // cube-lint: allow(panic, Null and All were consumed by the arms above)
                let got = other.dtype().expect("non-token value has a type");
                if self.dtype.accepts(got) {
                    Ok(())
                } else {
                    Err(RelError::TypeMismatch {
                        expected: format!("{} for column '{}'", self.dtype, self.name),
                        got: got.to_string(),
                    })
                }
            }
        }
    }
}

/// An ordered set of uniquely named columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Build a schema, rejecting duplicate column names.
    pub fn new(columns: Vec<ColumnDef>) -> RelResult<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(RelError::DuplicateColumn(c.name.to_string()));
            }
        }
        Ok(Schema { columns })
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema::new(pairs.iter().map(|(n, t)| ColumnDef::new(n, *t)).collect())
            // cube-lint: allow(panic, documented contract for inline schema literals)
            .expect("schema literals must not repeat column names")
    }

    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of the named column (case-sensitive).
    pub fn index_of(&self, name: &str) -> RelResult<usize> {
        self.columns
            .iter()
            .position(|c| &*c.name == name)
            .ok_or_else(|| RelError::UnknownColumn(name.to_string()))
    }

    /// The named column's definition.
    pub fn column(&self, name: &str) -> RelResult<&ColumnDef> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// Column definition by position.
    pub fn column_at(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }

    /// Resolve several names to indices at once.
    pub fn indices_of(&self, names: &[&str]) -> RelResult<Vec<usize>> {
        names.iter().map(|n| self.index_of(n)).collect()
    }

    /// A new schema containing the given columns, in the given order.
    pub fn project(&self, names: &[&str]) -> RelResult<Schema> {
        let cols = names
            .iter()
            .map(|n| self.column(n).cloned())
            .collect::<RelResult<Vec<_>>>()?;
        Schema::new(cols)
    }

    /// Two schemas are union-compatible when arities and column types match
    /// pairwise (names may differ; the left names win, as in SQL).
    pub fn union_compatible(&self, other: &Schema) -> RelResult<()> {
        if self.len() != other.len() {
            return Err(RelError::SchemaMismatch(format!(
                "arity {} vs {}",
                self.len(),
                other.len()
            )));
        }
        for (a, b) in self.columns.iter().zip(other.columns.iter()) {
            if a.dtype != b.dtype {
                return Err(RelError::SchemaMismatch(format!(
                    "column '{}': {} vs {}",
                    a.name, a.dtype, b.dtype
                )));
            }
        }
        Ok(())
    }

    /// Append a column, rejecting duplicates.
    pub fn push(&mut self, col: ColumnDef) -> RelResult<()> {
        if self.columns.iter().any(|c| c.name == col.name) {
            return Err(RelError::DuplicateColumn(col.name.to_string()));
        }
        self.columns.push(col);
        Ok(())
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| &*c.name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("color", DataType::Str),
            ("units", DataType::Int),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.index_of("year").unwrap(), 1);
        assert!(matches!(
            s.index_of("nope"),
            Err(RelError::UnknownColumn(_))
        ));
        assert_eq!(s.indices_of(&["color", "model"]).unwrap(), vec![2, 0]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("a", DataType::Str),
        ])
        .unwrap_err();
        assert!(matches!(err, RelError::DuplicateColumn(_)));
    }

    #[test]
    fn all_allowed_enforced() {
        let plain = ColumnDef::new("model", DataType::Str);
        let cube = ColumnDef::with_all("model", DataType::Str);
        assert!(plain.check(&Value::All).is_err());
        assert!(cube.check(&Value::All).is_ok());
        assert!(plain.check(&Value::Null).is_ok());
        assert!(plain.check(&Value::str("Chevy")).is_ok());
        assert!(plain.check(&Value::Int(1)).is_err());
    }

    #[test]
    fn int_widens_to_float() {
        let c = ColumnDef::new("x", DataType::Float);
        assert!(c.check(&Value::Int(1)).is_ok());
        let c2 = ColumnDef::new("x", DataType::Int);
        assert!(c2.check(&Value::Float(1.0)).is_err());
    }

    #[test]
    fn projection_preserves_order_given() {
        let s = sample();
        let p = s.project(&["units", "model"]).unwrap();
        assert_eq!(p.names(), vec!["units", "model"]);
    }

    #[test]
    fn union_compatibility() {
        let s = sample();
        assert!(s.union_compatible(&sample()).is_ok());
        let fewer = Schema::from_pairs(&[("a", DataType::Str)]);
        assert!(s.union_compatible(&fewer).is_err());
        let renamed = Schema::from_pairs(&[
            ("m", DataType::Str),
            ("y", DataType::Int),
            ("c", DataType::Str),
            ("u", DataType::Int),
        ]);
        assert!(s.union_compatible(&renamed).is_ok());
        let retyped = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Str),
            ("color", DataType::Str),
            ("units", DataType::Int),
        ]);
        assert!(s.union_compatible(&retyped).is_err());
    }
}
