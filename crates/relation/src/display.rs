//! ASCII rendering of tables.
//!
//! The `paper_tables` harness uses this to regenerate the paper's
//! illustrative tables (Tables 1, 3, 5, 6, 7) in a layout a reader can put
//! side by side with the PDF.

use crate::table::Table;

/// Render a table with a header row, column rule, and right-aligned numeric
/// columns.
pub fn render_table(t: &Table) -> String {
    let names = t.schema().names();
    let ncols = names.len();
    let mut widths: Vec<usize> = names.iter().map(|n| n.chars().count()).collect();
    let cells: Vec<Vec<String>> = t
        .rows()
        .iter()
        .map(|r| r.iter().map(ToString::to_string).collect())
        .collect();
    for row in &cells {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.chars().count());
        }
    }
    let numeric: Vec<bool> = t
        .schema()
        .columns()
        .iter()
        .map(|c| c.dtype.is_numeric())
        .collect();

    let mut out = String::new();
    let rule = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };
    let line = |out: &mut String, row: &[String]| {
        out.push('|');
        for i in 0..ncols {
            let pad = widths[i] - row[i].chars().count();
            if numeric[i] {
                out.push_str(&format!(" {}{} |", " ".repeat(pad), row[i]));
            } else {
                out.push_str(&format!(" {}{} |", row[i], " ".repeat(pad)));
            }
        }
        out.push('\n');
    };

    rule(&mut out);
    line(
        &mut out,
        &names.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    rule(&mut out);
    for row in &cells {
        line(&mut out, row);
    }
    rule(&mut out);
    out.push_str(&format!("{} row(s)\n", t.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{row, DataType, Schema, Table};

    #[test]
    fn renders_header_and_rows() {
        let t = Table::new(
            Schema::from_pairs(&[("model", DataType::Str), ("units", DataType::Int)]),
            vec![row!["Chevy", 290], row!["Ford", 220]],
        )
        .unwrap();
        let s = render_table(&t);
        assert!(s.contains("| model | units |"));
        assert!(s.contains("| Chevy |   290 |")); // numeric right-aligned
        assert!(s.contains("2 row(s)"));
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::empty(Schema::from_pairs(&[("x", DataType::Int)]));
        let s = render_table(&t);
        assert!(s.contains("| x |"));
        assert!(s.contains("0 row(s)"));
    }
}
