//! Property tests for the value domain and table operations: the laws the
//! cube layer silently depends on.

use dc_relation::{csv, ColumnDef, DataType, Row, Schema, Table, Value};
use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        Just(Value::All),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-1000i64..1000).prop_map(|i| Value::Float(i as f64 / 4.0)),
        "[a-z]{0,6}".prop_map(Value::str),
    ]
}

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Ord is a total order: antisymmetric, transitive, total.
    #[test]
    fn value_order_is_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        // Totality + antisymmetry.
        match a.cmp(&b) {
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => prop_assert_eq!(b.cmp(&a), Ordering::Equal),
        }
        // Transitivity.
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
    }

    /// Eq ⇒ equal hashes (the HashMap contract the group-by relies on).
    #[test]
    fn eq_implies_hash_eq(a in arb_value(), b in arb_value()) {
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    /// ALL collates after every other value; NULL before.
    #[test]
    fn token_collation(v in arb_value()) {
        if !v.is_all() {
            prop_assert_eq!(Value::All.cmp(&v), Ordering::Greater);
        }
        if !v.is_null() {
            prop_assert_eq!(Value::Null.cmp(&v), Ordering::Less);
        }
    }

    /// sql_cmp is None exactly when a token is involved or types are
    /// incomparable, and agrees with Ord otherwise.
    #[test]
    fn sql_cmp_consistent_with_ord(a in arb_value(), b in arb_value()) {
        match a.sql_cmp(&b) {
            Some(ord) => prop_assert_eq!(ord, a.cmp(&b)),
            None => {
                let token = a.is_null() || b.is_null() || a.is_all() || b.is_all();
                let cross_type = a.dtype() != b.dtype()
                    && !(a.dtype().is_some_and(|t| t.is_numeric())
                        && b.dtype().is_some_and(|t| t.is_numeric()));
                prop_assert!(token || cross_type, "None for comparable {a:?} vs {b:?}");
            }
        }
    }

    /// Sorting a table then filtering preserves multiset semantics, and
    /// distinct is idempotent.
    #[test]
    fn table_ops_preserve_rows(
        rows in proptest::collection::vec((0i64..5, 0i64..5), 0..50)
    ) {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
        let mut t = Table::empty(schema);
        for (a, b) in &rows {
            t.push_unchecked(Row::new(vec![Value::Int(*a), Value::Int(*b)]));
        }
        let sorted = t.sort_by_columns(&["a", "b"]).unwrap();
        prop_assert_eq!(sorted.len(), t.len());
        // Sorted output is actually sorted.
        for w in sorted.rows().windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let d = t.distinct();
        let dd = d.distinct();
        prop_assert_eq!(dd.rows(), d.rows());
        prop_assert!(d.len() <= t.len());
    }

    /// CSV round-trips any table of ints/strings/tokens under a cube-ish
    /// schema.
    #[test]
    fn csv_round_trip(
        rows in proptest::collection::vec(
            (prop_oneof![
                Just(Value::All),
                Just(Value::Null),
                "[a-zA-Z0-9 ,\"']{0,8}".prop_map(Value::str),
            ], -100i64..100),
            0..30,
        )
    ) {
        let schema = Schema::new(vec![
            ColumnDef::with_all("dim", DataType::Str),
            ColumnDef::new("measure", DataType::Int),
        ]).unwrap();
        let mut t = Table::empty(schema.clone());
        for (dim, m) in rows {
            // The literal string "ALL" in an ALL ALLOWED column cannot be
            // distinguished from the token in CSV; skip that collision
            // (documented limitation of the text format).
            if dim.as_str() == Some("ALL") || dim.as_str() == Some("") {
                continue;
            }
            t.push_unchecked(Row::new(vec![dim, Value::Int(m)]));
        }
        let text = csv::to_csv(&t);
        let back = csv::from_csv(&text, schema).unwrap();
        prop_assert_eq!(back.rows(), t.rows());
    }
}
