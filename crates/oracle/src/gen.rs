//! Seeded deterministic generator of adversarial tables and query specs.
//!
//! Every case is a pure function of its `u64` seed (the vendored
//! xoshiro256++ stream), so any failure reproduces from the seed the fuzz
//! driver prints. The tables deliberately concentrate the inputs that have
//! historically broken cube engines: NULL-heavy dimension columns (§3.4's
//! NULL-vs-ALL distinction), NaN and ±0.0 as group keys *and* as measures,
//! `i64::MIN`/`i64::MAX` dimension values, empty and single-row tables,
//! duplicate keys, high-cardinality string dims next to two-value dims,
//! Bool and Date dimensions. Query specs cover all five spec families
//! including the §3.1 compound algebra, holistic aggregates, user-defined
//! aggregates (with and without an Iter_super), and governance settings.

use datacube::{AggSpec, CancelToken, ExecLimits};
use dc_aggregate::{AggKind, AggRef, UdaBuilder};
use dc_relation::{DataType, Date, Row, Schema, Table, Value};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::fmt;

/// One generated differential case: table + query spec + governance.
#[derive(Clone)]
pub struct Case {
    pub seed: u64,
    pub table: Table,
    /// The first `n_dims` columns, named `d0..d{n-1}`, are the grouping
    /// dimensions (in answer order); the rest are measures.
    pub n_dims: usize,
    pub query: QueryKind,
    pub aggs: Vec<AggDesc>,
    pub gov: Gov,
}

/// Which spec family the case exercises.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryKind {
    GroupBy,
    Rollup,
    Cube,
    /// Explicit grouping sets, possibly duplicated or empty.
    GroupingSets(Vec<Vec<usize>>),
    /// §3.1 compound: `GROUP BY d0..d{g-1} ROLLUP d{g}..d{g+r-1} CUBE rest`.
    Compound {
        g: usize,
        r: usize,
    },
}

/// Governance settings attached to the query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Gov {
    None,
    MaxCells(u64),
    MaxMemoryBytes(u64),
    PreCancelled,
}

impl Gov {
    pub fn limits(&self) -> ExecLimits {
        match self {
            Gov::None => ExecLimits::none(),
            Gov::MaxCells(n) => ExecLimits::none().max_cells(*n),
            Gov::MaxMemoryBytes(b) => ExecLimits::none().max_memory_bytes(*b),
            Gov::PreCancelled => {
                let token = CancelToken::new();
                token.cancel();
                ExecLimits::none().cancel_token(token)
            }
        }
    }
}

/// One aggregate in the select list, in replayable descriptor form
/// (`AggRef`s are rebuilt on demand so `Case` stays `Clone` + printable).
#[derive(Clone, Debug)]
pub enum AggDesc {
    /// A registry builtin over a column, or `COUNT(*)` when `input` is
    /// `None`.
    Builtin { name: String, input: Option<String> },
    /// Algebraic UDA carrying a `(Σx², n)` handle — exercises the §5
    /// Iter_super protocol for user functions.
    SumSquares { input: String },
    /// Holistic UDA whose state is the whole multiset — exercises
    /// whole-bag merging through cascades, sorts, and coalesces.
    Range { input: String },
    /// Holistic UDA built *without* `state()`/`merge()` — its Iter_super
    /// is unavailable, so merge-based algorithms must not rely on it.
    AnyMin { input: String },
}

impl AggDesc {
    pub fn func(&self) -> AggRef {
        match self {
            AggDesc::Builtin { name, .. } => {
                dc_aggregate::builtin(name).expect("generator uses registered builtins")
            }
            AggDesc::SumSquares { .. } => sum_squares(),
            AggDesc::Range { .. } => value_range(),
            AggDesc::AnyMin { .. } => any_min(),
        }
    }

    pub fn input(&self) -> Option<&str> {
        match self {
            AggDesc::Builtin { input, .. } => input.as_deref(),
            AggDesc::SumSquares { input }
            | AggDesc::Range { input }
            | AggDesc::AnyMin { input } => Some(input),
        }
    }

    /// The engine-side spec; output columns are named positionally
    /// (`a0`, `a1`, ...) so the model can mirror them without consulting
    /// the engine's naming rules.
    pub fn spec(&self, i: usize) -> AggSpec {
        let f = self.func();
        let spec = match self.input() {
            Some(col) => AggSpec::new(f, col),
            None => AggSpec::star(f),
        };
        spec.with_name(format!("a{i}"))
    }
}

/// Σx² with a bounded `(sum_sq, n)` handle: algebraic, mergeable. Inputs
/// are dyadic rationals of modest magnitude, so partition merge order
/// cannot perturb the sum.
pub fn sum_squares() -> AggRef {
    UdaBuilder::new("SUM_SQUARES", AggKind::Algebraic, || (0.0f64, 0i64))
        .iter(|s, v| {
            if v.is_null() || *v == Value::All {
                return;
            }
            if let Some(x) = v.as_f64() {
                s.0 += x * x;
                s.1 += 1;
            }
        })
        .state(|s| vec![Value::Float(s.0), Value::Int(s.1)])
        .merge(|s, st| {
            s.0 += st[0].as_f64().unwrap_or(0.0);
            s.1 += st[1].as_i64().unwrap_or(0);
        })
        .finalize(|s| {
            if s.1 == 0 {
                Value::Null
            } else {
                Value::Float(s.0)
            }
        })
        .build()
        .expect("SUM_SQUARES is well-formed")
}

/// max − min over the numeric inputs, carried as the whole multiset — a
/// genuinely holistic UDA that nonetheless supplies Iter_super.
pub fn value_range() -> AggRef {
    UdaBuilder::new("VALUE_RANGE", AggKind::Holistic, Vec::<Value>::new)
        .iter(|s, v| {
            if !v.is_null() && *v != Value::All {
                s.push(v.clone());
            }
        })
        .state(|s| s.clone())
        .merge(|s, st| s.extend_from_slice(st))
        .finalize(|s| {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            let mut n = 0usize;
            for v in s {
                if let Some(x) = v.as_f64() {
                    // f64::min/max ignore NaN, so the fold is
                    // order-insensitive given the same multiset.
                    lo = lo.min(x);
                    hi = hi.max(x);
                    n += 1;
                }
            }
            if n == 0 {
                Value::Null
            } else {
                Value::Float(hi - lo)
            }
        })
        .build()
        .expect("VALUE_RANGE is well-formed")
}

/// Minimum by the total `Value` order, built *without* `state()`/`merge()`
/// (allowed for holistic UDAs): order-insensitive over any multiset, but
/// its Iter_super is a no-op — the probe for the non-mergeable fallback.
pub fn any_min() -> AggRef {
    UdaBuilder::new("ANY_MIN", AggKind::Holistic, || None::<Value>)
        .iter(|s, v| {
            if v.is_null() || *v == Value::All {
                return;
            }
            match s {
                Some(cur) if *cur <= *v => {}
                _ => *s = Some(v.clone()),
            }
        })
        .finalize(|s| s.clone().unwrap_or(Value::Null))
        .build()
        .expect("ANY_MIN is well-formed")
}

/// Per-dimension column archetype.
#[derive(Clone, Copy, Debug)]
enum DimArch {
    Str { card: usize },
    IntSmall,
    IntExtreme,
    FloatSpecial,
    Bool,
    Date { card: usize },
}

impl DimArch {
    fn dtype(self) -> DataType {
        match self {
            DimArch::Str { .. } => DataType::Str,
            DimArch::IntSmall | DimArch::IntExtreme => DataType::Int,
            DimArch::FloatSpecial => DataType::Float,
            DimArch::Bool => DataType::Bool,
            DimArch::Date { .. } => DataType::Date,
        }
    }

    fn sample(self, rng: &mut StdRng) -> Value {
        match self {
            DimArch::Str { card } => Value::str(format!("s{}", rng.gen_range(0..card))),
            DimArch::IntSmall => Value::Int(rng.gen_range(-3i64..=3)),
            DimArch::IntExtreme => {
                const POOL: [i64; 7] = [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX];
                Value::Int(POOL[rng.gen_range(0..POOL.len())])
            }
            DimArch::FloatSpecial => {
                const POOL: [f64; 7] = [f64::NAN, -0.0, 0.0, 1.5, -2.25, 256.0, -0.25];
                Value::Float(POOL[rng.gen_range(0..POOL.len())])
            }
            DimArch::Bool => Value::Bool(rng.gen_bool(0.5)),
            DimArch::Date { card } => Value::Date(
                Date::new(2020, 1, 1 + rng.gen_range(0..card as u8))
                    .expect("generator dates are valid"),
            ),
        }
    }
}

fn pick_arch(rng: &mut StdRng) -> DimArch {
    match rng.gen_range(0u32..10) {
        0 | 1 => DimArch::Str {
            card: [1usize, 2, 5, 30][rng.gen_range(0..4)],
        },
        2 | 3 => DimArch::IntSmall,
        4 => DimArch::IntExtreme,
        5 | 6 => DimArch::FloatSpecial,
        7 => DimArch::Bool,
        _ => DimArch::Date {
            card: [1usize, 3, 12][rng.gen_range(0..3)],
        },
    }
}

/// NULL probability per column: mostly clean, sometimes NULL-heavy,
/// occasionally *all* NULL (the §3.4 stress).
fn pick_null_p(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0u32..10) {
        0..=4 => 0.0,
        5 | 6 => 0.1,
        7 | 8 => 0.6,
        _ => 1.0,
    }
}

/// A dyadic float measure: exactly representable multiples of 0.25 with
/// |x| ≤ 256, so sums/sum-of-squares over ≤ 200 rows are exact in `f64`
/// and therefore independent of partition/merge order; specials inject
/// NaN and both zero signs.
fn sample_float_measure(rng: &mut StdRng) -> Value {
    if rng.gen_bool(0.15) {
        const SPECIALS: [f64; 3] = [f64::NAN, 0.0, -0.0];
        Value::Float(SPECIALS[rng.gen_range(0..SPECIALS.len())])
    } else {
        Value::Float(rng.gen_range(-1024i64..=1024) as f64 * 0.25)
    }
}

fn agg_pool(n_dims: usize, dim_types: &[DimArch]) -> Vec<AggDesc> {
    let b = |name: &str, input: &str| AggDesc::Builtin {
        name: name.into(),
        input: Some(input.into()),
    };
    let mut pool = vec![
        b("SUM", "m_int"),
        b("SUM", "m_float"),
        b("COUNT", "m_int"),
        b("COUNT", "m_float"),
        AggDesc::Builtin {
            name: "COUNT(*)".into(),
            input: None,
        },
        b("MIN", "m_int"),
        b("MIN", "m_float"),
        b("MAX", "m_int"),
        b("MAX", "m_float"),
        b("AVG", "m_int"),
        b("AVG", "m_float"),
        b("VARIANCE", "m_float"),
        b("STDDEV", "m_int"),
        b("MEDIAN", "m_int"),
        b("MEDIAN", "m_float"),
        b("MODE", "m_int"),
        b("COUNT DISTINCT", "m_int"),
        b("PRODUCT", "m_unit"),
        b("EVERY", "m_bool"),
        b("SOME", "m_bool"),
        b("GEOMEAN", "m_float"),
        AggDesc::SumSquares {
            input: "m_float".into(),
        },
        AggDesc::Range {
            input: "m_int".into(),
        },
        AggDesc::AnyMin {
            input: "m_int".into(),
        },
    ];
    // Aggregating dimension columns (only order-insensitive,
    // non-arithmetic functions: IntExtreme dims would overflow SUM).
    for d in 0..n_dims {
        let col = format!("d{d}");
        pool.push(b("MIN", &col));
        pool.push(b("MAX", &col));
        pool.push(b("COUNT", &col));
        pool.push(b("COUNT DISTINCT", &col));
        pool.push(b("MODE", &col));
        pool.push(AggDesc::AnyMin { input: col });
        let _ = dim_types;
    }
    pool
}

/// Generate the case for a seed. Pure: same seed, same case.
pub fn gen_case(seed: u64) -> Case {
    let mut rng = StdRng::seed_from_u64(seed);

    const DIM_COUNTS: [usize; 10] = [0, 1, 1, 2, 2, 2, 3, 3, 3, 4];
    let n_dims = DIM_COUNTS[rng.gen_range(0..DIM_COUNTS.len())];
    let archs: Vec<DimArch> = (0..n_dims).map(|_| pick_arch(&mut rng)).collect();
    let dim_null_p: Vec<f64> = (0..n_dims).map(|_| pick_null_p(&mut rng)).collect();
    let measure_null_p: Vec<f64> = (0..4).map(|_| pick_null_p(&mut rng)).collect();

    let mut pairs: Vec<(String, DataType)> = archs
        .iter()
        .enumerate()
        .map(|(i, a)| (format!("d{i}"), a.dtype()))
        .collect();
    pairs.push(("m_int".into(), DataType::Int));
    pairs.push(("m_float".into(), DataType::Float));
    pairs.push(("m_unit".into(), DataType::Int));
    pairs.push(("m_bool".into(), DataType::Bool));
    let pair_refs: Vec<(&str, DataType)> = pairs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let schema = Schema::from_pairs(&pair_refs);

    let n_rows = match rng.gen_range(0u32..100) {
        0..=7 => 0,
        8..=15 => 1,
        16..=23 => 2,
        24..=55 => rng.gen_range(3usize..=10),
        56..=85 => rng.gen_range(11usize..=60),
        _ => rng.gen_range(61usize..=200),
    };

    // RLE-facing shapes: sorting the rows gives the key stream long runs
    // (the sorted-input case the RLE scan optimizes), and a tiny measure
    // domain creates constant measure runs for the `n × value` fold.
    let sort_rows = rng.gen_bool(0.3);
    let tiny_measures = rng.gen_bool(0.2);

    let mut rows: Vec<Row> = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let mut vals = Vec::with_capacity(n_dims + 4);
        for (d, arch) in archs.iter().enumerate() {
            if dim_null_p[d] > 0.0 && rng.gen_bool(dim_null_p[d]) {
                vals.push(Value::Null);
            } else {
                vals.push(arch.sample(&mut rng));
            }
        }
        // m_int: modest range so i64 SUM cannot overflow.
        vals.push(if rng.gen_bool(measure_null_p[0]) {
            Value::Null
        } else if tiny_measures {
            Value::Int(rng.gen_range(0i64..=1))
        } else {
            Value::Int(rng.gen_range(-50i64..=50))
        });
        vals.push(if rng.gen_bool(measure_null_p[1]) {
            Value::Null
        } else if tiny_measures {
            Value::Float([0.25, 0.5][rng.gen_range(0..2)])
        } else {
            sample_float_measure(&mut rng)
        });
        // m_unit: |v| ≤ 2 keeps PRODUCT finite over 200 rows.
        vals.push(if rng.gen_bool(measure_null_p[2]) {
            Value::Null
        } else {
            Value::Int(rng.gen_range(-2i64..=2))
        });
        vals.push(if rng.gen_bool(measure_null_p[3]) {
            Value::Null
        } else {
            Value::Bool(rng.gen_bool(0.5))
        });
        rows.push(Row::new(vals));
    }
    if sort_rows {
        rows.sort();
    }
    let mut table = Table::empty(schema);
    for row in rows {
        table.push(row).expect("generated row fits schema");
    }

    let query = match rng.gen_range(0u32..10) {
        0 | 1 => QueryKind::GroupBy,
        2 | 3 => QueryKind::Rollup,
        4..=6 => QueryKind::Cube,
        7 => {
            let n_sets = rng.gen_range(1usize..=3);
            let sets = (0..n_sets)
                .map(|_| (0..n_dims).filter(|_| rng.gen_bool(0.5)).collect())
                .collect();
            QueryKind::GroupingSets(sets)
        }
        _ => {
            let g = rng.gen_range(0..=n_dims);
            let r = rng.gen_range(0..=n_dims - g);
            QueryKind::Compound { g, r }
        }
    };

    let pool = agg_pool(n_dims, &archs);
    let n_aggs = rng.gen_range(1usize..=4);
    let aggs = (0..n_aggs)
        .map(|_| pool[rng.gen_range(0..pool.len())].clone())
        .collect();

    let gov = match rng.gen_range(0u32..20) {
        0..=15 => Gov::None,
        16 | 17 => Gov::MaxCells(rng.gen_range(1u64..=48)),
        18 => Gov::MaxMemoryBytes(rng.gen_range(64u64..=4096)),
        _ => Gov::PreCancelled,
    };

    Case {
        seed,
        table,
        n_dims,
        query,
        aggs,
        gov,
    }
}

impl fmt::Display for Case {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "seed: {:#x}", self.seed)?;
        writeln!(f, "query: {:?} over {} dims", self.query, self.n_dims)?;
        writeln!(f, "aggs: {:?}", self.aggs)?;
        writeln!(f, "gov: {:?}", self.gov)?;
        writeln!(f, "table ({} rows):", self.table.len())?;
        write!(f, "{}", self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_case() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let a = gen_case(seed);
            let b = gen_case(seed);
            assert_eq!(a.table, b.table, "seed {seed}");
            assert_eq!(a.query, b.query, "seed {seed}");
            assert_eq!(a.gov, b.gov, "seed {seed}");
            assert_eq!(format!("{a}"), format!("{b}"), "seed {seed}");
        }
    }

    #[test]
    fn seeds_cover_the_adversarial_space() {
        let mut saw_empty = false;
        let mut saw_null = false;
        let mut saw_compound = false;
        let mut saw_gov = false;
        let mut saw_nan_dim = false;
        let mut saw_sorted = false;
        for seed in 0..400u64 {
            let c = gen_case(seed);
            saw_sorted |= c.table.len() > 10 && c.table.rows().windows(2).all(|w| w[0] <= w[1]);
            saw_empty |= c.table.is_empty();
            saw_null |= c
                .table
                .rows()
                .iter()
                .any(|r| (0..c.n_dims).any(|d| r[d].is_null()));
            saw_compound |= matches!(c.query, QueryKind::Compound { .. });
            saw_gov |= c.gov != Gov::None;
            saw_nan_dim |= c
                .table
                .rows()
                .iter()
                .any(|r| (0..c.n_dims).any(|d| matches!(r[d], Value::Float(x) if x.is_nan())));
        }
        assert!(saw_empty, "no empty tables in 400 seeds");
        assert!(saw_null, "no NULL dimension values in 400 seeds");
        assert!(saw_compound, "no compound specs in 400 seeds");
        assert!(saw_gov, "no governed cases in 400 seeds");
        assert!(saw_nan_dim, "no NaN dimension keys in 400 seeds");
        assert!(saw_sorted, "no sorted (long-key-run) tables in 400 seeds");
    }

    #[test]
    fn udas_are_order_insensitive_and_well_formed() {
        let f = value_range();
        let mut a = f.init();
        for v in [3i64, -2, 7] {
            a.iter(&Value::Int(v));
        }
        assert_eq!(a.final_value(), Value::Float(9.0));

        let g = any_min();
        let mut m = g.init();
        for v in [5i64, 2, 9] {
            m.iter(&Value::Int(v));
        }
        assert_eq!(m.final_value(), Value::Int(2));

        let h = sum_squares();
        let mut s = h.init();
        s.iter(&Value::Float(1.5));
        s.iter(&Value::Float(-2.0));
        assert_eq!(s.final_value(), Value::Float(2.25 + 4.0));
    }
}
