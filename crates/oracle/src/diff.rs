//! Canonicalized result comparison.
//!
//! A cube result is a *relation*: row order is meaningless, and float
//! aggregates computed through different merge trees may differ in final
//! ULPs (GEOMEAN's Σln x, for instance, is reassociated by partitioning).
//! Both sides are therefore sorted by their dimension-key columns — the
//! key tuple, ALL pattern included, is unique across the whole result, so
//! the order is total — and aggregate cells are compared with
//! [`dc_aggregate::compare::value_close`] (NaN equals NaN, ±0.0 equal,
//! bounded ULP/relative tolerance). Dimension keys are compared exactly.

use dc_aggregate::compare::value_close;
use dc_relation::table::canonical_sort;
use dc_relation::{Row, Table};

/// ULP budget for float aggregate cells. Merge-order noise on transcendental
/// folds (ln/exp in GEOMEAN) exceeds a few ULPs, so `value_close` also
/// allows a 1e-9 relative band; genuinely wrong results are wholesale
/// different.
pub const MAX_ULPS: u64 = 32;

/// Compare an engine result `got` against the model's expectation.
/// `key_cols` is the number of leading dimension columns.
pub fn diff_tables(
    expected_names: &[String],
    expected_rows: &[Row],
    got: &Table,
    key_cols: usize,
) -> Result<(), String> {
    let got_names: Vec<&str> = got
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.as_ref())
        .collect();
    if got_names.len() != expected_names.len()
        || got_names
            .iter()
            .zip(expected_names)
            .any(|(g, e)| *g != e.as_str())
    {
        return Err(format!(
            "schema mismatch: engine {got_names:?} vs model {expected_names:?}"
        ));
    }

    let mut want: Vec<Row> = expected_rows.to_vec();
    canonical_sort(&mut want, key_cols);
    let have = got.canonical_rows(key_cols);

    if want.len() != have.len() {
        return Err(format!(
            "row count mismatch: engine {} vs model {}\n{}",
            have.len(),
            want.len(),
            first_key_difference(&want, &have, key_cols)
        ));
    }
    for (i, (w, h)) in want.iter().zip(&have).enumerate() {
        for c in 0..expected_names.len() {
            let ok = if c < key_cols {
                // Group keys must match exactly — NaN keys group by
                // identity, and -0.0/+0.0 are distinct groups.
                w[c] == h[c]
            } else {
                value_close(&h[c], &w[c], MAX_ULPS)
            };
            if !ok {
                return Err(format!(
                    "cell mismatch at canonical row {i}, column {} ({}): engine {} vs model {}\n\
                     engine row: {h}\n model row: {w}",
                    c, expected_names[c], h[c], w[c]
                ));
            }
        }
    }
    Ok(())
}

/// On a count mismatch, report the first key present on one side only —
/// far more useful than two row dumps.
fn first_key_difference(want: &[Row], have: &[Row], key_cols: usize) -> String {
    let key =
        |r: &Row| -> Vec<dc_relation::Value> { (0..key_cols).map(|c| r[c].clone()).collect() };
    let want_keys: Vec<_> = want.iter().map(&key).collect();
    let have_keys: Vec<_> = have.iter().map(&key).collect();
    for (r, k) in want.iter().zip(&want_keys) {
        if !have_keys.contains(k) {
            return format!("model-only group: {r}");
        }
    }
    for (r, k) in have.iter().zip(&have_keys) {
        if !want_keys.contains(k) {
            return format!("engine-only group: {r}");
        }
    }
    "same group keys, different multiplicities".into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relation::{DataType, Schema, Value};

    fn table(rows: Vec<Row>) -> Table {
        let schema = Schema::from_pairs(&[("d0", DataType::Str), ("a0", DataType::Float)]);
        Table::from_validated_rows(schema, rows)
    }

    fn names() -> Vec<String> {
        vec!["d0".into(), "a0".into()]
    }

    #[test]
    fn order_is_irrelevant() {
        let a = Row::new(vec![Value::str("x"), Value::Float(1.0)]);
        let b = Row::new(vec![Value::All, Value::Float(3.0)]);
        let got = table(vec![a.clone(), b.clone()]);
        diff_tables(&names(), &[b, a], &got, 1).unwrap();
    }

    #[test]
    fn nan_aggregates_compare_equal_but_wrong_values_fail() {
        let got = table(vec![Row::new(vec![
            Value::str("x"),
            Value::Float(f64::NAN),
        ])]);
        diff_tables(
            &names(),
            &[Row::new(vec![Value::str("x"), Value::Float(f64::NAN)])],
            &got,
            1,
        )
        .unwrap();
        let err = diff_tables(
            &names(),
            &[Row::new(vec![Value::str("x"), Value::Float(2.0)])],
            &got,
            1,
        )
        .unwrap_err();
        assert!(err.contains("cell mismatch"), "{err}");
    }

    #[test]
    fn ulp_noise_tolerated_in_aggregates_not_keys() {
        let noisy = 1.0f64 + f64::EPSILON;
        let got = table(vec![Row::new(vec![Value::str("x"), Value::Float(noisy)])]);
        diff_tables(
            &names(),
            &[Row::new(vec![Value::str("x"), Value::Float(1.0)])],
            &got,
            1,
        )
        .unwrap();
    }

    #[test]
    fn missing_group_is_named() {
        let got = table(vec![Row::new(vec![Value::str("x"), Value::Float(1.0)])]);
        let err = diff_tables(
            &names(),
            &[
                Row::new(vec![Value::str("x"), Value::Float(1.0)]),
                Row::new(vec![Value::All, Value::Float(1.0)]),
            ],
            &got,
            1,
        )
        .unwrap_err();
        assert!(err.contains("model-only group"), "{err}");
    }
}
