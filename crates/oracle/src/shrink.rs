//! Greedy case minimization.
//!
//! Given a failing case and a predicate that re-checks it, repeatedly try
//! structural reductions that keep the failure alive: delta-debugging
//! style row-chunk removal, dropping aggregates, dropping whole
//! dimensions (remapping the spec and renaming columns), and clearing
//! governance. The result is the smallest case this greedy walk reaches —
//! typically a handful of rows and a single aggregate — printed by the
//! fuzz driver next to the replay seed.

use crate::gen::{AggDesc, Case, QueryKind};
use dc_relation::{Row, Schema, Table};

/// Re-check a candidate; `Some(report)` means "still failing".
pub type FailCheck<'a> = &'a dyn Fn(&Case) -> Option<String>;

/// Minimize `case` while `fails` keeps reporting a failure on it.
pub fn shrink(case: &Case, fails: FailCheck) -> Case {
    let mut cur = case.clone();
    debug_assert!(fails(&cur).is_some(), "shrink needs a failing case");
    loop {
        let mut progressed = false;
        progressed |= shrink_rows(&mut cur, fails);
        progressed |= shrink_aggs(&mut cur, fails);
        progressed |= shrink_dims(&mut cur, fails);
        if !matches!(cur.gov, crate::gen::Gov::None) {
            let mut cand = cur.clone();
            cand.gov = crate::gen::Gov::None;
            if fails(&cand).is_some() {
                cur = cand;
                progressed = true;
            }
        }
        if !progressed {
            return cur;
        }
    }
}

fn with_rows(case: &Case, rows: Vec<Row>) -> Case {
    let mut cand = case.clone();
    cand.table = Table::from_validated_rows(case.table.schema().clone(), rows);
    cand
}

/// ddmin-lite: remove chunks of halving size while the failure persists.
fn shrink_rows(cur: &mut Case, fails: FailCheck) -> bool {
    let mut progressed = false;
    let mut chunk = (cur.table.len() / 2).max(1);
    loop {
        let mut start = 0;
        while start < cur.table.len() {
            let end = (start + chunk).min(cur.table.len());
            let kept: Vec<Row> = cur
                .table
                .rows()
                .iter()
                .enumerate()
                .filter(|(i, _)| *i < start || *i >= end)
                .map(|(_, r)| r.clone())
                .collect();
            let cand = with_rows(cur, kept);
            if fails(&cand).is_some() {
                *cur = cand;
                progressed = true;
                // Same start now addresses the next chunk.
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            return progressed;
        }
        chunk /= 2;
    }
}

fn shrink_aggs(cur: &mut Case, fails: FailCheck) -> bool {
    let mut progressed = false;
    'outer: while cur.aggs.len() > 1 {
        for i in 0..cur.aggs.len() {
            let mut cand = cur.clone();
            cand.aggs.remove(i);
            if fails(&cand).is_some() {
                *cur = cand;
                progressed = true;
                continue 'outer;
            }
        }
        break;
    }
    progressed
}

fn shrink_dims(cur: &mut Case, fails: FailCheck) -> bool {
    let mut progressed = false;
    let mut d = 0;
    while d < cur.n_dims {
        match drop_dim(cur, d) {
            Some(cand) if fails(&cand).is_some() => {
                *cur = cand;
                progressed = true;
                // Same index now addresses the next dimension.
            }
            _ => d += 1,
        }
    }
    progressed
}

/// Remove dimension `d`: drop its column, rename the remaining dims back
/// to `d0..`, and remap the query spec and aggregate inputs. `None` when
/// an aggregate consumes the column (drop the aggregate first).
fn drop_dim(case: &Case, d: usize) -> Option<Case> {
    let dropped = format!("d{d}");
    if case
        .aggs
        .iter()
        .any(|a| a.input() == Some(dropped.as_str()))
    {
        return None;
    }
    let remap_col = |name: &str| -> String {
        match name.strip_prefix('d').and_then(|s| s.parse::<usize>().ok()) {
            Some(j) if j < case.n_dims && j > d => format!("d{}", j - 1),
            _ => name.to_string(),
        }
    };

    let old = case.table.schema();
    let pairs: Vec<(String, dc_relation::DataType)> = old
        .columns()
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != d)
        .map(|(_, c)| (remap_col(&c.name), c.dtype))
        .collect();
    let pair_refs: Vec<(&str, dc_relation::DataType)> =
        pairs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let schema = Schema::new(
        pair_refs
            .iter()
            .map(|(n, t)| dc_relation::schema::ColumnDef::new(n, *t))
            .collect(),
    )
    .ok()?;
    let rows: Vec<Row> = case
        .table
        .rows()
        .iter()
        .map(|r| {
            Row::new(
                (0..old.len())
                    .filter(|i| *i != d)
                    .map(|i| r[i].clone())
                    .collect(),
            )
        })
        .collect();

    let query = match &case.query {
        QueryKind::GroupBy => QueryKind::GroupBy,
        QueryKind::Rollup => QueryKind::Rollup,
        QueryKind::Cube => QueryKind::Cube,
        QueryKind::GroupingSets(sets) => QueryKind::GroupingSets(
            sets.iter()
                .map(|s| {
                    s.iter()
                        .filter(|&&j| j != d)
                        .map(|&j| if j > d { j - 1 } else { j })
                        .collect()
                })
                .collect(),
        ),
        QueryKind::Compound { g, r } => {
            if d < *g {
                QueryKind::Compound { g: g - 1, r: *r }
            } else if d < g + r {
                QueryKind::Compound { g: *g, r: r - 1 }
            } else {
                QueryKind::Compound { g: *g, r: *r }
            }
        }
    };

    let aggs: Vec<AggDesc> = case
        .aggs
        .iter()
        .map(|a| match a {
            AggDesc::Builtin { name, input } => AggDesc::Builtin {
                name: name.clone(),
                input: input.as_deref().map(remap_col),
            },
            AggDesc::SumSquares { input } => AggDesc::SumSquares {
                input: remap_col(input),
            },
            AggDesc::Range { input } => AggDesc::Range {
                input: remap_col(input),
            },
            AggDesc::AnyMin { input } => AggDesc::AnyMin {
                input: remap_col(input),
            },
        })
        .collect();

    Some(Case {
        seed: case.seed,
        table: Table::from_validated_rows(schema, rows),
        n_dims: case.n_dims - 1,
        query,
        aggs,
        gov: case.gov.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_case;
    use dc_relation::Value;

    /// Synthetic failure predicate: "some row has m_int == sentinel".
    /// Shrinking against it must converge to a single-row table while the
    /// sentinel row survives every reduction.
    #[test]
    fn shrinks_rows_aggs_and_dims_to_a_minimal_witness() {
        // Find a seeded case with a few rows and ≥ 2 dims to make the
        // reductions meaningful.
        let mut case = (0..500u64)
            .map(gen_case)
            .find(|c| c.table.len() >= 8 && c.n_dims >= 2)
            .expect("generator produces a rich case in 500 seeds");
        // Measure-only aggregates, so every dimension is droppable.
        case.aggs = vec![
            AggDesc::Builtin {
                name: "SUM".into(),
                input: Some("m_int".into()),
            },
            AggDesc::Builtin {
                name: "COUNT(*)".into(),
                input: None,
            },
        ];
        let m_int = case.table.schema().index_of("m_int").unwrap();
        // Plant a sentinel on one row.
        let mut rows: Vec<Row> = case.table.rows().to_vec();
        let mut vals: Vec<Value> = (0..case.table.schema().len())
            .map(|i| rows[3][i].clone())
            .collect();
        vals[m_int] = Value::Int(777_777);
        rows[3] = Row::new(vals);
        case.table = Table::from_validated_rows(case.table.schema().clone(), rows);

        let fails = |c: &Case| -> Option<String> {
            let idx = c.table.schema().index_of("m_int").ok()?;
            c.table
                .rows()
                .iter()
                .any(|r| r[idx] == Value::Int(777_777))
                .then(|| "sentinel present".to_string())
        };
        let minimal = shrink(&case, &fails);
        assert_eq!(minimal.table.len(), 1, "rows minimized");
        assert_eq!(minimal.aggs.len(), 1, "aggs minimized");
        assert_eq!(minimal.n_dims, 0, "dims minimized");
        assert!(fails(&minimal).is_some(), "failure preserved");
    }

    #[test]
    fn drop_dim_remaps_specs_and_inputs() {
        let case = Case {
            seed: 0,
            table: Table::from_validated_rows(
                Schema::from_pairs(&[
                    ("d0", dc_relation::DataType::Int),
                    ("d1", dc_relation::DataType::Int),
                    ("d2", dc_relation::DataType::Int),
                    ("m_int", dc_relation::DataType::Int),
                ]),
                vec![Row::new(vec![
                    Value::Int(1),
                    Value::Int(2),
                    Value::Int(3),
                    Value::Int(4),
                ])],
            ),
            n_dims: 3,
            query: QueryKind::GroupingSets(vec![vec![0, 2], vec![1]]),
            aggs: vec![AggDesc::Builtin {
                name: "MIN".into(),
                input: Some("d2".into()),
            }],
            gov: crate::gen::Gov::None,
        };
        // d2 is consumed by an aggregate: not droppable.
        assert!(drop_dim(&case, 2).is_none());
        // Dropping d1 remaps set {0,2} → {0,1} and input d2 → d1.
        let cand = drop_dim(&case, 1).unwrap();
        assert_eq!(cand.n_dims, 2);
        assert_eq!(
            cand.query,
            QueryKind::GroupingSets(vec![vec![0, 1], vec![]])
        );
        assert_eq!(cand.aggs[0].input(), Some("d1"));
        assert_eq!(cand.table.rows()[0][1], Value::Int(3));
    }
}
