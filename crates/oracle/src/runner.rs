//! The equivalence runner: every applicable engine path for a case.
//!
//! Hash-based algorithms (Auto, 2^N, union-of-GROUP-BYs, from-core,
//! parallel at 1/4/16 threads) run under all four {encoded} × {vectorized}
//! flag combinations, plus three forced radix/RLE overrides inside the
//! vectorized engine (radix-vs-hash and RLE-vs-plain are execution axes
//! of their own); the sort- and array-based algorithms have their own
//! key machinery (the flags are documented no-ops) and run once each,
//! gated on the lattice shapes they support — Sort on ROLLUP lattices,
//! Array and PipeSort on full cubes.
//!
//! Ungoverned runs must match the model exactly (up to float tolerance).
//! Governed runs may instead fail with the matching typed error
//! (`ResourceExhausted` under budgets, `Cancelled` under a tripped token);
//! anything else — a wrong error, or a *wrong answer* returned despite the
//! budget — is a divergence.

use crate::diff::diff_tables;
use crate::gen::{Case, Gov, QueryKind};
use crate::model::model_result;
use datacube::{
    cube_sets, rewritable, rollup_sets, AggSpec, Algorithm, AncestorRequest, CachedView,
    CompoundSpec, CubeError, CubeQuery, CubeResult, DeltaBatch, Dimension, ExecContext,
    GroupingSet, Lattice, MaterializedCube,
};
use dc_relation::{DataType, Date, Row, Schema, Table, Value};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct Combo {
    pub algorithm: Algorithm,
    pub encoded: bool,
    pub vectorized: bool,
    /// Vectorized-engine radix-grouping override (`None` = auto-detect).
    pub radix: Option<bool>,
    /// Vectorized-engine RLE-scan override (`None` = auto-detect).
    pub rle: Option<bool>,
}

/// All configurations applicable to a query kind.
pub fn combos(query: &QueryKind) -> Vec<Combo> {
    let hash_algorithms = [
        Algorithm::Auto,
        Algorithm::TwoToTheN,
        Algorithm::UnionGroupBys,
        Algorithm::FromCore,
        Algorithm::Parallel { threads: 1 },
        Algorithm::Parallel { threads: 4 },
        Algorithm::Parallel { threads: 16 },
    ];
    let mut all = Vec::with_capacity(51);
    for algorithm in hash_algorithms {
        for encoded in [true, false] {
            for vectorized in [true, false] {
                all.push(Combo {
                    algorithm,
                    encoded,
                    vectorized,
                    radix: None,
                    rle: None,
                });
            }
        }
        // The radix-vs-hash and RLE-vs-plain axes live inside the
        // vectorized engine, so they are exercised only where it can run
        // (encoded + vectorized): force each on, force each off, and
        // force both on (RLE must win) against the auto-detecting base
        // combo above.
        for (radix, rle) in [
            (Some(true), Some(false)),
            (Some(false), Some(true)),
            (Some(true), Some(true)),
        ] {
            all.push(Combo {
                algorithm,
                encoded: true,
                vectorized: true,
                radix,
                rle,
            });
        }
    }
    match query {
        QueryKind::Rollup => all.push(Combo {
            algorithm: Algorithm::Sort,
            encoded: true,
            vectorized: true,
            radix: None,
            rle: None,
        }),
        QueryKind::Cube => {
            for algorithm in [Algorithm::Array, Algorithm::PipeSort] {
                all.push(Combo {
                    algorithm,
                    encoded: true,
                    vectorized: true,
                    radix: None,
                    rle: None,
                });
            }
        }
        _ => {}
    }
    all
}

/// Execute the case's query through one engine configuration.
pub fn run_engine(case: &Case, combo: &Combo) -> CubeResult<Table> {
    let mut q = CubeQuery::new()
        .algorithm(combo.algorithm)
        .encoded_keys(combo.encoded)
        .vectorized(combo.vectorized)
        .limits(case.gov.limits());
    if let Some(radix) = combo.radix {
        q = q.radix(radix);
    }
    if let Some(rle) = combo.rle {
        q = q.rle(rle);
    }
    for (i, desc) in case.aggs.iter().enumerate() {
        q = q.aggregate(desc.spec(i));
    }
    let dims: Vec<Dimension> = (0..case.n_dims)
        .map(|d| Dimension::column(format!("d{d}")))
        .collect();
    match &case.query {
        QueryKind::GroupBy => q.dimensions(dims).group_by(&case.table),
        QueryKind::Rollup => q.dimensions(dims).rollup(&case.table),
        QueryKind::Cube => q.dimensions(dims).cube(&case.table),
        QueryKind::GroupingSets(sets) => q.dimensions(dims).grouping_sets(&case.table, sets),
        QueryKind::Compound { g, r } => {
            let spec = CompoundSpec::new()
                .group_by(dims[..*g].to_vec())
                .rollup(dims[*g..g + r].to_vec())
                .cube(dims[g + r..].to_vec());
            q.compound(&case.table, &spec)
        }
    }
}

/// Run every configuration and diff against the model. `Err` carries a
/// human-readable divergence report naming the configuration.
pub fn check_case(case: &Case) -> Result<(), String> {
    let (names, expected) = model_result(case);
    for combo in combos(&case.query) {
        match run_engine(case, &combo) {
            Ok(table) => diff_tables(&names, &expected, &table, case.n_dims)
                .map_err(|m| format!("{combo:?}: {m}"))?,
            Err(err) => {
                let acceptable = matches!(
                    (&case.gov, &err),
                    (
                        Gov::MaxCells(_) | Gov::MaxMemoryBytes(_),
                        CubeError::ResourceExhausted { .. }
                    ) | (Gov::PreCancelled, CubeError::Cancelled { .. })
                );
                if !acceptable {
                    return Err(format!("{combo:?}: unexpected error: {err}"));
                }
            }
        }
    }
    check_cache_path(case, &names, &expected)?;
    check_maintenance(case)?;
    Ok(())
}

/// The lattice-cache path axis: when every aggregate of the case is
/// rewrite-legal (distributive/algebraic and mergeable), answering the
/// case's grouping-set family from a `CachedView` over the full dimension
/// set must reproduce the model exactly — this is the SQL engine's
/// ancestor-rewrite path with the ancestor pinned to the core cuboid.
/// When any aggregate is holistic or non-mergeable, the view build must
/// refuse with the typed fallthrough error instead of caching it.
fn check_cache_path(case: &Case, names: &[String], expected: &[Row]) -> Result<(), String> {
    let dims: Vec<Dimension> = (0..case.n_dims)
        .map(|d| Dimension::column(format!("d{d}")))
        .collect();
    let specs: Vec<AggSpec> = case
        .aggs
        .iter()
        .enumerate()
        .map(|(i, desc)| desc.spec(i))
        .collect();
    let legal = specs.iter().all(|s| rewritable(&s.func));
    let built = CachedView::build(&case.table, &dims, &specs);
    if !legal {
        return match built {
            Err(CubeError::Unsupported(_)) => Ok(()),
            Ok(_) => Err("cache axis: non-rewritable aggregate was accepted for caching".into()),
            Err(e) => Err(format!("cache axis: wrong refusal for holistic case: {e}")),
        };
    }
    let view = built.map_err(|e| format!("cache axis: view build failed: {e}"))?;
    let sets: Vec<GroupingSet> = match &case.query {
        QueryKind::GroupBy => vec![GroupingSet::full(case.n_dims)],
        QueryKind::Rollup => rollup_sets(case.n_dims).map_err(|e| format!("cache axis: {e}"))?,
        QueryKind::Cube => cube_sets(case.n_dims).map_err(|e| format!("cache axis: {e}"))?,
        QueryKind::GroupingSets(sets) => sets
            .iter()
            .map(|s| GroupingSet::from_dims(s))
            .collect::<CubeResult<_>>()
            .map_err(|e| format!("cache axis: {e}"))?,
        QueryKind::Compound { g, r } => CompoundSpec::new()
            .group_by(dims[..*g].to_vec())
            .rollup(dims[*g..g + r].to_vec())
            .cube(dims[g + r..].to_vec())
            .grouping_sets()
            .map_err(|e| format!("cache axis: {e}"))?,
    };
    let dim_map: Vec<usize> = (0..case.n_dims).collect();
    let dim_names: Vec<String> = (0..case.n_dims).map(|d| format!("d{d}")).collect();
    let dim_name_refs: Vec<&str> = dim_names.iter().map(String::as_str).collect();
    let agg_map: Vec<usize> = (0..specs.len()).collect();
    let agg_names: Vec<&str> = specs.iter().map(|s| &*s.output).collect();
    let table = view
        .answer(
            &AncestorRequest {
                dim_map: &dim_map,
                dim_names: &dim_name_refs,
                agg_map: &agg_map,
                agg_names: &agg_names,
                sets: &sets,
            },
            &ExecContext::unlimited(),
        )
        .map_err(|e| format!("cache axis: answer failed: {e}"))?;
    diff_tables(names, expected, &table, case.n_dims).map_err(|m| format!("cache axis: {m}"))
}

/// A schema-conformant random value for maintenance deltas. Ranges mirror
/// the generator's measure constraints (dyadic floats, `|int| ≤ 2` so
/// PRODUCT/SUM stay exact), so maintained results are bit-comparable to a
/// from-scratch recompute.
fn sample_value(dtype: DataType, rng: &mut StdRng) -> Value {
    if rng.gen_bool(0.15) {
        return Value::Null;
    }
    match dtype {
        DataType::Str => Value::str(format!("s{}", rng.gen_range(0..4))),
        DataType::Int => Value::Int(rng.gen_range(-2i64..=2)),
        DataType::Float => Value::Float(rng.gen_range(-16i64..=16) as f64 * 0.25),
        DataType::Bool => Value::Bool(rng.gen_bool(0.5)),
        DataType::Date => Value::Date(
            Date::new(2020, 1, 1 + rng.gen_range(0u8..5)).expect("maintenance dates are valid"),
        ),
    }
}

fn sample_row(schema: &Schema, rng: &mut StdRng) -> Row {
    Row::new(
        schema
            .columns()
            .iter()
            .map(|c| sample_value(c.dtype, rng))
            .collect(),
    )
}

/// The maintenance axis (§6): a seeded interleaving of insert / delete /
/// update batches applied to a `MaterializedCube` over the case's lattice
/// must leave the cube cell-for-cell equal to a from-scratch recompute of
/// the final table — checked against the model *and* against every engine
/// configuration, so the batched delta path cannot drift from any compute
/// path. A shadow multiset tracks ground truth; deletes and updates pick
/// live rows (including NULL- and NaN-keyed ones), inserts mix fresh rows
/// with duplicates of existing keys to stress support counting.
fn check_maintenance(case: &Case) -> Result<(), String> {
    let dims: Vec<Dimension> = (0..case.n_dims)
        .map(|d| Dimension::column(format!("d{d}")))
        .collect();
    let specs: Vec<AggSpec> = case
        .aggs
        .iter()
        .enumerate()
        .map(|(i, desc)| desc.spec(i))
        .collect();
    let raw_sets: Vec<GroupingSet> = match &case.query {
        QueryKind::GroupBy => vec![GroupingSet::full(case.n_dims)],
        QueryKind::Rollup => {
            rollup_sets(case.n_dims).map_err(|e| format!("maintenance axis: {e}"))?
        }
        QueryKind::Cube => cube_sets(case.n_dims).map_err(|e| format!("maintenance axis: {e}"))?,
        QueryKind::GroupingSets(sets) => sets
            .iter()
            .map(|s| GroupingSet::from_dims(s))
            .collect::<CubeResult<_>>()
            .map_err(|e| format!("maintenance axis: {e}"))?,
        QueryKind::Compound { g, r } => CompoundSpec::new()
            .group_by(dims[..*g].to_vec())
            .rollup(dims[*g..g + r].to_vec())
            .cube(dims[g + r..].to_vec())
            .grouping_sets()
            .map_err(|e| format!("maintenance axis: {e}"))?,
    };
    // The lattice normalizes the family (dedup + core): mirror it in the
    // recompute query so both sides answer the same grouping sets.
    let lattice =
        Lattice::new(case.n_dims, raw_sets).map_err(|e| format!("maintenance axis: {e}"))?;
    let set_dims: Vec<Vec<usize>> = lattice.sets().iter().map(|s| s.dims()).collect();
    let cube = MaterializedCube::with_lattice(&case.table, dims, specs, lattice)
        .map_err(|e| format!("maintenance axis: build: {e}"))?;

    let mut rng = StdRng::seed_from_u64(case.seed ^ 0x4D41_494E_5441_494E);
    let mut shadow: Vec<Row> = case.table.rows().to_vec();
    let schema = case.table.schema();
    for _ in 0..rng.gen_range(2usize..=4) {
        let mut batch = DeltaBatch::new();
        for _ in 0..rng.gen_range(1usize..=8) {
            match rng.gen_range(0u32..4) {
                0 | 1 => {
                    let row = if !shadow.is_empty() && rng.gen_bool(0.4) {
                        shadow[rng.gen_range(0..shadow.len())].clone()
                    } else {
                        sample_row(schema, &mut rng)
                    };
                    shadow.push(row.clone());
                    batch
                        .insert(row)
                        .map_err(|e| format!("maintenance axis: insert: {e}"))?;
                }
                2 if !shadow.is_empty() => {
                    let row = shadow.swap_remove(rng.gen_range(0..shadow.len()));
                    batch.delete(row);
                }
                3 if !shadow.is_empty() => {
                    // §6's "update is delete plus insert", in one batch.
                    let old = shadow.swap_remove(rng.gen_range(0..shadow.len()));
                    let mut vals = old.values().to_vec();
                    let c = rng.gen_range(0..vals.len());
                    vals[c] = sample_value(schema.column_at(c).dtype, &mut rng);
                    let new = Row::new(vals);
                    shadow.push(new.clone());
                    batch.delete(old);
                    batch
                        .insert(new)
                        .map_err(|e| format!("maintenance axis: update: {e}"))?;
                }
                _ => {}
            }
        }
        if batch.is_empty() {
            continue;
        }
        cube.apply(&batch, &ExecContext::unlimited())
            .map_err(|e| format!("maintenance axis: apply: {e}"))?;
    }
    if cube.base_rows().len() != shadow.len() {
        return Err(format!(
            "maintenance axis: cube tracks {} base rows, shadow has {}",
            cube.base_rows().len(),
            shadow.len()
        ));
    }

    let final_table = Table::new(schema.clone(), shadow)
        .map_err(|e| format!("maintenance axis: final table: {e}"))?;
    let final_case = Case {
        seed: case.seed,
        table: final_table,
        n_dims: case.n_dims,
        query: QueryKind::GroupingSets(set_dims),
        aggs: case.aggs.clone(),
        gov: Gov::None,
    };
    let (names, expected) = model_result(&final_case);
    let maintained = cube
        .to_table()
        .map_err(|e| format!("maintenance axis: to_table: {e}"))?;
    diff_tables(&names, &expected, &maintained, case.n_dims)
        .map_err(|m| format!("maintenance axis: maintained cube: {m}"))?;
    for combo in combos(&final_case.query) {
        let table = run_engine(&final_case, &combo)
            .map_err(|e| format!("maintenance axis: recompute {combo:?}: {e}"))?;
        diff_tables(&names, &expected, &table, case.n_dims)
            .map_err(|m| format!("maintenance axis: recompute {combo:?}: {m}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_only_offered_for_rollup_and_dense_only_for_cube() {
        let rollup = combos(&QueryKind::Rollup);
        assert!(rollup.iter().any(|c| c.algorithm == Algorithm::Sort));
        assert!(!rollup.iter().any(|c| c.algorithm == Algorithm::Array));
        let cube = combos(&QueryKind::Cube);
        assert!(cube.iter().any(|c| c.algorithm == Algorithm::Array));
        assert!(cube.iter().any(|c| c.algorithm == Algorithm::PipeSort));
        assert!(!cube.iter().any(|c| c.algorithm == Algorithm::Sort));
        // 7 hash algorithms × (4 flag combos + 3 forced radix/rle
        // combos), plus the dense pair.
        assert_eq!(cube.len(), 51);
        assert!(cube
            .iter()
            .any(|c| c.radix == Some(true) && c.rle == Some(true)));
        assert!(cube
            .iter()
            .any(|c| c.algorithm == Algorithm::Parallel { threads: 16 }));
    }
}
