//! The model oracle: the paper's cube *definition*, executed literally.
//!
//! §2/§3 define the cube as a union of GROUP BYs — one per grouping set —
//! where each set's rows carry the real group values in their grouping
//! columns and `ALL` everywhere else. This module computes exactly that,
//! as slowly and obviously as possible: a `BTreeMap` over value tuples per
//! grouping set, every base row fed to every set, boxed accumulators
//! driven one `Iter` at a time. No key encoding, no kernels, no cascade,
//! no parallelism — and its own grouping-set expansion, independent of the
//! engine's `Lattice`, so expansion bugs cannot cancel out.

use crate::gen::{Case, QueryKind};
use dc_aggregate::Accumulator;
use dc_relation::{Row, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Expand a query kind to its family of grouping-set masks
/// (`mask[d] == true` ⇒ dimension `d` groups; `false` ⇒ `ALL`), straight
/// from the paper's definitions:
///
/// * GROUP BY — the single full set (§2).
/// * ROLLUP — the prefixes, longest first (§3: "an N-dimensional roll-up
///   will add only N [aggregate levels] to the answer set").
/// * CUBE — the power set, 2^N sets (§3).
/// * GROUPING SETS — exactly the requested sets, deduplicated.
/// * Compound — the §3.1 cross product: the GROUP BY block in every set,
///   the ROLLUP block's prefixes, the CUBE block's power set.
pub fn model_masks(n: usize, query: &QueryKind) -> Vec<Vec<bool>> {
    let mut masks: Vec<Vec<bool>> = Vec::new();
    match query {
        QueryKind::GroupBy => masks.push(vec![true; n]),
        QueryKind::Rollup => {
            for k in (0..=n).rev() {
                masks.push((0..n).map(|d| d < k).collect());
            }
        }
        QueryKind::Cube => {
            for bits in 0..(1u64 << n) {
                masks.push((0..n).map(|d| bits >> d & 1 == 1).collect());
            }
        }
        QueryKind::GroupingSets(sets) => {
            for set in sets {
                masks.push((0..n).map(|d| set.contains(&d)).collect());
            }
        }
        QueryKind::Compound { g, r } => {
            let c = n - g - r;
            for k in (0..=*r).rev() {
                for bits in 0..(1u64 << c) {
                    masks.push(
                        (0..n)
                            .map(|d| {
                                if d < *g {
                                    true
                                } else if d < g + r {
                                    d - g < k
                                } else {
                                    bits >> (d - g - r) & 1 == 1
                                }
                            })
                            .collect(),
                    );
                }
            }
        }
    }
    let mut seen = BTreeSet::new();
    masks.retain(|m| seen.insert(m.clone()));
    masks
}

/// Compute the expected answer for a case: output column names
/// (`d0..`, then `a0..`) and the full multiset of result rows (key values
/// followed by aggregate finals). Row order is unspecified — the differ
/// canonicalizes both sides.
pub fn model_result(case: &Case) -> (Vec<String>, Vec<Row>) {
    let t = &case.table;
    let n = case.n_dims;
    let schema = t.schema();

    // Resolve aggregate inputs once. `None` is COUNT(*): per §3.3 /
    // Figure 7 every row participates, so the model feeds a non-NULL
    // placeholder exactly like the engine's star binding.
    let inputs: Vec<Option<usize>> = case
        .aggs
        .iter()
        .map(|a| {
            a.input()
                .map(|col| schema.index_of(col).expect("case aggregates bind"))
        })
        .collect();
    let star = Value::Bool(true);

    let mut out_rows: Vec<Row> = Vec::new();
    for mask in model_masks(n, &case.query) {
        let mut groups: BTreeMap<Vec<Value>, Vec<Box<dyn Accumulator>>> = BTreeMap::new();
        for row in t.rows() {
            let key: Vec<Value> = (0..n)
                .map(|d| if mask[d] { row[d].clone() } else { Value::All })
                .collect();
            let accs = groups
                .entry(key)
                .or_insert_with(|| case.aggs.iter().map(|a| a.func().init()).collect());
            for (acc, input) in accs.iter_mut().zip(&inputs) {
                match input {
                    Some(i) => acc.iter(&row[*i]),
                    None => acc.iter(&star),
                }
            }
        }
        for (key, accs) in groups {
            let mut vals = key;
            vals.extend(accs.iter().map(|a| a.final_value()));
            out_rows.push(Row::new(vals));
        }
    }

    let names = (0..n)
        .map(|d| format!("d{d}"))
        .chain((0..case.aggs.len()).map(|i| format!("a{i}")))
        .collect();
    (names, out_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{AggDesc, Gov};
    use dc_relation::{DataType, Schema, Table};

    fn case(table: Table, n_dims: usize, query: QueryKind, aggs: Vec<AggDesc>) -> Case {
        Case {
            seed: 0,
            table,
            n_dims,
            query,
            aggs,
            gov: Gov::None,
        }
    }

    fn sales() -> Table {
        let schema = Schema::from_pairs(&[
            ("d0", DataType::Str),
            ("d1", DataType::Int),
            ("m_int", DataType::Int),
        ]);
        let rows = vec![
            Row::new(vec![Value::str("Chevy"), Value::Int(1994), Value::Int(50)]),
            Row::new(vec![Value::str("Chevy"), Value::Int(1995), Value::Int(85)]),
            Row::new(vec![Value::str("Ford"), Value::Int(1994), Value::Int(60)]),
        ];
        Table::new(schema, rows).unwrap()
    }

    #[test]
    fn mask_families_match_the_paper_counts() {
        assert_eq!(model_masks(3, &QueryKind::GroupBy).len(), 1);
        assert_eq!(model_masks(3, &QueryKind::Rollup).len(), 4);
        assert_eq!(model_masks(3, &QueryKind::Cube).len(), 8);
        // Figure 5's shape: 1 × (3+1) × 2^2 = 16.
        assert_eq!(
            model_masks(6, &QueryKind::Compound { g: 1, r: 3 }).len(),
            16
        );
        // Duplicates collapse.
        assert_eq!(
            model_masks(2, &QueryKind::GroupingSets(vec![vec![0], vec![0], vec![]])).len(),
            2
        );
    }

    #[test]
    fn cube_grand_total_and_group_rows() {
        let c = case(
            sales(),
            2,
            QueryKind::Cube,
            vec![AggDesc::Builtin {
                name: "SUM".into(),
                input: Some("m_int".into()),
            }],
        );
        let (names, rows) = model_result(&c);
        assert_eq!(names, vec!["d0", "d1", "a0"]);
        // 2^2 sets over 3 base rows: 3 core + 2 model + 2 year + 1 grand.
        assert_eq!(rows.len(), 8);
        let grand = rows
            .iter()
            .find(|r| r[0] == Value::All && r[1] == Value::All)
            .unwrap();
        assert_eq!(grand[2], Value::Int(195));
        let chevy = rows
            .iter()
            .find(|r| r[0] == Value::str("Chevy") && r[1] == Value::All)
            .unwrap();
        assert_eq!(chevy[2], Value::Int(135));
    }

    #[test]
    fn empty_table_yields_no_rows_anywhere() {
        let schema = Schema::from_pairs(&[("d0", DataType::Str), ("m_int", DataType::Int)]);
        let c = case(
            Table::empty(schema),
            1,
            QueryKind::Cube,
            vec![AggDesc::Builtin {
                name: "COUNT(*)".into(),
                input: None,
            }],
        );
        let (_, rows) = model_result(&c);
        assert!(rows.is_empty(), "an empty relation has no groups (§3)");
    }

    #[test]
    fn null_groups_stay_distinct_from_all_rows() {
        let schema = Schema::from_pairs(&[("d0", DataType::Str), ("m_int", DataType::Int)]);
        let rows = vec![
            Row::new(vec![Value::Null, Value::Int(1)]),
            Row::new(vec![Value::str("x"), Value::Int(2)]),
        ];
        let c = case(
            Table::new(schema, rows).unwrap(),
            1,
            QueryKind::Cube,
            vec![AggDesc::Builtin {
                name: "SUM".into(),
                input: Some("m_int".into()),
            }],
        );
        let (_, rows) = model_result(&c);
        // NULL is a real group (§3.4); ALL is the super-aggregate.
        let null_row = rows.iter().find(|r| r[0] == Value::Null).unwrap();
        let all_row = rows.iter().find(|r| r[0] == Value::All).unwrap();
        assert_eq!(null_row[1], Value::Int(1));
        assert_eq!(all_row[1], Value::Int(3));
    }
}
