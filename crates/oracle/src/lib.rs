//! Differential-testing oracle for the cube engine.
//!
//! The paper's central semantic claim (§5) is that every computation
//! strategy — the 2^N scan, the union of GROUP BYs, the from-core
//! cascade, sort- and array-based plans, partition parallelism — produces
//! the *same relation*, with the same ALL/NULL decoration (§3.4), for
//! distributive, algebraic, and holistic aggregates alike. This crate
//! checks that claim continuously:
//!
//! * [`model`] — a deliberately slow, obviously-correct implementation of
//!   GROUP BY / ROLLUP / CUBE / compound specs written straight from the
//!   paper's definitions: a `BTreeMap` over value tuples per grouping set,
//!   boxed accumulators only, no key encoding, no kernels, no parallelism,
//!   and its own grouping-set expansion (so lattice bugs are caught too).
//! * [`gen`] — a seeded deterministic generator of adversarial tables
//!   (NULL-heavy columns, duplicate keys, NaN/±0.0/i64 extremes, empty and
//!   single-row tables, high-cardinality dims, dict-vs-string dims) and
//!   random query specs (compound `GROUP BY g ROLLUP r CUBE c`, holistic
//!   MEDIAN/MODE, user-defined aggregates, budget/cancel settings).
//! * [`runner`] — executes each case through every applicable algorithm ×
//!   {encoded on/off} × {vectorized on/off} × {1,4,16} threads and diffs
//!   the canonicalized results against the model (sorted rows,
//!   ULP-tolerant float compare).
//! * [`shrink`] — greedily minimizes a failing case (rows, aggregates,
//!   dimensions, governance) while preserving the failure, and the fuzz
//!   driver prints the shrunken case together with its replayable seed.
//!
//! Run the bounded smoke (the verify.sh tier): `cargo test -p oracle`.
//! Run the extended fuzz: `ORACLE_SEED=7 ORACLE_CASES=5000 cargo test -p
//! oracle -- --ignored`.

pub mod diff;
pub mod gen;
pub mod model;
pub mod runner;
pub mod shrink;

pub use gen::{gen_case, AggDesc, Case, Gov, QueryKind};
pub use model::{model_masks, model_result};
pub use runner::{check_case, combos, run_engine, Combo};
pub use shrink::shrink;

/// Drive `cases` seeded cases starting at `base_seed`: generate, run
/// through every engine path, diff against the model. On the first
/// divergence the case is shrunk to a minimum and the returned message
/// carries the exact seed to replay it with.
pub fn run_fuzz(base_seed: u64, cases: u64) -> Result<(), String> {
    for i in 0..cases {
        let seed = base_seed.wrapping_add(i);
        let case = gen::gen_case(seed);
        if let Err(first) = runner::check_case(&case) {
            let minimal = shrink::shrink(&case, &|c| runner::check_case(c).err());
            let min_err = runner::check_case(&minimal)
                .err()
                .unwrap_or_else(|| "shrink lost the failure".into());
            return Err(format!(
                "differential divergence at seed {seed} (case {i} of base seed {base_seed:#x})\n\
                 replay: ORACLE_SEED={seed} ORACLE_CASES=1 cargo test -p oracle -- --ignored differential_fuzz\n\
                 first failure: {first}\n\
                 shrunken failure: {min_err}\n\
                 shrunken case:\n{minimal}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_driver_passes_a_quick_burst() {
        // A tiny independent seed range (the 200-case smoke lives in
        // tests/fuzz.rs); failure messages must carry the replay seed.
        run_fuzz(0x0D15_EA5E, 8).unwrap();
    }
}
