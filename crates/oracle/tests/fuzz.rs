//! The differential fuzz entry points.
//!
//! `differential_smoke_200_cases` is the bounded run verify.sh executes on
//! every change: 200 fixed-seed cases, each checked through every
//! algorithm × {encoded} × {vectorized} × thread-count combination.
//!
//! `differential_fuzz_extended` is the long-running campaign, ignored by
//! default. Run it with
//!
//! ```text
//! cargo test -p oracle -- --ignored differential_fuzz
//! ```
//!
//! and steer it with `ORACLE_SEED` (base seed, default 1) and
//! `ORACLE_CASES` (iteration budget, default 2000). A failure prints the
//! offending seed, the shrunken witness, and the exact replay command.

use oracle::run_fuzz;

#[test]
fn differential_smoke_200_cases() {
    if let Err(report) = run_fuzz(0xDA7A_C0BE, 200) {
        panic!("{report}");
    }
}

#[test]
#[ignore = "long-running fuzz campaign; run explicitly with -- --ignored"]
fn differential_fuzz_extended() {
    let seed = std::env::var("ORACLE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    let cases = std::env::var("ORACLE_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000u64);
    if let Err(report) = run_fuzz(seed, cases) {
        panic!("{report}");
    }
}
