//! Shared fixtures for the benchmark harness.
//!
//! Every Criterion bench and the `paper_tables` binary draw their data
//! from here so the experiment index in DESIGN.md has one place to point
//! at. Everything is deterministic per seed.

use datacube::{AggSpec, CubeQuery, Dimension};
use dc_relation::Table;
use dc_warehouse::sales::{synthetic_sales, SalesParams};

/// The standard cube dimensions of the sales workloads.
pub fn sales_dims() -> Vec<Dimension> {
    vec![
        Dimension::column("model"),
        Dimension::column("year"),
        Dimension::column("color"),
    ]
}

/// `SUM(units)` — the workhorse distributive aggregate.
pub fn sum_units() -> AggSpec {
    AggSpec::new(dc_aggregate::builtin("SUM").unwrap(), "units").with_name("units")
}

/// `AVG(units)` — the algebraic representative (Figure 8 / F8).
pub fn avg_units() -> AggSpec {
    AggSpec::new(dc_aggregate::builtin("AVG").unwrap(), "units").with_name("avg_units")
}

/// `MEDIAN(units)` — the holistic representative (C10).
pub fn median_units() -> AggSpec {
    AggSpec::new(dc_aggregate::builtin("MEDIAN").unwrap(), "units").with_name("med_units")
}

/// A sales table with the given row count and per-dimension cardinality.
pub fn sales_table(rows: usize, cardinality: usize) -> Table {
    synthetic_sales(SalesParams {
        rows,
        models: cardinality,
        years: cardinality,
        colors: cardinality,
        seed: 1996,
    })
}

/// A query over the first `n_dims` sales dimensions with `SUM(units)`.
pub fn sales_query(n_dims: usize) -> CubeQuery {
    CubeQuery::new()
        .dimensions(sales_dims().into_iter().take(n_dims).collect())
        .aggregate(sum_units())
}

/// A wider synthetic table for sweeps beyond three dimensions: dims
/// d0..d{n-1} each with the given cardinality, plus a `units` measure.
pub fn wide_table(rows: usize, n_dims: usize, cardinality: usize) -> Table {
    use dc_relation::{DataType, Row, Schema, Value};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut cols: Vec<(&str, DataType)> = Vec::new();
    let names: Vec<String> = (0..n_dims).map(|d| format!("d{d}")).collect();
    for n in &names {
        cols.push((n.as_str(), DataType::Int));
    }
    cols.push(("units", DataType::Int));
    let schema = Schema::from_pairs(&cols);
    let mut rng = StdRng::seed_from_u64(7 + n_dims as u64);
    let mut t = Table::empty(schema);
    for _ in 0..rows {
        let mut vals: Vec<Value> = (0..n_dims)
            .map(|_| Value::Int(rng.gen_range(0..cardinality.max(1)) as i64))
            .collect();
        vals.push(Value::Int(rng.gen_range(1..=100)));
        t.push_unchecked(Row::new(vals));
    }
    t
}

/// A two-dimension integer table whose packed key is wider than 16 bits
/// (cardinality 1000 per dimension → 2 × 10-bit widths), sized so the
/// vectorized engine's radix partitioning auto-engages: the
/// `radix_wide_key` workload of `cube_bench`.
pub fn radix_table(rows: usize, cardinality: usize) -> Table {
    use dc_relation::{DataType, Row, Schema, Value};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let schema = Schema::from_pairs(&[
        ("d0", DataType::Int),
        ("d1", DataType::Int),
        ("units", DataType::Int),
    ]);
    let mut rng = StdRng::seed_from_u64(0x9ad1);
    let mut t = Table::empty(schema);
    for _ in 0..rows {
        t.push_unchecked(Row::new(vec![
            Value::Int(rng.gen_range(0..cardinality.max(1)) as i64),
            Value::Int(rng.gen_range(0..cardinality.max(1)) as i64),
            Value::Int(rng.gen_range(1..=100)),
        ]));
    }
    t
}

/// A sorted single-dimension table with a piecewise-constant measure:
/// every `run` consecutive rows share one `(d0, units)` pair, so the RLE
/// scan folds each run with one slot lookup and one `n × value` kernel
/// call — the `rle_sorted` workload of `cube_bench`.
pub fn sorted_table(rows: usize, run: usize) -> Table {
    use dc_relation::{DataType, Row, Schema, Value};
    let schema = Schema::from_pairs(&[("d0", DataType::Int), ("units", DataType::Int)]);
    let mut t = Table::empty(schema);
    for i in 0..rows {
        let group = (i / run.max(1)) as i64;
        t.push_unchecked(Row::new(vec![
            Value::Int(group),
            Value::Int((group % 7) * 10 + 1),
        ]));
    }
    t
}

/// Query over all dimensions of a [`wide_table`].
pub fn wide_query(n_dims: usize) -> CubeQuery {
    CubeQuery::new()
        .dimensions(
            (0..n_dims)
                .map(|d| Dimension::column(format!("d{d}")))
                .collect(),
        )
        .aggregate(sum_units())
}

/// The columnar workload's select list: every built-in kernel over the
/// `units` measure of a [`wide_table`], so the whole query vectorizes.
pub fn kernel_query(n_dims: usize) -> CubeQuery {
    let agg = |name: &str| {
        AggSpec::new(dc_aggregate::builtin(name).unwrap(), "units").with_name(name.to_lowercase())
    };
    CubeQuery::new()
        .dimensions(
            (0..n_dims)
                .map(|d| Dimension::column(format!("d{d}")))
                .collect(),
        )
        .aggregate(agg("SUM"))
        .aggregate(agg("AVG"))
        .aggregate(agg("MIN"))
        .aggregate(agg("MAX"))
        .aggregate(agg("COUNT"))
        .aggregate(AggSpec::star(dc_aggregate::builtin("COUNT(*)").unwrap()).with_name("rows"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_consistent() {
        let t = sales_table(100, 4);
        assert_eq!(t.len(), 100);
        let cube = sales_query(3).cube(&t).unwrap();
        assert!(!cube.is_empty());
        let w = wide_table(50, 5, 3);
        assert_eq!(w.schema().len(), 6);
        let cube = wide_query(5).cube(&w).unwrap();
        assert!(!cube.is_empty());
        let r = radix_table(64, 1000);
        assert_eq!(r.len(), 64);
        let cube = wide_query(2).cube(&r).unwrap();
        assert!(!cube.is_empty());
        let s = sorted_table(64, 8);
        // 8 groups of 8 rows, plus the grand total.
        let cube = wide_query(1).cube(&s).unwrap();
        assert_eq!(cube.len(), 9);
    }
}
