//! `cube_bench`: the PR-level acceptance harness, writing `BENCH_pr*.json`.
//!
//! Five workloads, timed with `std::time::Instant` (criterion's report
//! machinery is deliberately avoided so the binary can run in CI and
//! emit one machine-readable file):
//!
//! * **ekeys_sales** — the E-keys workload: the 3-dimension sales cube
//!   with packed-`u64` keys on vs the `Row`-key fallback;
//! * **columnar_wide** — the columnar workload: a 100k-row, 4-dimension
//!   numeric cube with every built-in kernel in the select list, run
//!   through the vectorized kernel engine, the encoded row-at-a-time
//!   arena path (`vectorized(false)`), and the plain `Row`-key path;
//! * **radix_wide_key** — a 200k-row, 2-dimension cube whose packed key
//!   is 20 bits wide: radix-partitioned grouping (`.radix(true)`) vs the
//!   single shared hash map (`.radix(false)`);
//! * **rle_sorted** — a 100k-row sorted table with a piecewise-constant
//!   measure: the run-length-compressed scan (`.rle(true)`) vs the plain
//!   morsel scan (`.rle(false)`);
//! * **service_concurrent** — sustained throughput through the shared
//!   `Engine` service: 1 vs 8 concurrent sessions, each alternating a
//!   cheap single-set GROUP BY with a full 2-dimension CUBE under the
//!   admission controller (`ns_per_op` is wall time per query, so lower
//!   at 8 sessions means the shared catalog and admission gate scale).
//!   The lattice cache is pinned OFF here so the record stays comparable
//!   with earlier BENCH files — cache serving has its own workload;
//! * **cache_serving** — repeated ancestor queries (GROUP BY d0, GROUP BY
//!   d1, and the full CUBE) against one shared engine, 1 and 8 sessions,
//!   with the lattice cache on vs off: the `on` axes answer from the
//!   materialized core cuboid, the `off` axes rescan the base rows;
//! * **ingest_serving** — sustained SQL `INSERT` throughput through the
//!   batched write path at batch sizes 1, 256, and 8192 rows per
//!   statement, while 8 reader sessions keep querying the same table
//!   (`ns_per_op` is wall time per *ingested row*, so rows/sec is
//!   `1e9 / ns_per_op`; bigger batches amortize the per-batch
//!   grouping-set fold and the cache delta-propagation).
//!
//! Output: a JSON array of `{workload, rows, dims, algorithm, ns_per_op}`
//! records, written to `--json <path>` (default: `BENCH_pr9.json` at the
//! repository root; see EXPERIMENTS.md "BENCH files"). `--smoke` shrinks
//! every workload to a few thousand rows and a single iteration — a
//! seconds-long sanity pass for verify.sh, not a measurement — and
//! prints to stderr without writing any file. `--cache-smoke` runs only
//! the cache_serving workload at smoke sizes and fails unless cache-on
//! beats cache-off; `--ingest-smoke` runs only ingest_serving at smoke
//! sizes and fails unless batch-8192 ingest is at least 5× the rows/sec
//! of row-at-a-time ingest — both wiring PR headline claims into
//! verify.sh.

use datacube::CubeQuery;
use dc_bench::{kernel_query, radix_table, sales_query, sales_table, sorted_table, wide_table};
use dc_relation::Table;
use dc_sql::{Engine, ServiceConfig};
use std::sync::Arc;
use std::time::Instant;

struct Record {
    workload: &'static str,
    rows: usize,
    dims: usize,
    algorithm: &'static str,
    ns_per_op: u128,
}

/// Median-of-`iters` wall time for one full cube computation.
fn time_cube(query: &CubeQuery, table: &Table, iters: usize) -> u128 {
    // One warmup pass touches every page the timed passes will.
    let warm = query.cube(table).expect("bench query");
    assert!(!warm.is_empty());
    let mut samples: Vec<u128> = (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            let out = query.cube(table).expect("bench query");
            let ns = start.elapsed().as_nanos();
            std::hint::black_box(out);
            ns
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The cache_serving workload: repeated ancestor queries through the
/// shared engine, 1 and 8 sessions, lattice cache on vs off. Every query
/// after the warmup CUBE is answerable from the materialized core cuboid
/// when the cache is on; off, each one rescans the base table.
fn cache_serving(service_rows: usize, service_queries: usize, records: &mut Vec<Record>) {
    let service = wide_table(service_rows, 2, 16);
    const ANCESTOR_SQLS: [&str; 3] = [
        "SELECT d0, d1, SUM(units) AS s FROM t GROUP BY CUBE d0, d1",
        "SELECT d0, SUM(units) AS s FROM t GROUP BY d0",
        "SELECT d1, SUM(units) AS s FROM t GROUP BY d1",
    ];
    for (algorithm, cache_on, sessions) in [
        ("cache_on_1", true, 1usize),
        ("cache_off_1", false, 1),
        ("cache_on_8", true, 8),
        ("cache_off_8", false, 8),
    ] {
        let mut engine = Engine::with_service(ServiceConfig {
            max_concurrent: 8,
            cheap_reserved: 2,
            cheap_cells: service_rows as u64 + 1,
            global_cells: 64 * (service_rows as u64 + 1),
            min_grant_cells: 1,
            queue_depth: 64,
        });
        engine.cube_cache().set_enabled(cache_on);
        engine
            .register_table("t", service.clone())
            .expect("bench table");
        let engine = Arc::new(engine);
        // The warmup CUBE touches every page and, cache on, materializes
        // the core cuboid every later query re-aggregates from.
        std::hint::black_box(engine.execute(ANCESTOR_SQLS[0]).expect("bench query"));
        let start = Instant::now();
        let workers: Vec<_> = (0..sessions)
            .map(|w| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    let session = engine.session();
                    for q in 0..service_queries {
                        let sql = ANCESTOR_SQLS[(w + q) % ANCESTOR_SQLS.len()];
                        std::hint::black_box(session.execute(sql).expect("bench query"));
                    }
                })
            })
            .collect();
        for h in workers {
            h.join().expect("bench session");
        }
        let total = (sessions * service_queries) as u128;
        records.push(Record {
            workload: "cache_serving",
            rows: service_rows,
            dims: 2,
            algorithm,
            ns_per_op: start.elapsed().as_nanos() / total,
        });
        eprintln!(
            "cache_serving/{algorithm}: {} ns/op",
            records.last().unwrap().ns_per_op
        );
    }
}

/// One multi-row `INSERT` statement with `batch_rows` value tuples over
/// the `(d0, d1, units)` schema, deterministic so every batch folds into
/// the same 16 × 16 cell neighbourhood.
fn insert_stmt(batch_rows: usize) -> String {
    let mut stmt = String::from("INSERT INTO t VALUES ");
    for i in 0..batch_rows {
        if i > 0 {
            stmt.push_str(", ");
        }
        let d0 = i % 16;
        let d1 = (i / 16) % 16;
        let units = 1 + (i % 100);
        stmt.push_str(&format!("({d0}, {d1}, {units})"));
    }
    stmt
}

/// The ingest_serving workload: one writer session streams `ingest_rows`
/// rows through SQL `INSERT` at a fixed batch size while 8 reader
/// sessions keep issuing the same cached GROUP BY. `ns_per_op` is wall
/// time per ingested row. After the stream drains, a repeat read must
/// still answer from the lattice cache — delta-propagation, not
/// invalidate-everything.
fn ingest_serving(seed_rows: usize, ingest_rows: usize, records: &mut Vec<Record>) {
    use std::sync::atomic::{AtomicBool, Ordering};
    const READERS: usize = 8;
    const READER_SQL: &str = "SELECT d0, SUM(units) AS s FROM t GROUP BY d0";
    for (algorithm, batch_rows) in [
        ("batch_1", 1usize),
        ("batch_256", 256),
        ("batch_8192", 8192),
    ] {
        let budget = (seed_rows + ingest_rows) as u64 + 1;
        let mut engine = Engine::with_service(ServiceConfig {
            max_concurrent: 8,
            cheap_reserved: 2,
            cheap_cells: budget,
            global_cells: 64 * budget,
            min_grant_cells: 1,
            queue_depth: 64,
        });
        engine
            .register_table("t", wide_table(seed_rows, 2, 16))
            .expect("bench table");
        let engine = Arc::new(engine);
        // Warm the cache so the readers serve from the materialized view.
        std::hint::black_box(engine.execute(READER_SQL).expect("bench query"));
        let done = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let session = engine.session();
                    let mut served = 0usize;
                    while !done.load(Ordering::Relaxed) {
                        std::hint::black_box(session.execute(READER_SQL).expect("bench query"));
                        served += 1;
                    }
                    served
                })
            })
            .collect();
        let stmt = insert_stmt(batch_rows);
        // Cap the statement count: row-at-a-time ingest is ~1000× slower
        // per row (that is the finding), so 256 single-row statements
        // already measure it to a few percent without making the axis
        // take minutes.
        let batches = (ingest_rows / batch_rows).clamp(1, 256);
        let writer = engine.session();
        let start = Instant::now();
        for _ in 0..batches {
            std::hint::black_box(writer.execute(&stmt).expect("bench insert"));
        }
        let ns = start.elapsed().as_nanos();
        done.store(true, Ordering::Relaxed);
        let served: usize = readers
            .into_iter()
            .map(|h| h.join().expect("bench reader"))
            .sum();
        // The cache keeps answering after sustained ingest: a repeat read
        // is a hit, proving the deltas were absorbed, not just dropped.
        let check = engine.session();
        check.execute(READER_SQL).expect("bench query");
        check.execute(READER_SQL).expect("bench query");
        assert!(
            check.last_admission().answered_from_cache,
            "lattice cache must keep answering after ingest ({algorithm})"
        );
        let rows_ingested = batches * batch_rows;
        records.push(Record {
            workload: "ingest_serving",
            rows: rows_ingested,
            dims: 2,
            algorithm,
            ns_per_op: ns / rows_ingested as u128,
        });
        eprintln!(
            "ingest_serving/{algorithm}: {} ns/row ({served} reads served alongside)",
            records.last().unwrap().ns_per_op
        );
    }
}

/// Rows-per-second ratio of batch-8192 over row-at-a-time ingest from
/// ingest_serving records, for the `--ingest-smoke` gate.
fn ingest_speedup(records: &[Record]) -> f64 {
    let ns_of = |alg: &str| {
        records
            .iter()
            .find(|r| r.workload == "ingest_serving" && r.algorithm == alg)
            .map(|r| r.ns_per_op as f64)
            .expect("ingest_serving record")
    };
    ns_of("batch_1") / ns_of("batch_8192")
}

/// The on-vs-off wall-time ratio per session count from cache_serving
/// records, for the `--cache-smoke` gate.
fn cache_speedups(records: &[Record]) -> Vec<(usize, f64)> {
    let ns_of = |alg: &str| {
        records
            .iter()
            .find(|r| r.workload == "cache_serving" && r.algorithm == alg)
            .map(|r| r.ns_per_op as f64)
            .expect("cache_serving record")
    };
    vec![
        (1, ns_of("cache_off_1") / ns_of("cache_on_1")),
        (8, ns_of("cache_off_8") / ns_of("cache_on_8")),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let cache_smoke = args.iter().any(|a| a == "--cache-smoke");
    let ingest_smoke = args.iter().any(|a| a == "--ingest-smoke");
    let mut json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr9.json").to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            json_path = it.next().expect("--json requires a path").clone();
        }
    }
    let (sales_rows, wide_rows, radix_rows, rle_rows, iters) = if smoke {
        (2_000, 5_000, 5_000, 5_000, 1)
    } else {
        (50_000, 100_000, 200_000, 100_000, 5)
    };
    let (service_rows, service_queries) = if smoke || cache_smoke || ingest_smoke {
        (5_000, 4)
    } else {
        (50_000, 32)
    };
    let ingest_rows = if smoke || ingest_smoke { 8_192 } else { 65_536 };
    let mut records: Vec<Record> = Vec::new();

    // The verify.sh gate for the lattice cache: run only cache_serving at
    // smoke sizes and require cache-on to beat cache-off outright.
    if cache_smoke {
        cache_serving(service_rows, service_queries, &mut records);
        for (sessions, speedup) in cache_speedups(&records) {
            eprintln!("cache_serving sessions_{sessions}: {speedup:.1}x on-vs-off");
            assert!(
                speedup > 1.0,
                "lattice cache must not be slower than the base scan \
                 (sessions={sessions}, {speedup:.2}x)"
            );
        }
        println!("cache smoke pass ok");
        return;
    }

    // The verify.sh gate for the write path: run only ingest_serving at
    // smoke sizes and require batched ingest to amortize — at least 5×
    // the rows/sec of row-at-a-time — with the cache still answering.
    if ingest_smoke {
        ingest_serving(service_rows, ingest_rows, &mut records);
        let speedup = ingest_speedup(&records);
        eprintln!("ingest_serving: {speedup:.1}x rows/sec, batch 8192 vs 1");
        assert!(
            speedup >= 5.0,
            "batched ingest must amortize at least 5x over row-at-a-time \
             ({speedup:.2}x)"
        );
        println!("ingest smoke pass ok");
        return;
    }

    // ---- E-keys: encoded vs Row keys over string dimensions ----------
    let sales = sales_table(sales_rows, 8);
    for (algorithm, encoded) in [("encoded", true), ("row_keys", false)] {
        let q = sales_query(3).encoded_keys(encoded);
        records.push(Record {
            workload: "ekeys_sales",
            rows: sales_rows,
            dims: 3,
            algorithm,
            ns_per_op: time_cube(&q, &sales, iters),
        });
        eprintln!(
            "ekeys_sales/{algorithm}: {} ns/op",
            records.last().unwrap().ns_per_op
        );
    }

    // ---- Columnar: vectorized kernels vs the row-at-a-time paths -----
    let wide = wide_table(wide_rows, 4, 10);
    #[allow(clippy::type_complexity)]
    let variants: [(&str, fn(CubeQuery) -> CubeQuery); 3] = [
        ("vectorized", |q| q),
        ("row_path", |q| q.vectorized(false)),
        ("row_keys", |q| q.vectorized(false).encoded_keys(false)),
    ];
    for (algorithm, configure) in variants {
        let q = configure(kernel_query(4));
        records.push(Record {
            workload: "columnar_wide",
            rows: wide_rows,
            dims: 4,
            algorithm,
            ns_per_op: time_cube(&q, &wide, iters),
        });
        eprintln!(
            "columnar_wide/{algorithm}: {} ns/op",
            records.last().unwrap().ns_per_op
        );
    }

    // ---- Radix: partitioned grouping vs one shared hash map ----------
    let radix = radix_table(radix_rows, 1_000);
    for (algorithm, on) in [("radix", true), ("hash", false)] {
        let q = kernel_query(2).radix(on);
        records.push(Record {
            workload: "radix_wide_key",
            rows: radix_rows,
            dims: 2,
            algorithm,
            ns_per_op: time_cube(&q, &radix, iters),
        });
        eprintln!(
            "radix_wide_key/{algorithm}: {} ns/op",
            records.last().unwrap().ns_per_op
        );
    }

    // ---- RLE: run-folding scan vs the plain morsel scan --------------
    let sorted = sorted_table(rle_rows, 64);
    for (algorithm, on) in [("rle", true), ("plain", false)] {
        let q = kernel_query(1).rle(on);
        records.push(Record {
            workload: "rle_sorted",
            rows: rle_rows,
            dims: 1,
            algorithm,
            ns_per_op: time_cube(&q, &sorted, iters),
        });
        eprintln!(
            "rle_sorted/{algorithm}: {} ns/op",
            records.last().unwrap().ns_per_op
        );
    }

    // ---- Service: concurrent sessions through the shared engine ------
    let service = wide_table(service_rows, 2, 16);
    const CHEAP_SQL: &str = "SELECT d0, SUM(units) AS s FROM t GROUP BY d0";
    const CUBE_SQL: &str = "SELECT d0, d1, SUM(units) AS s FROM t GROUP BY CUBE d0, d1";
    for (algorithm, sessions) in [("sessions_1", 1usize), ("sessions_8", 8)] {
        let mut engine = Engine::with_service(ServiceConfig {
            max_concurrent: 8,
            cheap_reserved: 2,
            cheap_cells: service_rows as u64 + 1,
            global_cells: 64 * (service_rows as u64 + 1),
            min_grant_cells: 1,
            queue_depth: 64,
        });
        // Cache off: this record measures admission + base-scan scaling,
        // comparable with earlier BENCH files; cache_serving below owns
        // the lattice-cache axes.
        engine.cube_cache().set_enabled(false);
        engine
            .register_table("t", service.clone())
            .expect("bench table");
        let engine = Arc::new(engine);
        // One warmup query touches every page the timed sessions will.
        std::hint::black_box(engine.execute(CUBE_SQL).expect("bench query"));
        let start = Instant::now();
        let workers: Vec<_> = (0..sessions)
            .map(|w| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    let session = engine.session();
                    for q in 0..service_queries {
                        let sql = if (w + q) % 2 == 0 {
                            CHEAP_SQL
                        } else {
                            CUBE_SQL
                        };
                        std::hint::black_box(session.execute(sql).expect("bench query"));
                    }
                })
            })
            .collect();
        for h in workers {
            h.join().expect("bench session");
        }
        let total = (sessions * service_queries) as u128;
        records.push(Record {
            workload: "service_concurrent",
            rows: service_rows,
            dims: 2,
            algorithm,
            ns_per_op: start.elapsed().as_nanos() / total,
        });
        eprintln!(
            "service_concurrent/{algorithm}: {} ns/op",
            records.last().unwrap().ns_per_op
        );
    }

    // ---- Lattice cache: ancestor serving vs base rescans --------------
    cache_serving(service_rows, service_queries, &mut records);

    // ---- Write path: batched ingest under concurrent serving ----------
    ingest_serving(service_rows, ingest_rows, &mut records);

    // The deliverable: one BENCH_pr*.json at the repository root. Smoke
    // runs are sanity passes, not measurements — they write nothing.
    if smoke {
        println!("smoke pass ok ({} records, no file written)", records.len());
        return;
    }
    let json: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "  {{\"workload\": \"{}\", \"rows\": {}, \"dims\": {}, \
                 \"algorithm\": \"{}\", \"ns_per_op\": {}}}",
                r.workload, r.rows, r.dims, r.algorithm, r.ns_per_op
            )
        })
        .collect();
    std::fs::write(&json_path, format!("[\n{}\n]\n", json.join(",\n"))).expect("write bench json");
    println!("wrote {} records to {json_path}", records.len());
}
