//! Regenerate every table and figure of the paper.
//!
//! Run with `cargo run -p dc-bench --bin paper_tables`. Each section is
//! labeled with the paper artifact it reproduces; EXPERIMENTS.md records
//! the output against the paper's printed values.

use datacube::addressing::CubeView;
use datacube::pivot::{cross_tab, pivot_table};
use datacube::{
    cube_sets, dense_cube_cardinality, rows_in_set, AggSpec, CompoundSpec, CubeQuery, Dimension,
    GroupingSet,
};
use dc_aggregate::builtin;
use dc_relation::{display::render_table, ColumnDef, DataType, Row, Schema, Table, Value};
use dc_sql::Engine;
use dc_warehouse::retail::{RetailParams, RetailWarehouse};
use dc_warehouse::sales::{figure4_sales, table4_sales};
use dc_warehouse::weather::{continent_of, nation_of, weather_table, WeatherParams, STATIONS};
use dc_warehouse::workloads;

fn section(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===============================================");
}

fn main() {
    table1_weather();
    table2_benchmarks();
    table3_rollup_reports();
    table4_pivot();
    table5_sales_summary();
    table6_cross_tabs();
    table7_decorations();
    figure3_lattice();
    figure4_cardinality();
    figure5_compound();
    figure6_snowflake();
    claim_c2_cube_vs_groupby_size();
    println!("\nAll paper artifacts regenerated.");
}

/// Table 1: a sample of the Weather relation.
fn table1_weather() {
    section("T1", "Weather relation (sample)");
    let t = weather_table(WeatherParams {
        rows: 8,
        ..Default::default()
    });
    print!("{}", render_table(&t));
    println!("(synthetic observations from {} stations)", STATIONS.len());
}

/// Table 2: SQL aggregates in standard benchmarks, counted through the
/// dc-sql parser over reconstructed query sets.
fn table2_benchmarks() {
    section("T2", "SQL aggregates in standard benchmarks");
    let profiles = workloads::table2().expect("reconstructions parse");
    let schema = Schema::from_pairs(&[
        ("Benchmark", DataType::Str),
        ("Queries", DataType::Int),
        ("Aggregates", DataType::Int),
        ("GROUP BYs", DataType::Int),
    ]);
    let mut t = Table::empty(schema);
    for p in profiles {
        t.push_unchecked(Row::new(vec![
            Value::str(p.name),
            Value::Int(p.queries as i64),
            Value::Int(p.aggregates as i64),
            Value::Int(p.group_bys as i64),
        ]));
    }
    print!("{}", render_table(&t));
    println!("(counts are measured over reconstructed query sets; see DESIGN.md)");
}

/// Tables 3.a and 3.b: the roll-up report, in the indented report-writer
/// form and in Chris Date's 2^N-column form the paper rejects.
fn table3_rollup_reports() {
    section(
        "T3a",
        "Sales roll-up by Model by Year by Color (report form)",
    );
    let sales = table4_sales();
    let chevy = sales.filter(|r| r[0] == Value::str("Chevy"));
    let rollup = CubeQuery::new()
        .dimensions(vec![
            Dimension::column("model"),
            Dimension::column("year"),
            Dimension::column("color"),
        ])
        .aggregate(AggSpec::new(builtin("SUM").unwrap(), "units").with_name("units"))
        .rollup(&chevy)
        .unwrap();
    // Report form: one column per aggregation level, blank cells elsewhere.
    println!(
        "{:<8} {:<6} {:<7} {:>10} {:>9} {:>9}",
        "Model", "Year", "Color", "by M,Y,C", "by M,Y", "by M"
    );
    let mut report: Vec<&Row> = rollup.rows().iter().collect();
    // Order rows as the paper's report: details before their sub-totals.
    report.sort_by_key(|r| (r[0].clone(), r[1].clone(), r[2].clone()));
    for r in report {
        if r[0].is_all() {
            continue; // grand total shown by Table 5 instead
        }
        let n_all = (0..3).filter(|&d| r[d].is_all()).count();
        let (a, b, c) = match n_all {
            0 => (r[3].to_string(), String::new(), String::new()),
            1 => (String::new(), r[3].to_string(), String::new()),
            _ => (String::new(), String::new(), r[3].to_string()),
        };
        let blank_if_all = |v: &Value| {
            if v.is_all() {
                String::new()
            } else {
                v.to_string()
            }
        };
        println!(
            "{:<8} {:<6} {:<7} {:>10} {:>9} {:>9}",
            blank_if_all(&r[0]),
            blank_if_all(&r[1]),
            blank_if_all(&r[2]),
            a,
            b,
            c
        );
    }

    section("T3b", "the same roll-up in Date's 2^N-column form");
    // Every detail row repeats all its super-aggregates: the column count
    // grows as the power set, which is why the paper rejects it.
    let view = CubeView::new(rollup, 3, "units").unwrap();
    let schema = Schema::from_pairs(&[
        ("Model", DataType::Str),
        ("Year", DataType::Int),
        ("Color", DataType::Str),
        ("Sales", DataType::Int),
        ("Sales by Model by Year", DataType::Int),
        ("Sales by Model", DataType::Int),
    ]);
    let mut t = Table::empty(schema);
    for r in chevy.rows() {
        let (m, y, c) = (r[0].clone(), r[1].clone(), r[2].clone());
        t.push_unchecked(Row::new(vec![
            m.clone(),
            y.clone(),
            c.clone(),
            view.v(&[m.clone(), y.clone(), c]),
            view.v(&[m.clone(), y, Value::All]),
            view.v(&[m, Value::All, Value::All]),
        ]));
    }
    print!("{}", render_table(&t));
}

/// Table 4: the Excel pivot with Ford data included.
fn table4_pivot() {
    section("T4", "Excel-style pivot of the sales data");
    let cube = full_sales_cube();
    let pv = pivot_table(&cube, "model", "year", "color", "units").unwrap();
    print!("{}", render_table(&pv));
}

/// Tables 5.a and 5.b: the ALL-value representation.
fn table5_sales_summary() {
    section("T5a", "Sales Summary - ROLLUP with the ALL value (Chevy)");
    let sales = table4_sales();
    let chevy = sales.filter(|r| r[0] == Value::str("Chevy"));
    let query = CubeQuery::new()
        .dimensions(vec![
            Dimension::column("model"),
            Dimension::column("year"),
            Dimension::column("color"),
        ])
        .aggregate(AggSpec::new(builtin("SUM").unwrap(), "units").with_name("units"));
    let rollup = query.rollup(&chevy).unwrap();
    print!("{}", render_table(&rollup));

    section("T5b", "rows a CUBE adds beyond the ROLLUP");
    let cube = query.cube(&chevy).unwrap();
    let missing = cube.difference(&rollup).unwrap();
    print!("{}", render_table(&missing));
}

/// Tables 6.a and 6.b: the Chevy and Ford cross tabs.
fn table6_cross_tabs() {
    let cube = full_sales_cube();
    for model in ["Chevy", "Ford"] {
        section(
            if model == "Chevy" { "T6a" } else { "T6b" },
            &format!("{model} Sales Cross Tab"),
        );
        let slice = cube.filter(|r| r[0] == Value::str(model));
        let xt = cross_tab(&slice, "color", "year", "units").unwrap();
        print!("{}", render_table(&xt));
    }
}

/// Table 7: decorations interacting with ALL, via the SQL engine.
fn table7_decorations() {
    section("T7", "decorations and ALL (weather by day and nation)");
    let mut engine = Engine::new();
    // Build a nation/continent-annotated observation table from the
    // synthetic weather data (the §3.5 dimension join, pre-applied).
    let weather = weather_table(WeatherParams {
        rows: 500,
        days: 30,
        ..Default::default()
    });
    let schema = Schema::from_pairs(&[
        ("day", DataType::Date),
        ("nation", DataType::Str),
        ("continent", DataType::Str),
        ("temp", DataType::Float),
    ]);
    let mut obs = Table::empty(schema);
    for r in weather.rows() {
        let lat = r[1].as_f64().unwrap();
        let lon = r[2].as_f64().unwrap();
        let Some(nation) = nation_of(lat, lon) else {
            continue;
        };
        let date = r[0].as_date().unwrap();
        obs.push_unchecked(Row::new(vec![
            Value::Date(dc_relation::Date::ymd(
                date.year(),
                date.month(),
                date.day(),
            )),
            Value::str(nation),
            Value::str(continent_of(nation).unwrap()),
            r[4].clone(),
        ]));
    }
    engine.register_table("obs", obs).unwrap();
    let out = engine
        .execute(
            "SELECT day, nation, MAX(temp), continent FROM obs
             GROUP BY CUBE day, nation
             ORDER BY 1, 2 LIMIT 12",
        )
        .unwrap();
    print!("{}", render_table(&out));
    println!("(continent is NULL exactly where nation is ALL - the §3.5 rule)");
}

/// Figure 3: the 0D-3D cube structure — C(N,k) grouping sets per arity.
fn figure3_lattice() {
    section("F3", "cube lattice structure by dimension (Figure 3)");
    println!("{:<4} {:>6} sets per arity (N..0)", "N", "sets");
    for n in 0..=4 {
        let sets = cube_sets(n).unwrap();
        let per_arity: Vec<String> = (0..=n)
            .rev()
            .map(|k| sets.iter().filter(|s| s.len() == k).count().to_string())
            .collect();
        println!("{:<4} {:>6} {}", n, sets.len(), per_arity.join(" "));
    }
    println!("(2D = plane + 2 lines + point; 3D = cube + 3 planes + 3 lines + point)");
}

/// Figure 4: the 18-row SALES table and its 48-row cube.
fn figure4_cardinality() {
    section("F4", "Figure 4 - SALES (18 rows) -> data cube (48 rows)");
    let sales = figure4_sales();
    let cube = CubeQuery::new()
        .dimensions(vec![
            Dimension::column("model"),
            Dimension::column("year"),
            Dimension::column("color"),
        ])
        .aggregate(AggSpec::new(builtin("SUM").unwrap(), "units").with_name("units"))
        .cube(&sales)
        .unwrap();
    println!("SALES rows:        {}", sales.len());
    println!("cube rows:         {}", cube.len());
    println!(
        "paper formula:     Pi(Ci+1) = 3 x 4 x 4 = {}",
        dense_cube_cardinality(&[2, 3, 3])
    );
    println!(
        "core rows:         {}",
        rows_in_set(&cube, 3, GroupingSet::full(3))
    );
    println!("super-aggregates:  {}", cube.len() - 18);
    print!(
        "{}",
        render_table(&cube.filter(|r| (0..3).all(|d| r[d].is_all())))
    );
}

/// Figure 5: the GROUP BY ⊗ ROLLUP ⊗ CUBE compound shape.
fn figure5_compound() {
    section(
        "F5",
        "compound GROUP BY Manufacturer ROLLUP Year CUBE Category, Product",
    );
    let w = RetailWarehouse::generate(RetailParams {
        sales: 2_000,
        ..Default::default()
    });
    let wide = w.denormalize();
    // Derive year from date for the rollup block.
    let spec = CompoundSpec::new()
        .group_by(vec![Dimension::column("manufacturer")])
        .rollup(vec![Dimension::computed(
            "year",
            DataType::Int,
            |r: &Row| {
                r[8].as_date()
                    .map_or(Value::Null, |d| Value::Int(i64::from(d.year())))
            },
        )])
        .cube(vec![
            Dimension::column("category"),
            Dimension::column("product"),
        ]);
    let out = CubeQuery::new()
        .aggregate(AggSpec::new(builtin("SUM").unwrap(), "price").with_name("revenue"))
        .compound(&wide, &spec)
        .unwrap();
    let sets = spec.grouping_sets().unwrap();
    println!(
        "grouping sets: {} (1 GROUP BY x 2 ROLLUP prefixes x 4 CUBE subsets)",
        sets.len()
    );
    println!("result rows:   {}", out.len());
    println!(
        "manufacturer is never ALL: {}",
        out.rows().iter().all(|r| !r[0].is_all())
    );
}

/// Figure 6: the snowflake schema and a granularity roll-up.
fn figure6_snowflake() {
    section("F6", "snowflake schema (retail warehouse)");
    let w = RetailWarehouse::generate(RetailParams {
        sales: 5_000,
        ..Default::default()
    });
    println!(
        "fact sales_item: {} rows; office dim: {}; product dim: {}; customer dim: {}",
        w.fact.len(),
        w.office.len(),
        w.product.len(),
        w.customer.len()
    );
    let mut engine = Engine::new();
    w.register(&mut engine).unwrap();
    // Roll up the office hierarchy: geography, region, district.
    let out = engine
        .execute(
            "SELECT geography, region, district, SUM(units) AS units
             FROM sales_wide GROUP BY ROLLUP geography, region, district",
        )
        .unwrap();
    print!("{}", render_table(&out));
}

/// §5's claim: with Ci = 4, a 4D cube is ~2.4× the base GROUP BY.
fn claim_c2_cube_vs_groupby_size() {
    section("C2", "cube size vs GROUP BY core: ((Ci+1)/Ci)^N");
    println!(
        "{:<4} {:>14} {:>14} {:>8}",
        "N", "GROUP BY cells", "cube cells", "ratio"
    );
    for n in 1..=6u32 {
        let group_by: u64 = 4u64.pow(n);
        let cube: u64 = 5u64.pow(n);
        println!(
            "{:<4} {:>14} {:>14} {:>8.2}",
            n,
            group_by,
            cube,
            cube as f64 / group_by as f64
        );
    }
    // Measured on an actually dense table (Ci = 4, every cell populated).
    let t = dense_4d_table();
    let cube = CubeQuery::new()
        .dimensions((0..4).map(|d| Dimension::column(format!("d{d}"))).collect())
        .aggregate(AggSpec::new(builtin("SUM").unwrap(), "units").with_name("units"))
        .cube(&t)
        .unwrap();
    let core = rows_in_set(&cube, 4, GroupingSet::full(4));
    println!(
        "measured 4D, Ci=4: core {} rows, cube {} rows, ratio {:.2} (paper: 2.4)",
        core,
        cube.len(),
        cube.len() as f64 / core as f64
    );
}

/// A fully dense 4D table with Ci = 4: one row per cell.
fn dense_4d_table() -> Table {
    let mut cols: Vec<ColumnDef> = (0..4)
        .map(|d| ColumnDef::new(format!("d{d}"), DataType::Int))
        .collect();
    cols.push(ColumnDef::new("units", DataType::Int));
    let mut t = Table::empty(Schema::new(cols).unwrap());
    for a in 0..4i64 {
        for b in 0..4i64 {
            for c in 0..4i64 {
                for d in 0..4i64 {
                    t.push_unchecked(Row::new(vec![
                        Value::Int(a),
                        Value::Int(b),
                        Value::Int(c),
                        Value::Int(d),
                        Value::Int(1),
                    ]));
                }
            }
        }
    }
    t
}

/// The 3D cube over the Tables 4-6 sales data, shared by several sections.
fn full_sales_cube() -> Table {
    CubeQuery::new()
        .dimensions(vec![
            Dimension::column("model"),
            Dimension::column("year"),
            Dimension::column("color"),
        ])
        .aggregate(AggSpec::new(builtin("SUM").unwrap(), "units").with_name("units"))
        .cube(&table4_sales())
        .unwrap()
}
