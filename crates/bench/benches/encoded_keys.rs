//! E-keys: the encoded-key execution engine, measured.
//!
//! The engine packs each row's cube coordinate into one `u64` (one bit
//! field per dimension, `0` = ALL), hashes it with the Fx hash, and keeps
//! scratchpads in flat per-set arenas. This bench isolates the two levers:
//!
//! * **encoded vs Row keys** — the same cube query with
//!   [`CubeQuery::encoded_keys`] on and off, over the string-dimension
//!   sales generator and the mixed Date/Float/Int weather generator;
//! * **Fx vs SipHash** — raw map-insert throughput for packed `u64` keys
//!   and for cloned `Row` keys, isolating the hasher from the rest of the
//!   engine.
//!
//! Acceptance target (EXPERIMENTS.md E-keys): ≥ 2× end-to-end on
//! string-dimension workloads.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use datacube::{AggSpec, Algorithm, CubeQuery, Dimension};
use dc_bench::{sales_query, sales_table};
use dc_relation::{FxHashMap, Row, Value};
use dc_warehouse::weather::{weather_table, WeatherParams};
use std::collections::HashMap;

fn weather_query() -> CubeQuery {
    CubeQuery::new()
        .dimensions(vec![
            Dimension::column("time"),
            Dimension::column("latitude"),
            Dimension::column("altitude"),
        ])
        .aggregate(
            AggSpec::new(dc_aggregate::builtin("SUM").unwrap(), "pressure")
                .with_name("sum_pressure"),
        )
}

fn bench_encoded_vs_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("Ekeys_encoded_vs_row");
    group.sample_size(10);

    for rows in [10_000usize, 50_000] {
        let sales = sales_table(rows, 8);
        for (alg_name, alg) in [
            ("from_core", Algorithm::FromCore),
            ("2^N", Algorithm::TwoToTheN),
        ] {
            for (name, encoded) in [("encoded", true), ("row_keys", false)] {
                group.bench_with_input(
                    BenchmarkId::new(format!("sales_{alg_name}_{name}"), rows),
                    &sales,
                    |b, t| {
                        let q = sales_query(3).algorithm(alg).encoded_keys(encoded);
                        b.iter(|| q.cube(t).unwrap());
                    },
                );
            }
        }
    }

    let weather = weather_table(WeatherParams {
        rows: 20_000,
        ..Default::default()
    });
    for (name, encoded) in [("encoded", true), ("row_keys", false)] {
        group.bench_with_input(
            BenchmarkId::new(format!("weather_{name}"), 20_000),
            &weather,
            |b, t| {
                let q = weather_query()
                    .algorithm(Algorithm::FromCore)
                    .encoded_keys(encoded);
                b.iter(|| q.cube(t).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_fx_vs_siphash(c: &mut Criterion) {
    let mut group = c.benchmark_group("Ekeys_fx_vs_siphash");
    group.sample_size(10);

    // The key streams a cube group-by actually produces: packed u64
    // coordinates, and the Row keys the fallback path clones.
    let n = 100_000usize;
    let u64_keys: Vec<u64> = (0..n as u64)
        .map(|i| i.wrapping_mul(0x9e37) % 4096)
        .collect();
    let row_keys: Vec<Row> = (0..n)
        .map(|i| {
            Row::new(vec![
                Value::str(format!("model{}", i % 16)),
                Value::Int(1990 + (i % 16) as i64),
                Value::str(format!("color{}", i % 16)),
            ])
        })
        .collect();

    group.bench_function(BenchmarkId::new("u64_fx", n), |b| {
        b.iter(|| {
            let mut m: FxHashMap<u64, u64> = FxHashMap::default();
            for &k in &u64_keys {
                *m.entry(k).or_insert(0) += 1;
            }
            black_box(m.len())
        })
    });
    group.bench_function(BenchmarkId::new("u64_siphash", n), |b| {
        b.iter(|| {
            let mut m: HashMap<u64, u64> = HashMap::new();
            for &k in &u64_keys {
                *m.entry(k).or_insert(0) += 1;
            }
            black_box(m.len())
        })
    });
    group.bench_function(BenchmarkId::new("row_fx", n), |b| {
        b.iter(|| {
            let mut m: FxHashMap<Row, u64> = FxHashMap::default();
            for k in &row_keys {
                *m.entry(k.clone()).or_insert(0) += 1;
            }
            black_box(m.len())
        })
    });
    group.bench_function(BenchmarkId::new("row_siphash", n), |b| {
        b.iter(|| {
            let mut m: HashMap<Row, u64> = HashMap::new();
            for k in &row_keys {
                *m.entry(k.clone()).or_insert(0) += 1;
            }
            black_box(m.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_encoded_vs_row, bench_fx_vs_siphash);
criterion_main!(benches);
