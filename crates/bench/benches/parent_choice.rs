//! C6 (ablation): §5's parent-selection rule — "The algorithm will be
//! most efficient if it aggregates the smaller of the two ... pick the *
//! with the smallest Cᵢ."
//!
//! The workload has deliberately skewed cardinalities (2 × 16 × 512), so
//! cascading through the wrong parent merges orders of magnitude more
//! cells. All three policies produce identical results; only work
//! differs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacube::ParentChoice;
use dc_bench::sum_units;
use dc_relation::{DataType, Row, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn skewed_cardinality_table(rows: usize) -> Table {
    let schema = Schema::from_pairs(&[
        ("tiny", DataType::Int), // C = 2
        ("mid", DataType::Int),  // C = 16
        ("huge", DataType::Int), // C = 512
        ("units", DataType::Int),
    ]);
    let mut rng = StdRng::seed_from_u64(13);
    let mut t = Table::empty(schema);
    for _ in 0..rows {
        t.push_unchecked(Row::new(vec![
            Value::Int(rng.gen_range(0..2)),
            Value::Int(rng.gen_range(0..16)),
            Value::Int(rng.gen_range(0..512)),
            Value::Int(rng.gen_range(1..=100)),
        ]));
    }
    t
}

fn query() -> datacube::CubeQuery {
    datacube::CubeQuery::new()
        .dimensions(vec![
            datacube::Dimension::column("tiny"),
            datacube::Dimension::column("mid"),
            datacube::Dimension::column("huge"),
        ])
        .aggregate(sum_units())
}

fn bench_parent_choice(c: &mut Criterion) {
    let mut group = c.benchmark_group("C6_parent_choice");
    group.sample_size(10);
    let table = skewed_cardinality_table(50_000);
    for (name, choice) in [
        ("smallest_cardinality", ParentChoice::SmallestCardinality),
        ("largest_cardinality", ParentChoice::LargestCardinality),
        ("always_core", ParentChoice::AlwaysCore),
    ] {
        group.bench_with_input(BenchmarkId::new(name, "2x16x512"), &table, |b, t| {
            let q = query();
            b.iter(|| q.cube_with_parent_choice(t, choice).unwrap());
        });
        let (_, stats) = query().cube_with_parent_choice(&table, choice).unwrap();
        println!("C6 {name}: merge_calls={}", stats.merge_calls);
    }
    group.finish();
}

criterion_group!(benches, bench_parent_choice);
criterion_main!(benches);
