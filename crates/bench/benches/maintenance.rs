//! C9: incremental maintenance (§6).
//!
//! * INSERT is cheap for everything: visit the record's 2^N cells.
//! * DELETE is cheap for functions that are "algebraic for delete"
//!   (SUM/COUNT) and expensive for delete-holistic MAX when the deleted
//!   row held a champion — those cells are recomputed from base rows.
//! * The full-recompute baseline shows what triggers save.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacube::maintain::MaterializedCube;
use datacube::AggSpec;
use dc_aggregate::builtin;
use dc_bench::{sales_dims, sales_table, sum_units};

fn max_units() -> AggSpec {
    AggSpec::new(builtin("MAX").unwrap(), "units").with_name("max_units")
}

fn bench_maintenance(c: &mut Criterion) {
    let rows = 20_000;
    let table = sales_table(rows, 8);

    let mut group = c.benchmark_group("C9_maintenance");
    group.sample_size(10);

    // INSERT cost: 2^N cell updates per record.
    group.bench_function(BenchmarkId::new("insert_sum", rows), |b| {
        let cube = MaterializedCube::cube(&table, sales_dims(), vec![sum_units()]).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            cube.insert(dc_relation::Row::new(vec![
                dc_relation::Value::str("model-000"),
                dc_relation::Value::Int(1990),
                dc_relation::Value::str("color-000"),
                dc_relation::Value::Int((i % 100) as i64),
            ]))
            .unwrap();
        });
    });

    // DELETE for an algebraic-for-delete function: in-place retraction.
    group.bench_function(BenchmarkId::new("delete_sum", rows), |b| {
        b.iter_batched(
            || {
                let cube = MaterializedCube::cube(&table, sales_dims(), vec![sum_units()]).unwrap();
                let victim = table.rows()[0].clone();
                (cube, victim)
            },
            |(cube, victim)| cube.delete(&victim).unwrap(),
            criterion::BatchSize::LargeInput,
        );
    });

    // DELETE for delete-holistic MAX: champions force recomputes.
    group.bench_function(BenchmarkId::new("delete_max_champion", rows), |b| {
        b.iter_batched(
            || {
                let cube = MaterializedCube::cube(&table, sales_dims(), vec![max_units()]).unwrap();
                // Pick a row holding the global maximum so every enclosing
                // cell must recompute.
                let victim = table
                    .rows()
                    .iter()
                    .max_by_key(|r| r[3].as_i64().unwrap())
                    .unwrap()
                    .clone();
                (cube, victim)
            },
            |(cube, victim)| cube.delete(&victim).unwrap(),
            criterion::BatchSize::LargeInput,
        );
    });

    // Baseline: recompute the whole cube from scratch after one change.
    group.bench_function(BenchmarkId::new("full_recompute", rows), |b| {
        let q = dc_bench::sales_query(3);
        b.iter(|| q.cube(&table).unwrap());
    });

    group.finish();

    // One-shot stats printout for EXPERIMENTS.md.
    let cube = MaterializedCube::cube(&table, sales_dims(), vec![max_units()]).unwrap();
    let victim = table
        .rows()
        .iter()
        .max_by_key(|r| r[3].as_i64().unwrap())
        .unwrap()
        .clone();
    cube.delete(&victim).unwrap();
    let s = cube.stats();
    println!(
        "C9 delete of MAX champion: cells_recomputed={} cells_updated={} rows_rescanned={}",
        s.cells_recomputed, s.cells_updated, s.rows_rescanned
    );
}

criterion_group!(benches, bench_maintenance);
criterion_main!(benches);
