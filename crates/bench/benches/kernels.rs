//! Kernel micro-benchmarks: one million `i64` elements folded into a
//! single accumulator cell three ways.
//!
//! * **scalar** — the row path's shape: one boxed [`Accumulator::iter`]
//!   call per element, each value wrapped in a [`Value`];
//! * **multi_lane** — [`Kernel::fold_i64`] over 2048-element morsel
//!   slabs, the fixed-trip loop the autovectorizer unrolls;
//! * **multi_lane_masked** — [`Kernel::fold_i64_masked`] with an all-set
//!   validity word per 64 elements, the price of the word-at-a-time
//!   null-handling path when nothing is actually null;
//! * **rle_run** — [`Kernel::fold_repeat_i64`], one `n × value` fold per
//!   64-element run: the run-length-compressed scan's inner step.
//!
//! The first two bracket the multi-lane speedup claimed in DESIGN.md
//! "Vectorized kernels"; the last shows why the RLE scan wins on sorted
//! piecewise-constant columns (it does ~1/64th of the work).

use criterion::{criterion_group, criterion_main, Criterion};
use dc_aggregate::{builtin, Kernel, KernelCell};
use dc_relation::Value;

const N: usize = 1_000_000;
const MORSEL: usize = 2048;
const RUN: usize = 64;

/// Piecewise-constant data: `RUN` equal elements per run, so the same
/// slab serves the element-wise and run-folding variants.
fn data() -> Vec<i64> {
    (0..N).map(|i| ((i / RUN) % 1009) as i64).collect()
}

fn bench_fold_paths(c: &mut Criterion) {
    let vals = data();
    let boxed: Vec<Value> = vals.iter().map(|&v| Value::Int(v)).collect();
    let all_set: Vec<u64> = vec![!0u64; MORSEL / 64];
    let mut group = c.benchmark_group("kernel_fold_1m");
    group.sample_size(20);

    group.bench_function("scalar", |b| {
        let sum = builtin("SUM").unwrap();
        b.iter(|| {
            let mut acc = sum.init();
            for v in &boxed {
                acc.iter(v);
            }
            std::hint::black_box(acc.final_value())
        });
    });

    group.bench_function("multi_lane", |b| {
        b.iter(|| {
            let mut cell = KernelCell::default();
            for chunk in vals.chunks(MORSEL) {
                Kernel::Sum.fold_i64(&mut cell, chunk);
            }
            std::hint::black_box(cell)
        });
    });

    group.bench_function("multi_lane_masked", |b| {
        b.iter(|| {
            let mut cell = KernelCell::default();
            for chunk in vals.chunks(MORSEL) {
                Kernel::Sum.fold_i64_masked(&mut cell, chunk, &all_set, 0, chunk.len());
            }
            std::hint::black_box(cell)
        });
    });

    group.bench_function("rle_run", |b| {
        b.iter(|| {
            let mut cell = KernelCell::default();
            for run in vals.chunks(RUN) {
                Kernel::Sum.fold_repeat_i64(&mut cell, run[0], run.len() as i64);
            }
            std::hint::black_box(cell)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_fold_paths);
criterion_main!(benches);
