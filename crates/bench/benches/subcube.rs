//! C11 (extension): HRU partial-cube materialization — the §6 citation,
//! measured.
//!
//! Sweep the number of greedily-materialized views k and measure the cost
//! of answering the whole lattice on demand. More views → fewer rows
//! re-scanned per query, with diminishing returns — HRU's benefit curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacube::{cube_sets, greedy_select, PartialCube, SizeModel};
use dc_bench::{sales_dims, sales_table, sum_units};

fn bench_subcube(c: &mut Criterion) {
    let table = sales_table(50_000, 16);
    let cards = [16usize, 16, 16];
    let model = SizeModel::independent(&cards, table.len() as u64).unwrap();

    let mut group = c.benchmark_group("C11_partial_cube");
    group.sample_size(10);
    for k in [0usize, 2, 4, 7] {
        let (selection, predicted) = greedy_select(3, k, &model).unwrap();
        group.bench_with_input(BenchmarkId::new("answer_all_sets", k), &table, |b, t| {
            b.iter_batched(
                || {
                    PartialCube::materialize(t, sales_dims(), vec![sum_units()], &selection)
                        .unwrap()
                },
                |mut pc| {
                    for set in cube_sets(3).unwrap() {
                        pc.query(set).unwrap();
                    }
                    pc.stats().rows_scanned
                },
                criterion::BatchSize::LargeInput,
            );
        });
        let mut pc =
            PartialCube::materialize(&table, sales_dims(), vec![sum_units()], &selection).unwrap();
        for set in cube_sets(3).unwrap() {
            pc.query(set).unwrap();
        }
        println!(
            "C11 k={k}: materialized {} views, predicted cost {predicted}, rows rescanned {}",
            selection.len(),
            pc.stats().rows_scanned
        );
    }
    group.finish();
}

criterion_group!(benches, bench_subcube);
criterion_main!(benches);
