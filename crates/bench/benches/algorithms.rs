//! C3 / C10 / F8: the §5 cost trichotomy, measured.
//!
//! * C3 — the 2^N algorithm does `T × 2^N` Iter() calls; computing from
//!   the core does `T` plus cell merges ("reducing the number of calls by
//!   approximately a factor of T").
//! * F8 — algebraic functions (AVG) cascade through scratchpads.
//! * C10 — holistic functions (MEDIAN) get no from-core shortcut: the
//!   cascade shuffles whole multisets and wins nothing over 2^N.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacube::Algorithm;
use dc_bench::{avg_units, median_units, sales_query, sales_table, sum_units};

fn bench_distributive(c: &mut Criterion) {
    let mut group = c.benchmark_group("C3_distributive_sum");
    group.sample_size(10);
    for rows in [1_000usize, 10_000] {
        let table = sales_table(rows, 8);
        for (name, alg) in [
            ("2^N", Algorithm::TwoToTheN),
            ("union_group_bys", Algorithm::UnionGroupBys),
            ("from_core", Algorithm::FromCore),
            ("pipesort", Algorithm::PipeSort),
        ] {
            group.bench_with_input(BenchmarkId::new(name, rows), &table, |b, t| {
                let q = sales_query(3).algorithm(alg);
                b.iter(|| q.cube(t).unwrap());
            });
        }
        // Report the Iter()-call accounting once per size (the unit of
        // the paper's cost claim).
        let (_, naive) = sales_query(3)
            .algorithm(Algorithm::TwoToTheN)
            .cube_with_stats(&table)
            .unwrap();
        let (_, cascade) = sales_query(3)
            .algorithm(Algorithm::FromCore)
            .cube_with_stats(&table)
            .unwrap();
        println!(
            "C3 rows={rows}: 2^N iter_calls={} (T x 2^N = {}); from_core iter_calls={} merge_calls={}",
            naive.iter_calls,
            rows * 8,
            cascade.iter_calls,
            cascade.merge_calls
        );
    }
    group.finish();
}

fn bench_algebraic(c: &mut Criterion) {
    let mut group = c.benchmark_group("F8_algebraic_avg");
    group.sample_size(10);
    let table = sales_table(10_000, 8);
    for (name, alg) in [
        ("2^N", Algorithm::TwoToTheN),
        ("from_core", Algorithm::FromCore),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 10_000), &table, |b, t| {
            let q = datacube::CubeQuery::new()
                .dimensions(dc_bench::sales_dims())
                .aggregate(avg_units())
                .algorithm(alg);
            b.iter(|| q.cube(t).unwrap());
        });
    }
    group.finish();
}

fn bench_holistic(c: &mut Criterion) {
    let mut group = c.benchmark_group("C10_holistic_median");
    group.sample_size(10);
    let table = sales_table(10_000, 8);
    // MEDIAN via 2^N (what Auto picks) vs MEDIAN forced through the
    // cascade (whole multisets as "scratchpads") vs SUM for scale.
    for (name, alg, spec) in [
        ("median_2^N", Algorithm::TwoToTheN, median_units()),
        ("median_from_core", Algorithm::FromCore, median_units()),
        ("sum_from_core", Algorithm::FromCore, sum_units()),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 10_000), &table, |b, t| {
            let q = datacube::CubeQuery::new()
                .dimensions(dc_bench::sales_dims())
                .aggregate(spec.clone())
                .algorithm(alg);
            b.iter(|| q.cube(t).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distributive, bench_algebraic, bench_holistic);
criterion_main!(benches);
