//! C5: sort-based ROLLUP (§5) vs hash-based alternatives.
//!
//! "The basic technique for computing a ROLLUP is to sort the table on
//! the aggregating attributes ... Sorting is especially convenient for
//! ROLLUP since the user often wants the answer set in a sorted order."
//! The sort algorithm pays one sort but does only T Iter() calls and
//! emits in report order; the naive path does T × (N+1) Iters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacube::Algorithm;
use dc_bench::{sales_query, sales_table};

fn bench_rollup(c: &mut Criterion) {
    let mut group = c.benchmark_group("C5_rollup");
    group.sample_size(10);
    for rows in [1_000usize, 10_000, 50_000] {
        let table = sales_table(rows, 8);
        for (name, alg) in [
            ("sort_based", Algorithm::Sort),
            ("from_core_hash", Algorithm::FromCore),
            ("order_n_naive", Algorithm::TwoToTheN),
        ] {
            group.bench_with_input(BenchmarkId::new(name, rows), &table, |b, t| {
                let q = sales_query(3).algorithm(alg);
                b.iter(|| q.rollup(t).unwrap());
            });
        }
        let (_, sort) = sales_query(3)
            .algorithm(Algorithm::Sort)
            .rollup_with_stats(&table)
            .unwrap();
        println!(
            "C5 rows={rows}: sort algorithm sorts={} iter_calls={} merge_calls={}",
            sort.sorts, sort.iter_calls, sort.merge_calls
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rollup);
criterion_main!(benches);
