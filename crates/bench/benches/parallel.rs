//! C8: partition-parallel aggregation (§5).
//!
//! "If the source data spans many disks or nodes, use parallelism to
//! aggregate each partition and then coalesce these aggregates." Thread
//! sweep over a fixed workload; coalescing uses the same Iter_super
//! merge as the cascade (the paper's observation that the taxonomy is
//! what makes parallel aggregation work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacube::Algorithm;
use dc_bench::{sales_query, sales_table};

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("C8_parallel");
    group.sample_size(10);
    let table = sales_table(200_000, 16);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &table, |b, t| {
            let q = sales_query(3).algorithm(Algorithm::Parallel { threads });
            b.iter(|| q.cube(t).unwrap());
        });
    }
    // Sequential baseline for reference.
    group.bench_with_input(BenchmarkId::new("sequential", 0), &table, |b, t| {
        let q = sales_query(3).algorithm(Algorithm::FromCore);
        b.iter(|| q.cube(t).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
