//! C7: dense-array vs hash cube (§5's Graefe tips).
//!
//! "If possible, use arrays or hashing to organize the aggregation
//! columns in memory ... the values become dense and the aggregates can
//! be stored as an N-dimensional array. ... It is possible that the core
//! of the cube is sparse. In that case, only the non-null elements ...
//! should be represented [via] hashing or a B-tree."
//!
//! Density sweep: with small cardinalities every array cell is hit and
//! the dense representation shines; with large cardinalities the array
//! is mostly empty slots and hashing wins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacube::Algorithm;
use dc_bench::{sales_query, sales_table};

fn bench_dense_vs_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("C7_dense_vs_sparse");
    group.sample_size(10);
    let rows = 20_000;
    // cardinality^3 cells; density = rows / cells.
    for cardinality in [4usize, 8, 16, 32, 64] {
        let table = sales_table(rows, cardinality);
        let cells: usize = (cardinality + 1).pow(3);
        for (name, alg) in [
            ("dense_array", Algorithm::Array),
            ("hash_from_core", Algorithm::FromCore),
        ] {
            group.bench_with_input(BenchmarkId::new(name, cardinality), &table, |b, t| {
                let q = sales_query(3).algorithm(alg);
                b.iter(|| q.cube(t).unwrap());
            });
        }
        println!(
            "C7 C={cardinality}: array cells={cells}, base rows={rows}, density={:.2}",
            rows as f64 / cells as f64
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dense_vs_sparse);
criterion_main!(benches);
