//! C4: §2's complaint, measured — "A six dimension cross-tab requires a
//! 64-way union of 64 different GROUP BY operators ... 64 scans of the
//! data, 64 sorts or hashes, and a long wait."
//!
//! Sweeps the dimension count: the union plan re-scans the base table
//! once per grouping set (2^N scans), while the CUBE operator scans once
//! and cascades. The gap should widen geometrically with N.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacube::Algorithm;
use dc_bench::{wide_query, wide_table};

fn bench_union_vs_cube(c: &mut Criterion) {
    let mut group = c.benchmark_group("C4_union_vs_cube");
    group.sample_size(10);
    let rows = 20_000;
    for n_dims in [2usize, 3, 4, 5, 6] {
        let table = wide_table(rows, n_dims, 4);
        for (name, alg) in [
            ("union_of_group_bys", Algorithm::UnionGroupBys),
            ("cube_from_core", Algorithm::FromCore),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n_dims), &table, |b, t| {
                let q = wide_query(n_dims).algorithm(alg);
                b.iter(|| q.cube(t).unwrap());
            });
        }
        let (_, union) = wide_query(n_dims)
            .algorithm(Algorithm::UnionGroupBys)
            .cube_with_stats(&table)
            .unwrap();
        let (_, cube) = wide_query(n_dims)
            .algorithm(Algorithm::FromCore)
            .cube_with_stats(&table)
            .unwrap();
        println!(
            "C4 N={n_dims}: union scans={} (2^N = {}); cube scans={}",
            union.rows_scanned / rows as u64,
            1 << n_dims,
            cube.rows_scanned / rows as u64
        );
    }
    group.finish();
}

criterion_group!(benches, bench_union_vs_cube);
criterion_main!(benches);
