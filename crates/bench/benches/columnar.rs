//! Columnar measure batches + vectorized kernels, measured.
//!
//! The same all-kernel cube query (SUM/AVG/MIN/MAX/COUNT/COUNT(*) over a
//! numeric measure, 4 integer dimensions) through three engines:
//!
//! * **vectorized** — typed column vectors scanned in morsels by the
//!   monomorphized kernels;
//! * **row_path** — the encoded-key arena driving Init/Iter per row;
//! * **row_keys** — the `Row`-keyed fallback hash path.
//!
//! Acceptance target (EXPERIMENTS.md, BENCH_pr3.json): vectorized ≥ 2×
//! over row_path on the 100k-row workload. Morsel-parallel scaling rides
//! on the same plan via `Algorithm::Parallel`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacube::{Algorithm, CubeQuery};
use dc_bench::{kernel_query, wide_table};

#[allow(clippy::type_complexity)]
fn variants() -> [(&'static str, fn(CubeQuery) -> CubeQuery); 3] {
    [
        ("vectorized", |q| q),
        ("row_path", |q| q.vectorized(false)),
        ("row_keys", |q| q.vectorized(false).encoded_keys(false)),
    ]
}

fn bench_kernels_vs_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar_kernels_vs_row");
    group.sample_size(10);
    for rows in [20_000usize, 100_000] {
        let t = wide_table(rows, 4, 10);
        for (name, configure) in variants() {
            group.bench_with_input(BenchmarkId::new(name, rows), &t, |b, t| {
                let q = configure(kernel_query(4));
                b.iter(|| q.cube(t).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_morsel_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar_morsel_parallel");
    group.sample_size(10);
    let t = wide_table(100_000, 4, 10);
    for threads in [1usize, 2, 4] {
        for (name, configure) in variants().into_iter().take(2) {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_t{threads}"), 100_000),
                &t,
                |b, t| {
                    let q = configure(kernel_query(4)).algorithm(Algorithm::Parallel { threads });
                    b.iter(|| q.cube(t).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels_vs_row, bench_morsel_parallel);
criterion_main!(benches);
