//! Scenario tests for the datacube crate: combinations of features the
//! unit tests exercise in isolation.

use datacube::addressing::CubeView;
use datacube::decoration::decorate;
use datacube::hierarchy::calendar;
use datacube::maintain::MaterializedCube;
use datacube::{AggSpec, Algorithm, CubeQuery, Dimension, GroupingSet, Lattice};
use dc_aggregate::{builtin, AggKind, UdaBuilder};
use dc_relation::{csv, row, DataType, Date, Row, Schema, Table, Value};

fn sales() -> Table {
    let schema = Schema::from_pairs(&[
        ("model", DataType::Str),
        ("year", DataType::Int),
        ("color", DataType::Str),
        ("units", DataType::Int),
    ]);
    let mut t = Table::empty(schema);
    for (m, y, c, u) in [
        ("Chevy", 1994, "black", 50),
        ("Chevy", 1994, "white", 40),
        ("Chevy", 1995, "black", 85),
        ("Chevy", 1995, "white", 115),
        ("Ford", 1994, "black", 50),
        ("Ford", 1994, "white", 10),
        ("Ford", 1995, "black", 85),
        ("Ford", 1995, "white", 75),
    ] {
        t.push(row![m, y, c, u]).unwrap();
    }
    t
}

fn dims3() -> Vec<Dimension> {
    vec![
        Dimension::column("model"),
        Dimension::column("year"),
        Dimension::column("color"),
    ]
}

fn sum_units() -> AggSpec {
    AggSpec::new(builtin("SUM").unwrap(), "units").with_name("units")
}

/// A cube exported to CSV, re-imported, and re-aggregated gives the same
/// super-aggregates: relations round-trip through the text format.
#[test]
fn cube_round_trips_through_csv() {
    let cube = CubeQuery::new()
        .dimensions(dims3())
        .aggregate(sum_units())
        .cube(&sales())
        .unwrap();
    let text = csv::to_csv(&cube);
    let back = csv::from_csv(&text, cube.schema().clone()).unwrap();
    assert_eq!(back.rows(), cube.rows());
}

/// A maintained cube over an explicit grouping-set family (not a full
/// cube) stays consistent under mutations.
#[test]
fn maintained_grouping_sets() {
    let t = sales();
    let lattice = Lattice::new(
        3,
        vec![
            GroupingSet::full(3),
            GroupingSet::from_dims(&[0]).unwrap(),
            GroupingSet::EMPTY,
        ],
    )
    .unwrap();
    let mat = MaterializedCube::with_lattice(&t, dims3(), vec![sum_units()], lattice).unwrap();
    // Only the requested sets are materialized: no (model, year) cells.
    assert_eq!(
        mat.cell(&[Value::str("Chevy"), Value::Int(1994), Value::All]),
        None
    );
    mat.insert(row!["Ford", 1996, "red", 30]).unwrap();
    mat.delete(&row!["Chevy", 1994, "white", 40]).unwrap();
    assert_eq!(
        mat.cell(&[Value::str("Chevy"), Value::All, Value::All]),
        Some(vec![Value::Int(250)])
    );
    assert_eq!(
        mat.cell(&[Value::All, Value::All, Value::All]),
        Some(vec![Value::Int(500)])
    );
}

/// A user-defined algebraic aggregate cascades through every algorithm
/// identically — the Iter_super contract is what the UDA builder
/// enforces.
#[test]
fn uda_through_all_algorithms() {
    let sum_sq = UdaBuilder::new("SUM_SQ", AggKind::Algebraic, || 0.0f64)
        .iter(|s, v| {
            if let Some(x) = v.as_f64() {
                *s += x * x;
            }
        })
        .state(|s| vec![Value::Float(*s)])
        .merge(|s, st| *s += st[0].as_f64().unwrap_or(0.0))
        .finalize(|s| Value::Float(*s))
        .build()
        .unwrap();
    let t = sales();
    let spec = AggSpec::new(sum_sq, "units").with_name("ssq");
    let reference = CubeQuery::new()
        .dimensions(dims3())
        .aggregate(spec.clone())
        .algorithm(Algorithm::TwoToTheN)
        .cube(&t)
        .unwrap();
    for alg in [
        Algorithm::FromCore,
        Algorithm::Array,
        Algorithm::PipeSort,
        Algorithm::Parallel { threads: 2 },
    ] {
        let got = CubeQuery::new()
            .dimensions(dims3())
            .aggregate(spec.clone())
            .algorithm(alg)
            .cube(&t)
            .unwrap();
        assert_eq!(got.rows(), reference.rows(), "{alg:?}");
    }
}

/// Calendar hierarchy + decoration + addressing together: a monthly
/// rollup decorated with the quarter, browsed through a view.
#[test]
fn hierarchy_decoration_view_pipeline() {
    let schema = Schema::from_pairs(&[("t", DataType::Date), ("x", DataType::Int)]);
    let mut t = Table::empty(schema);
    let mut d = Date::ymd(1995, 1, 1);
    for i in 0..365 {
        t.push(Row::new(vec![Value::Date(d), Value::Int(i % 10)]))
            .unwrap();
        d = d.plus_days(1);
    }
    let cal = calendar();
    let dims = cal.rollup_dimensions(&t, "t", &["year", "month"]).unwrap();
    let rollup = CubeQuery::new()
        .dimensions(dims)
        .aggregate(AggSpec::new(builtin("COUNT").unwrap(), "x").with_name("days"))
        .rollup(&t)
        .unwrap();
    // Decorate month rows with their quarter (month → quarter FD).
    let decorated = decorate(&rollup, &["month"], "quarter", DataType::Str, |vals| {
        let m = vals[0].as_str()?;
        let month: u8 = m.split('-').nth(1)?.parse().ok()?;
        Some(Value::str(format!("Q{}", (month - 1) / 3 + 1)))
    })
    .unwrap();
    for r in decorated.rows() {
        if r[1].is_all() {
            assert_eq!(r[3], Value::Null, "{r}");
        } else {
            assert_ne!(r[3], Value::Null, "{r}");
        }
    }
    // Addressing: the year row counts all 365 days.
    let view = CubeView::new(rollup, 2, "days").unwrap();
    assert_eq!(view.v(&[Value::Int(1995), Value::All]), Value::Int(365));
    // Drill down from the year into months: 12 children summing to 365.
    let months = view.drill_down(&[Value::Int(1995), Value::All], 1);
    assert_eq!(months.len(), 12);
    let total: i64 = months.iter().map(|(_, v)| v.as_i64().unwrap()).sum();
    assert_eq!(total, 365);
}

/// Multiple aggregates of all three taxonomy classes in one cube: Auto
/// routes to 2^N (MEDIAN present) and everything is still exact.
#[test]
fn mixed_taxonomy_cube() {
    let t = sales();
    let cube = CubeQuery::new()
        .dimensions(vec![Dimension::column("model")])
        .aggregate(sum_units())
        .aggregate(AggSpec::new(builtin("AVG").unwrap(), "units").with_name("avg"))
        .aggregate(AggSpec::new(builtin("MEDIAN").unwrap(), "units").with_name("med"))
        .cube(&t)
        .unwrap();
    let grand = cube.rows().iter().find(|r| r[0].is_all()).unwrap();
    assert_eq!(grand[1], Value::Int(510));
    assert_eq!(grand[2], Value::Float(63.75));
    assert_eq!(grand[3], Value::Float(62.5));
}

/// Computed dimensions (histogram buckets) work through the whole stack:
/// bucketed units as a grouping category.
#[test]
fn histogram_buckets_as_dimension() {
    let t = sales();
    let bucket = Dimension::computed("bucket", DataType::Int, |r: &Row| {
        Value::Int(r[3].as_i64().unwrap_or(0) / 50)
    });
    let cube = CubeQuery::new()
        .dimension(bucket)
        .aggregate(AggSpec::star(builtin("COUNT(*)").unwrap()).with_name("n"))
        .cube(&t)
        .unwrap();
    // Buckets: 10→0, 40→0, 50,50→1, 75,85,85→1, 115→2... compute: 50/50=1,
    // 40/50=0, 85/50=1, 115/50=2, 10/50=0, 75/50=1.
    let find = |b: Value| cube.rows().iter().find(|r| r[0] == b).map(|r| r[1].clone());
    assert_eq!(find(Value::Int(0)), Some(Value::Int(2)));
    assert_eq!(find(Value::Int(1)), Some(Value::Int(5)));
    assert_eq!(find(Value::Int(2)), Some(Value::Int(1)));
    assert_eq!(find(Value::All), Some(Value::Int(8)));
}

/// The operator algebra at the row level: every rollup row appears in the
/// cube, and every grouping-sets row appears in both when its family is a
/// subfamily.
#[test]
fn row_level_algebra_inclusions() {
    let t = sales();
    let q = CubeQuery::new().dimensions(dims3()).aggregate(sum_units());
    let cube = q.cube(&t).unwrap();
    let rollup = q.rollup(&t).unwrap();
    let gs = q
        .grouping_sets(&t, &[vec![0, 1, 2], vec![0, 1], vec![0]])
        .unwrap();
    let cube_set: std::collections::HashSet<&Row> = cube.rows().iter().collect();
    for r in rollup.rows() {
        assert!(cube_set.contains(r));
    }
    let rollup_set: std::collections::HashSet<&Row> = rollup.rows().iter().collect();
    for r in gs.rows() {
        assert!(
            rollup_set.contains(r),
            "{r} (rollup prefixes subsume this family)"
        );
        assert!(cube_set.contains(r));
    }
}
