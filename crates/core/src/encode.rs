//! Packed `u64` group keys — the encoded-key execution engine's front end.
//!
//! §5 of the paper quotes Graefe's tip: "If the aggregation values are
//! large strings, it may be wise to keep a hashed symbol table that maps
//! each string to an integer so that the aggregate values are small."
//! This module takes that one step further: every dimension value is
//! interned through a [`SymbolTable`] and the whole N-dimensional
//! coordinate is packed into a *single* `u64`, one bit field per
//! dimension.
//!
//! Packing layout (low bits = dimension 0):
//!
//! * dimension `d` with cardinality `C_d` gets `width_d` bits, enough to
//!   hold `C_d + 1` distinct field values;
//! * field value `0` is reserved for the paper's `ALL` pseudo-value, and
//!   interned code `c` is stored as `c + 1`.
//!
//! Reserving `0` for `ALL` is what makes the engine fast: projecting a
//! full coordinate onto a grouping set — replacing every dropped
//! dimension by `ALL` — is a single `key & set_mask(set)` AND, because
//! masking a field to zero *is* setting it to `ALL`. Group-by then runs
//! over `u64` keys with the Fx hash instead of cloning `Row`s through
//! SipHash.
//!
//! The encoding is total or absent: [`encode`] returns `None` when the
//! widths do not fit in 64 bits or there are more than
//! [`MAX_PACKED_DIMS`] dimensions, and callers fall back to the `Row`-key
//! path. Results are identical either way.

use crate::spec::BoundDimension;
use dc_relation::{Row, SymbolTable, Value};

/// Upper bound on packable dimensions. Beyond this, even 2-valued
/// dimensions leave too little headroom per field for real cardinalities,
/// and the fallback path handles the (paper-scale: N ≤ 20) remainder.
pub(crate) const MAX_PACKED_DIMS: usize = 16;

/// Per-dimension symbol tables plus the bit layout of the packed key.
#[derive(Clone)]
pub(crate) struct KeyEncoder {
    symbols: Vec<SymbolTable>,
    shifts: Vec<u32>,
    widths: Vec<u32>,
}

/// A fully encoded input: the encoder and one packed full-coordinate key
/// per base row (parallel to the row slice it was built from).
pub(crate) struct EncodedInput {
    pub encoder: KeyEncoder,
    pub keys: Vec<u64>,
}

/// Dictionary-encode and pack every row's cube coordinate. One pass
/// interns each dimension value; the widths are then known and a second
/// pass over the (already interned) codes packs the keys. Returns `None`
/// when the coordinate does not fit — caller falls back to `Row` keys.
pub(crate) fn encode(rows: &[Row], dims: &[BoundDimension]) -> Option<EncodedInput> {
    if dims.len() > MAX_PACKED_DIMS {
        return None;
    }
    let n = dims.len();
    let mut symbols: Vec<SymbolTable> = (0..n).map(|_| SymbolTable::new()).collect();
    let mut codes: Vec<u32> = Vec::with_capacity(rows.len() * n);
    for row in rows {
        for (dim, table) in dims.iter().zip(symbols.iter_mut()) {
            // Borrow plain column values; only computed dimensions pay
            // for an owned evaluation.
            let code = match dim.column_index() {
                Some(i) => table.intern(&row[i]),
                None => table.intern(&dim.eval(row)),
            };
            codes.push(code);
        }
    }

    // width_d = bits for field values 0..=C_d (code c stored as c + 1,
    // 0 reserved for ALL); at least one bit even for an empty input so
    // every dimension owns a field.
    let widths: Vec<u32> = symbols
        .iter()
        .map(|t| (u32::BITS - (t.cardinality() as u32).leading_zeros()).max(1))
        .collect();
    if widths.iter().sum::<u32>() > u64::BITS {
        return None;
    }
    let mut shifts = Vec::with_capacity(n);
    let mut shift = 0u32;
    for &w in &widths {
        shifts.push(shift);
        shift += w;
    }

    let encoder = KeyEncoder {
        symbols,
        shifts,
        widths,
    };
    // A zero-dimension coordinate packs to the empty key 0 — one per row,
    // so the grand-total cell still sees every row.
    let keys = if n == 0 {
        vec![0u64; rows.len()]
    } else {
        codes
            .chunks_exact(n)
            .map(|coord| {
                let mut key = 0u64;
                for (d, &c) in coord.iter().enumerate() {
                    key |= (c as u64 + 1) << encoder.shifts[d];
                }
                key
            })
            .collect()
    };
    Some(EncodedInput { encoder, keys })
}

impl KeyEncoder {
    pub fn n_dims(&self) -> usize {
        self.widths.len()
    }

    /// The AND mask that projects a full key onto `set`: members keep
    /// their field, dropped dimensions zero out — which *is* the `ALL`
    /// code. The paper's "replace dropped dimensions with ALL" becomes
    /// one instruction.
    pub fn set_mask(&self, set: crate::lattice::GroupingSet) -> u64 {
        let mut mask = 0u64;
        for d in 0..self.n_dims() {
            if set.contains(d) {
                let field = if self.widths[d] == u64::BITS {
                    u64::MAX
                } else {
                    (1u64 << self.widths[d]) - 1
                };
                mask |= field << self.shifts[d];
            }
        }
        mask
    }

    /// Decode a packed key back to the `Row` form the `Row`-key engine
    /// produces: field 0 → `ALL`, field `c + 1` → the interned value `c`.
    pub fn decode_key(&self, key: u64) -> Row {
        let mut vals = Vec::with_capacity(self.n_dims());
        self.append_key(key, &mut vals);
        Row::new(vals)
    }

    /// [`decode_key`](Self::decode_key) into a caller-owned buffer, so
    /// materialization can size one allocation for dimensions *and*
    /// aggregate values.
    pub fn append_key(&self, key: u64, out: &mut Vec<Value>) {
        for d in 0..self.n_dims() {
            let field = if self.widths[d] == u64::BITS {
                key >> self.shifts[d]
            } else {
                (key >> self.shifts[d]) & ((1u64 << self.widths[d]) - 1)
            };
            out.push(match field {
                0 => Value::All,
                c => self.symbols[d]
                    .decode((c - 1) as u32)
                    // cube-lint: allow(panic, keys were packed from this very symbol table)
                    .expect("packed field within interned range")
                    .clone(),
            });
        }
    }

    /// Build the collation map for packed keys: `collator.sort_key(k)` is
    /// a `u64` whose natural order equals the decoded-`Row` order the
    /// materializer must emit (dimension 0 most significant, interned
    /// values in `Value` order, `ALL` collating last). Sorting cells by
    /// these remapped keys replaces the decode-then-compare-`Row`s sort —
    /// the dominant cost of materializing large results — with a plain
    /// `u64` sort; each key is then decoded exactly once, in output
    /// order. Cost: one `Value` sort per symbol table, paid once.
    pub fn collator(&self) -> KeyCollator {
        let mut tables = Vec::with_capacity(self.n_dims());
        for symbols in &self.symbols {
            let c = symbols.cardinality();
            let mut order: Vec<u32> = (0..c as u32).collect();
            order.sort_by(|&a, &b| {
                // cube-lint: allow(panic, codes 0..cardinality are all interned)
                let va = symbols.decode(a).expect("interned code");
                // cube-lint: allow(panic, codes 0..cardinality are all interned)
                let vb = symbols.decode(b).expect("interned code");
                va.cmp(vb)
            });
            // ranks[field]: field 0 is ALL (rank C, last); field c + 1 is
            // code c (its position in Value order).
            let mut ranks = vec![0u64; c + 1];
            ranks[0] = c as u64;
            for (pos, &code) in order.iter().enumerate() {
                ranks[code as usize + 1] = pos as u64;
            }
            tables.push(ranks);
        }
        // Dimension 0 takes the most significant field: Row comparison is
        // lexicographic from dimension 0.
        let total: u32 = self.widths.iter().sum();
        let mut out_shifts = Vec::with_capacity(self.n_dims());
        let mut used = 0u32;
        for &w in &self.widths {
            used += w;
            out_shifts.push(total - used);
        }
        KeyCollator {
            shifts: self.shifts.clone(),
            widths: self.widths.clone(),
            out_shifts,
            tables,
        }
    }

    /// Distinct-value count per dimension, read off the symbol tables
    /// built during encoding. Exactly the `C_i` the `Row`-key path scans
    /// the core's keys for: every base row contributes its full
    /// coordinate to the core, so the distinct values per dimension among
    /// core keys equal those among base rows.
    pub fn cardinalities(&self) -> Vec<usize> {
        self.symbols.iter().map(|t| t.cardinality()).collect()
    }

    /// Total packed key width in bits (`Σ widths`, `<= 64` whenever
    /// encoding succeeded). Every packed key is `< 1 << total_bits()`,
    /// which is what lets the vectorized engine size dense slot tables
    /// and pick radix partition counts.
    pub fn total_bits(&self) -> u32 {
        self.widths.iter().sum()
    }
}

/// Packed-key → collation-key remapper built by [`KeyEncoder::collator`].
/// `sort_key` is a strictly monotone map from packed keys (within one
/// grouping set) to the decoded-`Row` collation order: distinct keys in a
/// set differ in some member field, and member fields map to distinct
/// ranks in disjoint bit ranges.
pub(crate) struct KeyCollator {
    shifts: Vec<u32>,
    widths: Vec<u32>,
    out_shifts: Vec<u32>,
    tables: Vec<Vec<u64>>,
}

impl KeyCollator {
    #[inline]
    pub fn sort_key(&self, key: u64) -> u64 {
        let mut out = 0u64;
        for d in 0..self.tables.len() {
            let field = if self.widths[d] == u64::BITS {
                key >> self.shifts[d]
            } else {
                (key >> self.shifts[d]) & ((1u64 << self.widths[d]) - 1)
            };
            out |= self.tables[d][field as usize] << self.out_shifts[d];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::GroupingSet;
    use crate::spec::Dimension;
    use dc_relation::{row, DataType, Schema, Table};

    fn bind_dims(t: &Table, names: &[&str]) -> Vec<BoundDimension> {
        names
            .iter()
            .map(|d| Dimension::column(d).bind(t.schema()).unwrap())
            .collect()
    }

    fn sales() -> Table {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("units", DataType::Int),
        ]);
        Table::new(
            schema,
            vec![
                row!["Chevy", 1994, 50],
                row!["Chevy", 1995, 85],
                row!["Ford", 1994, 60],
            ],
        )
        .unwrap()
    }

    #[test]
    fn packs_and_decodes_round_trip() {
        let t = sales();
        let dims = bind_dims(&t, &["model", "year"]);
        let enc = encode(t.rows(), &dims).unwrap();
        assert_eq!(enc.keys.len(), 3);
        for (row, &key) in t.rows().iter().zip(&enc.keys) {
            let decoded = enc.encoder.decode_key(key);
            assert_eq!(decoded[0], row[0]);
            assert_eq!(decoded[1], row[1]);
        }
        // 2 models, 2 years → 2 bits each (3 field values incl. ALL).
        assert_eq!(enc.encoder.cardinalities(), vec![2, 2]);
    }

    #[test]
    fn masking_projects_to_all() {
        let t = sales();
        let dims = bind_dims(&t, &["model", "year"]);
        let enc = encode(t.rows(), &dims).unwrap();
        let year_only = GroupingSet::from_dims(&[1]).unwrap();
        let mask = enc.encoder.set_mask(year_only);
        let projected = enc.encoder.decode_key(enc.keys[0] & mask);
        assert_eq!(projected[0], Value::All);
        assert_eq!(projected[1], Value::Int(1994));
        // The empty set's mask wipes the whole key → the grand-total cell.
        assert_eq!(enc.encoder.set_mask(GroupingSet::EMPTY), 0);
        let grand = enc.encoder.decode_key(0);
        assert!(grand.iter().all(|v| *v == Value::All));
    }

    #[test]
    fn distinct_keys_never_collide() {
        // Null is an ordinary groupable symbol, distinct from ALL.
        let schema = Schema::from_pairs(&[("a", DataType::Str), ("b", DataType::Int)]);
        let t = Table::new(
            schema,
            vec![
                row!["x", 1],
                row![Value::Null, 1],
                row!["x", 2],
                row![Value::Null, 2],
            ],
        )
        .unwrap();
        let dims = bind_dims(&t, &["a", "b"]);
        let enc = encode(t.rows(), &dims).unwrap();
        let mut keys = enc.keys.clone();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 4);
        assert_eq!(enc.encoder.decode_key(enc.keys[1])[0], Value::Null);
    }

    #[test]
    fn falls_back_when_widths_overflow() {
        // 11 dimensions × cardinality 100 → 7 bits each = 77 > 64.
        let n = 11;
        let names: Vec<String> = (0..n).map(|d| format!("d{d}")).collect();
        let mut cols: Vec<(&str, DataType)> =
            names.iter().map(|s| (s.as_str(), DataType::Int)).collect();
        cols.push(("units", DataType::Int));
        let schema = Schema::from_pairs(&cols);
        let mut t = Table::empty(schema);
        for i in 0..100i64 {
            let mut vals: Vec<Value> = (0..n).map(|_| Value::Int(i)).collect();
            vals.push(Value::Int(1));
            t.push_unchecked(Row::new(vals));
        }
        let dims: Vec<BoundDimension> = names
            .iter()
            .map(|d| Dimension::column(d).bind(t.schema()).unwrap())
            .collect();
        assert!(encode(t.rows(), &dims).is_none());
    }

    #[test]
    fn falls_back_beyond_max_packed_dims() {
        let n = MAX_PACKED_DIMS + 1;
        let names: Vec<String> = (0..n).map(|d| format!("d{d}")).collect();
        let cols: Vec<(&str, DataType)> =
            names.iter().map(|s| (s.as_str(), DataType::Int)).collect();
        let schema = Schema::from_pairs(&cols);
        let t = Table::new(schema, vec![Row::new(vec![Value::Int(0); n])]).unwrap();
        let dims: Vec<BoundDimension> = names
            .iter()
            .map(|d| Dimension::column(d).bind(t.schema()).unwrap())
            .collect();
        assert!(encode(t.rows(), &dims).is_none());
    }

    #[test]
    fn zero_dimensions_still_keys_every_row() {
        // A plain aggregate (GROUP BY over no columns) must keep one key
        // per row so the grand-total cell sees the whole input.
        let t = sales();
        let enc = encode(t.rows(), &[]).unwrap();
        assert_eq!(enc.keys, vec![0, 0, 0]);
        assert_eq!(enc.encoder.decode_key(0), Row::new(vec![]));
    }

    #[test]
    fn empty_input_encodes_to_no_keys() {
        let t = sales();
        let empty = Table::empty(t.schema().clone());
        let dims = bind_dims(&t, &["model", "year"]);
        let enc = encode(empty.rows(), &dims).unwrap();
        assert!(enc.keys.is_empty());
        assert_eq!(enc.encoder.cardinalities(), vec![0, 0]);
    }
}
