//! The grouping-set lattice.
//!
//! "Creating a data cube requires generating the power set (set of all
//! subsets) of the aggregation columns" (§3). A [`GroupingSet`] is one
//! subset, represented as a bitmask over dimension indices; [`Lattice`]
//! holds a family of sets together with the parent/child edges the
//! from-core cascade of §5 walks ("the super-aggregates can be computed
//! dropping one dimension at a time").

use crate::error::{CubeError, CubeResult};
use std::fmt;

/// A subset of the N grouping dimensions, as a bitmask (bit i set ⇔
/// dimension i is grouped, i.e. *not* replaced by `ALL`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupingSet(u32);

impl GroupingSet {
    /// Maximum supported dimension count. 2^20 grouping sets is already far
    /// past anything the paper contemplates (it worries about 6D = 64).
    pub const MAX_DIMS: usize = 20;

    /// The empty set: every dimension is `ALL` — the grand total.
    pub const EMPTY: GroupingSet = GroupingSet(0);

    /// From a raw bitmask.
    pub fn from_bits(bits: u32) -> Self {
        GroupingSet(bits)
    }

    /// From explicit dimension indices.
    pub fn from_dims(dims: &[usize]) -> CubeResult<Self> {
        let mut bits = 0u32;
        for &d in dims {
            if d >= Self::MAX_DIMS {
                return Err(CubeError::BadSpec(format!(
                    "dimension index {d} out of range"
                )));
            }
            bits |= 1 << d;
        }
        Ok(GroupingSet(bits))
    }

    /// The set {0, 1, ..., k-1}.
    pub fn first_k(k: usize) -> Self {
        debug_assert!(k <= Self::MAX_DIMS);
        GroupingSet(if k == 0 { 0 } else { (1u32 << k) - 1 })
    }

    /// The full set over n dimensions — the cube *core* (the ordinary
    /// GROUP BY of Figure 3).
    pub fn full(n: usize) -> Self {
        Self::first_k(n)
    }

    /// Shift all members up by `by` (used to place ROLLUP/CUBE blocks after
    /// the GROUP BY block in a compound spec).
    pub fn shift(self, by: usize) -> Self {
        GroupingSet(self.0 << by)
    }

    pub fn bits(self) -> u32 {
        self.0
    }

    pub fn contains(self, dim: usize) -> bool {
        dim < Self::MAX_DIMS && self.0 & (1 << dim) != 0
    }

    pub fn union(self, other: Self) -> Self {
        GroupingSet(self.0 | other.0)
    }

    /// Number of grouped dimensions (the set's arity / lattice level).
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if `self` ⊆ `other` — `other` can cascade down to `self`.
    pub fn subset_of(self, other: Self) -> bool {
        self.0 & other.0 == self.0
    }

    /// Remove one dimension — the "drop one dimension at a time" step.
    pub fn without(self, dim: usize) -> Self {
        GroupingSet(self.0 & !(1 << dim))
    }

    /// With one dimension added.
    pub fn with(self, dim: usize) -> Self {
        GroupingSet(self.0 | (1 << dim))
    }

    /// Member dimension indices, ascending.
    pub fn dims(self) -> Vec<usize> {
        (0..Self::MAX_DIMS).filter(|&d| self.contains(d)).collect()
    }

    /// Immediate supersets within an n-dimensional cube: the sets one level
    /// up, i.e. the candidate *parents* for the cascade.
    pub fn parents(self, n: usize) -> Vec<GroupingSet> {
        (0..n)
            .filter(|&d| !self.contains(d))
            .map(|d| self.with(d))
            .collect()
    }
}

impl fmt::Display for GroupingSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, d) in self.dims().into_iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "}}")
    }
}

/// All 2^n grouping sets of an n-dimensional CUBE, core first, then by
/// decreasing arity (the order the cascade computes them in).
pub fn cube_sets(n: usize) -> CubeResult<Vec<GroupingSet>> {
    if n > GroupingSet::MAX_DIMS {
        return Err(CubeError::BadSpec(format!(
            "{n} dimensions exceeds the {}-dimension limit",
            GroupingSet::MAX_DIMS
        )));
    }
    let mut sets: Vec<GroupingSet> = (0..(1u32 << n)).map(GroupingSet::from_bits).collect();
    sets.sort_by(|a, b| b.len().cmp(&a.len()).then(a.0.cmp(&b.0)));
    Ok(sets)
}

/// The n+1 grouping sets of an n-dimensional ROLLUP: `(v1..vn)`,
/// `(v1..vn-1, ALL)`, ..., `(ALL..ALL)` (§3).
pub fn rollup_sets(n: usize) -> CubeResult<Vec<GroupingSet>> {
    if n > GroupingSet::MAX_DIMS {
        return Err(CubeError::BadSpec(format!(
            "{n} dimensions exceeds the {}-dimension limit",
            GroupingSet::MAX_DIMS
        )));
    }
    Ok((0..=n).rev().map(GroupingSet::first_k).collect())
}

/// A family of grouping sets with cascade structure.
#[derive(Debug, Clone)]
pub struct Lattice {
    n_dims: usize,
    /// Ordered core-first, then decreasing arity.
    sets: Vec<GroupingSet>,
}

impl Lattice {
    /// Build from an explicit family (deduplicated, cascade-ordered). The
    /// core (full set) is added if missing — every cascade starts there.
    pub fn new(n_dims: usize, mut sets: Vec<GroupingSet>) -> CubeResult<Self> {
        if n_dims > GroupingSet::MAX_DIMS {
            return Err(CubeError::BadSpec(format!(
                "{n_dims} dimensions exceeds the {}-dimension limit",
                GroupingSet::MAX_DIMS
            )));
        }
        let full = GroupingSet::full(n_dims);
        for s in &sets {
            if !s.subset_of(full) {
                return Err(CubeError::BadSpec(format!(
                    "grouping set {s} references dimensions beyond the {n_dims} declared"
                )));
            }
        }
        if !sets.contains(&full) {
            sets.push(full);
        }
        sets.sort_by(|a, b| b.len().cmp(&a.len()).then(a.bits().cmp(&b.bits())));
        sets.dedup();
        Ok(Lattice { n_dims, sets })
    }

    /// The full cube lattice.
    pub fn cube(n_dims: usize) -> CubeResult<Self> {
        Ok(Lattice {
            n_dims,
            sets: cube_sets(n_dims)?,
        })
    }

    /// The rollup chain.
    pub fn rollup(n_dims: usize) -> CubeResult<Self> {
        Ok(Lattice {
            n_dims,
            sets: rollup_sets(n_dims)?,
        })
    }

    pub fn n_dims(&self) -> usize {
        self.n_dims
    }

    pub fn sets(&self) -> &[GroupingSet] {
        &self.sets
    }

    pub fn core(&self) -> GroupingSet {
        GroupingSet::full(self.n_dims)
    }

    /// True when this family is exactly the full cube.
    pub fn is_full_cube(&self) -> bool {
        self.sets.len() == 1usize << self.n_dims
    }

    /// Choose the cascade parent for `set`: among *materialized* supersets
    /// reachable by adding one dimension, pick the one whose added
    /// dimension has the smallest cardinality — §5: "The algorithm will be
    /// most efficient if it aggregates the smaller of the two ... pick the
    /// `*` with the smallest Cᵢ." Falls back to the smallest materialized
    /// superset of any arity (a sparse family may lack one-step parents),
    /// and finally to the core.
    ///
    /// `cardinalities[d]` is `C_d`; `materialized` are the already-computed
    /// sets.
    pub fn choose_parent(
        &self,
        set: GroupingSet,
        cardinalities: &[usize],
        materialized: &[GroupingSet],
    ) -> GroupingSet {
        let one_step = set
            .parents(self.n_dims)
            .into_iter()
            .filter(|p| materialized.contains(p))
            .min_by_key(|p| {
                // The dimension we'll aggregate away.
                let added = p.bits() & !set.bits();
                let d = added.trailing_zeros() as usize;
                cardinalities.get(d).copied().unwrap_or(usize::MAX)
            });
        if let Some(p) = one_step {
            return p;
        }
        materialized
            .iter()
            .copied()
            .filter(|p| set.subset_of(*p) && *p != set)
            .min_by_key(|p| {
                // Approximate cell count: product of (C_d) over extra dims.
                p.dims()
                    .iter()
                    .filter(|d| !set.contains(**d))
                    .map(|&d| cardinalities.get(d).copied().unwrap_or(2))
                    .product::<usize>()
            })
            .unwrap_or_else(|| self.core())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_sets_count_and_order() {
        let sets = cube_sets(3).unwrap();
        assert_eq!(sets.len(), 8);
        assert_eq!(sets[0], GroupingSet::full(3)); // core first
        assert_eq!(*sets.last().unwrap(), GroupingSet::EMPTY);
        // Arity never increases along the order.
        for w in sets.windows(2) {
            assert!(w[0].len() >= w[1].len());
        }
    }

    #[test]
    fn super_aggregate_count_is_2n_minus_1() {
        // §3: "If there are N attributes ... there will be 2^N − 1
        // super-aggregate values" (set families beyond the core).
        for n in 0..=6 {
            let sets = cube_sets(n).unwrap();
            assert_eq!(sets.len() - 1, (1 << n) - 1);
        }
    }

    #[test]
    fn rollup_sets_are_prefixes() {
        let sets = rollup_sets(3).unwrap();
        assert_eq!(sets.len(), 4);
        assert_eq!(sets[0].dims(), vec![0, 1, 2]);
        assert_eq!(sets[1].dims(), vec![0, 1]);
        assert_eq!(sets[2].dims(), vec![0]);
        assert_eq!(sets[3].dims(), Vec::<usize>::new());
    }

    #[test]
    fn figure_3_arity_histogram() {
        // Figure 3: the 3D cube = 1 cube + 3 planes + 3 lines + 1 point,
        // i.e. C(3,k) grouping sets of each arity k.
        let sets = cube_sets(3).unwrap();
        let count_arity = |k| sets.iter().filter(|s| s.len() == k).count();
        assert_eq!(count_arity(3), 1);
        assert_eq!(count_arity(2), 3);
        assert_eq!(count_arity(1), 3);
        assert_eq!(count_arity(0), 1);
    }

    #[test]
    fn set_operations() {
        let s = GroupingSet::from_dims(&[0, 2]).unwrap();
        assert!(s.contains(0) && !s.contains(1) && s.contains(2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.without(2).dims(), vec![0]);
        assert_eq!(s.with(1).dims(), vec![0, 1, 2]);
        assert!(s.subset_of(GroupingSet::full(3)));
        assert!(!GroupingSet::full(3).subset_of(s));
        assert_eq!(s.to_string(), "{0,2}");
    }

    #[test]
    fn parents_are_one_level_up() {
        let s = GroupingSet::from_dims(&[1]).unwrap();
        let ps = s.parents(3);
        assert_eq!(ps.len(), 2);
        assert!(ps.iter().all(|p| p.len() == 2 && s.subset_of(*p)));
    }

    #[test]
    fn lattice_rejects_out_of_range() {
        assert!(GroupingSet::from_dims(&[25]).is_err());
        assert!(cube_sets(21).is_err());
        let bad = Lattice::new(2, vec![GroupingSet::from_dims(&[3]).unwrap()]);
        assert!(bad.is_err());
    }

    #[test]
    fn lattice_adds_core_and_dedups() {
        let l = Lattice::new(2, vec![GroupingSet::EMPTY, GroupingSet::EMPTY]).unwrap();
        assert_eq!(l.sets().len(), 2); // EMPTY + auto-added core
        assert_eq!(l.sets()[0], GroupingSet::full(2));
    }

    #[test]
    fn choose_parent_prefers_smallest_cardinality() {
        // Computing {2} (say, color) from a 3D cube: candidate parents are
        // {0,2} and {1,2}. With C_0 = 2 (model) and C_1 = 1000 (day), the
        // paper's rule picks {0,2} — aggregate away the 2-valued dimension.
        let l = Lattice::cube(3).unwrap();
        let set = GroupingSet::from_dims(&[2]).unwrap();
        let materialized = vec![
            GroupingSet::full(3),
            GroupingSet::from_dims(&[0, 2]).unwrap(),
            GroupingSet::from_dims(&[1, 2]).unwrap(),
        ];
        let parent = l.choose_parent(set, &[2, 1000, 3], &materialized);
        assert_eq!(parent, GroupingSet::from_dims(&[0, 2]).unwrap());
    }

    #[test]
    fn choose_parent_falls_back_to_core() {
        let l = Lattice::new(3, vec![GroupingSet::EMPTY]).unwrap();
        let parent = l.choose_parent(GroupingSet::EMPTY, &[5, 5, 5], &[GroupingSet::full(3)]);
        assert_eq!(parent, GroupingSet::full(3));
    }
}
