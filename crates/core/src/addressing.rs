//! Addressing the data cube (§4).
//!
//! "The current approach to selecting a field value from a 2D cube would
//! read as SELECT v FROM cube WHERE row = :i AND column = :j. We recommend
//! the simpler syntax: cube.v(:i, :j)." [`CubeView`] provides exactly that
//! accessor over a cube relation, plus the §4 conveniences built on it:
//! percent-of-total against the `(ALL, ..., ALL)` cell and the financial
//! `index()` function, and the §3.3 `ALL()` function recovering "the set
//! over which the aggregate was computed".

use crate::error::{CubeError, CubeResult};
use dc_relation::{Row, Table, Value};
use std::collections::HashMap;

/// A point-access view over a cube relation produced by
/// [`crate::CubeQuery`]: the first `n_dims` columns are grouping columns,
/// `measure` names an aggregate column.
pub struct CubeView {
    table: Table,
    n_dims: usize,
    measure_idx: usize,
    index: HashMap<Row, Value>,
}

impl CubeView {
    /// Index a cube relation for O(1) cell access.
    pub fn new(table: Table, n_dims: usize, measure: &str) -> CubeResult<Self> {
        if n_dims > table.schema().len() {
            return Err(CubeError::BadSpec(format!(
                "n_dims {n_dims} exceeds column count"
            )));
        }
        let measure_idx = table.schema().index_of(measure)?;
        if measure_idx < n_dims {
            return Err(CubeError::BadSpec(format!(
                "'{measure}' is a grouping column, not a measure"
            )));
        }
        let mut index = HashMap::with_capacity(table.len());
        for row in table.rows() {
            let key = Row::new(row.values()[..n_dims].to_vec());
            index.insert(key, row[measure_idx].clone());
        }
        Ok(CubeView {
            table,
            n_dims,
            measure_idx,
            index,
        })
    }

    /// The underlying relation.
    pub fn table(&self) -> &Table {
        &self.table
    }

    pub fn n_dims(&self) -> usize {
        self.n_dims
    }

    /// The paper's `cube.v(:i, :j)`: the measure at a full coordinate —
    /// one value per dimension, [`Value::All`] where aggregated. `NULL`
    /// when the cell is not materialized (no base data matched it).
    pub fn v(&self, coordinate: &[Value]) -> Value {
        if coordinate.len() != self.n_dims {
            return Value::Null;
        }
        self.index
            .get(&Row::new(coordinate.to_vec()))
            .cloned()
            .unwrap_or(Value::Null)
    }

    /// The grand-total cell `(ALL, ALL, ..., ALL)`.
    pub fn total(&self) -> Value {
        self.v(&vec![Value::All; self.n_dims])
    }

    /// §4's percent-of-total: `v(coordinate) / v(ALL, ..., ALL)`, the
    /// quantity the paper's nested-SELECT example computes.
    pub fn percent_of_total(&self, coordinate: &[Value]) -> Value {
        match (self.v(coordinate).as_f64(), self.total().as_f64()) {
            (Some(v), Some(t)) if t != 0.0 => Value::Float(v / t),
            _ => Value::Null,
        }
    }

    /// §4's 1D `index(v_i) = v_i / (Σ_i v_i)` along one dimension: the
    /// share contributed by `value` on dimension `dim`, with every other
    /// dimension aggregated. "In a set of N values, one expects each item
    /// to contribute one Nth to the sum."
    pub fn index1d(&self, dim: usize, value: &Value) -> Value {
        if dim >= self.n_dims {
            return Value::Null;
        }
        let mut coord = vec![Value::All; self.n_dims];
        coord[dim] = value.clone();
        self.percent_of_total(&coord)
    }

    /// The §3.3 `ALL()` function: the set an `ALL` on dimension `dim`
    /// stands for — e.g. `Model.ALL = {Chevy, Ford}`. Recovered from the
    /// core rows of the relation (super-aggregate rows are excluded by
    /// `domain`'s token filtering).
    pub fn all_set(&self, dim: usize) -> CubeResult<Vec<Value>> {
        if dim >= self.n_dims {
            return Err(CubeError::BadSpec(format!("dimension {dim} out of range")));
        }
        let name = self.table.schema().column_at(dim).name.clone();
        Ok(self.table.domain(&name)?)
    }

    /// All rows whose `dim` coordinate equals `value` — a slab of the
    /// cube (Figure 3's "planes ... hanging off the data cube core").
    pub fn slice(&self, dim: usize, value: &Value) -> Table {
        self.table.filter(|r| &r[dim] == value)
    }

    /// The measure column index (useful to callers re-reading slices).
    pub fn measure_index(&self) -> usize {
        self.measure_idx
    }

    /// Drill down (§2: "Going down is called drilling-down into the
    /// data"): from a coordinate whose `dim` slot is `ALL`, return the
    /// child rows that break that dimension out — same values elsewhere,
    /// concrete values at `dim`. Empty when `dim` is already concrete.
    pub fn drill_down(&self, coordinate: &[Value], dim: usize) -> Vec<(Value, Value)> {
        if dim >= self.n_dims || coordinate.len() != self.n_dims || !coordinate[dim].is_all() {
            return Vec::new();
        }
        let mut out: Vec<(Value, Value)> = self
            .table
            .rows()
            .iter()
            .filter(|r| {
                !r[dim].is_all() && (0..self.n_dims).all(|d| d == dim || r[d] == coordinate[d])
            })
            .map(|r| (r[dim].clone(), r[self.measure_idx].clone()))
            .collect();
        out.sort();
        out
    }

    /// Roll up (§2: "Going up the levels is called rolling-up the data"):
    /// the super-aggregate of this coordinate with `dim` collapsed to
    /// `ALL`. `NULL` if the coordinate already has `ALL` there or the
    /// cell is unmaterialized.
    pub fn roll_up(&self, coordinate: &[Value], dim: usize) -> Value {
        if dim >= self.n_dims || coordinate.len() != self.n_dims || coordinate[dim].is_all() {
            return Value::Null;
        }
        let mut parent = coordinate.to_vec();
        parent[dim] = Value::All;
        self.v(&parent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AggSpec, Dimension};
    use crate::CubeQuery;
    use dc_aggregate::builtin;
    use dc_relation::{row, DataType, Schema};

    fn chevy_ford_view() -> CubeView {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("units", DataType::Int),
        ]);
        let mut t = Table::empty(schema);
        for (m, y, u) in [
            ("Chevy", 1994, 90),
            ("Chevy", 1995, 200),
            ("Ford", 1994, 60),
            ("Ford", 1995, 160),
        ] {
            t.push(row![m, y, u]).unwrap();
        }
        let cube = CubeQuery::new()
            .dimensions(vec![Dimension::column("model"), Dimension::column("year")])
            .aggregate(AggSpec::new(builtin("SUM").unwrap(), "units").with_name("units"))
            .cube(&t)
            .unwrap();
        CubeView::new(cube, 2, "units").unwrap()
    }

    #[test]
    fn point_access_like_the_paper() {
        let view = chevy_ford_view();
        assert_eq!(
            view.v(&[Value::str("Chevy"), Value::Int(1994)]),
            Value::Int(90)
        );
        assert_eq!(view.v(&[Value::str("Chevy"), Value::All]), Value::Int(290));
        assert_eq!(view.v(&[Value::All, Value::Int(1995)]), Value::Int(360));
        assert_eq!(view.total(), Value::Int(510));
        // Unmaterialized cell → NULL.
        assert_eq!(view.v(&[Value::str("Dodge"), Value::All]), Value::Null);
        // Wrong arity → NULL, not a panic.
        assert_eq!(view.v(&[Value::All]), Value::Null);
    }

    #[test]
    fn percent_of_total() {
        let view = chevy_ford_view();
        let p = view.percent_of_total(&[Value::str("Chevy"), Value::All]);
        assert_eq!(p, Value::Float(290.0 / 510.0));
        assert_eq!(
            view.percent_of_total(&[Value::str("Dodge"), Value::All]),
            Value::Null
        );
    }

    #[test]
    fn index1d_shares_sum_to_one() {
        let view = chevy_ford_view();
        let chevy = view.index1d(0, &Value::str("Chevy")).as_f64().unwrap();
        let ford = view.index1d(0, &Value::str("Ford")).as_f64().unwrap();
        assert!((chevy + ford - 1.0).abs() < 1e-12);
        assert!(chevy > ford); // Chevy outsold Ford
    }

    #[test]
    fn all_set_recovers_the_domain() {
        // §3.3: Model.ALL = {Chevy, Ford}; Year.ALL = {1994, 1995}.
        let view = chevy_ford_view();
        assert_eq!(
            view.all_set(0).unwrap(),
            vec![Value::str("Chevy"), Value::str("Ford")]
        );
        assert_eq!(
            view.all_set(1).unwrap(),
            vec![Value::Int(1994), Value::Int(1995)]
        );
        assert!(view.all_set(5).is_err());
    }

    #[test]
    fn slice_extracts_a_plane() {
        let view = chevy_ford_view();
        let chevy = view.slice(0, &Value::str("Chevy"));
        // 2 core rows + the (Chevy, ALL) sub-total.
        assert_eq!(chevy.len(), 3);
    }

    #[test]
    fn drill_down_breaks_out_a_dimension() {
        let view = chevy_ford_view();
        // From (Chevy, ALL): drill into years.
        let children = view.drill_down(&[Value::str("Chevy"), Value::All], 1);
        assert_eq!(
            children,
            vec![
                (Value::Int(1994), Value::Int(90)),
                (Value::Int(1995), Value::Int(200)),
            ]
        );
        // Children sum back to the parent: the roll-up identity.
        let total: i64 = children.iter().map(|(_, v)| v.as_i64().unwrap()).sum();
        assert_eq!(total, 290);
        // Drilling a concrete dimension yields nothing.
        assert!(view
            .drill_down(&[Value::str("Chevy"), Value::Int(1994)], 1)
            .is_empty());
    }

    #[test]
    fn roll_up_climbs_to_the_super_aggregate() {
        let view = chevy_ford_view();
        assert_eq!(
            view.roll_up(&[Value::str("Chevy"), Value::Int(1994)], 1),
            Value::Int(290)
        );
        assert_eq!(
            view.roll_up(&[Value::str("Chevy"), Value::All], 0),
            Value::Int(510)
        );
        // Already ALL: nothing above.
        assert_eq!(view.roll_up(&[Value::All, Value::All], 0), Value::Null);
    }

    #[test]
    fn rejects_measure_in_grouping_columns() {
        let view = chevy_ford_view();
        let t = view.table().clone();
        assert!(CubeView::new(t.clone(), 2, "model").is_err());
        assert!(CubeView::new(t, 99, "units").is_err());
    }
}
