//! Maintaining materialized cubes (§6) — batched, sharded, governed.
//!
//! "We have been surprised that some customers use these operators to
//! compute and store the cube. These customers then define triggers on the
//! underlying tables so that when the tables change, the cube is
//! dynamically updated." [`MaterializedCube`] is that pattern grown into a
//! write path: changes accumulate in a columnar [`DeltaBatch`] and are
//! folded into the cube one *grouping-set pass per batch* instead of one
//! lock acquisition per row, and the §6 asymmetry —
//!
//! > "max is a distributive \[function\] for SELECT and INSERT, but it is
//! > holistic for DELETE."
//!
//! — is handled by *coalescing*: every cell whose scratchpad cannot absorb
//! a retraction ([`dc_aggregate::Retract::Recompute`]) is rebuilt at most
//! once per batch, from the post-batch base, no matter how many deleted
//! champions hit it. [`MaintainStats`] counts both paths so the C9
//! benchmark can show the cost cliff.
//!
//! Concurrency shape:
//!
//! * cells are sharded by a hash of `(grouping set, projected key)` across
//!   [`SHARD_COUNT`] maps, each behind its own `parking_lot::RwLock`, so
//!   batch writers touching disjoint shard subsets proceed in parallel and
//!   single-cell readers ([`MaterializedCube::cell`]) never wait on an
//!   unrelated shard;
//! * a batch takes every shard lock it needs *in ascending shard order*
//!   and holds them from staging through install — two-phase locking, so
//!   no deadlock and no torn batch;
//! * an outer gate serializes what must be serialized: insert-only batches
//!   of mergeable aggregates share it (`read`), batches containing deletes
//!   or non-mergeable aggregates take it exclusively (`write`), and a full
//!   snapshot ([`MaterializedCube::to_table`]) takes it exclusively so a
//!   reader never observes half a batch.
//!
//! Atomicity: a batch first *stages* replacement scratchpads — folding
//! batch rows into fresh accumulators and merging existing cell state via
//! Iter_super — with every fallible call (governance ticks, budget
//! charges, guarded UDA callbacks, fault injection) confined to that
//! phase; only then does the infallible *install* phase swap the staged
//! cells in and splice the base rows. A cancellation, budget trip,
//! deadline, or panicking aggregate anywhere in a batch therefore leaves
//! the cube exactly at its pre-batch state and version.

use crate::error::{CubeError, CubeResult};
use crate::exec::{self, ExecContext};
use crate::groupby::{full_key, project_key, result_schema};
use crate::lattice::{GroupingSet, Lattice};
use crate::spec::{AggSpec, BoundAgg, BoundDimension, Dimension};
use dc_aggregate::{Accumulator, Retract};
use dc_relation::{FxHashMap, Row, Schema, Table, Value};
use parking_lot::RwLock;

/// Number of cell-map shards. A power of two so routing is a mask; 16 is
/// comfortably above the writer parallelism the service layer admits.
pub const SHARD_COUNT: usize = 16;

/// Work counters for maintenance operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintainStats {
    pub inserts: u64,
    pub deletes: u64,
    /// Delta batches applied (a legacy single-row insert/delete counts as
    /// a batch of one).
    pub batches: u64,
    /// Cell scratchpad updates applied in place (the cheap path).
    pub cells_updated: u64,
    /// Cells that had to be recomputed from base rows (the delete-holistic
    /// path), coalesced to at most one rebuild per cell per batch.
    pub cells_recomputed: u64,
    /// Base rows rescanned during recomputations.
    pub rows_rescanned: u64,
}

impl MaintainStats {
    fn add(&mut self, other: &MaintainStats) {
        self.inserts += other.inserts;
        self.deletes += other.deletes;
        self.batches += other.batches;
        self.cells_updated += other.cells_updated;
        self.cells_recomputed += other.cells_recomputed;
        self.rows_rescanned += other.rows_rescanned;
    }
}

/// A columnar buffer of pending inserts and deletes — the unit of
/// maintenance work. Accumulate changes with [`DeltaBatch::insert`] /
/// [`DeltaBatch::delete`], then fold the whole batch into a cube with
/// [`MaterializedCube::apply`].
///
/// Semantics: a batch is an *unordered multiset delta*. An insert and a
/// delete of the same row value inside one batch annihilate; surviving
/// deletes must match rows of the pre-batch base (multiset containment) or
/// the whole batch is rejected before any state changes.
#[derive(Default)]
pub struct DeltaBatch {
    /// Insert buffer, one column vector per base column.
    cols: Vec<Vec<Value>>,
    n_inserts: usize,
    deletes: Vec<Row>,
}

impl DeltaBatch {
    pub fn new() -> Self {
        DeltaBatch::default()
    }

    /// Queue a row for insertion. The first insert fixes the batch's
    /// arity; later rows must match it (full schema validation happens at
    /// [`MaterializedCube::apply`]).
    pub fn insert(&mut self, row: Row) -> CubeResult<()> {
        if self.cols.is_empty() {
            self.cols = (0..row.len()).map(|_| Vec::new()).collect();
        }
        if row.len() != self.cols.len() {
            return Err(CubeError::Rel(dc_relation::RelError::ArityMismatch {
                expected: self.cols.len(),
                got: row.len(),
            }));
        }
        for (col, v) in self.cols.iter_mut().zip(row.0) {
            col.push(v);
        }
        self.n_inserts += 1;
        Ok(())
    }

    /// Queue a row for deletion (matched by value against the base).
    pub fn delete(&mut self, row: Row) {
        self.deletes.push(row);
    }

    /// Number of queued inserts.
    pub fn insert_count(&self) -> usize {
        self.n_inserts
    }

    /// Number of queued deletes.
    pub fn delete_count(&self) -> usize {
        self.deletes.len()
    }

    /// Total queued operations.
    pub fn len(&self) -> usize {
        self.n_inserts + self.deletes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize insert `i` back into row form.
    fn insert_row(&self, i: usize) -> Row {
        Row::new(self.cols.iter().map(|c| c[i].clone()).collect())
    }

    /// Validate every queued row against the cube's base schema.
    fn validate(&self, schema: &Schema) -> CubeResult<()> {
        if self.n_inserts > 0 && self.cols.len() != schema.len() {
            return Err(CubeError::Rel(dc_relation::RelError::ArityMismatch {
                expected: schema.len(),
                got: self.cols.len(),
            }));
        }
        for (col, def) in self.cols.iter().zip(schema.columns().iter()) {
            for v in col.iter() {
                def.check(v)?;
            }
        }
        for row in &self.deletes {
            if row.len() != schema.len() {
                return Err(CubeError::Rel(dc_relation::RelError::ArityMismatch {
                    expected: schema.len(),
                    got: row.len(),
                }));
            }
        }
        Ok(())
    }
}

struct Cell {
    accs: Vec<Box<dyn Accumulator>>,
    /// Base rows contributing to this cell; when it reaches zero the cell
    /// disappears from the cube (sparse representation, §5).
    support: u64,
}

/// One shard of the cell store: for each grouping set, the cells whose
/// `(set, key)` hash routes here.
struct Shard {
    maps: Vec<FxHashMap<Row, Cell>>,
}

/// Base rows, counters, and the maintenance version, behind their own
/// lock so shard writers and metadata readers do not contend.
struct Meta {
    base: Vec<Row>,
    stats: MaintainStats,
    /// Monotone maintenance version: bumped per maintained row, so derived
    /// structures (the SQL layer's lattice cache keys results by table
    /// version) can detect staleness without diffing.
    version: u64,
}

/// Route a cell to its shard by hashing the grouping-set index and the
/// projected key. `DefaultHasher` (not Fx) on purpose: the cell maps
/// themselves already use Fx, and routing with an independent hash keeps
/// one pathological key distribution from collapsing both levels at once.
fn shard_of(set_idx: usize, key: &Row) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    set_idx.hash(&mut h);
    key.hash(&mut h);
    (h.finish() as usize) & (SHARD_COUNT - 1)
}

/// What a batch resolved one touched cell into during staging. Installing
/// these is pure pointer/arithmetic work — no fallible calls.
enum StagedOp {
    New {
        accs: Vec<Box<dyn Accumulator>>,
        support: u64,
    },
    Replace {
        accs: Vec<Box<dyn Accumulator>>,
        support: u64,
    },
    Remove,
}

/// Per-cell slice of a batch: which batch inserts and deletes project onto
/// this `(set, key)`.
#[derive(Default)]
struct GroupDelta {
    ins: Vec<u32>,
    del: Vec<u32>,
}

/// A cube kept up to date under INSERT / DELETE / UPDATE, batch-first.
pub struct MaterializedCube {
    base_schema: Schema,
    result_schema: Schema,
    dims: Vec<BoundDimension>,
    aggs: Vec<BoundAgg>,
    sets: Vec<GroupingSet>,
    /// Every aggregate supports Iter_super, so existing cells can be
    /// reconstructed from their `state()` during staging. When false, any
    /// touch of an existing cell falls back to a rebuild from base.
    all_mergeable: bool,
    /// The batch gate: insert-only mergeable batches share it, batches
    /// with deletes (or non-mergeable aggregates) and full snapshots take
    /// it exclusively. Lock order: gate → shards (ascending) → meta.
    gate: RwLock<()>,
    shards: Vec<RwLock<Shard>>,
    meta: RwLock<Meta>,
}

impl MaterializedCube {
    /// Materialize the full cube of `table`.
    pub fn cube(table: &Table, dims: Vec<Dimension>, aggs: Vec<AggSpec>) -> CubeResult<Self> {
        let lattice = Lattice::cube(dims.len())?;
        Self::with_lattice(table, dims, aggs, lattice)
    }

    /// Materialize a rollup of `table`.
    pub fn rollup(table: &Table, dims: Vec<Dimension>, aggs: Vec<AggSpec>) -> CubeResult<Self> {
        let lattice = Lattice::rollup(dims.len())?;
        Self::with_lattice(table, dims, aggs, lattice)
    }

    /// Materialize an explicit grouping-set family.
    pub fn with_lattice(
        table: &Table,
        dims: Vec<Dimension>,
        aggs: Vec<AggSpec>,
        lattice: Lattice,
    ) -> CubeResult<Self> {
        if aggs.is_empty() {
            return Err(CubeError::BadSpec(
                "at least one aggregate is required".into(),
            ));
        }
        let schema = table.schema();
        let bdims: Vec<BoundDimension> = dims
            .iter()
            .map(|d| d.bind(schema))
            .collect::<CubeResult<_>>()?;
        let baggs: Vec<BoundAgg> = aggs
            .iter()
            .map(|a| a.bind(schema))
            .collect::<CubeResult<_>>()?;
        let agg_types: Vec<_> = aggs
            .iter()
            .map(|a| a.output_type(schema))
            .collect::<CubeResult<_>>()?;
        let result_schema = result_schema(&bdims, &baggs, &agg_types)?;
        let sets: Vec<GroupingSet> = lattice.sets().to_vec();
        let all_mergeable = baggs.iter().all(|a| a.func.mergeable());

        let cube = MaterializedCube {
            base_schema: schema.clone(),
            result_schema,
            dims: bdims,
            aggs: baggs,
            all_mergeable,
            gate: RwLock::new(()),
            shards: (0..SHARD_COUNT)
                .map(|_| {
                    RwLock::new(Shard {
                        maps: sets.iter().map(|_| FxHashMap::default()).collect(),
                    })
                })
                .collect(),
            sets,
            meta: RwLock::new(Meta {
                base: Vec::new(),
                stats: MaintainStats::default(),
                version: 0,
            }),
        };
        // Initial population is one batch fold — the same path every later
        // batch takes.
        let mut batch = DeltaBatch::new();
        for row in table.rows() {
            batch.insert(row.clone())?;
        }
        cube.apply(&batch, &ExecContext::unlimited())?;
        // Initial population is not "maintenance": reset the counters.
        let mut meta = cube.meta.write();
        meta.stats = MaintainStats::default();
        meta.version = 0;
        drop(meta);
        Ok(cube)
    }

    /// Trigger path for `INSERT`: a batch of one.
    pub fn insert(&self, row: Row) -> CubeResult<()> {
        let mut batch = DeltaBatch::new();
        batch.insert(row)?;
        self.apply(&batch, &ExecContext::unlimited())
    }

    /// Trigger path for `DELETE`: a batch of one. Errors if the row is
    /// not present in the base table.
    pub fn delete(&self, row: &Row) -> CubeResult<()> {
        let mut batch = DeltaBatch::new();
        batch.delete(row.clone());
        self.apply(&batch, &ExecContext::unlimited())
    }

    /// `UPDATE` "is just delete plus insert" (§6).
    pub fn update(&self, old: &Row, new: Row) -> CubeResult<()> {
        self.delete(old)?;
        self.insert(new)
    }

    /// Fold a whole [`DeltaBatch`] into the cube under `ctx`'s governance
    /// (budget, deadline, cancellation — all polled inside the fold loop).
    ///
    /// All-or-nothing: on any error the cube is bit-for-bit at its
    /// pre-batch state and version. The panic guard wraps the whole fold,
    /// so a panicking user-defined aggregate surfaces as a typed
    /// [`CubeError::AggPanicked`], never an unwind into the caller.
    pub fn apply(&self, batch: &DeltaBatch, ctx: &ExecContext) -> CubeResult<()> {
        match exec::guard("maintain", || self.apply_inner(batch, ctx)) {
            Ok(result) => result,
            Err(e) => Err(e),
        }
    }

    fn apply_inner(&self, batch: &DeltaBatch, ctx: &ExecContext) -> CubeResult<()> {
        if batch.is_empty() {
            return Ok(());
        }
        batch.validate(&self.base_schema)?;

        // Annihilate insert/delete pairs: the batch is a multiset delta.
        let (ins_rows, del_rows) = annihilate(batch);
        let stats_delta = MaintainStats {
            inserts: batch.insert_count() as u64,
            deletes: batch.delete_count() as u64,
            batches: 1,
            ..MaintainStats::default()
        };

        // Deletes retract and may rebuild from base; non-mergeable
        // aggregates rebuild on any touch. Both need a stable base, so
        // they hold the gate exclusively. Insert-only mergeable batches
        // share it and serialize only on the shards they actually touch.
        let exclusive = !del_rows.is_empty() || !self.all_mergeable;
        let _gate_shared;
        let _gate_excl;
        if exclusive {
            _gate_excl = Some(self.gate.write());
            _gate_shared = None;
        } else {
            _gate_excl = None;
            _gate_shared = Some(self.gate.read());
        }

        // Resolve deletes against the base multiset before touching
        // anything: a batch with an unmatched delete is rejected whole.
        let deleted_idx: Vec<usize> = if del_rows.is_empty() {
            Vec::new()
        } else {
            let meta = self.meta.read();
            let mut positions: FxHashMap<&Row, Vec<usize>> = FxHashMap::default();
            for (i, brow) in meta.base.iter().enumerate() {
                ctx.tick(i)?;
                positions.entry(brow).or_default().push(i);
            }
            let mut idx = Vec::with_capacity(del_rows.len());
            for row in &del_rows {
                let pos = positions.get_mut(row).and_then(|v| v.pop());
                match pos {
                    Some(p) => idx.push(p),
                    None => {
                        return Err(CubeError::BadSpec(format!("row not in base table: {row}")))
                    }
                }
            }
            idx
        };

        // --- Fold stage: one grouping-set pass over the whole batch. ---
        exec::failpoint("maintain::batch_fold")?;
        let ins_full: Vec<Row> = ins_rows.iter().map(|r| full_key(&self.dims, r)).collect();
        let del_full: Vec<Row> = del_rows.iter().map(|r| full_key(&self.dims, r)).collect();
        let mut groups: FxHashMap<(usize, Row), GroupDelta> = FxHashMap::default();
        for (si, set) in self.sets.iter().enumerate() {
            ctx.checkpoint()?;
            for (i, full) in ins_full.iter().enumerate() {
                ctx.tick(i)?;
                let key = project_key(full, *set);
                groups.entry((si, key)).or_default().ins.push(i as u32);
            }
            for (i, full) in del_full.iter().enumerate() {
                ctx.tick(i)?;
                let key = project_key(full, *set);
                groups.entry((si, key)).or_default().del.push(i as u32);
            }
        }

        // Organize touched cells by shard and take the shard locks in
        // ascending order (two-phase locking: held through install).
        let mut by_shard: std::collections::BTreeMap<usize, Vec<(usize, Row, GroupDelta)>> =
            std::collections::BTreeMap::new();
        for ((si, key), delta) in groups {
            by_shard
                .entry(shard_of(si, &key))
                .or_default()
                .push((si, key, delta));
        }
        exec::failpoint("maintain::shard_lock")?;
        let shard_ids: Vec<usize> = by_shard.keys().copied().collect();
        let mut guards: Vec<std::sync::RwLockWriteGuard<'_, Shard>> =
            shard_ids.iter().map(|&s| self.shards[s].write()).collect();

        // --- Staging: every fallible call happens here, pre-mutation. ---
        let mut deleted_mask = Vec::new();
        let mut staged: Vec<(usize, usize, Row, StagedOp)> = Vec::new();
        let mut stage_stats = MaintainStats::default();
        {
            let meta = self.meta.read();
            if !deleted_idx.is_empty() {
                deleted_mask = vec![false; meta.base.len()];
                for &i in &deleted_idx {
                    deleted_mask[i] = true;
                }
            }
            for (gpos, (_, cells)) in shard_ids.iter().zip(guards.iter()).enumerate() {
                ctx.checkpoint()?;
                for (si, key, delta) in by_shard.get(&shard_ids[gpos]).into_iter().flatten() {
                    // cube-lint: allow(foreign, two-phase by design: staging must fold against the pre-install cells, so UDA calls run under the shard set; every callback is individually catch_unwind-guarded, so a panic surfaces as AggPanicked without poisoning the guards)
                    let op = self.stage_group(
                        &cells.maps[*si],
                        *si,
                        key,
                        delta,
                        &ins_rows,
                        &del_rows,
                        &meta.base,
                        &deleted_mask,
                        ctx,
                        &mut stage_stats,
                    )?;
                    if let Some(op) = op {
                        staged.push((gpos, *si, key.clone(), op));
                    }
                }
            }
        }

        // --- Install: infallible. Swap staged cells in, splice the base.
        for (gpos, si, key, op) in staged {
            let map = &mut guards[gpos].maps[si];
            match op {
                StagedOp::New { accs, support } | StagedOp::Replace { accs, support } => {
                    map.insert(key, Cell { accs, support });
                }
                StagedOp::Remove => {
                    map.remove(&key);
                }
            }
        }
        let mut meta = self.meta.write();
        if !deleted_idx.is_empty() {
            let mut idx = deleted_idx;
            idx.sort_unstable_by(|a, b| b.cmp(a));
            for i in idx {
                meta.base.swap_remove(i);
            }
        }
        meta.base.extend(ins_rows);
        meta.stats.add(&stats_delta);
        meta.stats.add(&stage_stats);
        meta.version += stats_delta.inserts + stats_delta.deletes;
        Ok(())
    }

    /// Resolve one touched `(set, key)` cell into a staged operation.
    /// Pure with respect to cube state: reads the existing cell, never
    /// mutates it. `None` means the group annihilated (no surviving ops).
    #[allow(clippy::too_many_arguments)]
    fn stage_group(
        &self,
        map: &FxHashMap<Row, Cell>,
        si: usize,
        key: &Row,
        delta: &GroupDelta,
        ins_rows: &[Row],
        del_rows: &[Row],
        base: &[Row],
        deleted_mask: &[bool],
        ctx: &ExecContext,
        stats: &mut MaintainStats,
    ) -> CubeResult<Option<StagedOp>> {
        if delta.ins.is_empty() && delta.del.is_empty() {
            return Ok(None);
        }
        let set = self.sets[si];
        match map.get(key) {
            None => {
                if !delta.del.is_empty() {
                    return Err(CubeError::BadSpec(format!(
                        "corrupt cube: no cell for deleted row in {set}"
                    )));
                }
                ctx.charge_cells(1)?;
                let mut accs = exec::guarded_init(&self.aggs)?;
                self.fold_rows(
                    &mut accs,
                    delta.ins.iter().map(|&i| &ins_rows[i as usize]),
                    ctx,
                )?;
                stats.cells_updated += 1;
                Ok(Some(StagedOp::New {
                    accs,
                    support: delta.ins.len() as u64,
                }))
            }
            Some(cell) => {
                let d = delta.del.len() as u64;
                if d > cell.support {
                    return Err(CubeError::BadSpec(format!(
                        "corrupt cube: cell support underflow in {set}"
                    )));
                }
                let support = cell.support - d + delta.ins.len() as u64;
                if support == 0 {
                    stats.cells_updated += 1;
                    return Ok(Some(StagedOp::Remove));
                }
                if self.all_mergeable {
                    if let Some(accs) =
                        self.stage_incremental(cell, delta, ins_rows, del_rows, ctx)?
                    {
                        stats.cells_updated += 1;
                        return Ok(Some(StagedOp::Replace { accs, support }));
                    }
                }
                // The delete-holistic (or non-mergeable) path: rebuild the
                // cell once, from the post-batch base — however many batch
                // rows hit it.
                let accs =
                    self.rebuild_cell(set, key, delta, ins_rows, base, deleted_mask, ctx, stats)?;
                stats.cells_recomputed += 1;
                Ok(Some(StagedOp::Replace { accs, support }))
            }
        }
    }

    /// Try the cheap path for an existing cell: reconstruct its
    /// scratchpads from `state()` via Iter_super, retract the batch
    /// deletes, fold the batch inserts. `None` if any retraction demands a
    /// recompute.
    fn stage_incremental(
        &self,
        cell: &Cell,
        delta: &GroupDelta,
        ins_rows: &[Row],
        del_rows: &[Row],
        ctx: &ExecContext,
    ) -> CubeResult<Option<Vec<Box<dyn Accumulator>>>> {
        let mut accs = exec::guarded_init(&self.aggs)?;
        for ((acc, old), agg) in accs.iter_mut().zip(cell.accs.iter()).zip(self.aggs.iter()) {
            let state = exec::guard(agg.func.name(), || old.state())?;
            exec::guard(agg.func.name(), || acc.merge(&state))?;
        }
        for &i in &delta.del {
            ctx.checkpoint()?;
            for (acc, agg) in accs.iter_mut().zip(self.aggs.iter()) {
                match acc.retract(agg.input_value(&del_rows[i as usize])) {
                    Retract::Applied => {}
                    Retract::Recompute | Retract::Unsupported => return Ok(None),
                }
            }
        }
        self.fold_rows(
            &mut accs,
            delta.ins.iter().map(|&i| &ins_rows[i as usize]),
            ctx,
        )?;
        Ok(Some(accs))
    }

    /// Rebuild one cell's scratchpads from the post-batch base: surviving
    /// base rows plus the batch inserts that project onto `key`.
    #[allow(clippy::too_many_arguments)]
    fn rebuild_cell(
        &self,
        set: GroupingSet,
        key: &Row,
        delta: &GroupDelta,
        ins_rows: &[Row],
        base: &[Row],
        deleted_mask: &[bool],
        ctx: &ExecContext,
        stats: &mut MaintainStats,
    ) -> CubeResult<Vec<Box<dyn Accumulator>>> {
        exec::failpoint("maintain::recompute")?;
        let mut accs = exec::guarded_init(&self.aggs)?;
        for (i, brow) in base.iter().enumerate() {
            ctx.tick(i)?;
            if deleted_mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            stats.rows_rescanned += 1;
            if project_key(&full_key(&self.dims, brow), set) == *key {
                for (acc, agg) in accs.iter_mut().zip(self.aggs.iter()) {
                    exec::guard(agg.func.name(), || acc.iter(agg.input_value(brow)))?;
                }
            }
        }
        self.fold_rows(
            &mut accs,
            delta.ins.iter().map(|&i| &ins_rows[i as usize]),
            ctx,
        )?;
        Ok(accs)
    }

    /// Fold rows into scratchpads, every Iter under the panic guard.
    fn fold_rows<'r>(
        &self,
        accs: &mut [Box<dyn Accumulator>],
        rows: impl Iterator<Item = &'r Row>,
        ctx: &ExecContext,
    ) -> CubeResult<()> {
        for (i, row) in rows.enumerate() {
            ctx.tick(i)?;
            for (acc, agg) in accs.iter_mut().zip(self.aggs.iter()) {
                exec::guard(agg.func.name(), || acc.iter(agg.input_value(row)))?;
            }
        }
        Ok(())
    }

    /// Read one cell's aggregate values at a full coordinate (`ALL` where
    /// aggregated). `None` when the cell is not materialized or an
    /// aggregate's Final() panics (the panic is contained, not propagated).
    pub fn cell(&self, coordinate: &[Value]) -> Option<Vec<Value>> {
        let mask = coordinate
            .iter()
            .enumerate()
            .fold(
                GroupingSet::EMPTY,
                |m, (d, v)| if v.is_all() { m } else { m.with(d) },
            );
        let si = self.sets.iter().position(|s| *s == mask)?;
        let key = Row::new(coordinate.to_vec());
        let shard = self.shards[shard_of(si, &key)].read();
        let cell = shard.maps[si].get(&key)?;
        cell.accs
            .iter()
            .zip(self.aggs.iter())
            // cube-lint: allow(foreign, Final() must read the cell while its shard read-lock pins it; the guard converts a UDA panic into None and the read guard cannot be poisoned by it)
            .map(|(a, agg)| exec::guard(agg.func.name(), || a.final_value()).ok())
            .collect()
    }

    /// Snapshot the cube as a relation (same canonical order as
    /// [`crate::CubeQuery::cube`]). Takes the batch gate exclusively, so
    /// the snapshot reflects whole batches only — never a torn one.
    /// Errors with `AggPanicked` if a user-defined aggregate panics in
    /// Final().
    pub fn to_table(&self) -> CubeResult<Table> {
        let _gate = self.gate.write();
        let shards: Vec<std::sync::RwLockReadGuard<'_, Shard>> =
            self.shards.iter().map(|s| s.read()).collect();
        let mut out = Table::empty(self.result_schema.clone());
        for si in 0..self.sets.len() {
            let mut keys: Vec<&Row> = shards.iter().flat_map(|s| s.maps[si].keys()).collect();
            keys.sort();
            for key in keys {
                let cell = shards
                    .iter()
                    .find_map(|s| s.maps[si].get(key))
                    .ok_or_else(|| CubeError::BadSpec("corrupt cube: key without cell".into()))?;
                let mut vals = key.values().to_vec();
                for (a, agg) in cell.accs.iter().zip(self.aggs.iter()) {
                    // cube-lint: allow(foreign, the snapshot holds the gate exactly so no batch can run mid-read; Final() is guarded and a panic propagates as AggPanicked after the guards unwind cleanly)
                    vals.push(exec::guard(agg.func.name(), || a.final_value())?);
                }
                out.push_unchecked(Row::new(vals));
            }
        }
        Ok(out)
    }

    /// Current base-table contents.
    pub fn base_rows(&self) -> Vec<Row> {
        self.meta.read().base.clone()
    }

    /// Maintenance work counters since construction.
    pub fn stats(&self) -> MaintainStats {
        self.meta.read().stats
    }

    /// Number of materialized cells across all grouping sets.
    pub fn cell_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().maps.iter().map(|m| m.len()).sum::<usize>())
            .sum()
    }

    /// Maintenance version: 0 at construction, +1 per maintained row (an
    /// update counts twice; a batch of k rows counts k). Republishing a
    /// maintained cube under a new version invalidates any cached ancestor
    /// views keyed to the old one.
    pub fn version(&self) -> u64 {
        self.meta.read().version
    }
}

/// Cancel matching insert/delete pairs inside one batch and return the
/// survivors as row vectors.
fn annihilate(batch: &DeltaBatch) -> (Vec<Row>, Vec<Row>) {
    if batch.deletes.is_empty() || batch.n_inserts == 0 {
        let ins = (0..batch.n_inserts).map(|i| batch.insert_row(i)).collect();
        return (ins, batch.deletes.clone());
    }
    let mut del_count: FxHashMap<&Row, usize> = FxHashMap::default();
    for d in &batch.deletes {
        *del_count.entry(d).or_insert(0) += 1;
    }
    let mut ins_rows = Vec::with_capacity(batch.n_inserts);
    for i in 0..batch.n_inserts {
        let row = batch.insert_row(i);
        match del_count.get_mut(&row) {
            Some(c) if *c > 0 => *c -= 1,
            _ => ins_rows.push(row),
        }
    }
    let mut del_rows = Vec::new();
    for (row, count) in del_count {
        for _ in 0..count {
            del_rows.push(row.clone());
        }
    }
    (ins_rows, del_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CubeQuery;
    use dc_aggregate::builtin;
    use dc_relation::{row, DataType};

    fn base() -> Table {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("units", DataType::Int),
        ]);
        Table::new(
            schema,
            vec![
                row!["Chevy", 1994, 50],
                row!["Chevy", 1995, 85],
                row!["Ford", 1994, 60],
            ],
        )
        .unwrap()
    }

    fn dims() -> Vec<Dimension> {
        vec![Dimension::column("model"), Dimension::column("year")]
    }

    fn sum_spec() -> AggSpec {
        AggSpec::new(builtin("SUM").unwrap(), "units").with_name("units")
    }

    fn max_spec() -> AggSpec {
        AggSpec::new(builtin("MAX").unwrap(), "units").with_name("max_units")
    }

    #[test]
    fn matches_batch_cube_after_construction() {
        let t = base();
        let mat = MaterializedCube::cube(&t, dims(), vec![sum_spec()]).unwrap();
        let batch = CubeQuery::new()
            .dimensions(dims())
            .aggregate(sum_spec())
            .cube(&t)
            .unwrap();
        assert_eq!(mat.to_table().unwrap().rows(), batch.rows());
    }

    #[test]
    fn insert_updates_every_grouping_set() {
        let t = base();
        let mat = MaterializedCube::cube(&t, dims(), vec![sum_spec()]).unwrap();
        mat.insert(row!["Ford", 1995, 160]).unwrap();
        assert_eq!(
            mat.cell(&[Value::All, Value::All]),
            Some(vec![Value::Int(355)])
        );
        assert_eq!(
            mat.cell(&[Value::str("Ford"), Value::All]),
            Some(vec![Value::Int(220)])
        );
        // Exactly the 2^N = 4 cells were touched.
        assert_eq!(mat.stats().cells_updated, 4);
        assert_eq!(mat.stats().cells_recomputed, 0);
        // And the result still equals a from-scratch cube.
        let mut t2 = base();
        t2.push(row!["Ford", 1995, 160]).unwrap();
        let batch = CubeQuery::new()
            .dimensions(dims())
            .aggregate(sum_spec())
            .cube(&t2)
            .unwrap();
        assert_eq!(mat.to_table().unwrap().rows(), batch.rows());
    }

    #[test]
    fn sum_deletes_without_recompute() {
        let t = base();
        let mat = MaterializedCube::cube(&t, dims(), vec![sum_spec()]).unwrap();
        mat.delete(&row!["Chevy", 1994, 50]).unwrap();
        assert_eq!(
            mat.cell(&[Value::All, Value::All]),
            Some(vec![Value::Int(145)])
        );
        assert_eq!(mat.stats().cells_recomputed, 0);
        assert_eq!(mat.stats().rows_rescanned, 0);
    }

    #[test]
    fn deleting_the_max_forces_recompute() {
        let t = base();
        let mat = MaterializedCube::cube(&t, dims(), vec![max_spec()]).unwrap();
        // 85 is the global max and the (Chevy, *) max: deleting it must
        // recompute those cells; losers' cells update in place.
        mat.delete(&row!["Chevy", 1995, 85]).unwrap();
        let s = mat.stats();
        assert!(s.cells_recomputed > 0, "delete of champion must recompute");
        assert!(s.rows_rescanned > 0);
        assert_eq!(
            mat.cell(&[Value::All, Value::All]),
            Some(vec![Value::Int(60)])
        );
        assert_eq!(
            mat.cell(&[Value::str("Chevy"), Value::All]),
            Some(vec![Value::Int(50)])
        );
    }

    #[test]
    fn deleting_a_loser_is_cheap_even_for_max() {
        // §6: "if the new value 'loses' one competition, then it will lose
        // in all lower dimensions" — the dual holds for deleting losers.
        let t = base();
        let mat = MaterializedCube::cube(&t, dims(), vec![max_spec()]).unwrap();
        mat.delete(&row!["Chevy", 1994, 50]).unwrap();
        // (Chevy,1994) cell dies with its only supporter; the surviving
        // Chevy and global cells just drop a loser: no recompute.
        assert_eq!(mat.stats().cells_recomputed, 0);
        assert_eq!(
            mat.cell(&[Value::All, Value::All]),
            Some(vec![Value::Int(85)])
        );
    }

    #[test]
    fn cell_dies_when_support_reaches_zero() {
        let t = base();
        let mat = MaterializedCube::cube(&t, dims(), vec![sum_spec()]).unwrap();
        let before = mat.cell_count();
        mat.delete(&row!["Ford", 1994, 60]).unwrap();
        // Ford's only row: exactly the two Ford-keyed cells disappear;
        // (ALL,1994) still has Chevy support.
        assert_eq!(mat.cell_count(), before - 2);
        assert_eq!(mat.cell(&[Value::str("Ford"), Value::All]), None);
    }

    #[test]
    fn update_is_delete_plus_insert() {
        let t = base();
        let mat = MaterializedCube::cube(&t, dims(), vec![sum_spec()]).unwrap();
        mat.update(&row!["Chevy", 1994, 50], row!["Chevy", 1994, 75])
            .unwrap();
        assert_eq!(
            mat.cell(&[Value::str("Chevy"), Value::Int(1994)]),
            Some(vec![Value::Int(75)])
        );
        assert_eq!(
            mat.cell(&[Value::All, Value::All]),
            Some(vec![Value::Int(220)])
        );
        let s = mat.stats();
        assert_eq!((s.inserts, s.deletes), (1, 1));
    }

    #[test]
    fn delete_of_absent_row_errors() {
        let t = base();
        let mat = MaterializedCube::cube(&t, dims(), vec![sum_spec()]).unwrap();
        assert!(mat.delete(&row!["Dodge", 2000, 1]).is_err());
        // Nothing changed.
        assert_eq!(
            mat.cell(&[Value::All, Value::All]),
            Some(vec![Value::Int(195)])
        );
    }

    #[test]
    fn insert_validates_against_base_schema() {
        let t = base();
        let mat = MaterializedCube::cube(&t, dims(), vec![sum_spec()]).unwrap();
        assert!(mat.insert(row!["Ford", 1995]).is_err());
        assert!(mat.insert(row![1995, "Ford", 1]).is_err());
    }

    #[test]
    fn rollup_materialization() {
        let t = base();
        let mat = MaterializedCube::rollup(&t, dims(), vec![sum_spec()]).unwrap();
        // Rollup has no (ALL, year) cells.
        assert_eq!(mat.cell(&[Value::All, Value::Int(1994)]), None);
        assert_eq!(
            mat.cell(&[Value::str("Chevy"), Value::All]),
            Some(vec![Value::Int(135)])
        );
    }

    #[test]
    fn concurrent_reads_during_maintenance() {
        use std::sync::Arc;
        let t = base();
        let mat = Arc::new(MaterializedCube::cube(&t, dims(), vec![sum_spec()]).unwrap());
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&mat);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        // Total must always be a consistent multiple state.
                        let v = m.cell(&[Value::All, Value::All]);
                        assert!(v.is_some());
                    }
                })
            })
            .collect();
        for i in 0..50 {
            mat.insert(row!["Dodge", 1994, i]).unwrap();
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(mat.base_rows().len(), 53);
    }

    // ---------------------------------------------------- batch path --

    #[test]
    fn batch_apply_equals_row_at_a_time() {
        let t = base();
        let by_row = MaterializedCube::cube(&t, dims(), vec![sum_spec(), max_spec()]).unwrap();
        let by_batch = MaterializedCube::cube(&t, dims(), vec![sum_spec(), max_spec()]).unwrap();

        by_row.insert(row!["Ford", 1995, 10]).unwrap();
        by_row.insert(row!["Ford", 1995, 20]).unwrap();
        by_row.delete(&row!["Chevy", 1995, 85]).unwrap();

        let mut batch = DeltaBatch::new();
        batch.insert(row!["Ford", 1995, 10]).unwrap();
        batch.insert(row!["Ford", 1995, 20]).unwrap();
        batch.delete(row!["Chevy", 1995, 85]);
        by_batch.apply(&batch, &ExecContext::unlimited()).unwrap();

        assert_eq!(
            by_batch.to_table().unwrap().rows(),
            by_row.to_table().unwrap().rows()
        );
        // The batch coalesced: one fold per touched cell, and the version
        // advanced by the number of maintained rows either way.
        assert_eq!(by_batch.version(), by_row.version());
        assert_eq!(by_batch.stats().batches, 1);
        assert_eq!(by_row.stats().batches, 3);
    }

    #[test]
    fn batch_coalesces_champion_recomputes() {
        // Two deletes hitting the same (ALL, ALL) MAX cell: row-at-a-time
        // recomputes it twice, the batch rebuilds it exactly once.
        let schema = Schema::from_pairs(&[("k", DataType::Str), ("u", DataType::Int)]);
        let t = Table::new(
            schema,
            vec![row!["a", 100], row!["b", 90], row!["a", 1], row!["b", 2]],
        )
        .unwrap();
        let mat = MaterializedCube::cube(
            &t,
            vec![Dimension::column("k")],
            vec![AggSpec::new(builtin("MAX").unwrap(), "u").with_name("m")],
        )
        .unwrap();
        let mut batch = DeltaBatch::new();
        batch.delete(row!["a", 100]);
        batch.delete(row!["b", 90]);
        mat.apply(&batch, &ExecContext::unlimited()).unwrap();
        // Touched cells: (a), (b), (ALL). All three rebuild, each once —
        // row-at-a-time would have rebuilt (ALL) twice.
        assert_eq!(mat.stats().cells_recomputed, 3);
        assert_eq!(mat.cell(&[Value::All]), Some(vec![Value::Int(2)]));
    }

    #[test]
    fn batch_annihilates_insert_delete_pairs() {
        let t = base();
        let mat = MaterializedCube::cube(&t, dims(), vec![sum_spec()]).unwrap();
        let before = mat.to_table().unwrap();
        let mut batch = DeltaBatch::new();
        // Insert and delete the same (new) row: net no-op, even though the
        // row was never in the base.
        batch.insert(row!["Dodge", 2001, 7]).unwrap();
        batch.delete(row!["Dodge", 2001, 7]);
        mat.apply(&batch, &ExecContext::unlimited()).unwrap();
        assert_eq!(mat.to_table().unwrap().rows(), before.rows());
        assert_eq!(mat.base_rows().len(), 3);
    }

    #[test]
    fn failed_batch_leaves_cube_at_pre_batch_state() {
        let t = base();
        let mat = MaterializedCube::cube(&t, dims(), vec![sum_spec()]).unwrap();
        let before = mat.to_table().unwrap();
        let version = mat.version();

        // An unmatched delete rejects the whole batch — including its
        // valid inserts.
        let mut batch = DeltaBatch::new();
        batch.insert(row!["Ford", 1995, 10]).unwrap();
        batch.delete(row!["Dodge", 2000, 1]);
        assert!(mat.apply(&batch, &ExecContext::unlimited()).is_err());
        assert_eq!(mat.to_table().unwrap().rows(), before.rows());
        assert_eq!(mat.version(), version);

        // A pre-cancelled context trips inside the fold loop, same story.
        let token = crate::CancelToken::new();
        token.cancel();
        let ctx = ExecContext::new(&crate::ExecLimits::none().cancel_token(token), 1);
        let mut batch = DeltaBatch::new();
        for i in 0..100 {
            batch.insert(row!["Ford", 1995, i]).unwrap();
        }
        let err = mat.apply(&batch, &ctx).unwrap_err();
        assert!(matches!(err, CubeError::Cancelled { .. }), "got {err}");
        assert_eq!(mat.to_table().unwrap().rows(), before.rows());
        assert_eq!(mat.version(), version);
    }

    #[test]
    fn batch_charges_the_cell_budget() {
        let t = base();
        let mat = MaterializedCube::cube(&t, dims(), vec![sum_spec()]).unwrap();
        let before = mat.to_table().unwrap();
        let ctx = ExecContext::new(&crate::ExecLimits::none().max_cells(2), 64);
        let mut batch = DeltaBatch::new();
        for i in 0..50 {
            batch.insert(row![format!("M{i}"), 2000 + i, 1i64]).unwrap();
        }
        let err = mat.apply(&batch, &ctx).unwrap_err();
        assert!(
            matches!(err, CubeError::ResourceExhausted { .. }),
            "got {err}"
        );
        assert_eq!(mat.to_table().unwrap().rows(), before.rows());
    }

    #[test]
    fn batch_arity_mismatch_is_typed() {
        let mut batch = DeltaBatch::new();
        batch.insert(row!["a", 1]).unwrap();
        assert!(batch.insert(row!["b"]).is_err());
        assert_eq!(batch.insert_count(), 1);
    }

    #[test]
    fn concurrent_batch_writers_agree_with_recompute() {
        use std::sync::Arc;
        let t = base();
        let mat = Arc::new(MaterializedCube::cube(&t, dims(), vec![sum_spec()]).unwrap());
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let m = Arc::clone(&mat);
                std::thread::spawn(move || {
                    for b in 0..8 {
                        let mut batch = DeltaBatch::new();
                        for i in 0..16i64 {
                            batch.insert(row![format!("W{w}"), 2000 + b, i]).unwrap();
                        }
                        m.apply(&batch, &ExecContext::unlimited()).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let final_table = Table::new(base().schema().clone(), mat.base_rows()).unwrap();
        let expected = CubeQuery::new()
            .dimensions(dims())
            .aggregate(sum_spec())
            .cube(&final_table)
            .unwrap();
        assert_eq!(mat.to_table().unwrap().rows(), expected.rows());
        assert_eq!(mat.base_rows().len(), 3 + 4 * 8 * 16);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::{AggSpec, Dimension};
    use dc_aggregate::builtin;
    use dc_relation::{row, DataType};

    #[test]
    fn champion_delete_on_rollup_recomputes_only_its_chain() {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("units", DataType::Int),
        ]);
        let t = Table::new(
            schema,
            vec![
                row!["Chevy", 1994, 10],
                row!["Chevy", 1994, 99], // champion of its whole rollup chain
                row!["Chevy", 1995, 50],
                row!["Ford", 1994, 60],
            ],
        )
        .unwrap();
        let dims = vec![Dimension::column("model"), Dimension::column("year")];
        let max = AggSpec::new(builtin("MAX").unwrap(), "units").with_name("m");
        let mat = MaterializedCube::rollup(&t, dims, vec![max]).unwrap();
        mat.delete(&row!["Chevy", 1994, 99]).unwrap();
        // The champion sat in 3 rollup cells: (Chevy,1994), (Chevy,ALL),
        // (ALL,ALL) — all three recomputed, nothing else.
        assert_eq!(mat.stats().cells_recomputed, 3);
        assert_eq!(
            mat.cell(&[Value::str("Chevy"), Value::Int(1994)]),
            Some(vec![Value::Int(10)])
        );
        assert_eq!(
            mat.cell(&[Value::All, Value::All]),
            Some(vec![Value::Int(60)])
        );
    }

    #[test]
    fn mixed_aggregates_recompute_together() {
        // One cell holds SUM and MAX; deleting the max forces the whole
        // cell to rebuild, and the rebuilt SUM is still right.
        let schema = Schema::from_pairs(&[("k", DataType::Str), ("units", DataType::Int)]);
        let t = Table::new(schema, vec![row!["a", 5], row!["a", 100], row!["a", 7]]).unwrap();
        let mat = MaterializedCube::cube(
            &t,
            vec![Dimension::column("k")],
            vec![
                AggSpec::new(builtin("SUM").unwrap(), "units").with_name("s"),
                AggSpec::new(builtin("MAX").unwrap(), "units").with_name("m"),
            ],
        )
        .unwrap();
        mat.delete(&row!["a", 100]).unwrap();
        assert_eq!(
            mat.cell(&[Value::str("a")]),
            Some(vec![Value::Int(12), Value::Int(7)])
        );
    }

    #[test]
    fn reinserting_a_deleted_champion_restores_state() {
        let schema = Schema::from_pairs(&[("k", DataType::Str), ("units", DataType::Int)]);
        let t = Table::new(schema, vec![row!["a", 5], row!["a", 100]]).unwrap();
        let mat = MaterializedCube::cube(
            &t,
            vec![Dimension::column("k")],
            vec![AggSpec::new(builtin("MAX").unwrap(), "units").with_name("m")],
        )
        .unwrap();
        let before = mat.to_table().unwrap();
        mat.delete(&row!["a", 100]).unwrap();
        mat.insert(row!["a", 100]).unwrap();
        assert_eq!(mat.to_table().unwrap().rows(), before.rows());
    }
}
