//! Maintaining materialized cubes (§6).
//!
//! "We have been surprised that some customers use these operators to
//! compute and store the cube. These customers then define triggers on the
//! underlying tables so that when the tables change, the cube is
//! dynamically updated." [`MaterializedCube`] is that pattern: it stores
//! live scratchpads for every cell of every grouping set, updates them on
//! insert ("just visit the 2^N super-aggregates of this record"), and
//! handles the asymmetry the section is really about —
//!
//! > "max is a distributive \[function\] for SELECT and INSERT, but it is
//! > holistic for DELETE."
//!
//! Deleting a row *retracts* it from each affected cell; any aggregate
//! whose scratchpad cannot absorb the retraction (MAX losing its champion,
//! [`dc_aggregate::Retract::Recompute`]) forces that cell to be recomputed
//! from the retained base rows. [`MaintainStats`] counts both paths so the
//! C9 benchmark can show the cost cliff.
//!
//! The cube is readable while being maintained: interior state lives
//! behind a `parking_lot::RwLock`, so concurrent readers (`cell`,
//! `to_table`) proceed in parallel and writers take the lock exclusively,
//! trigger-style.

use crate::error::{CubeError, CubeResult};
use crate::exec;
use crate::groupby::{full_key, project_key, result_schema};
use crate::lattice::{GroupingSet, Lattice};
use crate::spec::{AggSpec, BoundAgg, BoundDimension, Dimension};
use dc_aggregate::{Accumulator, Retract};
use dc_relation::{Row, Schema, Table, Value};
use parking_lot::RwLock;
use std::collections::HashMap;

/// Work counters for maintenance operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintainStats {
    pub inserts: u64,
    pub deletes: u64,
    /// Cell scratchpad updates applied in place (the cheap path).
    pub cells_updated: u64,
    /// Cells that had to be recomputed from base rows (the delete-holistic
    /// path).
    pub cells_recomputed: u64,
    /// Base rows rescanned during recomputations.
    pub rows_rescanned: u64,
}

struct Cell {
    accs: Vec<Box<dyn Accumulator>>,
    /// Base rows contributing to this cell; when it reaches zero the cell
    /// disappears from the cube (sparse representation, §5).
    support: u64,
}

struct Inner {
    base: Vec<Row>,
    cells: Vec<(GroupingSet, HashMap<Row, Cell>)>,
    stats: MaintainStats,
    /// Monotone maintenance version: bumped by every successful insert or
    /// delete, so derived structures (the SQL layer's lattice cache keys
    /// results by table version) can detect staleness without diffing.
    version: u64,
}

/// A cube kept up to date under INSERT / DELETE / UPDATE.
pub struct MaterializedCube {
    base_schema: Schema,
    result_schema: Schema,
    dims: Vec<BoundDimension>,
    aggs: Vec<BoundAgg>,
    inner: RwLock<Inner>,
}

impl MaterializedCube {
    /// Materialize the full cube of `table`.
    pub fn cube(table: &Table, dims: Vec<Dimension>, aggs: Vec<AggSpec>) -> CubeResult<Self> {
        let lattice = Lattice::cube(dims.len())?;
        Self::with_lattice(table, dims, aggs, lattice)
    }

    /// Materialize a rollup of `table`.
    pub fn rollup(table: &Table, dims: Vec<Dimension>, aggs: Vec<AggSpec>) -> CubeResult<Self> {
        let lattice = Lattice::rollup(dims.len())?;
        Self::with_lattice(table, dims, aggs, lattice)
    }

    /// Materialize an explicit grouping-set family.
    pub fn with_lattice(
        table: &Table,
        dims: Vec<Dimension>,
        aggs: Vec<AggSpec>,
        lattice: Lattice,
    ) -> CubeResult<Self> {
        if aggs.is_empty() {
            return Err(CubeError::BadSpec(
                "at least one aggregate is required".into(),
            ));
        }
        let schema = table.schema();
        let bdims: Vec<BoundDimension> = dims
            .iter()
            .map(|d| d.bind(schema))
            .collect::<CubeResult<_>>()?;
        let baggs: Vec<BoundAgg> = aggs
            .iter()
            .map(|a| a.bind(schema))
            .collect::<CubeResult<_>>()?;
        let agg_types: Vec<_> = aggs
            .iter()
            .map(|a| a.output_type(schema))
            .collect::<CubeResult<_>>()?;
        let result_schema = result_schema(&bdims, &baggs, &agg_types)?;

        let cells = lattice
            .sets()
            .iter()
            .map(|&s| (s, HashMap::new()))
            .collect();
        let cube = MaterializedCube {
            base_schema: schema.clone(),
            result_schema,
            dims: bdims,
            aggs: baggs,
            inner: RwLock::new(Inner {
                base: Vec::new(),
                cells,
                stats: MaintainStats::default(),
                version: 0,
            }),
        };
        for row in table.rows() {
            cube.insert(row.clone())?;
        }
        // Initial population is not "maintenance": reset the counters.
        cube.inner.write().stats = MaintainStats::default();
        Ok(cube)
    }

    /// Trigger path for `INSERT`: visit this record's cell in every
    /// grouping set and fold it in.
    pub fn insert(&self, row: Row) -> CubeResult<()> {
        if row.len() != self.base_schema.len() {
            return Err(CubeError::Rel(dc_relation::RelError::ArityMismatch {
                expected: self.base_schema.len(),
                got: row.len(),
            }));
        }
        for (col, v) in self.base_schema.columns().iter().zip(row.iter()) {
            col.check(v)?;
        }
        let mut inner = self.inner.write();
        let full = full_key(&self.dims, &row);
        for (set, map) in inner.cells.iter_mut() {
            let key = project_key(&full, *set);
            let cell = match map.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => e.insert(Cell {
                    accs: exec::guarded_init(&self.aggs)?,
                    support: 0,
                }),
            };
            for (acc, agg) in cell.accs.iter_mut().zip(self.aggs.iter()) {
                exec::guard(agg.func.name(), || acc.iter(agg.input_value(&row)))?;
            }
            cell.support += 1;
        }
        inner.stats.cells_updated += inner.cells.len() as u64;
        inner.stats.inserts += 1;
        inner.version += 1;
        inner.base.push(row);
        Ok(())
    }

    /// Trigger path for `DELETE`: retract the record from each affected
    /// cell; cells whose scratchpads cannot absorb the retraction are
    /// recomputed from the remaining base rows. Errors if the row is not
    /// present in the base table.
    pub fn delete(&self, row: &Row) -> CubeResult<()> {
        let mut inner = self.inner.write();
        let pos = inner
            .base
            .iter()
            .position(|r| r == row)
            .ok_or_else(|| CubeError::BadSpec(format!("row not in base table: {row}")))?;
        inner.base.swap_remove(pos);
        let full = full_key(&self.dims, row);

        let Inner {
            base,
            cells,
            stats,
            version,
        } = &mut *inner;
        for (set, map) in cells.iter_mut() {
            let key = project_key(&full, *set);
            let Some(cell) = map.get_mut(&key) else {
                return Err(CubeError::BadSpec(format!(
                    "corrupt cube: no cell for deleted row in {set}"
                )));
            };
            cell.support -= 1;
            if cell.support == 0 {
                map.remove(&key);
                stats.cells_updated += 1;
                continue;
            }
            let mut needs_recompute = false;
            for (acc, agg) in cell.accs.iter_mut().zip(self.aggs.iter()) {
                match acc.retract(agg.input_value(row)) {
                    Retract::Applied => {}
                    Retract::Recompute | Retract::Unsupported => needs_recompute = true,
                }
            }
            if needs_recompute {
                // The delete-holistic path: rebuild this cell from base.
                let mut accs = exec::guarded_init(&self.aggs)?;
                for brow in base.iter() {
                    stats.rows_rescanned += 1;
                    if project_key(&full_key(&self.dims, brow), *set) == key {
                        for (acc, agg) in accs.iter_mut().zip(self.aggs.iter()) {
                            exec::guard(agg.func.name(), || acc.iter(agg.input_value(brow)))?;
                        }
                    }
                }
                cell.accs = accs;
                stats.cells_recomputed += 1;
            } else {
                stats.cells_updated += 1;
            }
        }
        stats.deletes += 1;
        *version += 1;
        Ok(())
    }

    /// `UPDATE` "is just delete plus insert" (§6).
    pub fn update(&self, old: &Row, new: Row) -> CubeResult<()> {
        self.delete(old)?;
        self.insert(new)
    }

    /// Read one cell's aggregate values at a full coordinate (`ALL` where
    /// aggregated). `None` when the cell is not materialized or an
    /// aggregate's Final() panics (the panic is contained, not propagated).
    pub fn cell(&self, coordinate: &[Value]) -> Option<Vec<Value>> {
        let inner = self.inner.read();
        let mask = coordinate
            .iter()
            .enumerate()
            .fold(
                GroupingSet::EMPTY,
                |m, (d, v)| if v.is_all() { m } else { m.with(d) },
            );
        let (_, map) = inner.cells.iter().find(|(s, _)| *s == mask)?;
        let cell = map.get(&Row::new(coordinate.to_vec()))?;
        cell.accs
            .iter()
            .zip(self.aggs.iter())
            .map(|(a, agg)| exec::guard(agg.func.name(), || a.final_value()).ok())
            .collect()
    }

    /// Snapshot the cube as a relation (same canonical order as
    /// [`crate::CubeQuery::cube`]). Errors with `AggPanicked` if a
    /// user-defined aggregate panics in Final().
    pub fn to_table(&self) -> CubeResult<Table> {
        let inner = self.inner.read();
        let mut out = Table::empty(self.result_schema.clone());
        for (_, map) in &inner.cells {
            let mut keys: Vec<&Row> = map.keys().collect();
            keys.sort();
            for key in keys {
                let cell = &map[key];
                let mut vals = key.values().to_vec();
                for (a, agg) in cell.accs.iter().zip(self.aggs.iter()) {
                    vals.push(exec::guard(agg.func.name(), || a.final_value())?);
                }
                out.push_unchecked(Row::new(vals));
            }
        }
        Ok(out)
    }

    /// Current base-table contents.
    pub fn base_rows(&self) -> Vec<Row> {
        self.inner.read().base.clone()
    }

    /// Maintenance work counters since construction.
    pub fn stats(&self) -> MaintainStats {
        self.inner.read().stats
    }

    /// Number of materialized cells across all grouping sets.
    pub fn cell_count(&self) -> usize {
        self.inner.read().cells.iter().map(|(_, m)| m.len()).sum()
    }

    /// Maintenance version: 0 at construction, +1 per successful insert
    /// or delete (an update counts twice). Republishing a maintained cube
    /// under a new version invalidates any cached ancestor views keyed to
    /// the old one.
    pub fn version(&self) -> u64 {
        self.inner.read().version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CubeQuery;
    use dc_aggregate::builtin;
    use dc_relation::{row, DataType};

    fn base() -> Table {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("units", DataType::Int),
        ]);
        Table::new(
            schema,
            vec![
                row!["Chevy", 1994, 50],
                row!["Chevy", 1995, 85],
                row!["Ford", 1994, 60],
            ],
        )
        .unwrap()
    }

    fn dims() -> Vec<Dimension> {
        vec![Dimension::column("model"), Dimension::column("year")]
    }

    fn sum_spec() -> AggSpec {
        AggSpec::new(builtin("SUM").unwrap(), "units").with_name("units")
    }

    fn max_spec() -> AggSpec {
        AggSpec::new(builtin("MAX").unwrap(), "units").with_name("max_units")
    }

    #[test]
    fn matches_batch_cube_after_construction() {
        let t = base();
        let mat = MaterializedCube::cube(&t, dims(), vec![sum_spec()]).unwrap();
        let batch = CubeQuery::new()
            .dimensions(dims())
            .aggregate(sum_spec())
            .cube(&t)
            .unwrap();
        assert_eq!(mat.to_table().unwrap().rows(), batch.rows());
    }

    #[test]
    fn insert_updates_every_grouping_set() {
        let t = base();
        let mat = MaterializedCube::cube(&t, dims(), vec![sum_spec()]).unwrap();
        mat.insert(row!["Ford", 1995, 160]).unwrap();
        assert_eq!(
            mat.cell(&[Value::All, Value::All]),
            Some(vec![Value::Int(355)])
        );
        assert_eq!(
            mat.cell(&[Value::str("Ford"), Value::All]),
            Some(vec![Value::Int(220)])
        );
        // Exactly the 2^N = 4 cells were touched.
        assert_eq!(mat.stats().cells_updated, 4);
        assert_eq!(mat.stats().cells_recomputed, 0);
        // And the result still equals a from-scratch cube.
        let mut t2 = base();
        t2.push(row!["Ford", 1995, 160]).unwrap();
        let batch = CubeQuery::new()
            .dimensions(dims())
            .aggregate(sum_spec())
            .cube(&t2)
            .unwrap();
        assert_eq!(mat.to_table().unwrap().rows(), batch.rows());
    }

    #[test]
    fn sum_deletes_without_recompute() {
        let t = base();
        let mat = MaterializedCube::cube(&t, dims(), vec![sum_spec()]).unwrap();
        mat.delete(&row!["Chevy", 1994, 50]).unwrap();
        assert_eq!(
            mat.cell(&[Value::All, Value::All]),
            Some(vec![Value::Int(145)])
        );
        assert_eq!(mat.stats().cells_recomputed, 0);
        assert_eq!(mat.stats().rows_rescanned, 0);
    }

    #[test]
    fn deleting_the_max_forces_recompute() {
        let t = base();
        let mat = MaterializedCube::cube(&t, dims(), vec![max_spec()]).unwrap();
        // 85 is the global max and the (Chevy, *) max: deleting it must
        // recompute those cells; losers' cells update in place.
        mat.delete(&row!["Chevy", 1995, 85]).unwrap();
        let s = mat.stats();
        assert!(s.cells_recomputed > 0, "delete of champion must recompute");
        assert!(s.rows_rescanned > 0);
        assert_eq!(
            mat.cell(&[Value::All, Value::All]),
            Some(vec![Value::Int(60)])
        );
        assert_eq!(
            mat.cell(&[Value::str("Chevy"), Value::All]),
            Some(vec![Value::Int(50)])
        );
    }

    #[test]
    fn deleting_a_loser_is_cheap_even_for_max() {
        // §6: "if the new value 'loses' one competition, then it will lose
        // in all lower dimensions" — the dual holds for deleting losers.
        let t = base();
        let mat = MaterializedCube::cube(&t, dims(), vec![max_spec()]).unwrap();
        mat.delete(&row!["Chevy", 1994, 50]).unwrap();
        // (Chevy,1994) cell dies with its only supporter; the surviving
        // Chevy and global cells just drop a loser: no recompute.
        assert_eq!(mat.stats().cells_recomputed, 0);
        assert_eq!(
            mat.cell(&[Value::All, Value::All]),
            Some(vec![Value::Int(85)])
        );
    }

    #[test]
    fn cell_dies_when_support_reaches_zero() {
        let t = base();
        let mat = MaterializedCube::cube(&t, dims(), vec![sum_spec()]).unwrap();
        let before = mat.cell_count();
        mat.delete(&row!["Ford", 1994, 60]).unwrap();
        // Ford's only row: the (Ford,1994), (Ford,ALL) and (ALL,1994)...
        // no — (ALL,1994) still has Chevy support. Exactly the two
        // Ford-keyed cells disappear.
        assert_eq!(mat.cell_count(), before - 2);
        assert_eq!(mat.cell(&[Value::str("Ford"), Value::All]), None);
    }

    #[test]
    fn update_is_delete_plus_insert() {
        let t = base();
        let mat = MaterializedCube::cube(&t, dims(), vec![sum_spec()]).unwrap();
        mat.update(&row!["Chevy", 1994, 50], row!["Chevy", 1994, 75])
            .unwrap();
        assert_eq!(
            mat.cell(&[Value::str("Chevy"), Value::Int(1994)]),
            Some(vec![Value::Int(75)])
        );
        assert_eq!(
            mat.cell(&[Value::All, Value::All]),
            Some(vec![Value::Int(220)])
        );
        let s = mat.stats();
        assert_eq!((s.inserts, s.deletes), (1, 1));
    }

    #[test]
    fn delete_of_absent_row_errors() {
        let t = base();
        let mat = MaterializedCube::cube(&t, dims(), vec![sum_spec()]).unwrap();
        assert!(mat.delete(&row!["Dodge", 2000, 1]).is_err());
        // Nothing changed.
        assert_eq!(
            mat.cell(&[Value::All, Value::All]),
            Some(vec![Value::Int(195)])
        );
    }

    #[test]
    fn insert_validates_against_base_schema() {
        let t = base();
        let mat = MaterializedCube::cube(&t, dims(), vec![sum_spec()]).unwrap();
        assert!(mat.insert(row!["Ford", 1995]).is_err());
        assert!(mat.insert(row![1995, "Ford", 1]).is_err());
    }

    #[test]
    fn rollup_materialization() {
        let t = base();
        let mat = MaterializedCube::rollup(&t, dims(), vec![sum_spec()]).unwrap();
        // Rollup has no (ALL, year) cells.
        assert_eq!(mat.cell(&[Value::All, Value::Int(1994)]), None);
        assert_eq!(
            mat.cell(&[Value::str("Chevy"), Value::All]),
            Some(vec![Value::Int(135)])
        );
    }

    #[test]
    fn concurrent_reads_during_maintenance() {
        use std::sync::Arc;
        let t = base();
        let mat = Arc::new(MaterializedCube::cube(&t, dims(), vec![sum_spec()]).unwrap());
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&mat);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        // Total must always be a consistent multiple state.
                        let v = m.cell(&[Value::All, Value::All]);
                        assert!(v.is_some());
                    }
                })
            })
            .collect();
        for i in 0..50 {
            mat.insert(row!["Dodge", 1994, i]).unwrap();
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(mat.base_rows().len(), 53);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::{AggSpec, Dimension};
    use dc_aggregate::builtin;
    use dc_relation::{row, DataType};

    #[test]
    fn champion_delete_on_rollup_recomputes_only_its_chain() {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("units", DataType::Int),
        ]);
        let t = Table::new(
            schema,
            vec![
                row!["Chevy", 1994, 10],
                row!["Chevy", 1994, 99], // champion of its whole rollup chain
                row!["Chevy", 1995, 50],
                row!["Ford", 1994, 60],
            ],
        )
        .unwrap();
        let dims = vec![Dimension::column("model"), Dimension::column("year")];
        let max = AggSpec::new(builtin("MAX").unwrap(), "units").with_name("m");
        let mat = MaterializedCube::rollup(&t, dims, vec![max]).unwrap();
        mat.delete(&row!["Chevy", 1994, 99]).unwrap();
        // The champion sat in 3 rollup cells: (Chevy,1994), (Chevy,ALL),
        // (ALL,ALL) — all three recomputed, nothing else.
        assert_eq!(mat.stats().cells_recomputed, 3);
        assert_eq!(
            mat.cell(&[Value::str("Chevy"), Value::Int(1994)]),
            Some(vec![Value::Int(10)])
        );
        assert_eq!(
            mat.cell(&[Value::All, Value::All]),
            Some(vec![Value::Int(60)])
        );
    }

    #[test]
    fn mixed_aggregates_recompute_together() {
        // One cell holds SUM and MAX; deleting the max forces the whole
        // cell to rebuild, and the rebuilt SUM is still right.
        let schema = Schema::from_pairs(&[("k", DataType::Str), ("units", DataType::Int)]);
        let t = Table::new(schema, vec![row!["a", 5], row!["a", 100], row!["a", 7]]).unwrap();
        let mat = MaterializedCube::cube(
            &t,
            vec![Dimension::column("k")],
            vec![
                AggSpec::new(builtin("SUM").unwrap(), "units").with_name("s"),
                AggSpec::new(builtin("MAX").unwrap(), "units").with_name("m"),
            ],
        )
        .unwrap();
        mat.delete(&row!["a", 100]).unwrap();
        assert_eq!(
            mat.cell(&[Value::str("a")]),
            Some(vec![Value::Int(12), Value::Int(7)])
        );
    }

    #[test]
    fn reinserting_a_deleted_champion_restores_state() {
        let schema = Schema::from_pairs(&[("k", DataType::Str), ("units", DataType::Int)]);
        let t = Table::new(schema, vec![row!["a", 5], row!["a", 100]]).unwrap();
        let mat = MaterializedCube::cube(
            &t,
            vec![Dimension::column("k")],
            vec![AggSpec::new(builtin("MAX").unwrap(), "units").with_name("m")],
        )
        .unwrap();
        let before = mat.to_table().unwrap();
        mat.delete(&row!["a", 100]).unwrap();
        mat.insert(row!["a", 100]).unwrap();
        assert_eq!(mat.to_table().unwrap().rows(), before.rows());
    }
}
