//! Cross-tab and pivot rendering (§2, Tables 4 and 6).
//!
//! "The cross-tab-array representation (Table 6.a, 6.b) is equivalent to
//! the relational representation using the ALL value." This module is the
//! report-writer side of that equivalence: it consumes a cube *relation*
//! and lays it out as the compact cross tab of Table 6 or the two-level
//! Excel-style pivot of Table 4 — demonstrating that the value-pivoted
//! spreadsheet view is derivable from (and no richer than) the relation.

use crate::error::{CubeError, CubeResult};
use dc_relation::{ColumnDef, DataType, Row, Schema, Table, Value};
use std::collections::HashMap;

/// Label used for `ALL` rows/columns in rendered reports, matching the
/// paper's "total (ALL)" in Table 6.
pub const TOTAL_LABEL: &str = "total (ALL)";

fn display_label(v: &Value) -> String {
    if v.is_all() {
        TOTAL_LABEL.to_string()
    } else {
        v.to_string()
    }
}

/// Indices of the grouping (`ALL ALLOWED`) columns of a cube relation.
fn grouping_columns(table: &Table) -> Vec<usize> {
    table
        .schema()
        .columns()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.all_allowed)
        .map(|(i, _)| i)
        .collect()
}

/// The 2D (or k-D) slab a report lays out: rows of the cube where every
/// grouping column *not* in `kept` is fixed. A non-kept column that is
/// already constant in the input (e.g. the cube was pre-sliced to
/// `model = Chevy`) is left alone; otherwise its `ALL` rows are selected.
fn slab(table: &Table, kept: &[usize]) -> Table {
    let fix: Vec<usize> = grouping_columns(table)
        .into_iter()
        .filter(|g| !kept.contains(g))
        .filter(|&g| {
            let mut values = table.rows().iter().map(|r| &r[g]);
            let first = values.next();
            first.is_some_and(|f| values.any(|v| v != f))
        })
        .collect();
    table.filter(|r| fix.iter().all(|&g| r[g] == Value::All))
}

/// Render the Table 6 cross tab: rows = `row_dim` values (+ total),
/// columns = `col_dim` values (+ total), cells = `measure`.
///
/// The input must be a cube relation containing both dimensions (other
/// grouping columns are automatically fixed at `ALL`). Missing cells —
/// combinations with no base data — render as `NULL`.
pub fn cross_tab(cube: &Table, row_dim: &str, col_dim: &str, measure: &str) -> CubeResult<Table> {
    let r = cube.schema().index_of(row_dim)?;
    let c = cube.schema().index_of(col_dim)?;
    let m = cube.schema().index_of(measure)?;
    if !cube.schema().column_at(r).all_allowed || !cube.schema().column_at(c).all_allowed {
        return Err(CubeError::BadSpec(
            "cross_tab dimensions must be grouping columns of a cube relation".into(),
        ));
    }

    let slab = slab(cube, &[r, c]);
    let mut col_headers: Vec<Value> = slab.domain(&cube.schema().column_at(c).name)?;
    col_headers.push(Value::All);
    let mut row_headers: Vec<Value> = slab.domain(&cube.schema().column_at(r).name)?;
    row_headers.push(Value::All);

    let mut cells: HashMap<(Value, Value), Value> = HashMap::with_capacity(slab.len());
    for row in slab.rows() {
        cells.insert((row[r].clone(), row[c].clone()), row[m].clone());
    }

    let measure_ty = cube.schema().column_at(m).dtype;
    let mut cols = vec![ColumnDef::new(row_dim, DataType::Str)];
    for h in &col_headers {
        cols.push(ColumnDef::new(display_label(h), measure_ty));
    }
    let schema = Schema::new(cols)?;

    let mut out = Table::empty(schema);
    for rh in &row_headers {
        let mut vals = vec![Value::str(display_label(rh))];
        for ch in &col_headers {
            vals.push(
                cells
                    .get(&(rh.clone(), ch.clone()))
                    .cloned()
                    .unwrap_or(Value::Null),
            );
        }
        out.push_unchecked(Row::new(vals));
    }
    Ok(out)
}

/// Render the Table 4 Excel-style pivot: rows = `row_dim`; columns are the
/// cross product of `outer_dim` × `inner_dim` values, followed by a
/// per-outer-value total column, and a final grand-total column.
///
/// This is the representation the paper *rejects* as a result format ("We
/// cringe at the prospect of so many columns and such obtuse column
/// names") — reproduced here to show both that the cube relation carries
/// enough information to build it, and why the column count explodes:
/// pivot "creates columns based on subsets of column values".
pub fn pivot_table(
    cube: &Table,
    row_dim: &str,
    outer_dim: &str,
    inner_dim: &str,
    measure: &str,
) -> CubeResult<Table> {
    let r = cube.schema().index_of(row_dim)?;
    let o = cube.schema().index_of(outer_dim)?;
    let i = cube.schema().index_of(inner_dim)?;
    let m = cube.schema().index_of(measure)?;
    for (idx, what) in [(r, row_dim), (o, outer_dim), (i, inner_dim)] {
        if !cube.schema().column_at(idx).all_allowed {
            return Err(CubeError::BadSpec(format!(
                "pivot dimension '{what}' must be a grouping column"
            )));
        }
    }

    let slab = slab(cube, &[r, o, i]);
    let outer_vals = slab.domain(&cube.schema().column_at(o).name)?;
    let inner_vals = slab.domain(&cube.schema().column_at(i).name)?;
    let mut row_headers = slab.domain(&cube.schema().column_at(r).name)?;
    row_headers.push(Value::All);

    let mut cells: HashMap<(Value, Value, Value), Value> = HashMap::with_capacity(slab.len());
    for row in slab.rows() {
        cells.insert(
            (row[r].clone(), row[o].clone(), row[i].clone()),
            row[m].clone(),
        );
    }

    let measure_ty = cube.schema().column_at(m).dtype;
    // The obtuse column names the paper warns about: "1994 black",
    // "1994 Total", ..., "Grand Total".
    let mut cols = vec![ColumnDef::new(row_dim, DataType::Str)];
    for ov in &outer_vals {
        for iv in &inner_vals {
            cols.push(ColumnDef::new(format!("{ov} {iv}"), measure_ty));
        }
        cols.push(ColumnDef::new(format!("{ov} Total"), measure_ty));
    }
    cols.push(ColumnDef::new("Grand Total", measure_ty));
    let schema = Schema::new(cols)?;

    let mut out = Table::empty(schema);
    for rh in &row_headers {
        let mut vals = vec![Value::str(if rh.is_all() {
            "Grand Total".to_string()
        } else {
            rh.to_string()
        })];
        for ov in &outer_vals {
            for iv in &inner_vals {
                vals.push(
                    cells
                        .get(&(rh.clone(), ov.clone(), iv.clone()))
                        .cloned()
                        .unwrap_or(Value::Null),
                );
            }
            vals.push(
                cells
                    .get(&(rh.clone(), ov.clone(), Value::All))
                    .cloned()
                    .unwrap_or(Value::Null),
            );
        }
        vals.push(
            cells
                .get(&(rh.clone(), Value::All, Value::All))
                .cloned()
                .unwrap_or(Value::Null),
        );
        out.push_unchecked(Row::new(vals));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AggSpec, Dimension};
    use crate::CubeQuery;
    use dc_aggregate::builtin;
    use dc_relation::row;

    /// Table 4/5/6's sales data: Chevy & Ford, 1994/1995, black/white.
    fn sales_cube() -> Table {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("color", DataType::Str),
            ("units", DataType::Int),
        ]);
        let mut t = Table::empty(schema);
        for (m, y, c, u) in [
            ("Chevy", 1994, "black", 50),
            ("Chevy", 1994, "white", 40),
            ("Chevy", 1995, "black", 85),
            ("Chevy", 1995, "white", 115),
            ("Ford", 1994, "black", 50),
            ("Ford", 1994, "white", 10),
            ("Ford", 1995, "black", 85),
            ("Ford", 1995, "white", 75),
        ] {
            t.push(row![m, y, c, u]).unwrap();
        }
        CubeQuery::new()
            .dimensions(vec![
                Dimension::column("model"),
                Dimension::column("year"),
                Dimension::column("color"),
            ])
            .aggregate(AggSpec::new(builtin("SUM").unwrap(), "units").with_name("units"))
            .cube(&t)
            .unwrap()
    }

    #[test]
    fn table_6a_chevy_cross_tab() {
        // Slice the cube to Chevy, then cross-tab color × year.
        let cube = sales_cube();
        let chevy = cube.filter(|r| r[0] == Value::str("Chevy"));
        let xt = cross_tab(&chevy, "color", "year", "units").unwrap();
        assert_eq!(
            xt.schema().names(),
            vec!["color", "1994", "1995", TOTAL_LABEL]
        );
        // Table 6.a: black 50 85 135 / white 40 115 155 / total 90 200 290.
        assert_eq!(xt.rows()[0], row!["black", 50, 85, 135]);
        assert_eq!(xt.rows()[1], row!["white", 40, 115, 155]);
        assert_eq!(xt.rows()[2], row![TOTAL_LABEL, 90, 200, 290]);
    }

    #[test]
    fn table_6b_ford_cross_tab() {
        let cube = sales_cube();
        let ford = cube.filter(|r| r[0] == Value::str("Ford"));
        let xt = cross_tab(&ford, "color", "year", "units").unwrap();
        assert_eq!(xt.rows()[0], row!["black", 50, 85, 135]);
        assert_eq!(xt.rows()[1], row!["white", 10, 75, 85]);
        assert_eq!(xt.rows()[2], row![TOTAL_LABEL, 60, 160, 220]);
    }

    #[test]
    fn table_4_pivot() {
        let cube = sales_cube();
        let pv = pivot_table(&cube, "model", "year", "color", "units").unwrap();
        assert_eq!(
            pv.schema().names(),
            vec![
                "model",
                "1994 black",
                "1994 white",
                "1994 Total",
                "1995 black",
                "1995 white",
                "1995 Total",
                "Grand Total"
            ]
        );
        // Table 4's rows exactly.
        assert_eq!(pv.rows()[0], row!["Chevy", 50, 40, 90, 85, 115, 200, 290]);
        assert_eq!(pv.rows()[1], row!["Ford", 50, 10, 60, 85, 75, 160, 220]);
        assert_eq!(
            pv.rows()[2],
            row!["Grand Total", 100, 50, 150, 170, 190, 360, 510]
        );
    }

    #[test]
    fn missing_cells_are_null() {
        // A sparse cube: no Ford 1995 data at all.
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("units", DataType::Int),
        ]);
        let t = Table::new(
            schema,
            vec![
                row!["Chevy", 1994, 1],
                row!["Chevy", 1995, 2],
                row!["Ford", 1994, 3],
            ],
        )
        .unwrap();
        let cube = CubeQuery::new()
            .dimensions(vec![Dimension::column("model"), Dimension::column("year")])
            .aggregate(AggSpec::new(builtin("SUM").unwrap(), "units").with_name("units"))
            .cube(&t)
            .unwrap();
        let xt = cross_tab(&cube, "model", "year", "units").unwrap();
        let ford = &xt.rows()[1];
        assert_eq!(ford[0], Value::str("Ford"));
        assert_eq!(ford[2], Value::Null); // Ford 1995: never observed
        assert_eq!(ford[3], Value::Int(3));
    }

    #[test]
    fn rejects_non_grouping_dimensions() {
        let cube = sales_cube();
        assert!(cross_tab(&cube, "units", "year", "units").is_err());
        assert!(pivot_table(&cube, "model", "units", "color", "units").is_err());
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::spec::{AggSpec, Dimension};
    use crate::CubeQuery;
    use dc_aggregate::builtin;
    use dc_relation::row;

    #[test]
    fn cross_tab_single_value_dimensions() {
        let schema = Schema::from_pairs(&[
            ("a", DataType::Str),
            ("b", DataType::Str),
            ("x", DataType::Int),
        ]);
        let t = Table::new(schema, vec![row!["only", "one", 7]]).unwrap();
        let cube = CubeQuery::new()
            .dimensions(vec![Dimension::column("a"), Dimension::column("b")])
            .aggregate(AggSpec::new(builtin("SUM").unwrap(), "x").with_name("x"))
            .cube(&t)
            .unwrap();
        let xt = cross_tab(&cube, "a", "b", "x").unwrap();
        // 1 value row + total row; 1 value column + total column.
        assert_eq!(xt.len(), 2);
        assert_eq!(xt.schema().len(), 3);
        assert_eq!(xt.rows()[0], row!["only", 7, 7]);
        assert_eq!(xt.rows()[1], row![TOTAL_LABEL, 7, 7]);
    }

    #[test]
    fn cross_tab_on_empty_cube() {
        let schema = Schema::from_pairs(&[
            ("a", DataType::Str),
            ("b", DataType::Str),
            ("x", DataType::Int),
        ]);
        let t = Table::empty(schema);
        let cube = CubeQuery::new()
            .dimensions(vec![Dimension::column("a"), Dimension::column("b")])
            .aggregate(AggSpec::new(builtin("SUM").unwrap(), "x").with_name("x"))
            .cube(&t)
            .unwrap();
        let xt = cross_tab(&cube, "a", "b", "x").unwrap();
        // Only the (empty) total row/column skeleton.
        assert_eq!(xt.len(), 1);
        assert_eq!(xt.schema().len(), 2);
    }

    #[test]
    fn unknown_columns_error() {
        let cube = {
            let schema = Schema::from_pairs(&[("a", DataType::Str), ("x", DataType::Int)]);
            let t = Table::new(schema, vec![row!["v", 1]]).unwrap();
            CubeQuery::new()
                .dimensions(vec![Dimension::column("a")])
                .aggregate(AggSpec::new(builtin("SUM").unwrap(), "x").with_name("x"))
                .cube(&t)
                .unwrap()
        };
        assert!(cross_tab(&cube, "nope", "a", "x").is_err());
        assert!(cross_tab(&cube, "a", "a", "nope").is_err());
    }
}
