//! The public CUBE / ROLLUP / GROUPING SETS operators.
//!
//! Everything returns a plain [`Table`] — the paper's thesis is precisely
//! that "cubes are relations", so the result can be filtered, joined,
//! unioned, re-aggregated, pivoted, or fed to a report writer like any
//! other table. Grouping columns of the result are marked `ALL ALLOWED`
//! and carry [`Value::All`] on super-aggregate rows; use
//! [`Table::to_null_grouping_encoding`] for the §3.4 NULL + `GROUPING()`
//! encoding instead.
//!
//! Row order is canonical: grouping sets from the core downward, each
//! set's rows sorted by key with `ALL` collating last — the layout of the
//! paper's Table 5.a.

use crate::algorithm::{self, Algorithm};
use crate::error::{CubeError, CubeResult};
use crate::exec::{self, ExecContext, ExecLimits};
use crate::groupby::{materialize, result_schema, ExecStats, Grouped};
use crate::lattice::{GroupingSet, Lattice};
use crate::spec::{AggSpec, CompoundSpec, Dimension};
use dc_relation::{Table, Value};

/// A cube/rollup query: dimensions + aggregates + algorithm choice.
///
/// ```
/// use datacube::{CubeQuery, AggSpec, Dimension};
/// use dc_aggregate::builtin;
/// use dc_relation::{row, DataType, Schema, Table};
///
/// let schema = Schema::from_pairs(&[
///     ("model", DataType::Str),
///     ("year", DataType::Int),
///     ("units", DataType::Int),
/// ]);
/// let sales = Table::new(schema, vec![
///     row!["Chevy", 1994, 50],
///     row!["Ford", 1994, 60],
/// ]).unwrap();
///
/// let cube = CubeQuery::new()
///     .dimensions(vec![Dimension::column("model"), Dimension::column("year")])
///     .aggregate(AggSpec::new(builtin("SUM").unwrap(), "units").with_name("units"))
///     .cube(&sales)
///     .unwrap();
/// // 2 core rows + 2 model rows + 1 year row + grand total.
/// assert_eq!(cube.len(), 2 + 2 + 1 + 1);
/// ```
#[derive(Clone)]
pub struct CubeQuery {
    dims: Vec<Dimension>,
    aggs: Vec<AggSpec>,
    algorithm: Algorithm,
    encoded: bool,
    vectorized: bool,
    radix: Option<bool>,
    rle: Option<bool>,
    limits: ExecLimits,
}

impl Default for CubeQuery {
    fn default() -> Self {
        CubeQuery::new()
    }
}

impl CubeQuery {
    pub fn new() -> Self {
        CubeQuery {
            dims: Vec::new(),
            aggs: Vec::new(),
            algorithm: Algorithm::Auto,
            encoded: true,
            vectorized: true,
            radix: None,
            rle: None,
            limits: ExecLimits::none(),
        }
    }

    /// Set the grouping dimensions (answer-column order).
    pub fn dimensions(mut self, dims: Vec<Dimension>) -> Self {
        self.dims = dims;
        self
    }

    /// Add one dimension.
    pub fn dimension(mut self, dim: Dimension) -> Self {
        self.dims.push(dim);
        self
    }

    /// Add one aggregate to the select list.
    pub fn aggregate(mut self, agg: AggSpec) -> Self {
        self.aggs.push(agg);
        self
    }

    /// Choose the execution algorithm (default [`Algorithm::Auto`]).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Enable or disable the encoded-key engine (default **on**): packed
    /// `u64` group keys over dictionary-encoded dimensions, flat
    /// accumulator arenas, and a parallel from-core cascade. Queries whose
    /// coordinates do not pack into 64 bits fall back to `Row` keys
    /// automatically; results and [`ExecStats`] are identical either way,
    /// so this switch exists for benchmarking and property testing.
    pub fn encoded_keys(mut self, encoded: bool) -> Self {
        self.encoded = encoded;
        self
    }

    /// Enable or disable the vectorized kernel engine (default **on**):
    /// when every aggregate in the select list maps to a built-in kernel
    /// (COUNT, COUNT(*), SUM, MIN, MAX, AVG) and every measure column
    /// extracts as a typed vector, the from-core and parallel paths scan
    /// columnar batches in morsels instead of driving the Init/Iter/Final
    /// protocol row by row. Holistic and user-defined aggregates — or any
    /// measure that fails typed extraction — transparently fall back to
    /// the row path; results and [`ExecStats`] work counters are
    /// identical, and `ExecStats::vectorized_kernels_used` reports
    /// whether the kernels actually ran.
    pub fn vectorized(mut self, vectorized: bool) -> Self {
        self.vectorized = vectorized;
        self
    }

    /// Force (`true`) or suppress (`false`) radix-partitioned grouping in
    /// the vectorized engine. By default the engine decides per query:
    /// radix engages on large inputs whose packed key space overflows one
    /// dense slot table. Only consulted where the kernel engine runs;
    /// results are identical either way, and
    /// `ExecStats::radix_partitions` reports the partition count actually
    /// used.
    pub fn radix(mut self, radix: bool) -> Self {
        self.radix = Some(radix);
        self
    }

    /// Force (`true`) or suppress (`false`) the run-length-compressed
    /// scan in the vectorized engine. By default the engine decides per
    /// query: RLE engages on large inputs whose leading key stream
    /// samples to long runs (sorted or low-cardinality dimensions). Only
    /// consulted where the kernel engine runs; results are identical
    /// either way, and `ExecStats::rle_runs` reports the runs folded.
    pub fn rle(mut self, rle: bool) -> Self {
        self.rle = Some(rle);
        self
    }

    /// This query's execution-path switches, in the form the algorithm
    /// layer consumes.
    fn path_opts(&self) -> crate::algorithm::PathOpts {
        crate::algorithm::PathOpts {
            encoded: self.encoded,
            vectorize: self.vectorized,
            radix: self.radix,
            rle: self.rle,
        }
    }

    /// Attach execution limits: cell/memory budgets, a wall-clock timeout,
    /// and/or a [`crate::exec::CancelToken`]. Default is unlimited.
    /// Exceeding a budget returns `CubeError::ResourceExhausted` (or
    /// `Cancelled`) carrying the [`ExecStats`] accumulated so far; where a
    /// cheaper plan fits the budget the engine degrades instead (dense
    /// array → sparse hash, cascade → per-set streaming) and flags the
    /// switch in the stats.
    pub fn limits(mut self, limits: ExecLimits) -> Self {
        self.limits = limits;
        self
    }

    /// `GROUP BY CUBE`: all 2^N grouping sets.
    pub fn cube(&self, table: &Table) -> CubeResult<Table> {
        Ok(self.cube_with_stats(table)?.0)
    }

    /// CUBE with work counters.
    pub fn cube_with_stats(&self, table: &Table) -> CubeResult<(Table, ExecStats)> {
        let lattice = Lattice::cube(self.dims.len())?;
        self.execute(table, &lattice)
    }

    /// CUBE via the from-core cascade with an explicit parent-selection
    /// policy — the ablation hook for the paper's "pick the * with the
    /// smallest Cᵢ" rule (benchmark C6). Results are identical across
    /// policies; only the merge work differs.
    pub fn cube_with_parent_choice(
        &self,
        table: &Table,
        choice: crate::algorithm::ParentChoice,
    ) -> CubeResult<(Table, ExecStats)> {
        if self.aggs.is_empty() {
            return Err(CubeError::BadSpec(
                "at least one aggregate is required".into(),
            ));
        }
        let lattice = Lattice::cube(self.dims.len())?;
        let schema = table.schema();
        let dims: Vec<_> = self
            .dims
            .iter()
            .map(|d| d.bind(schema))
            .collect::<CubeResult<_>>()?;
        let aggs: Vec<_> = self
            .aggs
            .iter()
            .map(|a| a.bind(schema))
            .collect::<CubeResult<_>>()?;
        let agg_types: Vec<_> = self
            .aggs
            .iter()
            .map(|a| a.output_type(schema))
            .collect::<CubeResult<_>>()?;
        let ctx = ExecContext::new(
            &self.limits,
            exec::estimate_bytes_per_cell(dims.len(), aggs.len()),
        );
        let mut stats = ExecStats::default();
        let run = exec::guard("query", || {
            crate::algorithm::from_core::run_with_choice(
                table.rows(),
                &dims,
                &aggs,
                &lattice,
                choice,
                &mut stats,
                self.path_opts(),
                &ctx,
            )
        });
        let grouped = match run {
            Ok(Ok(grouped)) => grouped,
            Ok(Err(e)) | Err(e) => return Err(e.with_partial_stats(stats)),
        };
        let out_schema = crate::groupby::result_schema(&dims, &aggs, &agg_types)?;
        let out = match grouped {
            Grouped::Rows(maps) => exec::guard("query", || {
                crate::groupby::materialize(out_schema, maps, &aggs, &mut stats, &ctx)
            }),
            Grouped::Kernels(k) => {
                exec::guard("query", || k.materialize(out_schema, &mut stats, &ctx))
            }
        };
        match out {
            Ok(Ok(out)) => Ok((out, stats)),
            Ok(Err(e)) | Err(e) => Err(e.with_partial_stats(stats)),
        }
    }

    /// `GROUP BY ROLLUP`: the N+1 prefix grouping sets.
    pub fn rollup(&self, table: &Table) -> CubeResult<Table> {
        Ok(self.rollup_with_stats(table)?.0)
    }

    /// ROLLUP with work counters.
    pub fn rollup_with_stats(&self, table: &Table) -> CubeResult<(Table, ExecStats)> {
        let lattice = Lattice::rollup(self.dims.len())?;
        self.execute(table, &lattice)
    }

    /// Plain `GROUP BY`: the single full grouping set (Figure 2).
    pub fn group_by(&self, table: &Table) -> CubeResult<Table> {
        let lattice = Lattice::new(self.dims.len(), vec![GroupingSet::full(self.dims.len())])?;
        Ok(self.execute(table, &lattice)?.0)
    }

    /// `GROUP BY GROUPING SETS (...)`: an explicit family, each set given
    /// as dimension indices into this query's dimension list. The core is
    /// computed even if not requested (the cascade needs it) but only the
    /// requested sets are returned.
    pub fn grouping_sets(&self, table: &Table, sets: &[Vec<usize>]) -> CubeResult<Table> {
        Ok(self.grouping_sets_with_stats(table, sets)?.0)
    }

    /// GROUPING SETS with work counters.
    pub fn grouping_sets_with_stats(
        &self,
        table: &Table,
        sets: &[Vec<usize>],
    ) -> CubeResult<(Table, ExecStats)> {
        let requested: Vec<GroupingSet> = sets
            .iter()
            .map(|s| GroupingSet::from_dims(s))
            .collect::<CubeResult<_>>()?;
        let lattice = Lattice::new(self.dims.len(), requested.clone())?;
        self.execute_filtered(table, &lattice, Some(&requested))
    }

    /// The §3.1 compound form: `GROUP BY g ROLLUP r CUBE c`. The spec's
    /// dimension list replaces this query's.
    pub fn compound(&self, table: &Table, spec: &CompoundSpec) -> CubeResult<Table> {
        Ok(self.compound_with_stats(table, spec)?.0)
    }

    /// Compound form with work counters.
    pub fn compound_with_stats(
        &self,
        table: &Table,
        spec: &CompoundSpec,
    ) -> CubeResult<(Table, ExecStats)> {
        let query = CubeQuery {
            dims: spec.dimensions(),
            aggs: self.aggs.clone(),
            algorithm: self.algorithm,
            encoded: self.encoded,
            vectorized: self.vectorized,
            radix: self.radix,
            rle: self.rle,
            limits: self.limits.clone(),
        };
        let sets = spec.grouping_sets()?;
        let lattice = Lattice::new(query.dims.len(), sets.clone())?;
        query.execute_filtered(table, &lattice, Some(&sets))
    }

    fn execute(&self, table: &Table, lattice: &Lattice) -> CubeResult<(Table, ExecStats)> {
        self.execute_filtered(table, lattice, None)
    }

    fn execute_filtered(
        &self,
        table: &Table,
        lattice: &Lattice,
        keep: Option<&[GroupingSet]>,
    ) -> CubeResult<(Table, ExecStats)> {
        if self.aggs.is_empty() {
            return Err(CubeError::BadSpec(
                "at least one aggregate is required".into(),
            ));
        }
        let schema = table.schema();
        let dims: Vec<_> = self
            .dims
            .iter()
            .map(|d| d.bind(schema))
            .collect::<CubeResult<_>>()?;
        let aggs: Vec<_> = self
            .aggs
            .iter()
            .map(|a| a.bind(schema))
            .collect::<CubeResult<_>>()?;
        let agg_types: Vec<_> = self
            .aggs
            .iter()
            .map(|a| a.output_type(schema))
            .collect::<CubeResult<_>>()?;

        let ctx = ExecContext::new(
            &self.limits,
            exec::estimate_bytes_per_cell(dims.len(), aggs.len()),
        );
        let mut stats = ExecStats::default();
        // Outer safety net: `exec::guard` already isolates each UDA
        // callback, but a panic in the engine itself must also surface as
        // a typed error instead of unwinding into the caller.
        let run = exec::guard("query", || {
            algorithm::run(
                self.algorithm,
                table.rows(),
                &dims,
                &aggs,
                lattice,
                &mut stats,
                self.path_opts(),
                &ctx,
            )
        });
        let mut grouped = match run {
            Ok(Ok(grouped)) => grouped,
            Ok(Err(e)) | Err(e) => return Err(e.with_partial_stats(stats)),
        };
        if let Some(keep) = keep {
            match &mut grouped {
                Grouped::Rows(maps) => maps.retain(|(s, _)| keep.contains(s)),
                Grouped::Kernels(k) => k.sets.retain(|(s, _)| keep.contains(s)),
            }
        }
        let out_schema = result_schema(&dims, &aggs, &agg_types)?;
        let out = match grouped {
            Grouped::Rows(maps) => exec::guard("query", || {
                materialize(out_schema, maps, &aggs, &mut stats, &ctx)
            }),
            Grouped::Kernels(k) => {
                exec::guard("query", || k.materialize(out_schema, &mut stats, &ctx))
            }
        };
        match out {
            Ok(Ok(out)) => Ok((out, stats)),
            Ok(Err(e)) | Err(e) => Err(e.with_partial_stats(stats)),
        }
    }
}

/// The cardinality of a full cube per §3: `Π(C_i + 1)` *if the core were
/// dense*. The actual result of [`CubeQuery::cube`] can be smaller when
/// the core is sparse — only cells backed by data are materialized.
pub fn dense_cube_cardinality(cardinalities: &[usize]) -> usize {
    cardinalities.iter().map(|c| c + 1).product()
}

/// Count rows of a cube result that belong to a given grouping set (i.e.
/// have `ALL` exactly in the dropped dimensions). Dimension columns are
/// assumed to be the first `n_dims` columns, as produced by the operators.
pub fn rows_in_set(cube: &Table, n_dims: usize, set: GroupingSet) -> usize {
    cube.rows()
        .iter()
        .filter(|r| (0..n_dims).all(|d| (r[d] != Value::All) == set.contains(d)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AggSpec, Dimension};
    use dc_aggregate::builtin;
    use dc_relation::{row, DataType, Row, Schema};

    /// The paper's Figure 4 SALES table: 2 models × 3 years × 3 colors.
    pub(crate) fn figure4_sales() -> Table {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("color", DataType::Str),
            ("units", DataType::Int),
        ]);
        let mut t = Table::empty(schema);
        let mut unit = 1;
        for model in ["Chevy", "Ford"] {
            for year in [1990i64, 1991, 1992] {
                for color in ["red", "white", "blue"] {
                    t.push(row![model, year, color, unit]).unwrap();
                    unit += 1;
                }
            }
        }
        assert_eq!(t.len(), 18);
        t
    }

    fn sum_units() -> AggSpec {
        AggSpec::new(builtin("SUM").unwrap(), "units").with_name("units")
    }

    fn dims3() -> Vec<Dimension> {
        vec![
            Dimension::column("model"),
            Dimension::column("year"),
            Dimension::column("color"),
        ]
    }

    #[test]
    fn figure_4_cardinality() {
        // "the SALES table has 2 x 3 x 3 = 18 rows, while the derived data
        // cube has 3 x 4 x 4 = 48 rows."
        let sales = figure4_sales();
        let cube = CubeQuery::new()
            .dimensions(dims3())
            .aggregate(sum_units())
            .cube(&sales)
            .unwrap();
        assert_eq!(cube.len(), 48);
        assert_eq!(dense_cube_cardinality(&[2, 3, 3]), 48);
    }

    #[test]
    fn rollup_adds_n_families() {
        let sales = figure4_sales();
        let rollup = CubeQuery::new()
            .dimensions(dims3())
            .aggregate(sum_units())
            .rollup(&sales)
            .unwrap();
        // 18 core + 6 (model,year) + 2 (model) + 1 grand.
        assert_eq!(rollup.len(), 27);
    }

    #[test]
    fn all_algorithms_agree_on_the_cube() {
        let sales = figure4_sales();
        let reference = CubeQuery::new()
            .dimensions(dims3())
            .aggregate(sum_units())
            .algorithm(Algorithm::TwoToTheN)
            .cube(&sales)
            .unwrap();
        for alg in [
            Algorithm::Auto,
            Algorithm::UnionGroupBys,
            Algorithm::FromCore,
            Algorithm::Array,
            Algorithm::Parallel { threads: 3 },
            Algorithm::PipeSort,
        ] {
            let got = CubeQuery::new()
                .dimensions(dims3())
                .aggregate(sum_units())
                .algorithm(alg)
                .cube(&sales)
                .unwrap();
            assert_eq!(got.rows(), reference.rows(), "{alg:?}");
        }
    }

    #[test]
    fn sort_agrees_on_rollup() {
        let sales = figure4_sales();
        let reference = CubeQuery::new()
            .dimensions(dims3())
            .aggregate(sum_units())
            .rollup(&sales)
            .unwrap();
        let sorted = CubeQuery::new()
            .dimensions(dims3())
            .aggregate(sum_units())
            .algorithm(Algorithm::Sort)
            .rollup(&sales)
            .unwrap();
        assert_eq!(sorted.rows(), reference.rows());
    }

    #[test]
    fn group_by_is_the_degenerate_form() {
        let sales = figure4_sales();
        let gb = CubeQuery::new()
            .dimensions(vec![Dimension::column("model")])
            .aggregate(sum_units())
            .group_by(&sales)
            .unwrap();
        assert_eq!(gb.len(), 2);
        assert!(gb.rows().iter().all(|r| r[0] != Value::All));
    }

    #[test]
    fn grouping_sets_returns_only_requested() {
        let sales = figure4_sales();
        let gs = CubeQuery::new()
            .dimensions(dims3())
            .aggregate(sum_units())
            .grouping_sets(&sales, &[vec![0], vec![1]])
            .unwrap();
        // 2 model rows + 3 year rows; no core, no grand total.
        assert_eq!(gs.len(), 5);
        let n_all = |r: &Row| (0..3).filter(|&d| r[d] == Value::All).count();
        assert!(gs.rows().iter().all(|r| n_all(r) == 2));
    }

    #[test]
    fn compound_spec_figure_5() {
        let sales = figure4_sales();
        let spec = CompoundSpec::new()
            .group_by(vec![Dimension::column("model")])
            .rollup(vec![Dimension::column("year")])
            .cube(vec![Dimension::column("color")]);
        let out = CubeQuery::new()
            .aggregate(sum_units())
            .compound(&sales, &spec)
            .unwrap();
        // Sets: {m,y,c}=18, {m,y}=6, {m,c}=6, {m}=2 → 32 rows; model is
        // never ALL.
        assert_eq!(out.len(), 32);
        assert!(out.rows().iter().all(|r| r[0] != Value::All));
    }

    #[test]
    fn result_is_a_relation_cubes_compose() {
        // The paper's central claim: the cube is a relation, so relational
        // operators apply. Filter the cube to super-aggregates only.
        let sales = figure4_sales();
        let cube = CubeQuery::new()
            .dimensions(dims3())
            .aggregate(sum_units())
            .cube(&sales)
            .unwrap();
        let supers = cube.filter(|r| (0..3).any(|d| r[d] == Value::All));
        assert_eq!(supers.len(), 48 - 18);
        // And the GROUPING() predicate separates them (§3.4).
        assert!(supers.rows().iter().all(|r| r.iter().any(Value::grouping)));
    }

    #[test]
    fn empty_input_produces_empty_cube() {
        let sales = figure4_sales();
        let empty = Table::empty(sales.schema().clone());
        let cube = CubeQuery::new()
            .dimensions(dims3())
            .aggregate(sum_units())
            .cube(&empty)
            .unwrap();
        assert!(cube.is_empty());
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let sales = figure4_sales();
        assert!(CubeQuery::new()
            .dimensions(vec![Dimension::column("nope")])
            .aggregate(sum_units())
            .cube(&sales)
            .is_err());
        assert!(CubeQuery::new().dimensions(dims3()).cube(&sales).is_err()); // no aggregates
        assert!(CubeQuery::new()
            .dimensions(dims3())
            .aggregate(sum_units())
            .grouping_sets(&sales, &[vec![7]])
            .is_err()); // dim out of range
    }

    #[test]
    fn rows_in_set_counts_by_all_pattern() {
        let sales = figure4_sales();
        let cube = CubeQuery::new()
            .dimensions(dims3())
            .aggregate(sum_units())
            .cube(&sales)
            .unwrap();
        assert_eq!(rows_in_set(&cube, 3, GroupingSet::full(3)), 18);
        assert_eq!(rows_in_set(&cube, 3, GroupingSet::EMPTY), 1);
        assert_eq!(
            rows_in_set(&cube, 3, GroupingSet::from_dims(&[0]).unwrap()),
            2
        );
    }
}
