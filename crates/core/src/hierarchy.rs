//! Dimension hierarchies and granularity lattices (§3.6).
//!
//! "These dimension tables define a spectrum of aggregation granularities
//! for the dimension. ... The diagram of Figure 6 suggests that the
//! granularities form a pure hierarchy. In reality, the granularities
//! typically form a lattice. To take just a very simple example, days nest
//! in weeks but weeks do not nest in months or quarters or years (some
//! weeks are partly in two years)."
//!
//! A [`Hierarchy`] is an ordered list of [`Level`]s, each mapping a base
//! value to its coarser category. [`Hierarchy::nests_in`] tests the
//! nesting property over actual data, and [`Hierarchy::rollup_dimensions`]
//! turns a nested prefix of levels into the ROLLUP dimension list the
//! paper recommends for functionally dependent attributes ("a cube on
//! these three attributes would be meaningless").

use crate::error::{CubeError, CubeResult};
use crate::spec::Dimension;
use dc_relation::{ColumnDef, DataType, Row, Table, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// One granularity level of a dimension: a named mapping from the base
/// value (e.g. a `Date`) to the level's category value (e.g. the month
/// number or `"1995-W03"`).
#[derive(Clone)]
pub struct Level {
    pub name: Arc<str>,
    pub dtype: DataType,
    map: Arc<dyn Fn(&Value) -> Value + Send + Sync>,
}

impl Level {
    pub fn new(
        name: impl AsRef<str>,
        dtype: DataType,
        map: impl Fn(&Value) -> Value + Send + Sync + 'static,
    ) -> Self {
        Level {
            name: Arc::from(name.as_ref()),
            dtype,
            map: Arc::new(map),
        }
    }

    /// The category of a base value. Token inputs map to themselves so
    /// `ALL`/`NULL` pass through aggregation pipelines unchanged.
    pub fn apply(&self, v: &Value) -> Value {
        if v.is_all() || v.is_null() {
            v.clone()
        } else {
            (self.map)(v)
        }
    }
}

impl std::fmt::Debug for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Level({})", self.name)
    }
}

/// An ordered set of granularity levels over one base column, finest
/// first.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    pub name: Arc<str>,
    levels: Vec<Level>,
}

impl Hierarchy {
    pub fn new(name: impl AsRef<str>, levels: Vec<Level>) -> Self {
        Hierarchy {
            name: Arc::from(name.as_ref()),
            levels,
        }
    }

    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    pub fn level(&self, name: &str) -> CubeResult<&Level> {
        self.levels
            .iter()
            .find(|l| &*l.name == name)
            .ok_or_else(|| CubeError::BadSpec(format!("unknown level: {name}")))
    }

    /// Append one derived column per level to `table`, computed from
    /// `source` — materializing the dimension table of Figure 6 inline.
    pub fn derive_columns(&self, table: &Table, source: &str) -> CubeResult<Table> {
        let src = table.schema().index_of(source)?;
        let mut schema = table.schema().clone();
        for l in &self.levels {
            schema.push(ColumnDef::new(&*l.name, l.dtype))?;
        }
        let mut out = Table::empty(schema);
        for row in table.rows() {
            let mut vals = row.values().to_vec();
            for l in &self.levels {
                vals.push(l.apply(&row[src]));
            }
            out.push_unchecked(Row::new(vals));
        }
        Ok(out)
    }

    /// Does `finer` nest in `coarser` over the base values of `source` in
    /// `table`? True iff each finer category maps into exactly one coarser
    /// category — the lattice test of §3.6.
    pub fn nests_in(
        &self,
        table: &Table,
        source: &str,
        finer: &str,
        coarser: &str,
    ) -> CubeResult<bool> {
        let src = table.schema().index_of(source)?;
        let f = self.level(finer)?;
        let c = self.level(coarser)?;
        let mut seen: HashMap<Value, Value> = HashMap::new();
        for row in table.rows() {
            let base = &row[src];
            if base.is_all() || base.is_null() {
                continue;
            }
            let fine = f.apply(base);
            let coarse = c.apply(base);
            match seen.entry(fine) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != coarse {
                        return Ok(false);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(coarse);
                }
            }
        }
        Ok(true)
    }

    /// ROLLUP dimensions for the named levels, coarsest-first as the
    /// prefix order requires (`ROLLUP year, month, day`). Each dimension
    /// is computed from the base column at position `source_index` in the
    /// target table, so the input needs no derived columns. This is the
    /// paper's prescription for functionally dependent attributes: "a
    /// date functionally defines a week, month, and year. Roll-ups by
    /// year, week, day are common, but a cube on these three attributes
    /// would be meaningless."
    pub fn rollup_dimensions(
        &self,
        table: &Table,
        source: &str,
        coarse_to_fine: &[&str],
    ) -> CubeResult<Vec<Dimension>> {
        let src = table.schema().index_of(source)?;
        coarse_to_fine
            .iter()
            .map(|name| {
                let level = self.level(name)?.clone();
                Ok(Dimension::computed(
                    &*level.name.clone(),
                    level.dtype,
                    move |row: &Row| level.apply(&row[src]),
                ))
            })
            .collect()
    }
}

/// The calendar hierarchy over [`dc_relation::Date`] values: day, week,
/// month, quarter, year — §3.6's canonical example, including the
/// non-nesting week level.
pub fn calendar() -> Hierarchy {
    Hierarchy::new(
        "calendar",
        vec![
            Level::new("day", DataType::Date, |v| match v.as_date() {
                // Normalize to midnight so hours group into days (§2's
                // histogram: "group times into days").
                Some(d) => Value::Date(dc_relation::Date::ymd(d.year(), d.month(), d.day())),
                None => Value::Null,
            }),
            Level::new("week", DataType::Str, |v| match v.as_date() {
                Some(d) => Value::str(format!("{}-W{:02}", d.year(), d.week())),
                None => Value::Null,
            }),
            Level::new("month", DataType::Str, |v| match v.as_date() {
                Some(d) => Value::str(format!("{}-{:02}", d.year(), d.month())),
                None => Value::Null,
            }),
            Level::new("quarter", DataType::Str, |v| match v.as_date() {
                Some(d) => Value::str(format!("{}-Q{}", d.year(), d.quarter())),
                None => Value::Null,
            }),
            Level::new("year", DataType::Int, |v| match v.as_date() {
                Some(d) => Value::Int(i64::from(d.year())),
                None => Value::Null,
            }),
        ],
    )
}

/// A geographic hierarchy from an explicit mapping `base → [level values]`
/// (a dimension table in Figure 6's sense): e.g. office → (district,
/// region, geography).
pub fn from_mapping(
    name: impl AsRef<str>,
    level_names: &[&str],
    mapping: HashMap<Value, Vec<Value>>,
) -> Hierarchy {
    let mapping = Arc::new(mapping);
    let levels = level_names
        .iter()
        .enumerate()
        .map(|(i, ln)| {
            let mapping = Arc::clone(&mapping);
            Level::new(*ln, DataType::Str, move |v: &Value| {
                mapping
                    .get(v)
                    .and_then(|ls| ls.get(i).cloned())
                    .unwrap_or(Value::Null)
            })
        })
        .collect();
    Hierarchy::new(name, levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relation::{Date, Schema};

    fn dates_table() -> Table {
        let schema = Schema::from_pairs(&[("t", DataType::Date), ("x", DataType::Int)]);
        let mut t = Table::empty(schema);
        // Sweep a year boundary that falls mid-week (1998-01-01 was a
        // Thursday) so physical weeks straddle years.
        let mut d = Date::ymd(1997, 12, 1);
        for i in 0..120 {
            t.push(Row::new(vec![Value::Date(d), Value::Int(i)]))
                .unwrap();
            d = d.plus_days(1);
        }
        t
    }

    #[test]
    fn derive_calendar_columns() {
        let cal = calendar();
        let t = cal.derive_columns(&dates_table(), "t").unwrap();
        assert_eq!(
            t.schema().names(),
            vec!["t", "x", "day", "week", "month", "quarter", "year"]
        );
        let first = &t.rows()[0];
        assert_eq!(first[4], Value::str("1997-12"));
        assert_eq!(first[5], Value::str("1997-Q4"));
        assert_eq!(first[6], Value::Int(1997));
    }

    #[test]
    fn days_nest_in_everything() {
        let cal = calendar();
        let t = dates_table();
        for coarser in ["week", "month", "quarter", "year"] {
            assert!(
                cal.nests_in(&t, "t", "day", coarser).unwrap(),
                "day must nest in {coarser}"
            );
        }
    }

    #[test]
    fn months_nest_in_quarters_and_years() {
        let cal = calendar();
        let t = dates_table();
        assert!(cal.nests_in(&t, "t", "month", "quarter").unwrap());
        assert!(cal.nests_in(&t, "t", "month", "year").unwrap());
        assert!(cal.nests_in(&t, "t", "quarter", "year").unwrap());
    }

    #[test]
    fn weeks_do_not_nest_in_months_or_years() {
        // The paper's lattice point: "weeks do not nest in months or
        // quarters or years (some weeks are partly in two years)".
        let cal = calendar();
        let t = dates_table();
        assert!(!cal.nests_in(&t, "t", "week", "month").unwrap());
        // Note our week labels embed the year, so week → year trivially
        // nests *by label*; test the physical week (identified by its
        // Monday start date) instead: the week starting 1997-12-29 holds
        // days of both 1997 and 1998.
        let physical = Hierarchy::new(
            "physical",
            vec![
                Level::new("week_start", DataType::Date, |v| match v.as_date() {
                    Some(d) => Value::Date(d.plus_days(-i64::from(d.weekday()))),
                    None => Value::Null,
                }),
                Level::new("year", DataType::Int, |v| match v.as_date() {
                    Some(d) => Value::Int(i64::from(d.year())),
                    None => Value::Null,
                }),
            ],
        );
        assert!(!physical.nests_in(&t, "t", "week_start", "year").unwrap());
        // Days, of course, do nest in physical weeks.
        assert!(physical
            .nests_in(&t, "t", "week_start", "week_start")
            .unwrap());
    }

    #[test]
    fn mapping_hierarchy() {
        let mut m = HashMap::new();
        m.insert(
            Value::str("San Francisco"),
            vec![
                Value::str("N. California"),
                Value::str("Western"),
                Value::str("US"),
            ],
        );
        m.insert(
            Value::str("Seattle"),
            vec![
                Value::str("Washington"),
                Value::str("Western"),
                Value::str("US"),
            ],
        );
        let h = from_mapping("office", &["district", "region", "geography"], m);
        let sf = Value::str("San Francisco");
        assert_eq!(
            h.level("district").unwrap().apply(&sf),
            Value::str("N. California")
        );
        assert_eq!(h.level("region").unwrap().apply(&sf), Value::str("Western"));
        // Unknown member → NULL, like a failed dimension-table join.
        assert_eq!(
            h.level("region").unwrap().apply(&Value::str("Paris")),
            Value::Null
        );
    }

    #[test]
    fn rollup_along_the_hierarchy() {
        use crate::spec::AggSpec;
        use crate::CubeQuery;
        let cal = calendar();
        let t = dates_table();
        let dims = cal.rollup_dimensions(&t, "t", &["year", "month"]).unwrap();
        let out = CubeQuery::new()
            .dimensions(dims)
            .aggregate(AggSpec::new(dc_aggregate::builtin("COUNT").unwrap(), "x").with_name("days"))
            .rollup(&t)
            .unwrap();
        // 120 days from 1995-12-01 span 4 months across 2 years:
        // 4 core rows + 2 year rows + 1 grand total.
        assert_eq!(out.len(), 7);
        let grand = out
            .rows()
            .iter()
            .find(|r| r[0] == Value::All && r[1] == Value::All)
            .unwrap();
        assert_eq!(grand[2], Value::Int(120));
    }

    #[test]
    fn tokens_pass_through_levels() {
        let cal = calendar();
        let year = cal.level("year").unwrap();
        assert_eq!(year.apply(&Value::All), Value::All);
        assert_eq!(year.apply(&Value::Null), Value::Null);
    }
}
