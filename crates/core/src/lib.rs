//! # datacube — the CUBE / ROLLUP relational operators
//!
//! A from-scratch reproduction of *Gray, Chaudhuri, Bosworth, Layman,
//! Reichart, Venkatrao, Pellow, Pirahesh: "Data Cube: A Relational
//! Aggregation Operator Generalizing Group-By, Cross-Tab, and Sub-Totals"*
//! (ICDE 1996).
//!
//! The paper's thesis: the N-dimensional generalization of GROUP BY — the
//! **data cube** — is itself a relation, representable with the `ALL`
//! pseudo-value, computable efficiently for distributive and algebraic
//! aggregate functions, and composable with the rest of SQL. This crate
//! implements:
//!
//! * the operators — [`CubeQuery::cube`], [`CubeQuery::rollup`],
//!   [`CubeQuery::group_by`], [`CubeQuery::grouping_sets`], and the §3.1
//!   compound algebra [`CompoundSpec`];
//! * the grouping-set [`lattice`] and every §5 computation strategy
//!   ([`Algorithm`]): the 2^N algorithm, union-of-GROUP-BYs, the
//!   from-core scratchpad cascade with smallest-cardinality parent
//!   selection, sort-based ROLLUP, the dense N-dimensional array over
//!   dictionary-encoded dimensions, partition-parallel aggregation, and
//!   PipeSort-style shared sorts over the symmetric chain decomposition
//!   (the paper's \[ADGNRS\] citation);
//! * partial-cube materialization per the paper's \[HRU\] citation
//!   ([`subcube`]): greedy view selection and on-demand answering from
//!   the cheapest materialized ancestor;
//! * cube [`addressing`] (§4): cell lookup, percent-of-total, the
//!   `index()` financial function, and the `ALL()` set function of §3.3;
//! * [`pivot`]: cross-tab and pivot-table rendering (Tables 4 and 6);
//! * [`decoration`]s (§3.5): functionally dependent answer columns that
//!   go NULL on super-aggregate rows;
//! * dimension [`hierarchy`] support (§3.6): calendar and geographic
//!   granularity lattices for star/snowflake designs;
//! * incremental [`maintain`]: materialized cubes updated by
//!   insert/delete/update with §6's taxonomy (SUM is algebraic for
//!   DELETE; MAX is delete-holistic and triggers recomputation).
//!
//! See DESIGN.md in the repository root for the paper-to-module map and
//! EXPERIMENTS.md for the regenerated tables and figures.

pub mod addressing;
pub mod algorithm;
pub mod cache;
pub mod decoration;
pub(crate) mod encode;
pub mod error;
pub mod exec;
pub mod groupby;
pub mod hierarchy;
pub mod lattice;
pub mod maintain;
pub mod operator;
pub mod pivot;
pub mod spec;
pub mod subcube;

pub use algorithm::{Algorithm, ParentChoice};
pub use cache::{rewritable, AncestorRequest, CachedView};
pub use error::{CubeError, CubeResult, Resource};
pub use exec::{CancelToken, ExecContext, ExecLimits};
pub use groupby::{AdmissionVerdict, ExecStats};
pub use lattice::{cube_sets, rollup_sets, GroupingSet, Lattice};
pub use maintain::{DeltaBatch, MaintainStats, MaterializedCube};
pub use operator::{dense_cube_cardinality, rows_in_set, CubeQuery};
pub use spec::{AggSpec, CompoundSpec, Dimension};
pub use subcube::{greedy_select, PartialCube, SizeModel};
