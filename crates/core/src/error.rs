//! Error type for the cube operators.

use dc_aggregate::AggError;
use dc_relation::RelError;
use std::fmt;

/// Errors raised while planning or executing cube queries.
#[derive(Debug, Clone, PartialEq)]
pub enum CubeError {
    /// Underlying relational error (unknown column, arity, ...).
    Rel(RelError),
    /// Underlying aggregate-framework error.
    Agg(AggError),
    /// A grouping-set specification referenced a dimension out of range or
    /// was otherwise malformed.
    BadSpec(String),
    /// The requested algorithm cannot run this query (e.g. the dense array
    /// would exceed the cell budget, or sort-based execution was asked for
    /// a non-rollup lattice).
    Unsupported(String),
}

impl fmt::Display for CubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CubeError::Rel(e) => write!(f, "relational error: {e}"),
            CubeError::Agg(e) => write!(f, "aggregate error: {e}"),
            CubeError::BadSpec(msg) => write!(f, "bad cube specification: {msg}"),
            CubeError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for CubeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CubeError::Rel(e) => Some(e),
            CubeError::Agg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelError> for CubeError {
    fn from(e: RelError) -> Self {
        CubeError::Rel(e)
    }
}

impl From<AggError> for CubeError {
    fn from(e: AggError) -> Self {
        CubeError::Agg(e)
    }
}

/// Convenience alias.
pub type CubeResult<T> = Result<T, CubeError>;
