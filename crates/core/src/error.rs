//! Error type for the cube operators.

use crate::groupby::ExecStats;
use dc_aggregate::AggError;
use dc_relation::RelError;
use std::fmt;

/// Which execution budget a [`CubeError::ResourceExhausted`] trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// The materialized-cell budget (`ExecLimits::max_cells`).
    Cells,
    /// The estimated-memory budget (`ExecLimits::max_memory_bytes`).
    MemoryBytes,
    /// The wall-clock deadline (`ExecLimits::timeout`), in milliseconds.
    TimeMs,
    /// The bounded admission queue of the concurrent cube service: the
    /// query was load-shed because the queue was full (or a failpoint
    /// tripped the admission path). `ExecStats::retry_after_ms` on the
    /// carried stats holds the controller's backoff hint.
    AdmissionQueue,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Cells => write!(f, "cells"),
            Resource::MemoryBytes => write!(f, "memory bytes"),
            Resource::TimeMs => write!(f, "milliseconds"),
            Resource::AdmissionQueue => write!(f, "admission queue slots"),
        }
    }
}

/// Errors raised while planning or executing cube queries.
#[derive(Debug, Clone, PartialEq)]
pub enum CubeError {
    /// Underlying relational error (unknown column, arity, ...).
    Rel(RelError),
    /// Underlying aggregate-framework error.
    Agg(AggError),
    /// A grouping-set specification referenced a dimension out of range or
    /// was otherwise malformed.
    BadSpec(String),
    /// The requested algorithm cannot run this query (e.g. sort-based
    /// execution was asked for a non-rollup lattice).
    Unsupported(String),
    /// An execution budget from `ExecLimits` was exceeded. `stats` carries
    /// the work counters accumulated up to the trip point, so callers can
    /// observe how far the query got.
    ResourceExhausted {
        /// The budget that tripped.
        resource: Resource,
        /// The configured limit.
        limit: u64,
        /// The observed value that exceeded it.
        observed: u64,
        /// Partial work counters at the trip point.
        stats: ExecStats,
    },
    /// The query's cancellation token was triggered. `stats` carries the
    /// partial work counters at the cancellation checkpoint.
    Cancelled {
        /// Partial work counters at the cancellation point.
        stats: ExecStats,
    },
    /// A user-defined aggregate (or a worker running one) panicked; the
    /// unwind was caught and converted instead of aborting the process or
    /// poisoning a thread scope.
    AggPanicked {
        /// Name of the aggregate (or execution site) that panicked.
        agg: String,
        /// The panic payload, rendered as text.
        message: String,
    },
}

impl CubeError {
    /// Attach partial execution stats to budget/cancellation errors; other
    /// variants pass through unchanged. The operator layer calls this once
    /// the global counters are known — deep call sites raise the error
    /// with empty stats.
    #[must_use]
    pub fn with_partial_stats(self, partial: ExecStats) -> Self {
        match self {
            CubeError::ResourceExhausted {
                resource,
                limit,
                observed,
                ..
            } => CubeError::ResourceExhausted {
                resource,
                limit,
                observed,
                stats: partial,
            },
            CubeError::Cancelled { .. } => CubeError::Cancelled { stats: partial },
            other => other,
        }
    }
}

impl fmt::Display for CubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CubeError::Rel(e) => write!(f, "relational error: {e}"),
            CubeError::Agg(e) => write!(f, "aggregate error: {e}"),
            CubeError::BadSpec(msg) => write!(f, "bad cube specification: {msg}"),
            CubeError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            CubeError::ResourceExhausted {
                resource,
                limit,
                observed,
                ..
            } => write!(
                f,
                "resource budget exhausted: {observed} {resource} observed, limit {limit}"
            ),
            CubeError::Cancelled { .. } => write!(f, "query cancelled"),
            CubeError::AggPanicked { agg, message } => {
                write!(f, "aggregate '{agg}' panicked: {message}")
            }
        }
    }
}

impl std::error::Error for CubeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CubeError::Rel(e) => Some(e),
            CubeError::Agg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelError> for CubeError {
    fn from(e: RelError) -> Self {
        CubeError::Rel(e)
    }
}

impl From<AggError> for CubeError {
    fn from(e: AggError) -> Self {
        CubeError::Agg(e)
    }
}

/// Convenience alias.
pub type CubeResult<T> = Result<T, CubeError>;
