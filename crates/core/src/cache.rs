//! Ancestor views for the lattice cache: materialized scratchpads that
//! answer whole grouping-set families without touching base rows.
//!
//! The paper's §5 observation — every node of the cube lattice is
//! computable from any ancestor when the aggregates are distributive or
//! algebraic — is applied *within* one query by the from-core cascade.
//! This module applies it *across* queries: a [`CachedView`] is the core
//! GROUP BY of some dimension set, stored not as final values but as the
//! paper's M-tuples ([`Accumulator::state`]), so any query whose
//! dimensions are a subset of the view's can be answered by Iter_super
//! ([`Accumulator::merge`]) over the view's cells.
//!
//! Storing scratchpads instead of results is what separates this from
//! [`crate::subcube::PartialCube`]: that structure keeps finalized
//! tables and therefore must reject algebraic functions (AVG of AVGs is
//! wrong), while a view here re-derives AVG from its (sum, count) state
//! exactly. The legality line moves from "distributive only" to
//! "anything with bounded, mergeable state" — see [`rewritable`].
//!
//! [`Accumulator::state`]: dc_aggregate::Accumulator::state
//! [`Accumulator::merge`]: dc_aggregate::Accumulator::merge

use crate::error::{CubeError, CubeResult};
use crate::exec::{self, ExecContext};
use crate::groupby::{self, ExecStats, GroupMap};
use crate::lattice::GroupingSet;
use crate::spec::{AggSpec, Dimension};
use dc_aggregate::{Accumulator, AggRef};
use dc_relation::{ColumnDef, DataType, FxHashMap, Row, Schema, Table, Value};
use std::sync::Arc;

/// Whether a query using this aggregate may legally be answered from a
/// materialized ancestor's scratchpads.
///
/// The criterion is the paper's §5 taxonomy plus the Iter_super
/// availability probe: the scratchpad must have a constant size bound
/// (distributive or algebraic — holistic state is the whole multiset,
/// so caching it buys nothing over the base table) and `merge` must
/// genuinely fold sub-aggregate state (a UDA built without
/// `state()`/`merge()` would silently drop data). Everything else falls
/// through to a base scan.
pub fn rewritable(func: &AggRef) -> bool {
    func.kind().bounded_state() && func.mergeable()
}

/// One materialized lattice node: the core GROUP BY over `dims`, each
/// cell carrying per-aggregate scratchpad state rather than final
/// values.
pub struct CachedView {
    dim_names: Vec<Arc<str>>,
    dim_types: Vec<DataType>,
    agg_names: Vec<Arc<str>>,
    agg_types: Vec<DataType>,
    funcs: Vec<AggRef>,
    /// The unbound specs the view was built from, kept so a delta batch
    /// can be folded in ([`CachedView::absorb`]) by re-running the same
    /// core build over just the delta rows.
    dims: Vec<Dimension>,
    specs: Vec<AggSpec>,
    /// Core cells: full key over the view's dimensions (never containing
    /// `ALL` — `ALL` is introduced only when projecting onto a coarser
    /// set) plus one `state()` tuple per aggregate, sorted by key.
    cells: Vec<(Row, Vec<Vec<Value>>)>,
    base_rows: u64,
}

/// How a query maps onto a [`CachedView`] it wants answered from.
///
/// All indices are *view* positions: `dim_map[i]` is the view dimension
/// backing query dimension `i`, `agg_map[k]` the view aggregate backing
/// query aggregate `k`. Grouping sets are over the query's dimensions.
pub struct AncestorRequest<'a> {
    pub dim_map: &'a [usize],
    pub dim_names: &'a [&'a str],
    pub agg_map: &'a [usize],
    pub agg_names: &'a [&'a str],
    pub sets: &'a [GroupingSet],
}

impl std::fmt::Debug for CachedView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedView")
            .field("dims", &self.dim_names)
            .field("aggs", &self.agg_names)
            .field("cells", &self.cells.len())
            .field("base_rows", &self.base_rows)
            .finish()
    }
}

impl CachedView {
    /// Materialize the view: one governed core scan of `table` grouped by
    /// all of `dims`, keeping each cell's scratchpads as state tuples.
    ///
    /// Fails with [`CubeError::Unsupported`] if any aggregate is not
    /// [`rewritable`] — callers probe legality *before* paying the scan.
    pub fn build(table: &Table, dims: &[Dimension], aggs: &[AggSpec]) -> CubeResult<CachedView> {
        if dims.len() > GroupingSet::MAX_DIMS {
            return Err(CubeError::BadSpec(format!(
                "{} dimensions exceeds the {}-dimension limit",
                dims.len(),
                GroupingSet::MAX_DIMS
            )));
        }
        for a in aggs {
            if !rewritable(&a.func) {
                return Err(CubeError::Unsupported(format!(
                    "{} cannot be answered from cached ancestor state \
                     (holistic or non-mergeable)",
                    a.func.name()
                )));
            }
        }
        let schema = table.schema();
        let bdims = dims
            .iter()
            .map(|d| d.bind(schema))
            .collect::<CubeResult<Vec<_>>>()?;
        let baggs = aggs
            .iter()
            .map(|a| a.bind(schema))
            .collect::<CubeResult<Vec<_>>>()?;
        let agg_types = aggs
            .iter()
            .map(|a| a.output_type(schema))
            .collect::<CubeResult<Vec<_>>>()?;
        let mut stats = ExecStats::default();
        let ctx = ExecContext::unlimited();
        let core: GroupMap = groupby::compute_core(table.rows(), &bdims, &baggs, &mut stats, &ctx)?;
        let mut cells: Vec<(Row, Vec<Vec<Value>>)> = Vec::with_capacity(core.len());
        for (key, accs) in core {
            let states = accs
                .iter()
                .zip(baggs.iter())
                .map(|(acc, a)| exec::guard(a.func.name(), || acc.state()))
                .collect::<CubeResult<Vec<_>>>()?;
            cells.push((key, states));
        }
        cells.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(CachedView {
            dim_names: bdims.iter().map(|d| d.name.clone()).collect(),
            dim_types: bdims.iter().map(|d| d.dtype).collect(),
            agg_names: baggs.iter().map(|a| a.output.clone()).collect(),
            agg_types,
            funcs: baggs.iter().map(|a| Arc::clone(&a.func)).collect(),
            dims: dims.to_vec(),
            specs: aggs.to_vec(),
            cells,
            base_rows: table.len() as u64,
        })
    }

    /// Fold a batch of freshly inserted base rows into the view by
    /// Iter_super, producing the view that `build` would have produced
    /// over the enlarged table — without rescanning it.
    ///
    /// This is §6's insert path applied to the cache: every [`rewritable`]
    /// aggregate is mergeable by definition, so the delta's scratchpads
    /// combine with the stored ones cell-for-cell (a sorted two-way
    /// merge). Deletes are *not* absorbed — retraction is the holistic
    /// direction — so callers fall back to version-bump invalidation for
    /// those.
    pub fn absorb(&self, delta: &Table) -> CubeResult<CachedView> {
        exec::failpoint("cache::absorb")?;
        let fresh = CachedView::build(delta, &self.dims, &self.specs)?;
        let mut cells: Vec<(Row, Vec<Vec<Value>>)> =
            Vec::with_capacity(self.cells.len() + fresh.cells.len());
        let (mut i, mut j) = (0, 0);
        while i < self.cells.len() && j < fresh.cells.len() {
            match self.cells[i].0.cmp(&fresh.cells[j].0) {
                std::cmp::Ordering::Less => {
                    cells.push(self.cells[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    cells.push(fresh.cells[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let merged = self
                        .funcs
                        .iter()
                        .enumerate()
                        .map(|(k, f)| {
                            let mut acc = exec::guard(f.name(), || f.init())?;
                            exec::guard(f.name(), || acc.merge(&self.cells[i].1[k]))?;
                            exec::guard(f.name(), || acc.merge(&fresh.cells[j].1[k]))?;
                            exec::guard(f.name(), || acc.state())
                        })
                        .collect::<CubeResult<Vec<_>>>()?;
                    cells.push((self.cells[i].0.clone(), merged));
                    i += 1;
                    j += 1;
                }
            }
        }
        cells.extend_from_slice(&self.cells[i..]);
        cells.extend_from_slice(&fresh.cells[j..]);
        Ok(CachedView {
            dim_names: self.dim_names.clone(),
            dim_types: self.dim_types.clone(),
            agg_names: self.agg_names.clone(),
            agg_types: self.agg_types.clone(),
            funcs: self.funcs.clone(),
            dims: self.dims.clone(),
            specs: self.specs.clone(),
            cells,
            base_rows: self.base_rows + fresh.base_rows,
        })
    }

    /// Number of core cells — the view's cardinality, the quantity both
    /// smallest-ancestor lookup and benefit-per-cell eviction rank by.
    pub fn cell_count(&self) -> u64 {
        self.cells.len() as u64
    }

    /// Base-table rows the view summarizes (the scan it saves per hit).
    pub fn base_rows(&self) -> u64 {
        self.base_rows
    }

    /// View dimension output names, in the view's column order.
    pub fn dim_names(&self) -> impl Iterator<Item = &str> {
        self.dim_names.iter().map(|n| &**n)
    }

    /// View aggregate output names, in the view's column order.
    pub fn agg_names(&self) -> impl Iterator<Item = &str> {
        self.agg_names.iter().map(|n| &**n)
    }

    /// The view's own grouping set in its dimension order — what
    /// `ExecStats::cache_ancestor_bits` reports on a hit.
    pub fn ancestor_bits(&self) -> u32 {
        GroupingSet::full(self.dim_names.len()).bits()
    }

    /// Answer a grouping-set family from this view's cells by Iter_super
    /// (Figure 8): for every requested set, project each core cell onto
    /// the set, merge scratchpad states per projected key, and finalize.
    ///
    /// Output is bit-identical to the operator's: sets ordered from the
    /// core down (length descending, then bitmask ascending, deduplicated)
    /// and each set's rows sorted by key. `ctx` is the *query's* context —
    /// cell creation charges the caller's budget, so a governed session
    /// cannot exceed its grant just because the answer came from cache.
    pub fn answer(&self, req: &AncestorRequest<'_>, ctx: &ExecContext) -> CubeResult<Table> {
        exec::failpoint("cache::rewrite")?;
        let n_dims = req.dim_map.len();
        if req.dim_names.len() != n_dims || req.agg_names.len() != req.agg_map.len() {
            return Err(CubeError::BadSpec(
                "ancestor request name/index arity mismatch".into(),
            ));
        }
        if let Some(&d) = req.dim_map.iter().find(|&&d| d >= self.dim_names.len()) {
            return Err(CubeError::BadSpec(format!(
                "ancestor request maps query dimension to view index {d}, \
                 but the view has {} dimensions",
                self.dim_names.len()
            )));
        }
        if let Some(&a) = req.agg_map.iter().find(|&&a| a >= self.funcs.len()) {
            return Err(CubeError::BadSpec(format!(
                "ancestor request maps query aggregate to view index {a}, \
                 but the view has {} aggregates",
                self.funcs.len()
            )));
        }
        let mut sets: Vec<GroupingSet> = req.sets.to_vec();
        sets.sort_by(|a, b| b.len().cmp(&a.len()).then(a.bits().cmp(&b.bits())));
        sets.dedup();

        let mut cols: Vec<ColumnDef> = req
            .dim_names
            .iter()
            .zip(req.dim_map.iter())
            .map(|(name, &d)| ColumnDef::with_all(name, self.dim_types[d]))
            .collect();
        for (name, &a) in req.agg_names.iter().zip(req.agg_map.iter()) {
            cols.push(ColumnDef::new(name, self.agg_types[a]));
        }
        let mut out = Table::empty(Schema::new(cols)?);

        for set in sets {
            ctx.checkpoint()?;
            let mut map: FxHashMap<Row, Vec<Box<dyn Accumulator>>> = FxHashMap::default();
            for (i, (key, states)) in self.cells.iter().enumerate() {
                ctx.tick(i)?;
                let projected = Row::new(
                    req.dim_map
                        .iter()
                        .enumerate()
                        .map(|(q, &d)| {
                            if set.contains(q) {
                                key[d].clone()
                            } else {
                                Value::All
                            }
                        })
                        .collect(),
                );
                use std::collections::hash_map::Entry;
                let accs = match map.entry(projected) {
                    Entry::Occupied(e) => e.into_mut(),
                    Entry::Vacant(e) => {
                        ctx.charge_cells(1)?;
                        let fresh = req
                            .agg_map
                            .iter()
                            .map(|&a| exec::guard(self.funcs[a].name(), || self.funcs[a].init()))
                            .collect::<CubeResult<Vec<_>>>()?;
                        e.insert(fresh)
                    }
                };
                for (acc, &a) in accs.iter_mut().zip(req.agg_map.iter()) {
                    exec::guard(self.funcs[a].name(), || acc.merge(&states[a]))?;
                }
            }
            let mut cells: Vec<(Row, Vec<Box<dyn Accumulator>>)> = map.into_iter().collect();
            cells.sort_by(|a, b| a.0.cmp(&b.0));
            for (i, (key, accs)) in cells.into_iter().enumerate() {
                ctx.tick(i)?;
                let mut vals = key.0;
                for (acc, &a) in accs.iter().zip(req.agg_map.iter()) {
                    vals.push(exec::guard(self.funcs[a].name(), || acc.final_value())?);
                }
                out.push_unchecked(Row::new(vals));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::CubeQuery;
    use dc_aggregate::builtin;
    use dc_relation::row;

    fn sales() -> Table {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("units", DataType::Int),
        ]);
        Table::new(
            schema,
            vec![
                row!["Chevy", 1994, 50],
                row!["Chevy", 1994, 40],
                row!["Chevy", 1995, 85],
                row!["Ford", 1994, 60],
                row!["Ford", Value::Null, 10],
            ],
        )
        .unwrap()
    }

    fn dims(names: &[&str]) -> Vec<Dimension> {
        names.iter().map(Dimension::column).collect()
    }

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::new(builtin("SUM").unwrap(), "units").with_name("s"),
            AggSpec::new(builtin("AVG").unwrap(), "units").with_name("a"),
        ]
    }

    #[test]
    fn rewritable_follows_taxonomy() {
        assert!(rewritable(&builtin("SUM").unwrap()));
        assert!(rewritable(&builtin("AVG").unwrap())); // algebraic: OK here
        assert!(rewritable(&builtin("VARIANCE").unwrap()));
        assert!(!rewritable(&builtin("MEDIAN").unwrap()));
        assert!(!rewritable(&builtin("COUNT DISTINCT").unwrap()));
    }

    #[test]
    fn build_rejects_holistic() {
        let t = sales();
        let holistic = vec![AggSpec::new(builtin("MEDIAN").unwrap(), "units")];
        let err = CachedView::build(&t, &dims(&["model"]), &holistic).unwrap_err();
        assert!(matches!(err, CubeError::Unsupported(_)));
    }

    /// The decisive case for scratchpad (vs final-value) caching: a full
    /// CUBE with an algebraic AVG answered from the two-dimensional core
    /// must equal the operator's answer exactly, including the ALL rows.
    #[test]
    fn cube_from_ancestor_matches_operator() {
        let t = sales();
        let view = CachedView::build(&t, &dims(&["model", "year"]), &specs()).unwrap();
        let sets = crate::lattice::cube_sets(2).unwrap();
        let got = view
            .answer(
                &AncestorRequest {
                    dim_map: &[0, 1],
                    dim_names: &["model", "year"],
                    agg_map: &[0, 1],
                    agg_names: &["s", "a"],
                    sets: &sets,
                },
                &ExecContext::unlimited(),
            )
            .unwrap();
        let expected = CubeQuery::new()
            .dimensions(dims(&["model", "year"]))
            .aggregate(specs()[0].clone())
            .aggregate(specs()[1].clone())
            .cube(&t)
            .unwrap();
        assert_eq!(got.rows(), expected.rows());
        assert_eq!(view.ancestor_bits(), 0b11);
    }

    /// A coarser query (GROUP BY year) answered from the (model, year)
    /// ancestor, with the query's own column order and names. NULL keys
    /// stay NULL — only dropped dimensions become ALL.
    #[test]
    fn subset_query_projects_and_renames() {
        let t = sales();
        let view = CachedView::build(&t, &dims(&["model", "year"]), &specs()).unwrap();
        let got = view
            .answer(
                &AncestorRequest {
                    dim_map: &[1],
                    dim_names: &["year"],
                    agg_map: &[0],
                    agg_names: &["total"],
                    sets: &[GroupingSet::full(1)],
                },
                &ExecContext::unlimited(),
            )
            .unwrap();
        let expected = CubeQuery::new()
            .dimensions(dims(&["year"]))
            .aggregate(specs()[0].clone().with_name("total"))
            .group_by(&t)
            .unwrap();
        assert_eq!(got.rows(), expected.rows());
        assert_eq!(got.schema().column("total").unwrap().dtype, DataType::Int);
    }

    #[test]
    fn answer_charges_the_callers_budget() {
        let t = sales();
        let view = CachedView::build(&t, &dims(&["model", "year"]), &specs()).unwrap();
        let ctx = ExecContext::new(&crate::exec::ExecLimits::none().max_cells(2), 1);
        let err = view
            .answer(
                &AncestorRequest {
                    dim_map: &[0, 1],
                    dim_names: &["model", "year"],
                    agg_map: &[0],
                    agg_names: &["s"],
                    sets: &[GroupingSet::full(2)],
                },
                &ctx,
            )
            .unwrap_err();
        assert!(matches!(err, CubeError::ResourceExhausted { .. }));
    }

    /// Absorbing a delta must be indistinguishable from rebuilding over
    /// the concatenated table — same cells, same answers, same count.
    #[test]
    fn absorb_equals_rebuild_over_union() {
        let t = sales();
        let view = CachedView::build(&t, &dims(&["model", "year"]), &specs()).unwrap();
        let delta = Table::new(
            t.schema().clone(),
            vec![
                row!["Ford", 1995, 20],        // brand-new cell
                row!["Chevy", 1994, 5],        // merges into an existing cell
                row!["Ford", Value::Null, 30], // NULL key merges too
            ],
        )
        .unwrap();
        let absorbed = view.absorb(&delta).unwrap();

        let mut union_rows = t.rows().to_vec();
        union_rows.extend(delta.rows().iter().cloned());
        let union = Table::new(t.schema().clone(), union_rows).unwrap();
        let rebuilt = CachedView::build(&union, &dims(&["model", "year"]), &specs()).unwrap();

        let sets = crate::lattice::cube_sets(2).unwrap();
        let req = AncestorRequest {
            dim_map: &[0, 1],
            dim_names: &["model", "year"],
            agg_map: &[0, 1],
            agg_names: &["s", "a"],
            sets: &sets,
        };
        let ctx = ExecContext::unlimited();
        assert_eq!(
            absorbed.answer(&req, &ctx).unwrap().rows(),
            rebuilt.answer(&req, &ctx).unwrap().rows()
        );
        assert_eq!(absorbed.cell_count(), rebuilt.cell_count());
        assert_eq!(absorbed.base_rows(), rebuilt.base_rows());
    }

    #[test]
    fn bad_maps_are_rejected() {
        let t = sales();
        let view = CachedView::build(&t, &dims(&["model"]), &specs()).unwrap();
        let ctx = ExecContext::unlimited();
        let bad_dim = AncestorRequest {
            dim_map: &[7],
            dim_names: &["model"],
            agg_map: &[0],
            agg_names: &["s"],
            sets: &[GroupingSet::full(1)],
        };
        assert!(matches!(
            view.answer(&bad_dim, &ctx),
            Err(CubeError::BadSpec(_))
        ));
        let bad_agg = AncestorRequest {
            dim_map: &[0],
            dim_names: &["model"],
            agg_map: &[9],
            agg_names: &["s"],
            sets: &[GroupingSet::full(1)],
        };
        assert!(matches!(
            view.answer(&bad_agg, &ctx),
            Err(CubeError::BadSpec(_))
        ));
    }
}
