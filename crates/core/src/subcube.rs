//! Partial cube materialization (§6's pointer to Harinarayan, Rajaraman
//! and Ullman, "Implementing Data Cubes Efficiently", SIGMOD 1996).
//!
//! "Harinarayn, Rajaraman, and Ullman have interesting ideas on
//! pre-computing a sub-cube of the cube." The full cube has 2^N grouping
//! sets; materializing all of them may be too expensive, but any set can
//! be *answered* from any materialized superset (for distributive and
//! algebraic functions — the same property the from-core cascade uses).
//! HRU's greedy algorithm picks the k views whose materialization most
//! reduces the total cost of answering every set, and is provably within
//! (1 − 1/e) of optimal.
//!
//! [`greedy_select`] implements the algorithm over estimated view sizes;
//! [`PartialCube`] materializes a selection and answers arbitrary
//! grouping-set queries from the cheapest materialized ancestor.

use crate::error::{CubeError, CubeResult};
use crate::groupby::ExecStats;
use crate::lattice::{cube_sets, GroupingSet};
use crate::spec::{AggSpec, Dimension};
use crate::CubeQuery;
use dc_relation::{Row, Table, Value};
use std::collections::HashMap;

/// Estimated row count of each grouping set, the quantity HRU's benefit
/// function works with.
#[derive(Debug, Clone)]
pub struct SizeModel {
    sizes: HashMap<GroupingSet, u64>,
}

impl SizeModel {
    /// The standard independence estimate: |set| ≈ min(Π C_i, T) — the
    /// product of member cardinalities capped by the base row count.
    pub fn independent(cardinalities: &[usize], base_rows: u64) -> CubeResult<Self> {
        let n = cardinalities.len();
        let mut sizes = HashMap::new();
        for set in cube_sets(n)? {
            let product: u64 = set
                .dims()
                .iter()
                .map(|&d| cardinalities[d].max(1) as u64)
                .product();
            sizes.insert(set, product.min(base_rows).max(1));
        }
        Ok(SizeModel { sizes })
    }

    /// Exact sizes measured from a computed cube relation (useful in
    /// tests and when the cube is cheap enough to census).
    pub fn measured(cube: &Table, n_dims: usize) -> CubeResult<Self> {
        let mut sizes: HashMap<GroupingSet, u64> = HashMap::new();
        for row in cube.rows() {
            let mut mask = GroupingSet::EMPTY;
            for d in 0..n_dims {
                if !row[d].is_all() {
                    mask = mask.with(d);
                }
            }
            *sizes.entry(mask).or_insert(0) += 1;
        }
        for set in cube_sets(n_dims)? {
            sizes.entry(set).or_insert(1);
        }
        Ok(SizeModel { sizes })
    }

    pub fn size(&self, set: GroupingSet) -> u64 {
        self.sizes.get(&set).copied().unwrap_or(1)
    }
}

/// Cost of answering every grouping set given `materialized` views: each
/// set reads the smallest materialized superset (HRU's linear cost
/// model). The core must be in `materialized`.
pub fn total_cost(sets: &[GroupingSet], materialized: &[GroupingSet], model: &SizeModel) -> u64 {
    sets.iter()
        .map(|&s| {
            materialized
                .iter()
                .filter(|m| s.subset_of(**m))
                .map(|&m| model.size(m))
                .min()
                .unwrap_or(u64::MAX)
        })
        .sum()
}

/// One greedy pick: the view (with its benefit) that most reduces total
/// cost, per HRU's benefit function.
fn best_candidate(
    sets: &[GroupingSet],
    materialized: &[GroupingSet],
    model: &SizeModel,
) -> Option<(GroupingSet, u64)> {
    let mut best: Option<(GroupingSet, u64)> = None;
    for &v in sets {
        if materialized.contains(&v) {
            continue;
        }
        // Benefit of v: for every set w ⊆ v, the saving over its current
        // cheapest ancestor.
        let v_size = model.size(v);
        let mut benefit = 0u64;
        for &w in sets {
            if !w.subset_of(v) {
                continue;
            }
            let current = materialized
                .iter()
                .filter(|m| w.subset_of(**m))
                .map(|&m| model.size(m))
                .min()
                .unwrap_or(u64::MAX);
            benefit += current.saturating_sub(v_size);
        }
        match best {
            Some((_, b)) if b >= benefit => {}
            _ => best = Some((v, benefit)),
        }
    }
    best
}

/// HRU's greedy algorithm: starting from the core (always materialized),
/// pick `k` further views maximizing marginal benefit. Returns the
/// selection (core first, then picks in order) and the final total cost.
pub fn greedy_select(
    n_dims: usize,
    k: usize,
    model: &SizeModel,
) -> CubeResult<(Vec<GroupingSet>, u64)> {
    let sets = cube_sets(n_dims)?;
    let core = GroupingSet::full(n_dims);
    let mut materialized = vec![core];
    for _ in 0..k.min(sets.len().saturating_sub(1)) {
        let Some((pick, benefit)) = best_candidate(&sets, &materialized, model) else {
            break;
        };
        if benefit == 0 {
            break; // nothing left to gain
        }
        materialized.push(pick);
    }
    let cost = total_cost(&sets, &materialized, model);
    Ok((materialized, cost))
}

/// A cube materialized only at the selected grouping sets; any other set
/// is answered on demand by aggregating the cheapest materialized
/// ancestor (sound for distributive and algebraic aggregates — the same
/// Iter_super property the cascade relies on).
pub struct PartialCube {
    dims: Vec<Dimension>,
    aggs: Vec<AggSpec>,
    n_dims: usize,
    model: SizeModel,
    /// Materialized views: set → its relation (dims + agg columns).
    views: HashMap<GroupingSet, Table>,
    stats: ExecStats,
}

impl PartialCube {
    /// Materialize `selection` (must include the core) over `table`.
    pub fn materialize(
        table: &Table,
        dims: Vec<Dimension>,
        aggs: Vec<AggSpec>,
        selection: &[GroupingSet],
    ) -> CubeResult<Self> {
        let n_dims = dims.len();
        let core = GroupingSet::full(n_dims);
        if !selection.contains(&core) {
            return Err(CubeError::BadSpec(
                "a partial cube must materialize the core grouping set".into(),
            ));
        }
        let query = CubeQuery::new().dimensions(dims.clone());
        let query = aggs.iter().fold(query, |q, a| q.aggregate(a.clone()));
        let sets: Vec<Vec<usize>> = selection.iter().map(|s| s.dims()).collect();
        let all = query.grouping_sets(table, &sets)?;

        // Split the one relation into per-set views.
        let mut views: HashMap<GroupingSet, Table> = selection
            .iter()
            .map(|&s| (s, Table::empty(all.schema().clone())))
            .collect();
        for row in all.rows() {
            let mut mask = GroupingSet::EMPTY;
            for d in 0..n_dims {
                if !row[d].is_all() {
                    mask = mask.with(d);
                }
            }
            views
                .get_mut(&mask)
                // cube-lint: allow(panic, views holds one table per selected grouping set)
                .expect("row belongs to a selected set")
                .push_unchecked(row.clone());
        }
        let model = SizeModel::measured(&all, n_dims)?;
        Ok(PartialCube {
            dims,
            aggs,
            n_dims,
            model,
            views,
            stats: ExecStats::default(),
        })
    }

    /// Answer one grouping set: directly if materialized, otherwise by
    /// re-aggregating the smallest materialized superset.
    pub fn query(&mut self, set: GroupingSet) -> CubeResult<Table> {
        if let Some(v) = self.views.get(&set) {
            return Ok(v.clone());
        }
        let ancestor = self
            .views
            .keys()
            .copied()
            .filter(|m| set.subset_of(*m))
            .min_by_key(|&m| self.model.size(m))
            .ok_or_else(|| CubeError::BadSpec(format!("no materialized ancestor covers {set}")))?;
        let source = &self.views[&ancestor];
        self.stats.rows_scanned += source.len() as u64;

        // Re-aggregate the ancestor: group by the surviving dimensions,
        // folding each aggregate column with its own function's merge...
        // but the view stores *final* values, so this only works for
        // functions whose final value is a valid input (distributive). To
        // stay correct for algebraic functions too, recompute through the
        // operator over the ancestor's rows reinterpreted as base data is
        // NOT sound for AVG — so we restrict to distributive aggregates
        // here and document it.
        for a in &self.aggs {
            if !a.func.kind().bounded_state() || a.func.kind() == dc_aggregate::AggKind::Algebraic {
                return Err(CubeError::Unsupported(format!(
                    "answering unmaterialized sets from final values requires \
                     distributive aggregates; {} is {:?} (materialize it, or \
                     store scratchpads)",
                    a.func.name(),
                    a.func.kind()
                )));
            }
        }
        let dim_names: Vec<String> = self.dims.iter().map(|d| d.name.to_string()).collect();
        let surviving: Vec<Dimension> = set
            .dims()
            .iter()
            .map(|&d| Dimension::column(&dim_names[d]))
            .collect();
        let reagg_specs: Vec<AggSpec> = self
            .aggs
            .iter()
            .map(|a| {
                // G = F for SUM/MIN/MAX; G = SUM for COUNT (§5).
                let func = if a.func.name() == "COUNT" || a.func.name() == "COUNT(*)" {
                    // cube-lint: allow(panic, SUM is a static built-in; covered by registry tests)
                    dc_aggregate::builtin("SUM").expect("SUM is built in")
                } else {
                    a.func.clone()
                };
                AggSpec::new(func, &*a.output).with_name(&*a.output)
            })
            .collect();
        let q = CubeQuery::new().dimensions(surviving);
        let q = reagg_specs.into_iter().fold(q, |q, s| q.aggregate(s));
        let grouped = q.group_by(source)?;

        // Re-expand to the full dimension arity with ALL in dropped slots.
        let mut out = Table::empty(self.views[&ancestor].schema().clone());
        for row in grouped.rows() {
            let mut vals = Vec::with_capacity(self.n_dims + self.aggs.len());
            let mut it = row.values().iter();
            for d in 0..self.n_dims {
                if set.contains(d) {
                    // cube-lint: allow(panic, grouped schema has one column per surviving dim)
                    vals.push(it.next().expect("surviving dim present").clone());
                } else {
                    vals.push(Value::All);
                }
            }
            vals.extend(it.cloned());
            out.push_unchecked(Row::new(vals));
        }
        Ok(out)
    }

    /// Rows read answering on-demand queries so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// The materialized sets.
    pub fn materialized(&self) -> Vec<GroupingSet> {
        let mut v: Vec<GroupingSet> = self.views.keys().copied().collect();
        v.sort_by(|a, b| b.len().cmp(&a.len()).then(a.bits().cmp(&b.bits())));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_aggregate::builtin;
    use dc_relation::{row, DataType, Schema};

    fn sum_units() -> AggSpec {
        AggSpec::new(builtin("SUM").unwrap(), "units").with_name("units")
    }

    fn base() -> Table {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("color", DataType::Str),
            ("units", DataType::Int),
        ]);
        let mut t = Table::empty(schema);
        for (m, y, c, u) in [
            ("Chevy", 1994, "black", 50),
            ("Chevy", 1994, "white", 40),
            ("Chevy", 1995, "black", 85),
            ("Ford", 1994, "black", 50),
            ("Ford", 1995, "white", 75),
        ] {
            t.push(row![m, y, c, u]).unwrap();
        }
        t
    }

    fn dims() -> Vec<Dimension> {
        vec![
            Dimension::column("model"),
            Dimension::column("year"),
            Dimension::column("color"),
        ]
    }

    #[test]
    fn independence_model_caps_at_base_rows() {
        let m = SizeModel::independent(&[100, 100, 100], 5_000).unwrap();
        assert_eq!(m.size(GroupingSet::full(3)), 5_000); // 10^6 capped
        assert_eq!(m.size(GroupingSet::from_dims(&[0]).unwrap()), 100);
        assert_eq!(m.size(GroupingSet::EMPTY), 1);
    }

    #[test]
    fn greedy_prefers_high_benefit_views() {
        // 3 dims with very different cardinalities: materializing the
        // small {2}-ancestors saves the most.
        let model = SizeModel::independent(&[1_000, 1_000, 2], 1_000_000).unwrap();
        let (selection, _) = greedy_select(3, 1, &model).unwrap();
        assert_eq!(selection.len(), 2);
        let pick = selection[1];
        // The pick must be a 2-dim view (answers four sets), and the
        // cheapest such view includes the tiny dimension: {0,2} or {1,2}.
        assert_eq!(pick.len(), 2);
        assert!(
            pick.contains(2),
            "greedy should pick a view shrunk by the C=2 dim"
        );
    }

    #[test]
    fn greedy_cost_is_monotone_in_k() {
        let model = SizeModel::independent(&[50, 20, 10, 5], 100_000).unwrap();
        let mut last = u64::MAX;
        for k in 0..=15 {
            let (_, cost) = greedy_select(4, k, &model).unwrap();
            assert!(cost <= last, "cost must not increase with k (k={k})");
            last = cost;
        }
        // Materializing everything: every set answered at its own size.
        let sets = cube_sets(4).unwrap();
        let all_cost = total_cost(&sets, &sets, &model);
        let (_, max_k_cost) = greedy_select(4, 15, &model).unwrap();
        assert_eq!(max_k_cost, all_cost);
    }

    #[test]
    fn greedy_is_competitive_with_exhaustive_optimum() {
        // HRU prove greedy is within (1 − 1/e) ≈ 0.63 of the optimal
        // *benefit*. For a 3D lattice we can brute-force the optimum and
        // check the guarantee holds on assorted size models.
        let sets = cube_sets(3).unwrap();
        let core = GroupingSet::full(3);
        for cards in [[2usize, 3, 4], [100, 2, 50], [7, 7, 7], [1000, 1, 10]] {
            let model = SizeModel::independent(&cards, 1_000_000).unwrap();
            let base_cost = total_cost(&sets, &[core], &model);
            for k in 1..=3usize {
                let (_, greedy_cost) = greedy_select(3, k, &model).unwrap();
                // Exhaustive optimum over all k-subsets of non-core views.
                let candidates: Vec<GroupingSet> =
                    sets.iter().copied().filter(|s| *s != core).collect();
                let mut best = u64::MAX;
                let mut pick = vec![0usize; k];
                // Simple k-combination enumeration.
                fn combos(
                    cands: &[GroupingSet],
                    k: usize,
                    start: usize,
                    current: &mut Vec<GroupingSet>,
                    all: &mut Vec<Vec<GroupingSet>>,
                ) {
                    if current.len() == k {
                        all.push(current.clone());
                        return;
                    }
                    for i in start..cands.len() {
                        current.push(cands[i]);
                        combos(cands, k, i + 1, current, all);
                        current.pop();
                    }
                }
                let mut all = Vec::new();
                combos(&candidates, k, 0, &mut Vec::new(), &mut all);
                for combo in all {
                    let mut mat = vec![core];
                    mat.extend(combo);
                    best = best.min(total_cost(&sets, &mat, &model));
                }
                let _ = &mut pick;
                let greedy_benefit = base_cost - greedy_cost;
                let optimal_benefit = base_cost - best;
                assert!(
                    greedy_benefit as f64 >= 0.63 * optimal_benefit as f64,
                    "cards {cards:?}, k={k}: greedy benefit {greedy_benefit} \
                     < 63% of optimal {optimal_benefit}"
                );
            }
        }
    }

    #[test]
    fn partial_cube_answers_match_full_cube() {
        let t = base();
        let full = CubeQuery::new()
            .dimensions(dims())
            .aggregate(sum_units())
            .cube(&t)
            .unwrap();
        // Materialize only the core and {model}.
        let selection = vec![GroupingSet::full(3), GroupingSet::from_dims(&[0]).unwrap()];
        let mut pc = PartialCube::materialize(&t, dims(), vec![sum_units()], &selection).unwrap();

        for set in cube_sets(3).unwrap() {
            let mut got = pc.query(set).unwrap();
            got.sort_by_indices(&[0, 1, 2]);
            let want = full.filter(|r| (0..3).all(|d| (r[d] != Value::All) == set.contains(d)));
            assert_eq!(got.rows(), want.rows(), "grouping set {set}");
        }
        assert!(
            pc.stats().rows_scanned > 0,
            "on-demand sets re-scan ancestors"
        );
    }

    #[test]
    fn materialized_sets_answer_without_scanning() {
        let t = base();
        let selection = vec![GroupingSet::full(3)];
        let mut pc = PartialCube::materialize(&t, dims(), vec![sum_units()], &selection).unwrap();
        pc.query(GroupingSet::full(3)).unwrap();
        assert_eq!(pc.stats().rows_scanned, 0);
    }

    #[test]
    fn count_reaggregates_as_sum() {
        // §5: "G = SUM() for the COUNT() function."
        let t = base();
        let count = AggSpec::new(builtin("COUNT").unwrap(), "units").with_name("n");
        let selection = vec![GroupingSet::full(3)];
        let mut pc = PartialCube::materialize(&t, dims(), vec![count.clone()], &selection).unwrap();
        let grand = pc.query(GroupingSet::EMPTY).unwrap();
        assert_eq!(grand.rows()[0][3], Value::Int(5));
    }

    #[test]
    fn algebraic_on_demand_is_rejected() {
        let t = base();
        let avg = AggSpec::new(builtin("AVG").unwrap(), "units").with_name("avg");
        let selection = vec![GroupingSet::full(3)];
        let mut pc = PartialCube::materialize(&t, dims(), vec![avg], &selection).unwrap();
        // AVG of AVGs is wrong; the module must refuse rather than lie.
        let err = pc.query(GroupingSet::EMPTY);
        assert!(matches!(err, Err(CubeError::Unsupported(_))));
    }

    #[test]
    fn requires_the_core() {
        let t = base();
        let err = PartialCube::materialize(&t, dims(), vec![sum_units()], &[GroupingSet::EMPTY]);
        assert!(matches!(err, Err(CubeError::BadSpec(_))));
    }
}
