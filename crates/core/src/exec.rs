//! Execution governance: resource budgets, deadlines, cooperative
//! cancellation, and panic isolation.
//!
//! The cube is "potentially much larger than the base relation" (§3) — a
//! 2^N blow-up by construction — so an ungoverned query can allocate
//! without bound, and §5's partition-parallel plan multiplies the failure
//! surface across worker threads. This module makes every execution path
//! *governed*:
//!
//! * [`ExecLimits`] is the caller-facing budget: a maximum number of
//!   materialized cells, an estimated memory ceiling, a wall-clock
//!   timeout, and a shareable [`CancelToken`].
//! * [`ExecContext`] is the runtime form threaded through every
//!   algorithm. Cell creation calls [`ExecContext::charge_cells`]; row
//!   loops call [`ExecContext::tick`] every [`CHECKPOINT_INTERVAL`] rows
//!   to poll the deadline and the cancel token. Exceeding any budget
//!   unwinds cleanly with `CubeError::ResourceExhausted` or
//!   `CubeError::Cancelled`.
//! * [`guard`] wraps every user-defined-aggregate callback (the paper's
//!   Init / Iter / Iter_super / Final) in `catch_unwind`, converting
//!   panics into `CubeError::AggPanicked` instead of tearing down thread
//!   scopes or the whole process.
//! * [`failpoint`] is the hook for the `faults` test feature: named sites
//!   across the algorithms where tests inject panics, stalls, and budget
//!   trips (see `dc_aggregate::faults`).
//!
//! The context is `Sync` — parallel workers share one `&ExecContext`, so
//! the cell budget is global across partitions, and cancelling the token
//! stops every worker at its next checkpoint.

use crate::error::{CubeError, CubeResult, Resource};
use crate::groupby::ExecStats;
use crate::spec::BoundAgg;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rows/cells between cooperative checkpoints ([`ExecContext::tick`]).
/// Small enough that a cancelled query stops in microseconds, large
/// enough that polling is invisible next to the hash-probe per row.
pub const CHECKPOINT_INTERVAL: usize = 1024;

/// A shareable cancellation flag (`Arc<AtomicBool>`): clone it, hand one
/// copy to the query via [`ExecLimits::cancel_token`], and call
/// [`CancelToken::cancel`] from any thread. The running query observes it
/// at its next checkpoint and unwinds with `CubeError::Cancelled`.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation (idempotent, callable from any thread).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    pub fn is_cancelled(&self) -> bool {
        // cube-lint: allow(atomic, best-effort cancellation poll; no data crosses on this flag and the setter stores SeqCst)
        self.0.load(Ordering::Relaxed)
    }
}

/// Execution budgets for one cube query. The default is unlimited —
/// identical to pre-governance behaviour.
///
/// ```
/// use datacube::{CancelToken, ExecLimits};
/// use std::time::Duration;
///
/// let token = CancelToken::new();
/// let limits = ExecLimits::none()
///     .max_cells(1 << 20)
///     .max_memory_bytes(256 << 20)
///     .timeout(Duration::from_secs(30))
///     .cancel_token(token.clone());
/// // `token.cancel()` from another thread stops the query at its next
/// // checkpoint.
/// # let _ = limits;
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExecLimits {
    pub(crate) max_cells: Option<u64>,
    pub(crate) max_memory_bytes: Option<u64>,
    pub(crate) timeout: Option<Duration>,
    pub(crate) cancel: Option<CancelToken>,
}

impl ExecLimits {
    /// No limits at all (the default).
    pub fn none() -> Self {
        ExecLimits::default()
    }

    /// Cap the number of materialized cells across all grouping sets.
    /// `0` means unlimited.
    pub fn max_cells(mut self, cells: u64) -> Self {
        self.max_cells = (cells > 0).then_some(cells);
        self
    }

    /// Cap the *estimated* memory footprint (cells × a per-cell size
    /// model; see [`estimate_bytes_per_cell`]). `0` means unlimited.
    pub fn max_memory_bytes(mut self, bytes: u64) -> Self {
        self.max_memory_bytes = (bytes > 0).then_some(bytes);
        self
    }

    /// Wall-clock deadline, measured from query start.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Attach a cancellation token.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// True when no budget, deadline, or token is configured.
    pub fn is_unlimited(&self) -> bool {
        self.max_cells.is_none()
            && self.max_memory_bytes.is_none()
            && self.timeout.is_none()
            && self.cancel.is_none()
    }
}

/// Rough per-cell footprint: the key (one `Value` per dimension plus map
/// overhead) and one boxed accumulator per aggregate. Deliberately a
/// *model*, not a measurement — the point is a monotone proxy the caller
/// can budget against, the same way §3's `Π(C_i + 1)` is a size model.
pub fn estimate_bytes_per_cell(n_dims: usize, n_aggs: usize) -> u64 {
    32 + 24 * n_dims as u64 + 96 * n_aggs as u64
}

/// The runtime form of [`ExecLimits`], shared by reference across all
/// worker threads of one query.
#[derive(Debug)]
pub struct ExecContext {
    max_cells: Option<u64>,
    max_memory_bytes: Option<u64>,
    bytes_per_cell: u64,
    /// Cells charged so far, global across threads.
    cells: AtomicU64,
    deadline: Option<Instant>,
    timeout_ms: u64,
    started: Instant,
    cancel: Option<CancelToken>,
    /// Fast-path flags: skip the atomics entirely when nothing is set.
    metered: bool,
    governed: bool,
}

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext::new(&ExecLimits::none(), 1)
    }
}

impl ExecContext {
    pub fn new(limits: &ExecLimits, bytes_per_cell: u64) -> Self {
        let started = Instant::now();
        ExecContext {
            max_cells: limits.max_cells,
            max_memory_bytes: limits.max_memory_bytes,
            bytes_per_cell: bytes_per_cell.max(1),
            cells: AtomicU64::new(0),
            deadline: limits.timeout.map(|t| started + t),
            timeout_ms: limits.timeout.map(|t| t.as_millis() as u64).unwrap_or(0),
            started,
            cancel: limits.cancel.clone(),
            metered: limits.max_cells.is_some() || limits.max_memory_bytes.is_some(),
            governed: limits.timeout.is_some() || limits.cancel.is_some(),
        }
    }

    /// A context with no limits — what internal tests and ungoverned
    /// callers use; every check is a branch on a cold bool.
    pub fn unlimited() -> Self {
        ExecContext::default()
    }

    /// The effective cell budget, folding the memory budget through the
    /// per-cell size model. Degradation decisions compare projected sizes
    /// against this.
    pub fn cell_budget(&self) -> Option<u64> {
        let from_mem = self.max_memory_bytes.map(|b| b / self.bytes_per_cell);
        match (self.max_cells, from_mem) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Charge `n` freshly materialized cells against the budget. Called at
    /// every cell *creation* (the paper's Init() burst), never on updates,
    /// so the count tracks live memory, not row traffic.
    #[inline]
    pub fn charge_cells(&self, n: u64) -> CubeResult<()> {
        if !self.metered {
            return Ok(());
        }
        // cube-lint: allow(atomic, atomic RMW keeps the budget total exact; the limit check uses only the returned value and no other memory is published through it)
        let total = self.cells.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(limit) = self.max_cells {
            if total > limit {
                return Err(CubeError::ResourceExhausted {
                    resource: Resource::Cells,
                    limit,
                    observed: total,
                    stats: ExecStats::default(),
                });
            }
        }
        if let Some(limit) = self.max_memory_bytes {
            let bytes = total.saturating_mul(self.bytes_per_cell);
            if bytes > limit {
                return Err(CubeError::ResourceExhausted {
                    resource: Resource::MemoryBytes,
                    limit,
                    observed: bytes,
                    stats: ExecStats::default(),
                });
            }
        }
        Ok(())
    }

    /// Cells charged so far (for degradation heuristics and tests).
    pub fn cells_charged(&self) -> u64 {
        // cube-lint: allow(atomic, diagnostic read of a monotone counter)
        self.cells.load(Ordering::Relaxed)
    }

    /// Poll the cancel token and the deadline. Cheap enough to call per
    /// batch; row loops use [`ExecContext::tick`] instead.
    #[inline]
    pub fn checkpoint(&self) -> CubeResult<()> {
        if !self.governed {
            return Ok(());
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(CubeError::Cancelled {
                    stats: ExecStats::default(),
                });
            }
        }
        if let Some(deadline) = self.deadline {
            let now = Instant::now();
            if now > deadline {
                return Err(CubeError::ResourceExhausted {
                    resource: Resource::TimeMs,
                    limit: self.timeout_ms,
                    observed: now.duration_since(self.started).as_millis() as u64,
                    stats: ExecStats::default(),
                });
            }
        }
        Ok(())
    }

    /// Cooperative checkpoint for row/cell loops: a full [`checkpoint`]
    /// every [`CHECKPOINT_INTERVAL`] iterations, a mask-and-branch
    /// otherwise.
    ///
    /// [`checkpoint`]: ExecContext::checkpoint
    #[inline]
    pub fn tick(&self, i: usize) -> CubeResult<()> {
        if i & (CHECKPOINT_INTERVAL - 1) == 0 {
            self.checkpoint()
        } else {
            Ok(())
        }
    }
}

/// Render a panic payload as text (the common `&str` / `String` payloads;
/// anything else gets a placeholder).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Convert a caught panic payload into the typed error.
pub(crate) fn panic_error(site: &str, payload: &(dyn std::any::Any + Send)) -> CubeError {
    CubeError::AggPanicked {
        agg: site.to_string(),
        message: panic_message(payload),
    }
}

/// Run one user-aggregate callback under `catch_unwind`, converting a
/// panic into `CubeError::AggPanicked(name, message)`. The happy path is
/// a plain call — `name` is only materialized on unwind. Public so that
/// every layer invoking accumulator or UDF code (the SQL engine included)
/// can satisfy cube_lint's panic-isolation rule with the same wrapper.
#[inline]
pub fn guard<T>(name: &str, f: impl FnOnce() -> T) -> CubeResult<T> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| panic_error(name, p.as_ref()))
}

/// The paper's Init() burst for a new cell, with each aggregate's Init
/// guarded (a UDA can panic in Init just as well as in Iter).
#[inline]
pub(crate) fn guarded_init(
    aggs: &[BoundAgg],
) -> CubeResult<Vec<Box<dyn dc_aggregate::Accumulator>>> {
    aggs.iter()
        .map(|a| guard(a.func.name(), || a.func.init()))
        .collect()
}

/// Test-support failpoint (see `dc_aggregate::faults`). With the `faults`
/// feature off this compiles to `Ok(())`; with it on, an armed fault at
/// `site` panics or stalls in place, and a budget-trip fault returns a
/// `ResourceExhausted` error for the engine to unwind with.
#[cfg(feature = "faults")]
pub(crate) fn failpoint(site: &str) -> CubeResult<()> {
    if dc_aggregate::faults::hit(site) {
        return Err(CubeError::ResourceExhausted {
            resource: Resource::Cells,
            limit: 0,
            observed: 0,
            stats: ExecStats::default(),
        });
    }
    Ok(())
}

/// No-op without the `faults` feature.
#[cfg(not(feature = "faults"))]
#[inline(always)]
pub(crate) fn failpoint(_site: &str) -> CubeResult<()> {
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_context_never_trips() {
        let ctx = ExecContext::unlimited();
        ctx.charge_cells(u64::MAX / 2).unwrap();
        ctx.checkpoint().unwrap();
        for i in 0..10_000 {
            ctx.tick(i).unwrap();
        }
        assert_eq!(ctx.cell_budget(), None);
    }

    #[test]
    fn cell_budget_trips_at_limit() {
        let ctx = ExecContext::new(&ExecLimits::none().max_cells(10), 1);
        ctx.charge_cells(10).unwrap();
        let err = ctx.charge_cells(1).unwrap_err();
        match err {
            CubeError::ResourceExhausted {
                resource,
                limit,
                observed,
                ..
            } => {
                assert_eq!(resource, Resource::Cells);
                assert_eq!(limit, 10);
                assert_eq!(observed, 11);
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn memory_budget_uses_cell_model() {
        let ctx = ExecContext::new(&ExecLimits::none().max_memory_bytes(1000), 100);
        assert_eq!(ctx.cell_budget(), Some(10));
        ctx.charge_cells(10).unwrap();
        assert!(matches!(
            ctx.charge_cells(1),
            Err(CubeError::ResourceExhausted {
                resource: Resource::MemoryBytes,
                ..
            })
        ));
    }

    #[test]
    fn cancel_token_observed_at_checkpoint() {
        let token = CancelToken::new();
        let ctx = ExecContext::new(&ExecLimits::none().cancel_token(token.clone()), 1);
        ctx.checkpoint().unwrap();
        token.cancel();
        assert!(matches!(ctx.checkpoint(), Err(CubeError::Cancelled { .. })));
    }

    #[test]
    fn expired_deadline_trips_time_budget() {
        let ctx = ExecContext::new(&ExecLimits::none().timeout(Duration::ZERO), 1);
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(
            ctx.checkpoint(),
            Err(CubeError::ResourceExhausted {
                resource: Resource::TimeMs,
                ..
            })
        ));
    }

    #[test]
    fn guard_converts_panics() {
        let ok = guard("SUM", || 41 + 1).unwrap();
        assert_eq!(ok, 42);
        let err = guard("MY_AGG", || -> i32 { panic!("bad value") }).unwrap_err();
        match err {
            CubeError::AggPanicked { agg, message } => {
                assert_eq!(agg, "MY_AGG");
                assert!(message.contains("bad value"));
            }
            other => panic!("wrong error: {other:?}"),
        }
    }
}
