//! Decorations (§3.5).
//!
//! "If a decoration column (or column value) is functionally dependent on
//! the aggregation columns, then it may be included in the SELECT answer
//! list. ... If the aggregate tuple functionally defines the decoration
//! value, then the value appears in the resulting tuple. Otherwise the
//! decoration field is NULL." Table 7's example: `continent` is determined
//! by `nation`, so it appears on rows where `nation` is concrete and is
//! NULL on rows where `nation` is `ALL`.

use crate::error::CubeResult;
use dc_relation::{ColumnDef, DataType, Row, Table, Value};

/// Append a decoration column to a cube relation.
///
/// `determinants` are the grouping columns the decoration functionally
/// depends on; `f` maps their values to the decoration value (`None` →
/// `NULL`, e.g. an unknown nation). On any row where a determinant is
/// `ALL` (the tuple no longer functionally defines the decoration), the
/// decoration is `NULL`, per §3.5.
pub fn decorate(
    cube: &Table,
    determinants: &[&str],
    name: &str,
    dtype: DataType,
    f: impl Fn(&[Value]) -> Option<Value>,
) -> CubeResult<Table> {
    let det_names: Vec<&str> = determinants.to_vec();
    let det_idx = cube.schema().indices_of(&det_names)?;
    let mut schema = cube.schema().clone();
    schema.push(ColumnDef::new(name, dtype))?;

    let mut out = Table::empty(schema);
    for row in cube.rows() {
        let det_vals: Vec<Value> = det_idx.iter().map(|&i| row[i].clone()).collect();
        let decoration = if det_vals.iter().any(|v| v.is_all() || v.is_null()) {
            Value::Null
        } else {
            f(&det_vals).unwrap_or(Value::Null)
        };
        out.push_unchecked(Row::new(
            row.values()
                .iter()
                .cloned()
                .chain(std::iter::once(decoration))
                .collect(),
        ));
    }
    Ok(out)
}

/// Check a functional dependency `determinants → dependent` over a base
/// table: every distinct determinant tuple maps to at most one dependent
/// value. §3.5's rule requires this before a decoration is legal; the SQL
/// layer uses it to validate decorated SELECT lists.
pub fn functionally_determines(
    table: &Table,
    determinants: &[&str],
    dependent: &str,
) -> CubeResult<bool> {
    let det_idx = table.schema().indices_of(determinants)?;
    let dep_idx = table.schema().index_of(dependent)?;
    let mut seen: std::collections::HashMap<Row, &Value> = std::collections::HashMap::new();
    for row in table.rows() {
        let key = row.project(&det_idx);
        match seen.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                if **e.get() != row[dep_idx] {
                    return Ok(false);
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(&row[dep_idx]);
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AggSpec, Dimension};
    use crate::CubeQuery;
    use dc_aggregate::builtin;
    use dc_relation::{row, Schema};

    fn weather_cube() -> Table {
        let schema = Schema::from_pairs(&[
            ("day", DataType::Str),
            ("nation", DataType::Str),
            ("temp", DataType::Int),
        ]);
        let mut t = Table::empty(schema);
        for (d, n, temp) in [
            ("25/1/1995", "USA", 28),
            ("25/1/1995", "Mexico", 41),
            ("26/1/1995", "USA", 37),
            ("26/1/1995", "Japan", 48),
        ] {
            t.push(row![d, n, temp]).unwrap();
        }
        CubeQuery::new()
            .dimensions(vec![Dimension::column("day"), Dimension::column("nation")])
            .aggregate(AggSpec::new(builtin("MAX").unwrap(), "temp").with_name("max(Temp)"))
            .cube(&t)
            .unwrap()
    }

    fn continent_of(vals: &[Value]) -> Option<Value> {
        match vals[0].as_str()? {
            "USA" | "Mexico" => Some(Value::str("North America")),
            "Japan" => Some(Value::str("Asia")),
            _ => None,
        }
    }

    #[test]
    fn table_7_decoration_semantics() {
        let cube = weather_cube();
        let decorated =
            decorate(&cube, &["nation"], "continent", DataType::Str, continent_of).unwrap();
        let nation_i = 1;
        let cont_i = 3;
        for row in decorated.rows() {
            if row[nation_i].is_all() {
                // "the continent is not specified unless nation is":
                // (25/1/1995, ALL, 41, NULL) and (ALL, ALL, 48, NULL).
                assert_eq!(row[cont_i], Value::Null, "{row}");
            } else {
                assert_ne!(row[cont_i], Value::Null, "{row}");
            }
        }
        // Spot-check Table 7's first two rows.
        let usa_rows: Vec<_> = decorated
            .rows()
            .iter()
            .filter(|r| r[nation_i] == Value::str("USA"))
            .collect();
        assert!(usa_rows
            .iter()
            .all(|r| r[cont_i] == Value::str("North America")));
    }

    #[test]
    fn unknown_determinant_value_decorates_null() {
        let cube = weather_cube();
        let decorated = decorate(&cube, &["nation"], "continent", DataType::Str, |vals| {
            if vals[0] == Value::str("USA") {
                Some(Value::str("North America"))
            } else {
                None // pretend the dimension table lacks the others
            }
        })
        .unwrap();
        let mexico = decorated
            .rows()
            .iter()
            .find(|r| r[1] == Value::str("Mexico"))
            .unwrap();
        assert_eq!(mexico[3], Value::Null);
    }

    #[test]
    fn fd_checker() {
        let schema = Schema::from_pairs(&[("nation", DataType::Str), ("continent", DataType::Str)]);
        let good = Table::new(
            schema.clone(),
            vec![
                row!["USA", "North America"],
                row!["USA", "North America"],
                row!["Japan", "Asia"],
            ],
        )
        .unwrap();
        assert!(functionally_determines(&good, &["nation"], "continent").unwrap());
        let bad = Table::new(
            schema,
            vec![row!["USA", "North America"], row!["USA", "Asia"]],
        )
        .unwrap();
        assert!(!functionally_determines(&bad, &["nation"], "continent").unwrap());
    }
}
