//! Query specifications: dimensions, aggregate calls, and the
//! GROUP BY ⊗ ROLLUP ⊗ CUBE compound algebra of §3.1.

use crate::error::{CubeError, CubeResult};
use crate::lattice::GroupingSet;
use dc_aggregate::AggRef;
use dc_relation::{DataType, Row, Schema, Value};
use std::sync::Arc;

/// A grouping dimension: either a plain column or a *computed category*
/// (§2's histogram problem — `GROUP BY Day(Time)`, `Nation(Lat, Lon)`).
#[derive(Clone)]
pub struct Dimension {
    /// Output column name, e.g. `"day"` in `Day(Time) AS day`.
    pub name: Arc<str>,
    /// Output column type.
    pub dtype: DataType,
    kind: DimKind,
}

#[derive(Clone)]
enum DimKind {
    /// Group directly on a stored column.
    Column(Arc<str>),
    /// Group on a function of the whole row (the paper's "aggregation over
    /// computed categories").
    Computed(Arc<dyn Fn(&Row) -> Value + Send + Sync>),
}

impl Dimension {
    /// A plain column dimension; output name and type follow the column.
    pub fn column(name: impl AsRef<str>) -> Self {
        let name: Arc<str> = Arc::from(name.as_ref());
        // dtype resolved at bind time against the schema; placeholder here.
        Dimension {
            name: name.clone(),
            dtype: DataType::Str,
            kind: DimKind::Column(name),
        }
    }

    /// A computed dimension: `Day(Time) AS day`.
    pub fn computed(
        name: impl AsRef<str>,
        dtype: DataType,
        f: impl Fn(&Row) -> Value + Send + Sync + 'static,
    ) -> Self {
        Dimension {
            name: Arc::from(name.as_ref()),
            dtype,
            kind: DimKind::Computed(Arc::new(f)),
        }
    }

    /// Resolve against an input schema, producing an evaluator.
    pub(crate) fn bind(&self, schema: &Schema) -> CubeResult<BoundDimension> {
        match &self.kind {
            DimKind::Column(col) => {
                let idx = schema.index_of(col)?;
                let dtype = schema.column_at(idx).dtype;
                Ok(BoundDimension {
                    name: self.name.clone(),
                    dtype,
                    eval: BoundEval::Column(idx),
                })
            }
            DimKind::Computed(f) => Ok(BoundDimension {
                name: self.name.clone(),
                dtype: self.dtype,
                eval: BoundEval::Computed(Arc::clone(f)),
            }),
        }
    }
}

impl std::fmt::Debug for Dimension {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            DimKind::Column(c) => write!(f, "Dimension({c})"),
            DimKind::Computed(_) => write!(f, "Dimension({} = <computed>)", self.name),
        }
    }
}

/// A dimension bound to a concrete input schema.
#[derive(Clone)]
pub(crate) struct BoundDimension {
    pub name: Arc<str>,
    pub dtype: DataType,
    eval: BoundEval,
}

#[derive(Clone)]
enum BoundEval {
    Column(usize),
    Computed(Arc<dyn Fn(&Row) -> Value + Send + Sync>),
}

impl BoundDimension {
    #[inline]
    pub fn eval(&self, row: &Row) -> Value {
        match &self.eval {
            BoundEval::Column(i) => row[*i].clone(),
            BoundEval::Computed(f) => f(row),
        }
    }

    /// The input column index, when this dimension is a plain column
    /// reference. Lets hot loops borrow the value instead of cloning
    /// through [`eval`](Self::eval).
    #[inline]
    pub fn column_index(&self) -> Option<usize> {
        match &self.eval {
            BoundEval::Column(i) => Some(*i),
            BoundEval::Computed(_) => None,
        }
    }
}

/// One aggregate call in the select list: `SUM(units) AS total`.
#[derive(Clone)]
pub struct AggSpec {
    /// The function (from `dc_aggregate`), e.g. SUM.
    pub func: AggRef,
    /// Input column; `None` means `*` (COUNT(*)).
    pub input: Option<Arc<str>>,
    /// Output column name.
    pub output: Arc<str>,
}

impl AggSpec {
    /// Aggregate a column: `AggSpec::new(sum, "units")` → `SUM(units)`.
    pub fn new(func: AggRef, input: impl AsRef<str>) -> Self {
        let input: Arc<str> = Arc::from(input.as_ref());
        let output = Arc::from(format!("{}({})", func.name(), input));
        AggSpec {
            func,
            input: Some(input),
            output,
        }
    }

    /// Aggregate over whole rows: `COUNT(*)`.
    pub fn star(func: AggRef) -> Self {
        let output = Arc::from(func.name().to_string());
        AggSpec {
            func,
            input: None,
            output,
        }
    }

    /// Rename the output column (`AS`).
    pub fn with_name(mut self, name: impl AsRef<str>) -> Self {
        self.output = Arc::from(name.as_ref());
        self
    }

    /// Resolve the input column index, if any.
    pub(crate) fn bind(&self, schema: &Schema) -> CubeResult<BoundAgg> {
        let input = match &self.input {
            Some(col) => Some(schema.index_of(col)?),
            None => None,
        };
        Ok(BoundAgg {
            func: Arc::clone(&self.func),
            input,
            output: self.output.clone(),
        })
    }

    /// The output column's declared type, given the input schema.
    pub(crate) fn output_type(&self, schema: &Schema) -> CubeResult<DataType> {
        let input_ty = match &self.input {
            Some(col) => schema.column(col)?.dtype,
            None => DataType::Int,
        };
        // Aggregates without a declared output type preserve their
        // input type (MIN/MAX/SUM...).
        Ok(self.func.output_type(input_ty).unwrap_or(input_ty))
    }
}

impl std::fmt::Debug for AggSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.input {
            Some(c) => write!(f, "{}({}) AS {}", self.func.name(), c, self.output),
            None => write!(f, "{}(*) AS {}", self.func.name(), self.output),
        }
    }
}

/// An aggregate bound to a concrete input schema.
#[derive(Clone)]
pub(crate) struct BoundAgg {
    pub func: AggRef,
    pub input: Option<usize>,
    pub output: Arc<str>,
}

impl BoundAgg {
    /// The value this aggregate consumes from a row. `COUNT(*)` consumes a
    /// placeholder so NULL/ALL rows still count.
    #[inline]
    pub fn input_value<'r>(&self, row: &'r Row) -> &'r Value {
        const UNIT: Value = Value::Bool(true);
        match self.input {
            Some(i) => &row[i],
            None => {
                // A static non-token value; COUNT(*) counts it, others treat
                // it as a 1-valued input (harmless: only COUNT(*) is built
                // with `input: None`).
                &UNIT
            }
        }
    }
}

/// The compound aggregation specification of §3.1 / Figure 5:
///
/// ```sql
/// GROUP BY <g...> ROLLUP <r...> CUBE <c...>
/// ```
///
/// Dimensions are held in the order `g ++ r ++ c` (the answer's column
/// order); [`CompoundSpec::grouping_sets`] expands the algebra:
/// every GROUP BY column is in every set, the ROLLUP block contributes its
/// prefixes, and the CUBE block contributes its power set.
#[derive(Clone, Debug, Default)]
pub struct CompoundSpec {
    pub group_by: Vec<Dimension>,
    pub rollup: Vec<Dimension>,
    pub cube: Vec<Dimension>,
}

impl CompoundSpec {
    pub fn new() -> Self {
        CompoundSpec::default()
    }

    pub fn group_by(mut self, dims: Vec<Dimension>) -> Self {
        self.group_by = dims;
        self
    }

    pub fn rollup(mut self, dims: Vec<Dimension>) -> Self {
        self.rollup = dims;
        self
    }

    pub fn cube(mut self, dims: Vec<Dimension>) -> Self {
        self.cube = dims;
        self
    }

    /// All dimensions in answer-column order.
    pub fn dimensions(&self) -> Vec<Dimension> {
        self.group_by
            .iter()
            .chain(self.rollup.iter())
            .chain(self.cube.iter())
            .cloned()
            .collect()
    }

    /// Expand to the family of grouping sets over the combined dimension
    /// list. The family is deduplicated and ordered from the core
    /// (all dimensions) down to the coarsest set.
    pub fn grouping_sets(&self) -> CubeResult<Vec<GroupingSet>> {
        let n = self.group_by.len() + self.rollup.len() + self.cube.len();
        if n > GroupingSet::MAX_DIMS {
            return Err(CubeError::BadSpec(format!(
                "{n} dimensions exceeds the {}-dimension limit",
                GroupingSet::MAX_DIMS
            )));
        }
        let g = self.group_by.len();
        let r = self.rollup.len();
        let c = self.cube.len();

        // GROUP BY block: always present.
        let g_mask = GroupingSet::first_k(g);

        let mut sets = Vec::new();
        for r_len in (0..=r).rev() {
            // ROLLUP block prefixes, longest first.
            let r_mask = GroupingSet::first_k(r_len).shift(g);
            for c_bits in 0..(1u32 << c) {
                let c_mask = GroupingSet::from_bits(c_bits).shift(g + r);
                sets.push(g_mask.union(r_mask).union(c_mask));
            }
        }
        sets.sort_by(|a, b| b.len().cmp(&a.len()).then(a.bits().cmp(&b.bits())));
        sets.dedup();
        Ok(sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_aggregate::builtin;
    use dc_relation::row;

    fn dims(names: &[&str]) -> Vec<Dimension> {
        names.iter().map(Dimension::column).collect()
    }

    #[test]
    fn plain_group_by_is_one_set() {
        let spec = CompoundSpec::new().group_by(dims(&["a", "b"]));
        let sets = spec.grouping_sets().unwrap();
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].len(), 2);
    }

    #[test]
    fn rollup_has_n_plus_one_sets() {
        let spec = CompoundSpec::new().rollup(dims(&["year", "month", "day"]));
        let sets = spec.grouping_sets().unwrap();
        // (y,m,d), (y,m), (y), () — §3: "an N-dimensional roll-up will add
        // only N records [set families] to the answer set".
        assert_eq!(sets.len(), 4);
        assert_eq!(sets[0].len(), 3);
        assert_eq!(sets[3].len(), 0);
    }

    #[test]
    fn cube_has_two_to_the_n_sets() {
        let spec = CompoundSpec::new().cube(dims(&["model", "year", "color"]));
        let sets = spec.grouping_sets().unwrap();
        assert_eq!(sets.len(), 8); // 2^3
    }

    #[test]
    fn compound_figure_5_shape() {
        // GROUP BY Manufacturer, ROLLUP Year, Month, Day, CUBE Color, Model.
        let spec = CompoundSpec::new()
            .group_by(dims(&["manufacturer"]))
            .rollup(dims(&["year", "month", "day"]))
            .cube(dims(&["color", "model"]));
        let sets = spec.grouping_sets().unwrap();
        // 1 × 4 × 4 = 16 grouping sets.
        assert_eq!(sets.len(), 16);
        // Manufacturer (dim 0) is in every set.
        assert!(sets.iter().all(|s| s.contains(0)));
        // The ROLLUP block only appears as prefixes: day (dim 3) without
        // month (dim 2) never occurs.
        assert!(sets.iter().all(|s| !s.contains(3) || s.contains(2)));
    }

    #[test]
    fn algebra_cube_of_rollup_is_cube() {
        // §3.1: CUBE(ROLLUP) = CUBE. Putting the same dimensions in the
        // CUBE block subsumes every set a ROLLUP of them would produce.
        let cube = CompoundSpec::new()
            .cube(dims(&["a", "b"]))
            .grouping_sets()
            .unwrap();
        let rollup = CompoundSpec::new()
            .rollup(dims(&["a", "b"]))
            .grouping_sets()
            .unwrap();
        for s in &rollup {
            assert!(cube.contains(s), "cube must subsume rollup set {s:?}");
        }
        // And ROLLUP(GROUP BY) = ROLLUP: the group-by's single set is the
        // rollup's finest set.
        let gb = CompoundSpec::new()
            .group_by(dims(&["a", "b"]))
            .grouping_sets()
            .unwrap();
        assert!(rollup.contains(&gb[0]));
    }

    #[test]
    fn dedup_when_blocks_overlap_masks() {
        // An empty spec yields exactly the one empty grouping set.
        let sets = CompoundSpec::new().grouping_sets().unwrap();
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].len(), 0);
    }

    #[test]
    fn dimension_binding_and_eval() {
        let schema = Schema::from_pairs(&[("model", DataType::Str), ("units", DataType::Int)]);
        let d = Dimension::column("model").bind(&schema).unwrap();
        assert_eq!(d.eval(&row!["Chevy", 50]), Value::str("Chevy"));
        assert_eq!(d.dtype, DataType::Str);
        assert!(Dimension::column("nope").bind(&schema).is_err());

        let computed = Dimension::computed("units_bucket", DataType::Int, |r| {
            Value::Int(r[1].as_i64().unwrap_or(0) / 100)
        });
        let b = computed.bind(&schema).unwrap();
        assert_eq!(b.eval(&row!["Chevy", 250]), Value::Int(2));
    }

    #[test]
    fn agg_spec_naming() {
        let sum = builtin("SUM").unwrap();
        let spec = AggSpec::new(sum.clone(), "units");
        assert_eq!(&*spec.output, "SUM(units)");
        let named = AggSpec::new(sum, "units").with_name("total");
        assert_eq!(&*named.output, "total");
    }
}
