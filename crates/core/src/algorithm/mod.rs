//! Cube computation algorithms (§5 of the paper).
//!
//! Every algorithm consumes the same inputs — base rows, bound dimensions
//! and aggregates, and a grouping-set [`Lattice`] — and produces the same
//! cells, so results are interchangeable and property tests assert their
//! equality. What differs is the *work*, reported through
//! [`crate::ExecStats`]:
//!
//! | Algorithm | §5 reference | Cost shape |
//! |---|---|---|
//! | [`Algorithm::TwoToTheN`] | "the 2^N-algorithm" | `T × 2^N` Iter() calls, 1 scan |
//! | [`Algorithm::UnionGroupBys`] | §2's 64-way UNION | `2^N` scans, `T × 2^N` Iters |
//! | [`Algorithm::FromCore`] | "compute the super-aggregates from the core" | `T` Iters + cell merges |
//! | [`Algorithm::Sort`] | "sort the table ... then compute" (ROLLUP) | 1 sort + `T × N` Iters |
//! | [`Algorithm::Array`] | dense N-dimensional array over symbol tables | `T` Iters + array sweeps |
//! | [`Algorithm::Parallel`] | "use parallelism to aggregate each partition and then coalesce" | `T/P` Iters per thread + merges |
//! | [`Algorithm::PipeSort`] | the \[ADGNRS\] shared-sort idea | `C(N, N/2)` sorts, `T` Iters each |

pub(crate) mod array;
pub(crate) mod encoded;
pub(crate) mod from_core;
pub(crate) mod naive;
pub(crate) mod parallel;
pub(crate) mod pipesort;
pub(crate) mod sort;
pub(crate) mod unions;
pub(crate) mod vectorized;

pub use array::MAX_CELLS;
pub use from_core::ParentChoice;
pub use pipesort::symmetric_chains;

use crate::error::{CubeError, CubeResult, Resource};
use crate::exec::ExecContext;
use crate::groupby::{ExecStats, Grouped};
use crate::lattice::{rollup_sets, Lattice};
use crate::spec::{BoundAgg, BoundDimension};
use dc_aggregate::AggKind;
use dc_relation::Row;

/// Selects how a cube / rollup / grouping-sets query is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Pick automatically: holistic aggregates force the 2^N algorithm
    /// (§5: "We know of no more efficient way of computing
    /// super-aggregates of holistic functions"); otherwise cascade from
    /// the core.
    #[default]
    Auto,
    /// Update every matching cell of every grouping set for every input
    /// row.
    TwoToTheN,
    /// Run one independent GROUP BY per grouping set and union the
    /// results — the plan §2 predicts for the hand-written 64-way UNION.
    UnionGroupBys,
    /// Compute the core GROUP BY once, then cascade super-aggregates by
    /// merging scratchpads, dropping the smallest-cardinality dimension
    /// first.
    FromCore,
    /// Sort-based single-pass ROLLUP (rollup lattices only).
    Sort,
    /// Dense N-dimensional array over dictionary-encoded dimensions
    /// (full-cube lattices only; falls back with an error when the array
    /// would exceed [`array::MAX_CELLS`]).
    Array,
    /// PipeSort-style shared sorts (the paper's \[ADGNRS\] reference):
    /// cover the lattice with C(N, N/2) symmetric chains, one sorted
    /// scan each (full-cube lattices only).
    PipeSort,
    /// Partition the input across threads, aggregate each partition's
    /// core, coalesce by merging, then cascade.
    Parallel { threads: usize },
}

/// Per-query execution-path switches, threaded from [`crate::CubeQuery`]
/// down to the engines that honour them.
///
/// `encoded` enables the packed-`u64`-key engine for the hash-based
/// algorithms; `vectorize` additionally lets the from-core and parallel
/// paths run the columnar kernel engine when every aggregate kernelizes.
/// `radix` / `rle` force (`Some(true)`), suppress (`Some(false)`), or
/// leave to auto-detection (`None`) the vectorized engine's
/// radix-partitioned grouping and run-length-compressed scan; they are
/// ignored wherever the kernels do not apply. Results are identical on
/// every path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PathOpts {
    pub(crate) encoded: bool,
    pub(crate) vectorize: bool,
    pub(crate) radix: Option<bool>,
    pub(crate) rle: Option<bool>,
}

impl PathOpts {
    /// Options with `radix`/`rle` left to auto-detection — the default
    /// shape every caller without an explicit override uses.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn new(encoded: bool, vectorize: bool) -> Self {
        PathOpts {
            encoded,
            vectorize,
            radix: None,
            rle: None,
        }
    }
}

/// Execute the lattice with the chosen algorithm.
///
/// `opts.encoded` enables the packed-`u64`-key engine for the hash-based
/// algorithms (2^N, unions, from-core, parallel); each falls back to
/// `Row` keys automatically when the coordinate does not pack (see
/// [`crate::encode`]). `opts.vectorize` additionally lets the from-core
/// and parallel paths run the columnar kernel engine (see [`vectorized`])
/// when every aggregate kernelizes; it is ignored wherever the kernels
/// cannot apply. The sort- and array-based algorithms have their own key
/// machinery and ignore the options. Results are identical either way.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    algorithm: Algorithm,
    rows: &[Row],
    dims: &[BoundDimension],
    aggs: &[BoundAgg],
    lattice: &Lattice,
    stats: &mut ExecStats,
    opts: PathOpts,
    ctx: &ExecContext,
) -> CubeResult<Grouped> {
    let encoded = opts.encoded;
    // A UDA built without state()/merge() has a no-op Iter_super: any plan
    // that folds sub-aggregate scratchpads (from-core cascade, sort frame
    // closes, array slab sweeps, PipeSort chain hand-offs, parallel
    // coalescing) would silently drop its data. Such functions are still
    // legal — they just pin execution to the scan-per-cell 2^N path, after
    // each algorithm's own shape checks so error behavior is unchanged.
    let mergeable = aggs.iter().all(|a| a.func.mergeable());
    match algorithm {
        Algorithm::Auto => {
            if !mergeable || aggs.iter().any(|a| a.func.kind() == AggKind::Holistic) {
                naive::run(rows, dims, aggs, lattice, stats, encoded, ctx).map(Grouped::Rows)
            } else {
                from_core::run(rows, dims, aggs, lattice, stats, opts, ctx)
            }
        }
        Algorithm::TwoToTheN => {
            naive::run(rows, dims, aggs, lattice, stats, encoded, ctx).map(Grouped::Rows)
        }
        Algorithm::UnionGroupBys => {
            unions::run(rows, dims, aggs, lattice, stats, encoded, ctx).map(Grouped::Rows)
        }
        Algorithm::FromCore => {
            if !mergeable {
                return naive::run(rows, dims, aggs, lattice, stats, encoded, ctx)
                    .map(Grouped::Rows);
            }
            from_core::run(rows, dims, aggs, lattice, stats, opts, ctx)
        }
        Algorithm::Sort => {
            if lattice.sets() != rollup_sets(lattice.n_dims())?.as_slice() {
                return Err(CubeError::Unsupported(
                    "the sort algorithm applies only to ROLLUP lattices".into(),
                ));
            }
            if !mergeable {
                return naive::run(rows, dims, aggs, lattice, stats, encoded, ctx)
                    .map(Grouped::Rows);
            }
            sort::run(rows, dims, aggs, lattice, stats, ctx).map(Grouped::Rows)
        }
        Algorithm::Array => {
            if !lattice.is_full_cube() {
                return Err(CubeError::Unsupported(
                    "the dense array algorithm computes full cubes only".into(),
                ));
            }
            if !mergeable {
                return naive::run(rows, dims, aggs, lattice, stats, encoded, ctx)
                    .map(Grouped::Rows);
            }
            match array::run(rows, dims, aggs, lattice, stats, ctx) {
                // Degradation rung 1: the dense array's *projected* size is
                // checked before anything is materialized, so a cell/memory
                // trip here is free to retry on the sparse hash-based path
                // (which only pays for cells that actually exist).
                Err(CubeError::ResourceExhausted {
                    resource: Resource::Cells | Resource::MemoryBytes,
                    ..
                }) => {
                    stats.degraded_dense_to_sparse = true;
                    from_core::run(rows, dims, aggs, lattice, stats, opts, ctx)
                }
                other => other.map(Grouped::Rows),
            }
        }
        Algorithm::PipeSort => {
            if !lattice.is_full_cube() {
                return Err(CubeError::Unsupported(
                    "PipeSort computes full cubes only".into(),
                ));
            }
            if !mergeable {
                return naive::run(rows, dims, aggs, lattice, stats, encoded, ctx)
                    .map(Grouped::Rows);
            }
            pipesort::run(rows, dims, aggs, lattice, stats, ctx).map(Grouped::Rows)
        }
        Algorithm::Parallel { threads } => {
            if threads == 0 {
                return Err(CubeError::BadSpec("Parallel requires threads >= 1".into()));
            }
            if !mergeable {
                return naive::run(rows, dims, aggs, lattice, stats, encoded, ctx)
                    .map(Grouped::Rows);
            }
            parallel::run(rows, dims, aggs, lattice, threads, stats, opts, ctx)
        }
    }
}
