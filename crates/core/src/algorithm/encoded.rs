//! The encoded-key execution engine: flat accumulator arenas over packed
//! `u64` group keys (see [`crate::encode`] for the key layout).
//!
//! Three things make this path faster than the `Row`-keyed one, none of
//! which change any observable result:
//!
//! 1. **Packed keys.** A cell key is one `u64`; projecting it onto a
//!    grouping set is `key & mask` instead of cloning N `Value`s.
//! 2. **Fx hashing.** Group maps hash a single integer with the Fx
//!    multiply-rotate hash instead of feeding a whole `Row` through
//!    SipHash.
//! 3. **Flat arenas.** Each grouping set keeps *one* accumulator vector
//!    for all cells ([`Arena`]): the map stores only `key → slot`, and
//!    cell `i`'s accumulators live at `accs[i*n_aggs..(i+1)*n_aggs]` —
//!    no per-cell `Vec` allocation, better locality for the cascade's
//!    sequential merges.
//!
//! The from-core cascade is additionally *parallel*: grouping sets of
//! equal arity never depend on each other (every cascade parent has
//! strictly greater arity), so each lattice level's sets are farmed
//! across a crossbeam scope. Parent selection, merge counts, and results
//! are identical to the serial cascade.
//!
//! Every function mirrors its `Row`-keyed counterpart's [`ExecStats`]
//! accounting exactly: the encoding pass is free (it is the same single
//! scan that feeds the core), `rows_scanned`/`iter_calls` are counted per
//! row touch, `merge_calls` per scratchpad fold.

use crate::encode::{EncodedInput, KeyEncoder};
use crate::error::CubeResult;
use crate::exec::{self, ExecContext};
use crate::groupby::{ExecStats, GroupMap, SetMaps};
use crate::lattice::{GroupingSet, Lattice};
use crate::spec::BoundAgg;
use dc_aggregate::Accumulator;
use dc_relation::{FxHashMap, Row};

use super::from_core::ParentChoice;
use super::vectorized::MORSEL_ROWS;

/// Below this many core cells the cascade runs serially — thread spawn
/// costs more than the merges it would spread. Shared with the vectorized
/// kernel cascade, which inherits the same schedule.
pub(crate) const PARALLEL_CASCADE_MIN_CELLS: usize = 1 << 10;

/// Flat accumulator storage for one grouping set: the map resolves a
/// packed key to a cell slot; slot `i`'s accumulators occupy the
/// contiguous range `accs[i*n_aggs..(i+1)*n_aggs]`.
pub(crate) struct Arena {
    slots: FxHashMap<u64, u32>,
    accs: Vec<Box<dyn Accumulator>>,
    n_aggs: usize,
}

impl Arena {
    fn new(n_aggs: usize) -> Self {
        Arena {
            slots: FxHashMap::default(),
            accs: Vec::new(),
            n_aggs,
        }
    }

    fn with_capacity(n_aggs: usize, cells: usize) -> Self {
        Arena {
            slots: FxHashMap::with_capacity_and_hasher(cells, Default::default()),
            accs: Vec::with_capacity(cells * n_aggs),
            n_aggs,
        }
    }

    pub fn n_cells(&self) -> usize {
        self.slots.len()
    }

    /// The cell slot for `key`, appending fresh accumulators (the paper's
    /// Init() burst) on first touch. A fresh cell charges the budget and
    /// runs each Init under the panic guard.
    #[inline]
    fn slot(&mut self, key: u64, aggs: &[BoundAgg], ctx: &ExecContext) -> CubeResult<usize> {
        match self.slots.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => Ok(*e.get() as usize),
            std::collections::hash_map::Entry::Vacant(e) => {
                ctx.charge_cells(1)?;
                let s = self.accs.len() / self.n_aggs;
                e.insert(s as u32);
                for a in aggs {
                    self.accs
                        .push(exec::guard(a.func.name(), || a.func.init())?);
                }
                Ok(s)
            }
        }
    }

    #[inline]
    fn accs_mut(&mut self, slot: usize) -> &mut [Box<dyn Accumulator>] {
        &mut self.accs[slot * self.n_aggs..(slot + 1) * self.n_aggs]
    }

    #[inline]
    fn accs_at(&self, slot: usize) -> &[Box<dyn Accumulator>] {
        &self.accs[slot * self.n_aggs..(slot + 1) * self.n_aggs]
    }

    /// Fold one base row into the cell for `key` — Init on first touch,
    /// then Iter per aggregate, mirroring `groupby::update_cell`.
    #[inline]
    fn update(
        &mut self,
        key: u64,
        row: &Row,
        aggs: &[BoundAgg],
        stats: &mut ExecStats,
        ctx: &ExecContext,
    ) -> CubeResult<()> {
        let s = self.slot(key, aggs, ctx)?;
        for (acc, agg) in self.accs_mut(s).iter_mut().zip(aggs.iter()) {
            exec::guard(agg.func.name(), || acc.iter(agg.input_value(row)))?;
            stats.iter_calls += 1;
        }
        Ok(())
    }

    /// Decode into the `Row`-keyed cell map the materializer consumes.
    fn into_group_map(self, encoder: &KeyEncoder) -> GroupMap {
        let n = self.n_aggs;
        let mut per_slot: Vec<Vec<Box<dyn Accumulator>>> =
            Vec::with_capacity(self.accs.len().checked_div(n).unwrap_or(0));
        let mut cell = Vec::with_capacity(n);
        for acc in self.accs {
            cell.push(acc);
            if cell.len() == n {
                per_slot.push(std::mem::replace(&mut cell, Vec::with_capacity(n)));
            }
        }
        let mut map = GroupMap::with_capacity_and_hasher(self.slots.len(), Default::default());
        for (key, slot) in self.slots {
            map.insert(
                encoder.decode_key(key),
                std::mem::take(&mut per_slot[slot as usize]),
            );
        }
        map
    }
}

/// The core GROUP BY over packed keys — one scan in morsel-sized strides,
/// mirroring `groupby::compute_core`'s accounting; the cancellation /
/// deadline poll happens once per morsel instead of per `tick` interval.
pub(crate) fn compute_core(
    enc: &EncodedInput,
    rows: &[Row],
    aggs: &[BoundAgg],
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<Arena> {
    exec::failpoint("core::scan")?;
    let mut arena = Arena::new(aggs.len());
    let mut base = 0;
    while base < rows.len() {
        ctx.checkpoint()?;
        let end = (base + MORSEL_ROWS).min(rows.len());
        // cube-lint: allow(checkpoint, bounded by MORSEL_ROWS; the while above checkpoints per morsel)
        for (row, &key) in rows[base..end].iter().zip(&enc.keys[base..end]) {
            stats.rows_scanned += 1;
            arena.update(key, row, aggs, stats, ctx)?;
        }
        stats.morsels_processed += 1;
        base = end;
    }
    Ok(arena)
}

/// The 2^N algorithm on packed keys: every row updates every grouping
/// set's cell, located by one AND per set.
pub(crate) fn naive(
    enc: &EncodedInput,
    rows: &[Row],
    aggs: &[BoundAgg],
    lattice: &Lattice,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<SetMaps> {
    exec::failpoint("naive::scan")?;
    let mut arenas: Vec<(GroupingSet, u64, Arena)> = lattice
        .sets()
        .iter()
        .map(|&s| (s, enc.encoder.set_mask(s), Arena::new(aggs.len())))
        .collect();
    for (i, (row, &key)) in rows.iter().zip(&enc.keys).enumerate() {
        ctx.tick(i)?;
        stats.rows_scanned += 1;
        for (_, mask, arena) in arenas.iter_mut() {
            arena.update(key & *mask, row, aggs, stats, ctx)?;
        }
    }
    Ok(arenas
        .into_iter()
        .map(|(s, _, a)| (s, a.into_group_map(&enc.encoder)))
        .collect())
}

/// The union-of-GROUP-BYs plan on packed keys: one independent scan per
/// grouping set, `rows_scanned` counted per scan like the `Row` path.
pub(crate) fn unions(
    enc: &EncodedInput,
    rows: &[Row],
    aggs: &[BoundAgg],
    lattice: &Lattice,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<SetMaps> {
    exec::failpoint("unions::scan")?;
    let mut maps = SetMaps::with_capacity(lattice.sets().len());
    for &set in lattice.sets() {
        let mask = enc.encoder.set_mask(set);
        let mut arena = Arena::new(aggs.len());
        for (i, (row, &key)) in rows.iter().zip(&enc.keys).enumerate() {
            ctx.tick(i)?;
            stats.rows_scanned += 1;
            arena.update(key & mask, row, aggs, stats, ctx)?;
        }
        maps.push((set, arena.into_group_map(&enc.encoder)));
    }
    Ok(maps)
}

/// From-core with the full cascade: core scan + [`cascade`].
pub(crate) fn from_core(
    enc: &EncodedInput,
    rows: &[Row],
    aggs: &[BoundAgg],
    lattice: &Lattice,
    choice: ParentChoice,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<SetMaps> {
    let core = compute_core(enc, rows, aggs, stats, ctx)?;
    cascade(core, &enc.encoder, aggs, lattice, choice, stats, ctx)
}

/// Build one child set by folding a parent arena through the set's mask.
/// Returns the child arena and its merge count (one per parent cell per
/// aggregate, exactly like the serial `Row`-keyed cascade).
fn merged_child(
    parent: &Arena,
    mask: u64,
    aggs: &[BoundAgg],
    ctx: &ExecContext,
) -> CubeResult<(Arena, u64)> {
    let mut child = Arena::with_capacity(aggs.len(), parent.n_cells() / 2 + 1);
    let mut merges = 0u64;
    for (i, (&pkey, &pslot)) in parent.slots.iter().enumerate() {
        ctx.tick(i)?;
        let cslot = child.slot(pkey & mask, aggs, ctx)?;
        let paccs = parent.accs_at(pslot as usize);
        for ((acc, pacc), agg) in child
            .accs_mut(cslot)
            .iter_mut()
            .zip(paccs.iter())
            .zip(aggs.iter())
        {
            exec::guard(agg.func.name(), || acc.merge(&pacc.state()))?;
            merges += 1;
        }
    }
    Ok((child, merges))
}

/// The cascade over arenas, parallel by lattice level.
///
/// Correctness of the parallel schedule: a set's cascade parent is always
/// a strict superset, hence of strictly greater arity, hence materialized
/// in an *earlier* level — so all sets of one level only read arenas from
/// previous levels and can run concurrently. Parent *selection* is also
/// unchanged: the serial cascade consults the materialized-so-far list,
/// but same-level entries can never qualify (a strict superset of equal
/// arity cannot exist), so selecting per level sees the same candidates.
pub(crate) fn cascade(
    core: Arena,
    encoder: &KeyEncoder,
    aggs: &[BoundAgg],
    lattice: &Lattice,
    choice: ParentChoice,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<SetMaps> {
    let core_set = lattice.core();
    // Satellite of the encoding pass: the C_i come straight off the
    // symbol tables — no per-key HashSet scan over the core.
    let cardinalities = encoder.cardinalities();

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let go_parallel = threads > 1 && core.n_cells() >= PARALLEL_CASCADE_MIN_CELLS;

    let mut done: FxHashMap<GroupingSet, Arena> = FxHashMap::default();
    let mut order: Vec<GroupingSet> = Vec::with_capacity(lattice.sets().len());
    done.insert(core_set, core);
    order.push(core_set);

    // Walk the lattice in runs of equal arity (it is ordered core-first,
    // decreasing arity).
    let sets: Vec<GroupingSet> = lattice
        .sets()
        .iter()
        .copied()
        .filter(|&s| s != core_set)
        .collect();
    let mut i = 0;
    while i < sets.len() {
        let arity = sets[i].len();
        let mut level: Vec<(GroupingSet, GroupingSet)> = Vec::new();
        while i < sets.len() && sets[i].len() == arity {
            let set = sets[i];
            let parent = match choice {
                ParentChoice::AlwaysCore => core_set,
                ParentChoice::SmallestCardinality => {
                    lattice.choose_parent(set, &cardinalities, &order)
                }
                ParentChoice::LargestCardinality => {
                    super::from_core::choose_largest(lattice, set, &cardinalities, &order)
                }
            };
            level.push((set, parent));
            i += 1;
        }

        let built: Vec<(GroupingSet, Arena, u64)> = if go_parallel && level.len() > 1 {
            let workers = threads.min(level.len());
            let cursor = std::sync::atomic::AtomicUsize::new(0);
            let done_ref = &done;
            let level_ref = &level;
            let cursor_ref = &cursor;
            // Every handle is joined before any error propagates: an `?`
            // inside the join loop would drop the remaining handles and
            // let a second panicking worker unwind through the scope.
            // Workers pull (set, parent) tasks from a shared cursor — a
            // set with a huge parent arena occupies one worker while the
            // rest drain the level, instead of stalling its whole
            // pre-split chunk.
            let joined: Vec<CubeResult<Vec<(GroupingSet, Arena, u64)>>> =
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|_| {
                            scope.spawn(move |_| -> CubeResult<Vec<_>> {
                                exec::failpoint("cascade::level")?;
                                let mut built = Vec::new();
                                loop {
                                    let t = cursor_ref
                                        // cube-lint: allow(atomic, morsel work-claim counter: each claimed index is consumed only by the claiming thread, over data made visible by the scoped spawn)
                                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                    if t >= level_ref.len() {
                                        break;
                                    }
                                    let (set, parent) = level_ref[t];
                                    ctx.checkpoint()?;
                                    let (arena, merges) = merged_child(
                                        &done_ref[&parent],
                                        encoder.set_mask(set),
                                        aggs,
                                        ctx,
                                    )?;
                                    built.push((set, arena, merges));
                                }
                                Ok(built)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            h.join().unwrap_or_else(|p| {
                                Err(exec::panic_error("cascade::level", p.as_ref()))
                            })
                        })
                        .collect()
                })
                .unwrap_or_else(|p| vec![Err(exec::panic_error("cascade::level", p.as_ref()))]);
            let mut built = Vec::new();
            for part in joined {
                built.extend(part?);
            }
            built
        } else {
            exec::failpoint("cascade::level")?;
            let mut built = Vec::with_capacity(level.len());
            for &(set, parent) in &level {
                ctx.checkpoint()?;
                let (arena, merges) =
                    merged_child(&done[&parent], encoder.set_mask(set), aggs, ctx)?;
                built.push((set, arena, merges));
            }
            built
        };

        for (set, arena, merges) in built {
            stats.merge_calls += merges;
            done.insert(set, arena);
            order.push(set);
        }
    }

    Ok(lattice
        .sets()
        .iter()
        .map(|s| {
            (
                *s,
                done.remove(s)
                    // cube-lint: allow(panic, cascade materializes each lattice set exactly once)
                    .expect("every set materialized")
                    .into_group_map(encoder),
            )
        })
        .collect())
}

/// Morsel-driven parallel aggregation on packed keys: `threads` workers
/// pull fixed-size row ranges from a shared atomic cursor (no pre-split
/// partitions, so adversarial skews self-balance); partitions coalesce by
/// *adopting* a first-seen cell's accumulators outright and merging on
/// collisions; the (parallel) cascade finishes the job.
pub(crate) fn parallel(
    enc: &EncodedInput,
    rows: &[Row],
    aggs: &[BoundAgg],
    lattice: &Lattice,
    threads: usize,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<SetMaps> {
    let threads = threads.max(1).min(rows.len().max(1));
    stats.threads_used = stats.threads_used.max(threads as u32);

    let cursor = std::sync::atomic::AtomicUsize::new(0);
    // Join every handle before surfacing any error — see `cascade`.
    let partials: Vec<CubeResult<(Arena, ExecStats)>> = crossbeam::thread::scope(|scope| {
        let cursor_ref = &cursor;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move |_| -> CubeResult<(Arena, ExecStats)> {
                    exec::failpoint("parallel::worker")?;
                    let mut local = ExecStats::default();
                    let mut arena = Arena::new(aggs.len());
                    loop {
                        let base =
                            // cube-lint: allow(atomic, morsel work-claim counter: each claimed range is consumed only by the claiming thread, over data made visible by the scoped spawn)
                            cursor_ref.fetch_add(MORSEL_ROWS, std::sync::atomic::Ordering::Relaxed);
                        if base >= rows.len() {
                            break;
                        }
                        ctx.checkpoint()?;
                        let end = (base + MORSEL_ROWS).min(rows.len());
                        // cube-lint: allow(checkpoint, bounded by MORSEL_ROWS; the claim loop checkpoints per morsel)
                        for (row, &key) in rows[base..end].iter().zip(&enc.keys[base..end]) {
                            local.rows_scanned += 1;
                            arena.update(key, row, aggs, &mut local, ctx)?;
                        }
                        local.morsels_processed += 1;
                    }
                    Ok((arena, local))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|p| Err(exec::panic_error("parallel::worker", p.as_ref())))
            })
            .collect()
    })
    .unwrap_or_else(|p| vec![Err(exec::panic_error("parallel::worker", p.as_ref()))]);

    let mut core = Arena::new(aggs.len());
    let n = aggs.len();
    for partial in partials {
        let (partial, local) = partial?;
        stats.add(&local);
        let mut boxes: Vec<Option<Box<dyn Accumulator>>> =
            partial.accs.into_iter().map(Some).collect();
        for (key, pslot) in partial.slots {
            let range = pslot as usize * n..(pslot as usize + 1) * n;
            match core.slots.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let s = *e.get() as usize;
                    for ((acc, pacc), agg) in core.accs[s * n..(s + 1) * n]
                        .iter_mut()
                        .zip(&boxes[range])
                        .zip(aggs.iter())
                    {
                        // cube-lint: allow(panic, partition slots are taken at most once per merge pass)
                        let pacc = pacc.as_ref().expect("slot visited once");
                        exec::guard(agg.func.name(), || acc.merge(&pacc.state()))?;
                        stats.merge_calls += 1;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    // First partition to produce this cell: adopt its
                    // scratchpads wholesale — no Init, no merge.
                    let s = core.accs.len() / n;
                    e.insert(s as u32);
                    for b in &mut boxes[range] {
                        // cube-lint: allow(panic, partition slots are taken at most once per merge pass)
                        core.accs.push(b.take().expect("slot visited once"));
                    }
                }
            }
        }
    }

    cascade(
        core,
        &enc.encoder,
        aggs,
        lattice,
        ParentChoice::SmallestCardinality,
        stats,
        ctx,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::from_core;
    use crate::algorithm::naive as row_naive;
    use crate::encode::encode;
    use crate::groupby::ExecStats;
    use crate::spec::{AggSpec, BoundDimension, Dimension};
    use dc_aggregate::builtin;
    use dc_relation::{row, DataType, Schema, Table, Value};

    fn setup() -> (Table, Vec<BoundDimension>, Vec<BoundAgg>) {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("color", DataType::Str),
            ("units", DataType::Int),
        ]);
        let mut t = Table::empty(schema);
        for (m, y, c, u) in [
            ("Chevy", 1994, "black", 50),
            ("Chevy", 1994, "white", 40),
            ("Chevy", 1995, "black", 85),
            ("Ford", 1994, "black", 50),
            ("Ford", 1995, "white", 75),
        ] {
            t.push(row![m, y, c, u]).unwrap();
        }
        let dims = ["model", "year", "color"]
            .iter()
            .map(|d| Dimension::column(d).bind(t.schema()).unwrap())
            .collect();
        let aggs = vec![
            AggSpec::new(builtin("SUM").unwrap(), "units")
                .bind(t.schema())
                .unwrap(),
            AggSpec::new(builtin("COUNT").unwrap(), "units")
                .bind(t.schema())
                .unwrap(),
        ];
        (t, dims, aggs)
    }

    type FinalCells = Vec<(GroupingSet, Vec<(Row, Vec<Value>)>)>;

    // Consumes the maps so keys move instead of cloning per final value.
    fn finals(maps: SetMaps) -> FinalCells {
        maps.into_iter()
            .map(|(s, m)| {
                let mut cells: Vec<(Row, Vec<Value>)> = m
                    .into_iter()
                    .map(|(k, a)| (k, a.iter().map(|x| x.final_value()).collect()))
                    .collect();
                cells.sort();
                (s, cells)
            })
            .collect()
    }

    #[test]
    fn encoded_cascade_matches_row_cascade_cells_and_stats() {
        let (t, dims, aggs) = setup();
        let lattice = Lattice::cube(3).unwrap();
        let enc = encode(t.rows(), &dims).unwrap();

        let ctx = ExecContext::unlimited();
        let mut se = ExecStats::default();
        let e = from_core(
            &enc,
            t.rows(),
            &aggs,
            &lattice,
            ParentChoice::SmallestCardinality,
            &mut se,
            &ctx,
        )
        .unwrap();

        let mut sr = ExecStats::default();
        let r = from_core::run_row_path(t.rows(), &dims, &aggs, &lattice, &mut sr, &ctx).unwrap();

        assert_eq!(finals(e), finals(r));
        // The morselized scan reports its stride count; the row path has
        // no morsels. Every shared counter must still be identical.
        assert_eq!(se.morsels_processed, 1);
        se.morsels_processed = 0;
        assert_eq!(se, sr, "work counters must be identical across key engines");
    }

    #[test]
    fn encoded_naive_matches_row_naive() {
        let (t, dims, aggs) = setup();
        let lattice = Lattice::cube(3).unwrap();
        let enc = encode(t.rows(), &dims).unwrap();
        let ctx = ExecContext::unlimited();
        let mut se = ExecStats::default();
        let e = naive(&enc, t.rows(), &aggs, &lattice, &mut se, &ctx).unwrap();
        let mut sr = ExecStats::default();
        let r = row_naive::run_row_path(t.rows(), &dims, &aggs, &lattice, &mut sr, &ctx).unwrap();
        assert_eq!(finals(e), finals(r));
        assert_eq!(se, sr);
    }

    #[test]
    fn encoded_parallel_adopts_without_extra_merges() {
        let (t, dims, aggs) = setup();
        let lattice = Lattice::cube(3).unwrap();
        let enc = encode(t.rows(), &dims).unwrap();

        // One thread: the coalesce step adopts every cell — zero merges
        // beyond the cascade's own.
        let ctx = ExecContext::unlimited();
        let mut s1 = ExecStats::default();
        let one = parallel(&enc, t.rows(), &aggs, &lattice, 1, &mut s1, &ctx).unwrap();
        let mut sc = ExecStats::default();
        let serial = from_core(
            &enc,
            t.rows(),
            &aggs,
            &lattice,
            ParentChoice::SmallestCardinality,
            &mut sc,
            &ctx,
        )
        .unwrap();
        let expected = finals(serial);
        assert_eq!(finals(one), expected);
        assert_eq!(s1.merge_calls, sc.merge_calls);

        // Multi-thread still agrees on cells.
        let mut s4 = ExecStats::default();
        let four = parallel(&enc, t.rows(), &aggs, &lattice, 4, &mut s4, &ctx).unwrap();
        assert_eq!(finals(four), expected);
    }

    #[test]
    fn arena_slots_are_contiguous_per_cell() {
        let (t, dims, aggs) = setup();
        let enc = encode(t.rows(), &dims).unwrap();
        let arena = compute_core(
            &enc,
            t.rows(),
            &aggs,
            &mut ExecStats::default(),
            &ExecContext::unlimited(),
        )
        .unwrap();
        assert_eq!(arena.n_cells(), 5);
        assert_eq!(arena.accs.len(), 5 * aggs.len());
    }
}
