//! Partition-parallel aggregation (§5).
//!
//! "If the source data spans many disks or nodes, use parallelism to
//! aggregate each partition and then coalesce these aggregates." And the
//! taxonomy discussion adds: "the distributive, algebraic, and holistic
//! taxonomy is very useful in computing aggregates for parallel database
//! systems ... The combination step is very similar to the logic and
//! mechanism used in Figure 8." Here each worker thread computes the core
//! cells of its row partition; partitions are coalesced by scratchpad
//! merging (the same `Iter_super` as the cascade), and the cascade then
//! produces the super-aggregates.

use super::PathOpts;
use crate::algorithm::from_core::{cascade, ParentChoice};
use crate::error::CubeResult;
use crate::exec::{self, ExecContext};
use crate::groupby::{compute_core, ExecStats, GroupMap, Grouped, SetMaps};
use crate::lattice::Lattice;
use crate::spec::{BoundAgg, BoundDimension};
use dc_relation::Row;

#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    rows: &[Row],
    dims: &[BoundDimension],
    aggs: &[BoundAgg],
    lattice: &Lattice,
    threads: usize,
    stats: &mut ExecStats,
    opts: PathOpts,
    ctx: &ExecContext,
) -> CubeResult<Grouped> {
    if opts.encoded {
        if let Some(enc) = crate::encode::encode(rows, dims) {
            stats.encoded_keys = true;
            if opts.vectorize {
                if let Some(plan) = super::vectorized::plan(rows, aggs) {
                    return super::vectorized::parallel(
                        &enc,
                        plan,
                        rows.len(),
                        lattice,
                        threads,
                        opts,
                        stats,
                        ctx,
                    )
                    .map(Grouped::Kernels);
                }
            }
            return super::encoded::parallel(&enc, rows, aggs, lattice, threads, stats, ctx)
                .map(Grouped::Rows);
        }
    }
    run_row_path(rows, dims, aggs, lattice, threads, stats, ctx).map(Grouped::Rows)
}

/// The `Row`-keyed path: fallback when keys don't pack, and the reference
/// the encoded engine is property-tested against.
pub(crate) fn run_row_path(
    rows: &[Row],
    dims: &[BoundDimension],
    aggs: &[BoundAgg],
    lattice: &Lattice,
    threads: usize,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<SetMaps> {
    let threads = threads.max(1).min(rows.len().max(1));
    stats.threads_used = stats.threads_used.max(threads as u32);
    let chunk = rows.len().div_ceil(threads);

    // Aggregate each partition's core in parallel. Every handle is joined
    // before any error propagates: an early `?` would drop the remaining
    // handles and let a second panicking worker unwind through the scope.
    let partials: Vec<CubeResult<(GroupMap, ExecStats)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = rows
            .chunks(chunk.max(1))
            .map(|part| {
                scope.spawn(move |_| -> CubeResult<(GroupMap, ExecStats)> {
                    exec::failpoint("parallel::worker")?;
                    let mut local = ExecStats::default();
                    let core = compute_core(part, dims, aggs, &mut local, ctx)?;
                    Ok((core, local))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|p| Err(exec::panic_error("parallel::worker", p.as_ref())))
            })
            .collect()
    })
    .unwrap_or_else(|p| vec![Err(exec::panic_error("parallel::worker", p.as_ref()))]);

    // Coalesce: merge every partition's cells into one core.
    let mut core = GroupMap::default();
    for partial in partials {
        let (partial, local) = partial?;
        stats.add(&local);
        for (key, accs) in partial {
            match core.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for ((t, s), agg) in e.get_mut().iter_mut().zip(accs.iter()).zip(aggs.iter()) {
                        exec::guard(agg.func.name(), || t.merge(&s.state()))?;
                        stats.merge_calls += 1;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    // First partition to produce this cell: adopt its
                    // scratchpads outright — they are already exactly the
                    // cell's state, so an Init + merge round-trip per
                    // aggregate is pure waste. Later partitions that
                    // revisit the cell hit the Occupied arm and merge.
                    e.insert(accs);
                }
            }
        }
    }

    cascade(
        core,
        aggs,
        lattice,
        ParentChoice::SmallestCardinality,
        stats,
        ctx,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::naive;
    use crate::spec::{AggSpec, Dimension};
    use dc_aggregate::builtin;
    use dc_relation::{row, DataType, Schema, Table, Value};

    fn setup(n_rows: usize) -> (Table, Vec<BoundDimension>, Vec<BoundAgg>) {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("units", DataType::Int),
        ]);
        let mut t = Table::empty(schema);
        let models = ["Chevy", "Ford", "Dodge"];
        for i in 0..n_rows {
            t.push(row![
                models[i % 3],
                1990 + (i % 5) as i64,
                (i * 7 % 100) as i64
            ])
            .unwrap();
        }
        let dims = ["model", "year"]
            .iter()
            .map(|d| Dimension::column(d).bind(t.schema()).unwrap())
            .collect();
        let aggs = vec![
            AggSpec::new(builtin("SUM").unwrap(), "units")
                .bind(t.schema())
                .unwrap(),
            AggSpec::new(builtin("AVG").unwrap(), "units")
                .bind(t.schema())
                .unwrap(),
        ];
        (t, dims, aggs)
    }

    #[test]
    fn matches_naive_across_thread_counts() {
        let (t, dims, aggs) = setup(101);
        let lattice = Lattice::cube(2).unwrap();
        let ctx = ExecContext::unlimited();
        let expected = naive::run(
            t.rows(),
            &dims,
            &aggs,
            &lattice,
            &mut ExecStats::default(),
            true,
            &ctx,
        )
        .unwrap();
        for threads in [1, 2, 4, 7] {
            let got = run(
                t.rows(),
                &dims,
                &aggs,
                &lattice,
                threads,
                &mut ExecStats::default(),
                PathOpts::new(true, true),
                &ctx,
            )
            .unwrap()
            .into_set_maps(&aggs)
            .unwrap();
            for (set, map) in &expected {
                let (_, gmap) = got.iter().find(|(s, _)| s == set).unwrap();
                assert_eq!(gmap.len(), map.len(), "{threads} threads, set {set}");
                for (k, accs) in map {
                    for (i, acc) in accs.iter().enumerate() {
                        assert_eq!(
                            gmap[k][i].final_value(),
                            acc.final_value(),
                            "{threads} threads, {k}, agg {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let (t, dims, aggs) = setup(3);
        let lattice = Lattice::cube(2).unwrap();
        let maps = run(
            t.rows(),
            &dims,
            &aggs,
            &lattice,
            16,
            &mut ExecStats::default(),
            PathOpts::new(true, true),
            &ExecContext::unlimited(),
        )
        .unwrap()
        .into_set_maps(&aggs)
        .unwrap();
        let (_, grand) = maps.iter().find(|(s, _)| s.is_empty()).unwrap();
        let key = Row::new(vec![Value::All, Value::All]);
        assert_eq!(grand[&key][0].final_value(), Value::Int(7 + 14));
    }

    #[test]
    fn empty_input() {
        let (t, dims, aggs) = setup(0);
        let lattice = Lattice::cube(2).unwrap();
        let maps = run(
            t.rows(),
            &dims,
            &aggs,
            &lattice,
            4,
            &mut ExecStats::default(),
            PathOpts::new(true, true),
            &ExecContext::unlimited(),
        )
        .unwrap()
        .into_set_maps(&aggs)
        .unwrap();
        assert!(maps.iter().all(|(_, m)| m.is_empty()));
    }
}
