//! Sort-based ROLLUP (§5).
//!
//! "The basic technique for computing a ROLLUP is to sort the table on the
//! aggregating attributes and then compute the aggregate functions. ...
//! Sorting is especially convenient for ROLLUP since the user often wants
//! the answer set in a sorted order — so the sort must be done anyway."
//!
//! One sort, one scan: a frame of accumulators is kept per rollup level;
//! each row feeds only the deepest (core) frame, and when a prefix closes
//! its frame's scratchpads are folded one level up (`Iter_super`) before
//! being emitted — so the scan does `T` Iter() calls plus `O(cells × N)`
//! merges, the paper's "order-N algorithm for roll-up".

use crate::error::{CubeError, CubeResult};
use crate::exec::{self, ExecContext};
use crate::groupby::{full_key, ExecStats, GroupMap, SetMaps};
use crate::lattice::{rollup_sets, GroupingSet, Lattice};
use crate::spec::{BoundAgg, BoundDimension};
use dc_aggregate::Accumulator;
use dc_relation::{Row, Value};

/// One open aggregation frame: the current prefix plus its scratchpads.
type Frame = Option<(Row, Vec<Box<dyn Accumulator>>)>;

pub(crate) fn run(
    rows: &[Row],
    dims: &[BoundDimension],
    aggs: &[BoundAgg],
    lattice: &Lattice,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<SetMaps> {
    exec::failpoint("sort::scan")?;
    let n = lattice.n_dims();
    if lattice.sets() != rollup_sets(n)?.as_slice() {
        return Err(CubeError::Unsupported(
            "the sort algorithm applies only to ROLLUP lattices".into(),
        ));
    }

    // Evaluate keys once, then sort — the pass the user "wants anyway".
    let mut keyed: Vec<(Row, &Row)> = rows.iter().map(|r| (full_key(dims, r), r)).collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    stats.sorts += 1;

    let mut maps: SetMaps = (0..=n)
        .rev()
        .map(|k| (GroupingSet::first_k(k), GroupMap::default()))
        .collect();

    // frames[k] aggregates the current run of rows agreeing on the first k
    // dims; frames[n] is the core group.
    let mut frames: Vec<Frame> = (0..=n).map(|_| None).collect();

    let close_frame = |frames: &mut Vec<Frame>,
                       maps: &mut SetMaps,
                       level: usize,
                       stats: &mut ExecStats|
     -> CubeResult<()> {
        if let Some((prefix, accs)) = frames[level].take() {
            // Fold this frame's scratchpads into the parent level first —
            // the cascade that makes this a single-scan algorithm.
            if level > 0 {
                if frames[level - 1].is_none() {
                    ctx.charge_cells(1)?;
                    let parent_prefix = Row::new(prefix.values()[..level - 1].to_vec());
                    frames[level - 1] = Some((parent_prefix, exec::guarded_init(aggs)?));
                }
                // cube-lint: allow(panic, opened by the is_none branch just above)
                let (_, parent_accs) = frames[level - 1].as_mut().expect("parent frame open");
                for ((p, c), agg) in parent_accs.iter_mut().zip(accs.iter()).zip(aggs.iter()) {
                    exec::guard(agg.func.name(), || p.merge(&c.state()))?;
                    stats.merge_calls += 1;
                }
            }
            // Emit: the first `level` dims keep their values, the rest ALL.
            let mut key_vals = prefix.0;
            key_vals.extend(std::iter::repeat_n(Value::All, n - level));
            let map_idx = n - level; // maps are ordered core (level n) first
            maps[map_idx].1.insert(Row::new(key_vals), accs);
        }
        Ok(())
    };

    for (i, (key, row)) in keyed.iter().enumerate() {
        ctx.tick(i)?;
        // Find the shallowest level whose prefix changed.
        let open_prefix = frames[n].as_ref().map(|(p, _)| p.clone());
        let diverge = match &open_prefix {
            None => 0,
            Some(p) => key
                .iter()
                .zip(p.iter())
                .position(|(a, b)| a != b)
                .unwrap_or(n),
        };
        if open_prefix.is_some() {
            // Close frames deeper than the divergence point, deepest first.
            for level in ((diverge + 1)..=n).rev() {
                close_frame(&mut frames, &mut maps, level, stats)?;
            }
        }
        // (Re)open deeper frames for the new prefix.
        for (level, frame) in frames.iter_mut().enumerate().skip(1) {
            if frame.is_none() {
                ctx.charge_cells(1)?;
                *frame = Some((
                    Row::new(key.values()[..level].to_vec()),
                    exec::guarded_init(aggs)?,
                ));
            }
        }
        if frames[0].is_none() {
            ctx.charge_cells(1)?;
            frames[0] = Some((Row::new(Vec::new()), exec::guarded_init(aggs)?));
        }
        // Feed only the core frame; parents are fed by merges at close.
        // cube-lint: allow(panic, the open loop above re-opens every closed frame)
        let (_, accs) = frames[n].as_mut().expect("core frame open");
        for (acc, agg) in accs.iter_mut().zip(aggs.iter()) {
            exec::guard(agg.func.name(), || acc.iter(agg.input_value(row)))?;
            stats.iter_calls += 1;
        }
        stats.rows_scanned += 1;
    }

    // Close everything at end of input (grand total last). An empty input
    // still emits no rows — matching GROUP BY semantics on empty tables.
    if !keyed.is_empty() {
        for level in (0..=n).rev() {
            close_frame(&mut frames, &mut maps, level, stats)?;
        }
    }

    Ok(maps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::naive;
    use crate::spec::{AggSpec, Dimension};
    use dc_aggregate::builtin;
    use dc_relation::{row, DataType, Schema, Table};

    fn setup() -> (Table, Vec<BoundDimension>, Vec<BoundAgg>) {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("color", DataType::Str),
            ("units", DataType::Int),
        ]);
        let mut t = Table::empty(schema);
        // Deliberately unsorted input.
        for (m, y, c, u) in [
            ("Ford", 1995, "white", 75),
            ("Chevy", 1994, "black", 50),
            ("Ford", 1994, "black", 50),
            ("Chevy", 1995, "white", 115),
            ("Chevy", 1994, "white", 40),
            ("Ford", 1994, "white", 10),
            ("Chevy", 1995, "black", 85),
            ("Ford", 1995, "black", 85),
        ] {
            t.push(row![m, y, c, u]).unwrap();
        }
        let dims = ["model", "year", "color"]
            .iter()
            .map(|d| Dimension::column(d).bind(t.schema()).unwrap())
            .collect();
        let aggs = vec![AggSpec::new(builtin("SUM").unwrap(), "units")
            .bind(t.schema())
            .unwrap()];
        (t, dims, aggs)
    }

    fn cell(maps: &SetMaps, set_len: usize, key: Row) -> Value {
        let (_, map) = maps.iter().find(|(s, _)| s.len() == set_len).unwrap();
        map[&key][0].final_value()
    }

    #[test]
    fn matches_naive_on_rollup() {
        let (t, dims, aggs) = setup();
        let lattice = Lattice::rollup(3).unwrap();
        let mut s1 = ExecStats::default();
        let sorted = run(
            t.rows(),
            &dims,
            &aggs,
            &lattice,
            &mut s1,
            &ExecContext::unlimited(),
        )
        .unwrap();
        let mut s2 = ExecStats::default();
        let naive = naive::run(
            t.rows(),
            &dims,
            &aggs,
            &lattice,
            &mut s2,
            true,
            &ExecContext::unlimited(),
        )
        .unwrap();
        for (set, map) in &naive {
            let (_, smap) = sorted.iter().find(|(s, _)| s == set).unwrap();
            assert_eq!(smap.len(), map.len(), "cell count for {set}");
            for (k, accs) in map {
                assert_eq!(
                    smap[k][0].final_value(),
                    accs[0].final_value(),
                    "cell {k} of {set}"
                );
            }
        }
        // One sort, T iter calls (not T × (N+1)).
        assert_eq!(s1.sorts, 1);
        assert_eq!(s1.iter_calls, 8);
    }

    #[test]
    fn emits_expected_subtotals() {
        let (t, dims, aggs) = setup();
        let lattice = Lattice::rollup(3).unwrap();
        let maps = run(
            t.rows(),
            &dims,
            &aggs,
            &lattice,
            &mut ExecStats::default(),
            &ExecContext::unlimited(),
        )
        .unwrap();
        // Table 5.a values.
        assert_eq!(
            cell(
                &maps,
                2,
                Row::new(vec![Value::str("Chevy"), Value::Int(1994), Value::All])
            ),
            Value::Int(90)
        );
        assert_eq!(
            cell(
                &maps,
                1,
                Row::new(vec![Value::str("Chevy"), Value::All, Value::All])
            ),
            Value::Int(290)
        );
        assert_eq!(
            cell(&maps, 0, Row::new(vec![Value::All, Value::All, Value::All])),
            Value::Int(510)
        );
    }

    #[test]
    fn rejects_cube_lattices() {
        let (t, dims, aggs) = setup();
        let lattice = Lattice::cube(3).unwrap();
        let err = run(
            t.rows(),
            &dims,
            &aggs,
            &lattice,
            &mut ExecStats::default(),
            &ExecContext::unlimited(),
        );
        assert!(matches!(err, Err(CubeError::Unsupported(_))));
    }

    #[test]
    fn empty_input_produces_no_rows() {
        let (t, dims, aggs) = setup();
        let empty = Table::empty(t.schema().clone());
        let lattice = Lattice::rollup(3).unwrap();
        let maps = run(
            empty.rows(),
            &dims,
            &aggs,
            &lattice,
            &mut ExecStats::default(),
            &ExecContext::unlimited(),
        )
        .unwrap();
        assert!(maps.iter().all(|(_, m)| m.is_empty()));
    }
}
