//! Vectorized columnar execution over packed keys: morsel-driven scans
//! feeding the POD kernels of [`dc_aggregate::vectorized`].
//!
//! This is the fast lane beside [`super::encoded`]: the same packed-`u64`
//! group keys and the same cascade schedule, but the accumulators are
//! 24-byte [`KernelCell`]s in one flat `Vec` and the inner loop is a
//! monomorphized kernel over a primitive column slice instead of a virtual
//! `Accumulator::iter` per (row, aggregate). It engages only when
//! [`plan`] succeeds — every aggregate exposes a [`Kernel`] *and* every
//! measure column extracts as `i64`/`f64` + validity bitmap — so holistic
//! and user-defined aggregates (and exotic column contents) transparently
//! keep the Init/Iter/Final row path, with identical results.
//!
//! Scans are *morsel-driven* (Leis et al.'s term): workers pull fixed-size
//! row ranges from a shared atomic cursor rather than receiving pre-split
//! partitions, so a worker stuck on a skewed, collision-heavy range does
//! not leave the others idle. The serial scan walks the same morsels, and
//! every morsel boundary polls [`ExecContext::checkpoint`], bounding the
//! latency of cancellation and deadline trips.
//!
//! [`ExecStats`] accounting matches the row path exactly where the work is
//! equivalent (`rows_scanned` per row, `iter_calls` per (row, aggregate),
//! `merge_calls` per (parent cell, aggregate) in the cascade and per
//! collision in the parallel coalesce); rehydrating a cell into a boxed
//! accumulator at materialization time is *not* a merge — it is the same
//! bookkeeping the arena's `into_group_map` does for free.

use crate::encode::{EncodedInput, KeyEncoder};
use crate::error::CubeResult;
use crate::exec::{self, ExecContext};
use crate::groupby::ExecStats;
#[cfg(test)]
use crate::groupby::{GroupMap, SetMaps};
use crate::lattice::{GroupingSet, Lattice};
use crate::spec::BoundAgg;
use dc_aggregate::{Kernel, KernelCell};
use dc_relation::{Bitmap, Column, ColumnData, FxHashMap, Row};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use super::encoded::PARALLEL_CASCADE_MIN_CELLS;
use super::from_core::ParentChoice;

/// Rows per morsel: two checkpoint intervals, so morsel-grained polling
/// is at worst 2x coarser than the row paths' `tick`, while the slot
/// buffer (4 bytes/row) stays comfortably in L1.
pub(crate) const MORSEL_ROWS: usize = 2 * exec::CHECKPOINT_INTERVAL;

/// One aggregate's vectorized input. Lanes over the same measure column
/// share one extracted vector (`SUM(units)` and `AVG(units)` in one
/// select list extract `units` once, not twice).
pub(crate) enum LaneInput {
    /// No column to read — COUNT(*) and COUNT over the unit input count
    /// rows, not values.
    Star,
    /// An `i64` measure column with its validity bitmap.
    Ints(Arc<(Vec<i64>, Bitmap)>),
    /// An `f64` measure column with its validity bitmap.
    Floats(Arc<(Vec<f64>, Bitmap)>),
}

/// One aggregate compiled to a kernel over a typed column.
pub(crate) struct Lane {
    kernel: Kernel,
    input: LaneInput,
}

impl Lane {
    fn float_input(&self) -> bool {
        matches!(self.input, LaneInput::Floats(..))
    }
}

/// The compiled plan: one [`Lane`] per aggregate, in aggregate order.
pub(crate) struct KernelPlan {
    lanes: Vec<Lane>,
}

/// Try to compile every aggregate to a kernel lane. `None` — an aggregate
/// without a kernel (holistic, user-defined, PRODUCT, ...) or a measure
/// column that is not purely `Int`/`NULL` or `Float`/`NULL` — sends the
/// whole query down the row path.
pub(crate) fn plan(rows: &[Row], aggs: &[BoundAgg]) -> Option<KernelPlan> {
    if aggs.is_empty() {
        return None;
    }
    // One extraction per distinct measure column, shared across lanes.
    enum Extracted {
        Ints(Arc<(Vec<i64>, Bitmap)>),
        Floats(Arc<(Vec<f64>, Bitmap)>),
    }
    let mut columns: FxHashMap<usize, Option<Extracted>> = FxHashMap::default();
    let mut lanes = Vec::with_capacity(aggs.len());
    for a in aggs {
        let kernel = a.func.kernel()?;
        let input = match a.input {
            // The unit input is a constant non-NULL value: only the
            // counting kernels read nothing and stay correct.
            None => match kernel {
                Kernel::Count | Kernel::CountStar => LaneInput::Star,
                _ => return None,
            },
            Some(idx) => match kernel {
                Kernel::CountStar => LaneInput::Star,
                _ => {
                    let extracted = columns.entry(idx).or_insert_with(|| {
                        if let Some(col) = Column::try_ints(rows, idx) {
                            let ColumnData::Int(vals) = col.data else {
                                // cube-lint: allow(panic, try_ints only ever builds Int column data)
                                unreachable!()
                            };
                            Some(Extracted::Ints(Arc::new((vals, col.validity))))
                        } else if let Some(col) = Column::try_floats(rows, idx) {
                            let ColumnData::Float(vals) = col.data else {
                                // cube-lint: allow(panic, try_floats only ever builds Float column data)
                                unreachable!()
                            };
                            Some(Extracted::Floats(Arc::new((vals, col.validity))))
                        } else {
                            None
                        }
                    });
                    match extracted {
                        Some(Extracted::Ints(c)) => LaneInput::Ints(Arc::clone(c)),
                        Some(Extracted::Floats(c)) => LaneInput::Floats(Arc::clone(c)),
                        None => return None,
                    }
                }
            },
        };
        lanes.push(Lane { kernel, input });
    }
    Some(KernelPlan { lanes })
}

/// Flat kernel-cell storage for one grouping set, mirroring
/// [`super::encoded::Arena`]: `slots` resolves a packed key to a cell,
/// cell `i`'s lanes occupy `cells[i*n_lanes..(i+1)*n_lanes]`.
pub(crate) struct KernelArena {
    slots: FxHashMap<u64, u32>,
    cells: Vec<KernelCell>,
    n_lanes: usize,
}

impl KernelArena {
    fn new(n_lanes: usize) -> Self {
        KernelArena {
            slots: FxHashMap::default(),
            cells: Vec::new(),
            n_lanes,
        }
    }

    fn with_capacity(n_lanes: usize, cells: usize) -> Self {
        KernelArena {
            slots: FxHashMap::with_capacity_and_hasher(cells, Default::default()),
            cells: Vec::with_capacity(cells * n_lanes),
            n_lanes,
        }
    }

    fn n_cells(&self) -> usize {
        self.slots.len()
    }

    /// The cell slot for `key`; a fresh cell charges the budget and
    /// zero-initializes its lanes (the kernels' Init is `default()` — no
    /// user code, so no panic guard needed).
    #[inline]
    fn slot(&mut self, key: u64, ctx: &ExecContext) -> CubeResult<u32> {
        match self.slots.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => Ok(*e.get()),
            std::collections::hash_map::Entry::Vacant(e) => {
                ctx.charge_cells(1)?;
                let s = (self.cells.len() / self.n_lanes) as u32;
                e.insert(s);
                self.cells
                    .resize(self.cells.len() + self.n_lanes, KernelCell::default());
                Ok(s)
            }
        }
    }

    /// Rehydrate every cell into boxed row-path accumulators keyed by
    /// decoded `Row`s. Production code materializes straight from cells
    /// via [`KernelSets::materialize`]; this hydration exists so tests
    /// can compare kernel results against row-path `GroupMap`s cell by
    /// cell.
    #[cfg(test)]
    fn into_group_map(
        self,
        encoder: &KeyEncoder,
        plan: &KernelPlan,
        aggs: &[BoundAgg],
    ) -> CubeResult<GroupMap> {
        let n = self.n_lanes;
        let mut map = GroupMap::with_capacity_and_hasher(self.slots.len(), Default::default());
        for (key, slot) in self.slots {
            let base = slot as usize * n;
            let mut accs = Vec::with_capacity(n);
            for (lane, (cell, agg)) in plan
                .lanes
                .iter()
                .zip(self.cells[base..base + n].iter().zip(aggs))
            {
                let mut acc = exec::guard(agg.func.name(), || agg.func.init())?;
                lane.kernel
                    .rehydrate(acc.as_mut(), cell, lane.float_input());
                accs.push(acc);
            }
            map.insert(encoder.decode_key(key), accs);
        }
        Ok(map)
    }
}

/// The vectorized query result: one kernel arena per grouping set (in
/// lattice order) plus what is needed to decode keys and finalize cells.
/// The counterpart of [`SetMaps`] that never boxes an accumulator —
/// finals come straight from the POD cells at materialization time.
pub(crate) struct KernelSets {
    pub(crate) sets: Vec<(GroupingSet, KernelArena)>,
    plan: KernelPlan,
    encoder: KeyEncoder,
}

impl KernelSets {
    /// The direct materializer: the exact output contract of
    /// [`crate::groupby::materialize`] (sets in lattice order, each set's
    /// rows sorted by key with `ALL` collating last, one `final_calls`
    /// per (cell, aggregate)) without the `GroupMap` detour.
    pub(crate) fn materialize(
        self,
        schema: dc_relation::Schema,
        stats: &mut ExecStats,
        ctx: &ExecContext,
    ) -> CubeResult<dc_relation::Table> {
        exec::failpoint("materialize")?;
        let KernelSets {
            sets,
            plan,
            encoder,
        } = self;
        let n = plan.lanes.len();
        let mut out = dc_relation::Table::empty(schema);
        for (_set, arena) in sets {
            ctx.checkpoint()?;
            let mut cells: Vec<(Row, u32)> = arena
                .slots
                .iter()
                .map(|(&key, &slot)| (encoder.decode_key(key), slot))
                .collect();
            cells.sort_by(|a, b| a.0.cmp(&b.0));
            for (i, (key, slot)) in cells.into_iter().enumerate() {
                ctx.tick(i)?;
                let mut vals = key.0;
                let base = slot as usize * n;
                // cube-lint: allow(checkpoint, bounded by the lane count; the cell loop above ticks)
                for (lane, cell) in plan.lanes.iter().zip(&arena.cells[base..base + n]) {
                    // cube-lint: allow(guard, engine-owned POD kernel, runs no user code)
                    vals.push(lane.kernel.final_value(cell, lane.float_input()));
                    stats.final_calls += 1;
                }
                out.push_unchecked(Row::new(vals));
            }
        }
        Ok(out)
    }

    /// Hydrate into the row-path representation — test-only, for
    /// comparing against row-engine `SetMaps` cell by cell.
    #[cfg(test)]
    pub(crate) fn into_set_maps(self, aggs: &[BoundAgg]) -> CubeResult<SetMaps> {
        let KernelSets {
            sets,
            plan,
            encoder,
        } = self;
        sets.into_iter()
            .map(|(s, arena)| Ok((s, arena.into_group_map(&encoder, &plan, aggs)?)))
            .collect()
    }
}

/// Run every lane's kernel over one morsel. `slots[j]` is the group slot
/// of row `base + j`; `iter_calls` counts one fold per (row, lane), the
/// row path's accounting.
fn update_morsel(
    arena: &mut KernelArena,
    plan: &KernelPlan,
    slots: &[u32],
    base: usize,
    stats: &mut ExecStats,
) {
    let stride = plan.lanes.len();
    for (l, lane) in plan.lanes.iter().enumerate() {
        match &lane.input {
            LaneInput::Star => Kernel::update_star(&mut arena.cells, stride, l, slots),
            LaneInput::Ints(col) => lane.kernel.update_i64(
                &mut arena.cells,
                stride,
                l,
                slots,
                &col.0[base..base + slots.len()],
                &col.1,
                base,
            ),
            LaneInput::Floats(col) => lane.kernel.update_f64(
                &mut arena.cells,
                stride,
                l,
                slots,
                &col.0[base..base + slots.len()],
                &col.1,
                base,
            ),
        }
        stats.iter_calls += slots.len() as u64;
    }
}

/// Scan one morsel `[base, end)` into `arena`: resolve every row's slot
/// (charging fresh cells), then one kernel pass per lane.
#[allow(clippy::too_many_arguments)]
fn scan_morsel(
    arena: &mut KernelArena,
    enc: &EncodedInput,
    plan: &KernelPlan,
    slot_buf: &mut Vec<u32>,
    base: usize,
    end: usize,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<()> {
    exec::failpoint("vectorized::morsel")?;
    ctx.checkpoint()?;
    slot_buf.clear();
    for &key in &enc.keys[base..end] {
        stats.rows_scanned += 1;
        slot_buf.push(arena.slot(key, ctx)?);
    }
    update_morsel(arena, plan, slot_buf, base, stats);
    stats.morsels_processed += 1;
    Ok(())
}

/// The core GROUP BY: a serial morsel walk (row order preserved, so float
/// accumulation is bit-identical to the row path).
fn compute_core(
    enc: &EncodedInput,
    plan: &KernelPlan,
    n_rows: usize,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<KernelArena> {
    exec::failpoint("core::scan")?;
    let mut arena = KernelArena::new(plan.lanes.len());
    let mut slot_buf = Vec::with_capacity(MORSEL_ROWS.min(n_rows));
    let mut base = 0;
    // cube-lint: allow(checkpoint, scan_morsel checkpoints at its own failpoint per morsel)
    while base < n_rows {
        let end = (base + MORSEL_ROWS).min(n_rows);
        scan_morsel(&mut arena, enc, plan, &mut slot_buf, base, end, stats, ctx)?;
        base = end;
    }
    Ok(arena)
}

/// From-core on kernels: core scan + [`cascade`]. Takes the plan by value
/// — the returned [`KernelSets`] owns it through materialization.
pub(crate) fn from_core(
    enc: &EncodedInput,
    plan: KernelPlan,
    n_rows: usize,
    lattice: &Lattice,
    choice: ParentChoice,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<KernelSets> {
    // Recorded before the scan so partial stats on a budget trip already
    // say which engine was running.
    stats.vectorized_kernels_used = stats.vectorized_kernels_used.max(plan.lanes.len() as u64);
    let core = compute_core(enc, &plan, n_rows, stats, ctx)?;
    let sets = cascade(core, &enc.encoder, &plan, lattice, choice, stats, ctx)?;
    Ok(KernelSets {
        sets,
        plan,
        encoder: enc.encoder.clone(),
    })
}

/// Build one child set by folding a parent arena through the set's mask —
/// the paper's Iter_super, one `merge` per (parent cell, lane), the same
/// count as the accumulator cascades.
fn merged_child(
    parent: &KernelArena,
    mask: u64,
    plan: &KernelPlan,
    ctx: &ExecContext,
) -> CubeResult<(KernelArena, u64)> {
    let n = plan.lanes.len();
    let mut child = KernelArena::with_capacity(n, parent.n_cells() / 2 + 1);
    let mut merges = 0u64;
    for (i, (&pkey, &pslot)) in parent.slots.iter().enumerate() {
        ctx.tick(i)?;
        let cslot = child.slot(pkey & mask, ctx)? as usize;
        let pbase = pslot as usize * n;
        for (l, lane) in plan.lanes.iter().enumerate() {
            let src = parent.cells[pbase + l];
            lane.kernel
                // cube-lint: allow(guard, engine-owned POD kernel, runs no user code)
                .merge(&mut child.cells[cslot * n + l], &src, lane.float_input());
            merges += 1;
        }
    }
    Ok((child, merges))
}

/// The cascade over kernel arenas, parallel by lattice level with
/// task-pulling workers.
///
/// The level-at-a-time schedule is inherited from the accumulator cascade
/// (parents always live in earlier levels); within a level, workers pull
/// `(set, parent)` tasks from an atomic cursor instead of receiving
/// pre-chunked slices, so one slow set (a huge parent arena) does not
/// serialize the rest of its chunk behind it.
fn cascade(
    core: KernelArena,
    encoder: &KeyEncoder,
    plan: &KernelPlan,
    lattice: &Lattice,
    choice: ParentChoice,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<Vec<(GroupingSet, KernelArena)>> {
    let core_set = lattice.core();
    let cardinalities = encoder.cardinalities();

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let go_parallel = threads > 1 && core.n_cells() >= PARALLEL_CASCADE_MIN_CELLS;

    let mut done: FxHashMap<GroupingSet, KernelArena> = FxHashMap::default();
    let mut order: Vec<GroupingSet> = Vec::with_capacity(lattice.sets().len());
    done.insert(core_set, core);
    order.push(core_set);

    let sets: Vec<GroupingSet> = lattice
        .sets()
        .iter()
        .copied()
        .filter(|&s| s != core_set)
        .collect();
    let mut i = 0;
    while i < sets.len() {
        let arity = sets[i].len();
        let mut level: Vec<(GroupingSet, GroupingSet)> = Vec::new();
        while i < sets.len() && sets[i].len() == arity {
            let set = sets[i];
            let parent = match choice {
                ParentChoice::AlwaysCore => core_set,
                ParentChoice::SmallestCardinality => {
                    lattice.choose_parent(set, &cardinalities, &order)
                }
                ParentChoice::LargestCardinality => {
                    super::from_core::choose_largest(lattice, set, &cardinalities, &order)
                }
            };
            level.push((set, parent));
            i += 1;
        }

        let built: Vec<(GroupingSet, KernelArena, u64)> = if go_parallel && level.len() > 1 {
            let workers = threads.min(level.len());
            let cursor = AtomicUsize::new(0);
            let done_ref = &done;
            let level_ref = &level;
            let cursor_ref = &cursor;
            // Join every handle before surfacing any error — see the
            // accumulator cascade.
            let joined: Vec<CubeResult<Vec<(GroupingSet, KernelArena, u64)>>> =
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|_| {
                            scope.spawn(move |_| -> CubeResult<Vec<_>> {
                                exec::failpoint("cascade::level")?;
                                let mut built = Vec::new();
                                loop {
                                    let t = cursor_ref.fetch_add(1, Ordering::Relaxed);
                                    if t >= level_ref.len() {
                                        break;
                                    }
                                    let (set, parent) = level_ref[t];
                                    ctx.checkpoint()?;
                                    let (arena, merges) = merged_child(
                                        &done_ref[&parent],
                                        encoder.set_mask(set),
                                        plan,
                                        ctx,
                                    )?;
                                    built.push((set, arena, merges));
                                }
                                Ok(built)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            h.join().unwrap_or_else(|p| {
                                Err(exec::panic_error("cascade::level", p.as_ref()))
                            })
                        })
                        .collect()
                })
                .unwrap_or_else(|p| vec![Err(exec::panic_error("cascade::level", p.as_ref()))]);
            let mut built = Vec::new();
            for part in joined {
                built.extend(part?);
            }
            built
        } else {
            exec::failpoint("cascade::level")?;
            let mut built = Vec::with_capacity(level.len());
            for &(set, parent) in &level {
                ctx.checkpoint()?;
                let (arena, merges) =
                    merged_child(&done[&parent], encoder.set_mask(set), plan, ctx)?;
                built.push((set, arena, merges));
            }
            built
        };

        for (set, arena, merges) in built {
            stats.merge_calls += merges;
            done.insert(set, arena);
            order.push(set);
        }
    }

    Ok(lattice
        .sets()
        .iter()
        // cube-lint: allow(panic, the cascade above materializes each lattice set exactly once)
        .map(|s| (*s, done.remove(s).expect("every set materialized")))
        .collect())
}

/// Morsel-driven parallel aggregation: `threads` workers pull morsels from
/// one atomic row cursor — load balance is automatic at adversarial skews
/// (a worker bogged down in a collision-heavy range simply pulls fewer
/// morsels). Partition arenas coalesce by adopting first-seen cells (POD
/// copy, no merge counted) and merging collisions, then the cascade runs.
pub(crate) fn parallel(
    enc: &EncodedInput,
    plan: KernelPlan,
    n_rows: usize,
    lattice: &Lattice,
    threads: usize,
    stats: &mut ExecStats,
    ctx: &ExecContext,
) -> CubeResult<KernelSets> {
    stats.vectorized_kernels_used = stats.vectorized_kernels_used.max(plan.lanes.len() as u64);
    let threads = threads.max(1).min(n_rows.max(1));
    stats.threads_used = stats.threads_used.max(threads as u64);

    let cursor = AtomicUsize::new(0);
    // Each worker reports its local stats alongside the result so that a
    // budget trip mid-morsel still surfaces the scan progress made before
    // the trip in the error's partial [`ExecStats`].
    type WorkerOutcome = (CubeResult<KernelArena>, ExecStats);
    let partials: Vec<WorkerOutcome> = {
        let plan = &plan;
        crossbeam::thread::scope(|scope| {
            let cursor_ref = &cursor;
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move |_| -> WorkerOutcome {
                        let mut local = ExecStats::default();
                        if let Err(e) = exec::failpoint("parallel::worker") {
                            return (Err(e), local);
                        }
                        let mut arena = KernelArena::new(plan.lanes.len());
                        let mut slot_buf = Vec::with_capacity(MORSEL_ROWS);
                        loop {
                            let base = cursor_ref.fetch_add(MORSEL_ROWS, Ordering::Relaxed);
                            if base >= n_rows {
                                break;
                            }
                            let end = (base + MORSEL_ROWS).min(n_rows);
                            if let Err(e) = scan_morsel(
                                &mut arena,
                                enc,
                                plan,
                                &mut slot_buf,
                                base,
                                end,
                                &mut local,
                                ctx,
                            ) {
                                return (Err(e), local);
                            }
                        }
                        (Ok(arena), local)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|p| {
                        (
                            Err(exec::panic_error("parallel::worker", p.as_ref())),
                            ExecStats::default(),
                        )
                    })
                })
                .collect()
        })
        .unwrap_or_else(|p| {
            vec![(
                Err(exec::panic_error("parallel::worker", p.as_ref())),
                ExecStats::default(),
            )]
        })
    };

    let n = plan.lanes.len();
    let mut core = KernelArena::new(n);
    // Fold every worker's stats in before propagating the first error —
    // the whole point of reporting them separately.
    let mut failed = None;
    let mut arenas = Vec::with_capacity(partials.len());
    for (result, local) in partials {
        stats.add(&local);
        match result {
            Ok(arena) => arenas.push(arena),
            Err(e) => failed = failed.or(Some(e)),
        }
    }
    if let Some(e) = failed {
        return Err(e);
    }
    for partial in arenas {
        for (key, pslot) in partial.slots {
            let pbase = pslot as usize * n;
            match core.slots.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let cbase = *e.get() as usize * n;
                    for (l, lane) in plan.lanes.iter().enumerate() {
                        let src = partial.cells[pbase + l];
                        lane.kernel
                            // cube-lint: allow(guard, engine-owned POD kernel, runs no user code)
                            .merge(&mut core.cells[cbase + l], &src, lane.float_input());
                        stats.merge_calls += 1;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    // First worker to produce this cell: adopt the POD
                    // lanes outright — no Init, no merge.
                    let s = (core.cells.len() / n) as u32;
                    e.insert(s);
                    core.cells
                        .extend_from_slice(&partial.cells[pbase..pbase + n]);
                }
            }
        }
    }

    let sets = cascade(
        core,
        &enc.encoder,
        &plan,
        lattice,
        ParentChoice::SmallestCardinality,
        stats,
        ctx,
    )?;
    Ok(KernelSets {
        sets,
        plan,
        encoder: enc.encoder.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::spec::{AggSpec, BoundDimension, Dimension};
    use dc_aggregate::builtin;
    use dc_relation::{row, DataType, Schema, Table, Value};

    fn setup() -> (Table, Vec<BoundDimension>, Vec<BoundAgg>) {
        let schema = Schema::from_pairs(&[
            ("model", DataType::Str),
            ("year", DataType::Int),
            ("units", DataType::Int),
            ("price", DataType::Float),
        ]);
        let mut t = Table::empty(schema);
        for (m, y, u, p) in [
            ("Chevy", 1994, 50, 1.5),
            ("Chevy", 1995, 85, 2.25),
            ("Ford", 1994, 50, 0.5),
            ("Ford", 1995, 75, 4.0),
        ] {
            t.push(row![m, y, u, p]).unwrap();
        }
        t.push(Row::new(vec![
            Value::str("Ford"),
            Value::Int(1994),
            Value::Null,
            Value::Null,
        ]))
        .unwrap();
        let dims = ["model", "year"]
            .iter()
            .map(|d| Dimension::column(d).bind(t.schema()).unwrap())
            .collect();
        let aggs = vec![
            AggSpec::new(builtin("SUM").unwrap(), "units")
                .bind(t.schema())
                .unwrap(),
            AggSpec::new(builtin("AVG").unwrap(), "price")
                .bind(t.schema())
                .unwrap(),
            AggSpec::new(builtin("COUNT").unwrap(), "units")
                .bind(t.schema())
                .unwrap(),
            AggSpec::star(builtin("COUNT(*)").unwrap())
                .bind(t.schema())
                .unwrap(),
            AggSpec::new(builtin("MIN").unwrap(), "price")
                .bind(t.schema())
                .unwrap(),
            AggSpec::new(builtin("MAX").unwrap(), "units")
                .bind(t.schema())
                .unwrap(),
        ];
        (t, dims, aggs)
    }

    #[allow(clippy::type_complexity)]
    fn finals(maps: SetMaps) -> Vec<(GroupingSet, Vec<(Row, Vec<Value>)>)> {
        maps.into_iter()
            .map(|(s, m)| {
                let mut cells: Vec<(Row, Vec<Value>)> = m
                    .into_iter()
                    .map(|(k, a)| (k, a.iter().map(|x| x.final_value()).collect()))
                    .collect();
                cells.sort();
                (s, cells)
            })
            .collect()
    }

    #[test]
    fn plan_compiles_builtins_and_rejects_the_rest() {
        let (t, _, aggs) = setup();
        let plan = plan(t.rows(), &aggs).expect("all six built-ins kernelize");
        assert_eq!(plan.lanes.len(), 6);

        // A holistic aggregate anywhere sends the whole query to the row
        // path.
        let with_median = vec![AggSpec::new(builtin("MEDIAN").unwrap(), "units")
            .bind(t.schema())
            .unwrap()];
        assert!(super::plan(t.rows(), &with_median).is_none());

        // A string measure cannot extract as a primitive column.
        let on_str = vec![AggSpec::new(builtin("MIN").unwrap(), "model")
            .bind(t.schema())
            .unwrap()];
        assert!(super::plan(t.rows(), &on_str).is_none());
    }

    #[test]
    fn vectorized_from_core_matches_arena_path() {
        let (t, dims, aggs) = setup();
        let lattice = Lattice::cube(2).unwrap();
        let enc = encode(t.rows(), &dims).unwrap();
        let ctx = ExecContext::unlimited();

        let mut sv = ExecStats::default();
        let v = from_core(
            &enc,
            plan(t.rows(), &aggs).unwrap(),
            t.rows().len(),
            &lattice,
            ParentChoice::SmallestCardinality,
            &mut sv,
            &ctx,
        )
        .unwrap()
        .into_set_maps(&aggs)
        .unwrap();

        let mut sa = ExecStats::default();
        let a = super::super::encoded::from_core(
            &enc,
            t.rows(),
            &aggs,
            &lattice,
            ParentChoice::SmallestCardinality,
            &mut sa,
            &ctx,
        )
        .unwrap();

        assert_eq!(finals(v), finals(a));
        // Work counters agree wherever the work is the same.
        assert_eq!(sv.rows_scanned, sa.rows_scanned);
        assert_eq!(sv.iter_calls, sa.iter_calls);
        assert_eq!(sv.merge_calls, sa.merge_calls);
        assert_eq!(sv.vectorized_kernels_used, 6);
        assert!(sv.morsels_processed > 0);
    }

    #[test]
    fn vectorized_parallel_matches_serial() {
        let (t, dims, aggs) = setup();
        let lattice = Lattice::cube(2).unwrap();
        let enc = encode(t.rows(), &dims).unwrap();
        let ctx = ExecContext::unlimited();

        let expected = finals(
            from_core(
                &enc,
                plan(t.rows(), &aggs).unwrap(),
                t.rows().len(),
                &lattice,
                ParentChoice::SmallestCardinality,
                &mut ExecStats::default(),
                &ctx,
            )
            .unwrap()
            .into_set_maps(&aggs)
            .unwrap(),
        );
        for threads in [1, 4] {
            let mut sp = ExecStats::default();
            let par = parallel(
                &enc,
                plan(t.rows(), &aggs).unwrap(),
                t.rows().len(),
                &lattice,
                threads,
                &mut sp,
                &ctx,
            )
            .unwrap()
            .into_set_maps(&aggs)
            .unwrap();
            assert_eq!(sp.threads_used, threads as u64);
            assert_eq!(finals(par), expected, "{threads} threads");
        }
    }

    #[test]
    #[ignore = "stage profiler, run by hand with --release --nocapture"]
    fn profile_stages() {
        use std::time::Instant;
        let n_rows = 100_000usize;
        let n_dims = 4usize;
        let card = 10i64;
        let mut cols: Vec<(String, DataType)> = (0..n_dims)
            .map(|d| (format!("d{d}"), DataType::Int))
            .collect();
        cols.push(("units".into(), DataType::Int));
        let pairs: Vec<(&str, DataType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let schema = Schema::from_pairs(&pairs);
        let mut t = Table::empty(schema);
        let mut state = 88172645463325252u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..n_rows {
            let mut vals: Vec<Value> = (0..n_dims)
                .map(|_| Value::Int((rng() % card as u64) as i64))
                .collect();
            vals.push(Value::Int((rng() % 100) as i64));
            t.push_unchecked(dc_relation::Row::new(vals));
        }
        let dims: Vec<BoundDimension> = (0..n_dims)
            .map(|d| Dimension::column(format!("d{d}")).bind(t.schema()).unwrap())
            .collect();
        let aggs: Vec<BoundAgg> = ["SUM", "AVG", "MIN", "MAX", "COUNT"]
            .iter()
            .map(|n| {
                AggSpec::new(builtin(n).unwrap(), "units")
                    .bind(t.schema())
                    .unwrap()
            })
            .chain([AggSpec::star(builtin("COUNT(*)").unwrap())
                .bind(t.schema())
                .unwrap()])
            .collect();
        let lattice = Lattice::cube(n_dims).unwrap();
        let ctx = ExecContext::unlimited();
        for _ in 0..3 {
            let t0 = Instant::now();
            let enc = encode(t.rows(), &dims).unwrap();
            let t1 = Instant::now();
            let p = plan(t.rows(), &aggs).unwrap();
            let t2 = Instant::now();
            let mut stats = ExecStats::default();
            let core = compute_core(&enc, &p, n_rows, &mut stats, &ctx).unwrap();
            let t3 = Instant::now();
            let n_core = core.n_cells();
            let sets = cascade(
                core,
                &enc.encoder,
                &p,
                &lattice,
                ParentChoice::SmallestCardinality,
                &mut stats,
                &ctx,
            )
            .unwrap();
            let t4 = Instant::now();
            let mut rstats = ExecStats::default();
            let rmaps = super::super::encoded::from_core(
                &enc,
                t.rows(),
                &aggs,
                &lattice,
                ParentChoice::SmallestCardinality,
                &mut rstats,
                &ctx,
            )
            .unwrap();
            let t5 = Instant::now();
            eprintln!(
                "encode {:?} | plan {:?} | core({n_core}) {:?} | cascade({}) {:?} | row_all({}) {:?}",
                t1 - t0,
                t2 - t1,
                t3 - t2,
                sets.len(),
                t4 - t3,
                rmaps.len(),
                t5 - t4,
            );
        }
    }
}
